/**
 * @file
 * Scenario: a warehouse-scale node serving a latency-sensitive
 * search-like service wants to absorb batch index-building work on the
 * same socket (the paper's motivating cloud use case, §1).
 *
 * This example defines a *custom* application model through the public
 * AppParams API (rather than using the catalog), mimicking a
 * query-serving process: mostly cache-resident index hot set, a
 * phase-varying request mix, and a latency constraint. The batch job
 * is the catalog's xalan (XML transformation, cache hungry).
 *
 * The operator question it answers: can we run the indexer alongside
 * search within a 5 % responsiveness budget, and what does each LLC
 * policy leave on the table?
 */

#include <cstdio>

#include "core/co_scheduler.hh"
#include "workload/catalog.hh"

namespace
{

using namespace capart;

/** A synthetic query-serving application built via the public API. */
AppParams
makeSearchFrontend()
{
    AppParams app;
    app.name = "websearch-frontend";
    app.suite = Suite::ParallelApps;
    app.lengthInsts = 24'000'000;
    app.baseIpc = 1.4;
    app.mlp = 3.0;
    app.serialFraction = 0.08; // request handling parallelizes well
    app.syncCost = 0.01;

    // Steady serving phase: hot index/posting-list structures plus a
    // long random tail over the in-memory shard.
    PhaseSpec serve;
    serve.instFraction = 0.7;
    serve.memRatio = 0.18;
    serve.patterns = {
        PatternSpec{PatternKind::RandomInRegion, 192 * 1024, 8, 0.88,
                    0.15, 0.0},
        PatternSpec{PatternKind::RandomInRegion, 3u << 20, 8, 0.09, 0.1,
                    0.0},
        PatternSpec{PatternKind::PointerChase, 2u << 20, 8, 0.03, 0.02,
                    0.0},
    };

    // Periodic heavy phase: cache-hungry scoring over a bigger shard
    // slice (a "hot query burst").
    PhaseSpec burst;
    burst.instFraction = 0.3;
    burst.memRatio = 0.26;
    burst.patterns = {
        PatternSpec{PatternKind::RandomInRegion, 160 * 1024, 8, 0.80,
                    0.15, 0.0},
        PatternSpec{PatternKind::RandomInRegion, 4u << 20, 8, 0.17, 0.1,
                    0.0},
        PatternSpec{PatternKind::PointerChase, 2u << 20, 8, 0.03, 0.02,
                    0.0},
    };

    app.phases = {serve, burst};
    app.validate();
    return app;
}

} // namespace

int
main()
{
    using namespace capart;

    const AppParams frontend = makeSearchFrontend();
    const AppParams &indexer = Catalog::byName("xalan");
    constexpr double kSloBudget = 1.05; // 5% responsiveness budget

    CoScheduleOptions options;
    options.scale = 0.25;
    CoScheduler scheduler(frontend, indexer, options);

    std::printf("node consolidation study: %s + %s (SLO: <%.0f%% "
                "slowdown)\n\n",
                frontend.name.c_str(), indexer.name.c_str(),
                (kSloBudget - 1.0) * 100.0);
    std::printf("%-8s  %11s  %5s  %18s  %12s\n", "policy", "fg slowdown",
                "SLO?", "indexer throughput", "fg LLC ways");
    for (const Policy policy : {Policy::Shared, Policy::Fair,
                                Policy::Biased, Policy::Dynamic}) {
        const ConsolidationSummary s = scheduler.summarize(policy);
        std::printf("%-8s  %10.1f%%  %5s  %13.2f MIPS  %12u\n",
                    policyName(policy), (s.fgSlowdown - 1.0) * 100.0,
                    s.fgSlowdown <= kSloBudget ? "ok" : "MISS",
                    s.bgThroughput / 1e6, s.fgWays);
    }

    const ConsolidationSummary best = scheduler.summarize(Policy::Dynamic);
    std::printf("\nidle-resource recovery: consolidation instead of a "
                "dedicated node saves\n%.1f%% socket energy and yields "
                "%.2f MIPS of indexing throughput.\n",
                (1.0 - best.energyVsSequential) * 100.0,
                best.bgThroughput / 1e6);
    return 0;
}
