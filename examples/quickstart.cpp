/**
 * @file
 * Quickstart: co-schedule a latency-sensitive foreground application
 * with a batch background application and compare the paper's LLC
 * management policies in a dozen lines of API.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/co_scheduler.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace capart;

    // Pick workloads from the paper's 45-application catalog.
    const AppParams &foreground = Catalog::byName("429.mcf");
    const AppParams &background = Catalog::byName("dedup");

    // Consolidate them: each gets 2 cores / 4 hyperthreads of the
    // simulated 4-core Sandy Bridge (§5). Scale shortens the synthetic
    // applications so this demo finishes in seconds.
    CoScheduleOptions options;
    options.scale = 0.2;

    CoScheduler scheduler(foreground, background, options);

    std::printf("co-scheduling %s (foreground) with %s (background)\n\n",
                foreground.name.c_str(), background.name.c_str());
    std::printf("%-8s  %12s  %16s  %14s\n", "policy", "fg slowdown",
                "bg throughput", "energy vs seq");
    for (const Policy policy : {Policy::Shared, Policy::Fair,
                                Policy::Biased, Policy::Dynamic}) {
        const ConsolidationSummary s = scheduler.summarize(policy);
        std::printf("%-8s  %11.1f%%  %13.2f MIPS  %13.1f%%\n",
                    policyName(policy), (s.fgSlowdown - 1.0) * 100.0,
                    s.bgThroughput / 1e6,
                    (s.energyVsSequential - 1.0) * 100.0);
    }

    std::printf("\nThe dynamic policy protects the foreground like the "
                "best static partition\nwhile freeing unneeded LLC for "
                "the background (paper §6).\n");
    return 0;
}
