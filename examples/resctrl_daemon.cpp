/**
 * @file
 * A userspace "partitioning daemon" written against the resctrl-style
 * control plane — the way a production operator would deploy the
 * paper's policy on CAT hardware. The daemon:
 *
 *   1. creates `latency` and `batch` control groups,
 *   2. pins the foreground into `latency` and the background into
 *      `batch` with complementary schemata,
 *   3. runs the co-schedule while Algorithm 6.2 (via the library's
 *      DynamicPartitioner) adjusts the split, and
 *   4. prints the groups' CMT-style monitoring data afterwards.
 */

#include <cstdio>

#include "core/dynamic_partitioner.hh"
#include "rctl/resctrl.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace capart;

    System machine{SystemConfig{}};
    const AppId search = machine.addAppOnCores(
        Catalog::byName("482.sphinx3").scaled(0.3), 0, 2);
    const AppId indexer = machine.addAppOnCores(
        Catalog::byName("xalan").scaled(0.3), 2, 2, /*continuous=*/true);

    ResctrlFs resctrl(machine);

    // Static setup, exactly the shell session an operator would run:
    //   mkdir /sys/fs/resctrl/latency /sys/fs/resctrl/batch
    //   echo "L3:0=ffc" > latency/schemata ; echo "L3:0=003" > batch/...
    //   echo $FG_PID > latency/tasks      ; echo $BG_PID > batch/tasks
    auto must = [](RctlStatus s) {
        if (s != RctlStatus::Ok) {
            std::fprintf(stderr, "resctrl: %s\n", rctlStatusName(s));
            std::exit(1);
        }
    };
    must(resctrl.createGroup("latency"));
    must(resctrl.createGroup("batch"));
    must(resctrl.writeSchemata("latency", "L3:0=ffc"));
    must(resctrl.writeSchemata("batch", "L3:0=003"));
    must(resctrl.assignApp("latency", search));
    must(resctrl.assignApp("batch", indexer));

    std::printf("groups: latency=%s  batch=%s\n",
                resctrl.readSchemata("latency")->c_str(),
                resctrl.readSchemata("batch")->c_str());

    // Hand ongoing adjustment to the paper's dynamic policy.
    DynamicPartitioner controller(search, {indexer});
    machine.setController(&controller);
    const RunResult result = machine.run();

    const auto lat_mon = resctrl.monitor("latency");
    const auto bat_mon = resctrl.monitor("batch");
    std::printf("\nforeground finished in %.2f ms "
                "(settled at %u ways)\n",
                result.app(search).completionTime * 1e3,
                controller.fgWays());
    std::printf("latency group: %llu LLC accesses, %.1f%% hits\n",
                static_cast<unsigned long long>(lat_mon->llcAccesses),
                100.0 * lat_mon->llcHits /
                    std::max<std::uint64_t>(1, lat_mon->llcAccesses));
    std::printf("batch group:   %llu LLC accesses, %.1f%% hits; "
                "%.1f M instructions retired\n",
                static_cast<unsigned long long>(bat_mon->llcAccesses),
                100.0 * bat_mon->llcHits /
                    std::max<std::uint64_t>(1, bat_mon->llcAccesses),
                result.app(indexer).retired / 1e6);
    return 0;
}
