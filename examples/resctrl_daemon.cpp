/**
 * @file
 * A userspace "partitioning daemon" written against the resctrl-style
 * control plane — the way a production operator would deploy the
 * paper's policy on CAT hardware. The daemon:
 *
 *   1. creates `latency` and `batch` control groups,
 *   2. pins the foreground into `latency` and the background into
 *      `batch` with complementary schemata,
 *   3. runs the co-schedule while the hardened Algorithm 6.2 (the
 *      library's DynamicPartitioner behind a ResctrlRemasker) adjusts
 *      the split *through the control plane* — while a fault injector
 *      makes that control plane realistically unreliable: noisy counter
 *      reads and occasional EIO on schemata writes, and
 *   4. prints the groups' CMT-style monitoring data plus the
 *      controller's health report afterwards.
 */

#include <cstdio>

#include "core/dynamic_partitioner.hh"
#include "fault/fault_injector.hh"
#include "fault/resctrl_remasker.hh"
#include "rctl/resctrl.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace capart;

    System machine{SystemConfig{}};
    const AppId search = machine.addAppOnCores(
        Catalog::byName("482.sphinx3").scaled(0.3), 0, 2);
    const AppId indexer = machine.addAppOnCores(
        Catalog::byName("xalan").scaled(0.3), 2, 2, /*continuous=*/true);

    ResctrlFs resctrl(machine);

    // Static setup, exactly the shell session an operator would run:
    //   mkdir /sys/fs/resctrl/latency /sys/fs/resctrl/batch
    //   echo "L3:0=ffc" > latency/schemata ; echo "L3:0=003" > batch/...
    //   echo $FG_PID > latency/tasks      ; echo $BG_PID > batch/tasks
    auto must = [](RctlStatus s) {
        if (s != RctlStatus::Ok) {
            std::fprintf(stderr, "resctrl: %s\n", rctlStatusName(s));
            std::exit(1);
        }
    };
    must(resctrl.createGroup("latency"));
    must(resctrl.createGroup("batch"));
    must(resctrl.writeSchemata("latency", "L3:0=ffc"));
    must(resctrl.writeSchemata("batch", "L3:0=003"));
    must(resctrl.assignApp("latency", search));
    must(resctrl.assignApp("batch", indexer));

    std::printf("groups: latency=%s  batch=%s\n",
                resctrl.readSchemata("latency")->c_str(),
                resctrl.readSchemata("batch")->c_str());

    // Make the machine realistically hostile: 2% of the foreground's
    // counter windows are dropped/corrupted/stale and 5% of schemata
    // writes fail with EIO. (Delete these four lines for the perfect
    // machine the paper's prototype ran on.)
    FaultPlan plan = FaultPlan::noisyTelemetry(0.02);
    plan.remaskFailRate = 0.05;
    plan.telemetryTarget = search;
    FaultInjector chaos(plan, /*seed=*/2024);
    chaos.attach(machine);
    resctrl.setFaultHook(&chaos);

    // Hand ongoing adjustment to the hardened dynamic policy, writing
    // masks through the control plane (so injected EIO is felt and
    // retried) rather than poking MSRs directly.
    ResctrlRemasker remasker(resctrl, "latency", "batch");
    DynamicPartitioner controller(search, {indexer},
                                  DynamicPartitionerConfig{}, &remasker);
    machine.setController(&controller);
    const RunResult result = machine.run();

    const auto lat_mon = resctrl.monitor("latency");
    const auto bat_mon = resctrl.monitor("batch");
    std::printf("\nforeground finished in %.2f ms "
                "(settled at %u ways, %s mode)\n",
                result.app(search).completionTime * 1e3,
                controller.fgWays(),
                controller.mode() == ControlMode::Dynamic ? "dynamic"
                                                          : "fallback");
    std::printf("latency group: %llu LLC accesses, %.1f%% hits\n",
                static_cast<unsigned long long>(lat_mon->llcAccesses),
                100.0 * lat_mon->llcHits /
                    std::max<std::uint64_t>(1, lat_mon->llcAccesses));
    std::printf("batch group:   %llu LLC accesses, %.1f%% hits; "
                "%.1f M instructions retired\n",
                static_cast<unsigned long long>(bat_mon->llcAccesses),
                100.0 * bat_mon->llcHits /
                    std::max<std::uint64_t>(1, bat_mon->llcAccesses),
                result.app(indexer).retired / 1e6);

    // The health report an operator's monitoring would scrape.
    const FaultStats &injected = chaos.stats();
    std::printf("\ninjected faults: %llu windows dropped, %llu corrupted,"
                " %llu stale, %llu schemata EIO, %llu apply failures\n",
                static_cast<unsigned long long>(injected.windowsDropped),
                static_cast<unsigned long long>(injected.windowsCorrupted),
                static_cast<unsigned long long>(injected.windowsStale),
                static_cast<unsigned long long>(injected.schemataFails),
                static_cast<unsigned long long>(injected.applyFails));
    std::printf("controller health: %llu samples rejected, %llu/%llu "
                "remasks failed, %llu watchdog fallbacks\n",
                static_cast<unsigned long long>(
                    controller.rejectedSamples()),
                static_cast<unsigned long long>(
                    controller.remaskFailures()),
                static_cast<unsigned long long>(
                    controller.remaskAttempts()),
                static_cast<unsigned long long>(countHealthEvents(
                    controller.healthLog(),
                    HealthEventKind::FallbackEntered)));
    for (const HealthEvent &ev : controller.healthLog()) {
        if (ev.kind == HealthEventKind::FallbackEntered ||
            ev.kind == HealthEventKind::DynamicResumed) {
            std::printf("  %.3f ms  %-16s fgWays=%u count=%u\n",
                        ev.time * 1e3, healthEventName(ev.kind),
                        ev.fgWays, ev.count);
        }
    }
    return 0;
}
