/**
 * @file
 * Characterize one application the way §3 characterizes the paper's
 * suite: thread scalability, LLC-capacity sensitivity, prefetcher
 * sensitivity, and bandwidth sensitivity — then report where it lands
 * in the Table 1 / Table 2 taxonomy.
 *
 * Usage: characterize_app [benchmark-name] [scale]
 *        (default: 482.sphinx3 at scale 0.3; see Catalog for names)
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/experiment.hh"
#include "workload/catalog.hh"

int
main(int argc, char **argv)
{
    using namespace capart;

    const char *name = argc > 1 ? argv[1] : "482.sphinx3";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.3;
    if (!Catalog::contains(name)) {
        std::fprintf(stderr, "unknown benchmark '%s'; catalog has:\n",
                     name);
        for (const auto &a : Catalog::all())
            std::fprintf(stderr, "  %s\n", a.name.c_str());
        return 1;
    }
    const AppParams &app = Catalog::byName(name);

    std::printf("characterizing %s (%s) at scale %.2f\n\n", name,
                suiteName(app.suite), scale);

    // 1. Thread scalability (§3.1).
    std::printf("thread scalability (speedup over 1 thread):\n  ");
    std::vector<double> times;
    for (unsigned n = 1; n <= 8; ++n) {
        SoloOptions o;
        o.threads = n;
        o.scale = scale;
        times.push_back(runSolo(app, o).time);
        std::printf("%u:%.2fx ", n, times.front() / times.back());
    }
    std::printf("\n  paper class: %s\n\n",
                scalClassName(app.expectedScal));

    // 2. LLC sensitivity (§3.2).
    std::printf("LLC sensitivity (time vs allocation, 4 threads):\n  ");
    double t12 = 0.0;
    for (unsigned ways = 1; ways <= 12; ++ways) {
        SoloOptions o;
        o.threads = 4;
        o.ways = ways;
        o.scale = scale;
        const SoloResult r = runSolo(app, o);
        if (ways == 12)
            t12 = r.time;
        std::printf("%.1fMB:%.2fms ", ways * 0.5, r.time * 1e3);
    }
    SoloOptions full;
    full.threads = 4;
    full.scale = scale;
    const SoloResult base = runSolo(app, full);
    std::printf("\n  APKI %.1f, MPKI %.1f%s; paper class: %s\n\n",
                base.app.apki(), base.app.mpki(),
                base.app.apki() > 10 ? " (>10: potential polluter)" : "",
                utilClassName(app.expectedUtil));
    (void)t12;

    // 3. Prefetcher sensitivity (§3.3).
    SoloOptions no_pf = full;
    no_pf.system.prefetch = PrefetchConfig::allEnabled(false);
    const SoloResult off = runSolo(app, no_pf);
    std::printf("prefetcher sensitivity: time(on)/time(off) = %.3f "
                "(paper: %ssensitive)\n\n",
                base.time / off.time,
                app.expectedPrefetchSensitive ? "" : "not ");

    // 4. Bandwidth sensitivity (§3.4).
    PairOptions hogged;
    hogged.scale = scale;
    const PairResult hog =
        runPair(app, Catalog::byName("stream_uncached"), hogged);
    std::printf("bandwidth sensitivity: slowdown with hog = %.3f "
                "(paper: %ssensitive)\n",
                hog.fgTime / base.time,
                app.expectedBandwidthSensitive ? "" : "not ");
    return 0;
}
