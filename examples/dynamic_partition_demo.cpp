/**
 * @file
 * Watch the dynamic partitioning algorithm (§6) work: run the phased
 * 429.mcf as foreground against a continuously-running background and
 * print the controller's allocation decisions as an ASCII timeline —
 * way allocation growing at phase changes and shrinking as the probe
 * finds spare capacity. An online SLO monitor rides along (observing,
 * never steering) and reports whether the foreground stayed within
 * its responsiveness budget window by window.
 */

#include <cstdio>
#include <string>

#include "core/dynamic_partitioner.hh"
#include "core/slo_monitor.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace capart;

    SystemConfig config;
    config.perfWindow = 20e-6; // scaled analogue of the 100 ms window

    // Baseline for the SLO: the foreground alone on half the LLC —
    // the paper's responsiveness reference point.
    double baseline_ips = 0.0;
    {
        System alone(config);
        const AppId solo = alone.addAppThreads(
            Catalog::byName("429.mcf").scaled(0.5), 0, 1);
        alone.setWayMask(solo, WayMask::range(0, alone.llcWays() / 2));
        const RunResult r = alone.run();
        baseline_ips = r.app(solo).throughputIps;
    }

    System machine(config);
    const AppId fg = machine.addAppThreads(
        Catalog::byName("429.mcf").scaled(0.5), 0, 1);
    const AppId bg = machine.addAppOnCores(
        Catalog::byName("dedup").scaled(0.5), 2, 2, /*continuous=*/true);

    DynamicPartitioner controller(fg, {bg});
    SloMonitor slo;
    slo.setBaseline(baseline_ips);
    SloController monitored(fg, &slo, &controller);
    machine.setController(&monitored);

    std::printf("running 429.mcf (fg, 1 thread) + dedup (bg, looping) "
                "under Algorithm 6.2\n\n");
    const RunResult result = machine.run();

    // Timeline: one row per ~40 windows.
    std::printf("%-10s  %-8s  %-6s  %s\n", "time(us)", "fg MPKI",
                "ways", "allocation (#=fg way, .=bg way)");
    const auto &history = controller.history();
    const std::size_t step = history.size() / 30 + 1;
    for (std::size_t i = 0; i < history.size(); i += step) {
        const AllocationEvent &ev = history[i];
        std::string bar(ev.fgWays, '#');
        bar += std::string(machine.llcWays() - ev.fgWays, '.');
        std::printf("%-10.1f  %-8.1f  %-6u  %s%s\n", ev.time * 1e6,
                    ev.windowMpki, ev.fgWays, bar.c_str(),
                    ev.phase == PhaseEvent::NewPhase ? "  <- new phase"
                                                     : "");
    }

    std::printf("\nforeground completed in %.2f ms; background retired "
                "%.1f M instructions\n(%u full iterations); %llu "
                "reallocations, %llu phase changes detected.\n",
                result.app(fg).completionTime * 1e3,
                static_cast<double>(result.app(bg).retired) / 1e6,
                result.app(bg).iterations,
                static_cast<unsigned long long>(
                    controller.reallocations()),
                static_cast<unsigned long long>(
                    controller.detector().phaseChanges()));

    std::printf("\nSLO monitor (target: fg within %.0f%% of alone on "
                "half the LLC):\n  %llu windows evaluated, %llu "
                "breach(es), %llu window(s) in breach;\n  final "
                "slowdown %.3f, short/long burn %.2f/%.2f -> %s\n",
                (slo.config().slo - 1.0) * 100.0,
                static_cast<unsigned long long>(slo.windows()),
                static_cast<unsigned long long>(slo.breaches()),
                static_cast<unsigned long long>(slo.breachWindows()),
                slo.lastSlowdown(), slo.shortBurn(), slo.longBurn(),
                slo.inBreach() ? "IN BREACH" : "within SLO");
    for (const HealthEvent &ev : slo.healthLog()) {
        std::printf("  t=%.1fus %s\n", ev.time * 1e6,
                    healthEventName(ev.kind));
    }
    return 0;
}
