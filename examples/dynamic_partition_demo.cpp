/**
 * @file
 * Watch the dynamic partitioning algorithm (§6) work: run the phased
 * 429.mcf as foreground against a continuously-running background and
 * print the controller's allocation decisions as an ASCII timeline —
 * way allocation growing at phase changes and shrinking as the probe
 * finds spare capacity.
 */

#include <cstdio>
#include <string>

#include "core/dynamic_partitioner.hh"
#include "sim/system.hh"
#include "workload/catalog.hh"

int
main()
{
    using namespace capart;

    SystemConfig config;
    config.perfWindow = 20e-6; // scaled analogue of the 100 ms window

    System machine(config);
    const AppId fg = machine.addAppThreads(
        Catalog::byName("429.mcf").scaled(0.5), 0, 1);
    const AppId bg = machine.addAppOnCores(
        Catalog::byName("dedup").scaled(0.5), 2, 2, /*continuous=*/true);

    DynamicPartitioner controller(fg, {bg});
    machine.setController(&controller);

    std::printf("running 429.mcf (fg, 1 thread) + dedup (bg, looping) "
                "under Algorithm 6.2\n\n");
    const RunResult result = machine.run();

    // Timeline: one row per ~40 windows.
    std::printf("%-10s  %-8s  %-6s  %s\n", "time(us)", "fg MPKI",
                "ways", "allocation (#=fg way, .=bg way)");
    const auto &history = controller.history();
    const std::size_t step = history.size() / 30 + 1;
    for (std::size_t i = 0; i < history.size(); i += step) {
        const AllocationEvent &ev = history[i];
        std::string bar(ev.fgWays, '#');
        bar += std::string(machine.llcWays() - ev.fgWays, '.');
        std::printf("%-10.1f  %-8.1f  %-6u  %s%s\n", ev.time * 1e6,
                    ev.windowMpki, ev.fgWays, bar.c_str(),
                    ev.phase == PhaseEvent::NewPhase ? "  <- new phase"
                                                     : "");
    }

    std::printf("\nforeground completed in %.2f ms; background retired "
                "%.1f M instructions\n(%u full iterations); %llu "
                "reallocations, %llu phase changes detected.\n",
                result.app(fg).completionTime * 1e3,
                static_cast<double>(result.app(bg).retired) / 1e6,
                result.app(bg).iterations,
                static_cast<unsigned long long>(
                    controller.reallocations()),
                static_cast<unsigned long long>(
                    controller.detector().phaseChanges()));
    return 0;
}
