/**
 * @file
 * Static configuration for one cache level and for the paper's 3-level
 * Sandy Bridge hierarchy (32 KB L1D, 256 KB L2, 6 MB / 12-way LLC).
 */

#ifndef CAPART_MEM_CACHE_CONFIG_HH
#define CAPART_MEM_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "common/types.hh"
#include "common/units.hh"

namespace capart
{

/** Replacement policy selector for a cache level. */
enum class ReplPolicy
{
    LRU,      //!< true least-recently-used (exact stack order)
    BitPLRU,  //!< one MRU bit per way; victim = first non-MRU way
    NRU,      //!< not-recently-used with periodic bit clearing
    Random,   //!< uniform random among replaceable ways
    TreePLRU  //!< binary-tree PLRU with mask-restricted descent
};

/**
 * Which SetAssocCache implementation services accesses.
 *
 * `Fast` is the flat-array engine (SoA tag/owner/metadata planes,
 * devirtualized replacement, per-mask tree-PLRU traversal tables);
 * `Legacy` is the original virtual-dispatch ReplacementState engine
 * kept as a bit-exact differential reference during the transition.
 * `Auto` resolves to the process-wide default, which is `Fast` unless
 * overridden by setDefaultCacheEngine() or `CAPART_CACHE_ENGINE=legacy`
 * in the environment.
 */
enum class CacheEngine
{
    Auto,
    Fast,
    Legacy
};

/** Process-wide engine that CacheEngine::Auto resolves to. */
CacheEngine defaultCacheEngine();

/**
 * Override the Auto engine for every cache constructed afterwards
 * (tests and benchmarks flip this to compare engines in-process).
 * Passing Auto restores the environment-derived default.
 */
void setDefaultCacheEngine(CacheEngine engine);

/** Set-index mapping selector. */
enum class IndexFn
{
    Modulo, //!< classic low-order-bits indexing
    Hashed  //!< multiplicative hash, models Sandy Bridge slice hashing
};

/** Geometry and behaviour of a single cache level. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = mib(6);
    unsigned ways = 12;
    ReplPolicy repl = ReplPolicy::BitPLRU;
    IndexFn index = IndexFn::Modulo;
    /** True if evictions must back-invalidate inner levels (inclusive). */
    bool inclusive = false;
    /** Number of partition way-mask registers (0 disables partitioning). */
    unsigned partitionSlots = 0;
    /** Implementation selector; Auto follows defaultCacheEngine(). */
    CacheEngine engine = CacheEngine::Auto;

    /** Number of sets implied by size/ways/line size. */
    std::uint64_t
    sets() const
    {
        return sizeBytes / (static_cast<std::uint64_t>(ways) * kLineBytes);
    }
};

/** Parameters of the full private-L1/private-L2/shared-LLC hierarchy. */
struct HierarchyConfig
{
    CacheConfig l1;
    CacheConfig l2;
    CacheConfig llc;

    /** Load-to-use latencies in core cycles (approximate Sandy Bridge). */
    Cycles l1Latency = 4;
    Cycles l2Latency = 12;
    Cycles llcLatency = 30;

    /**
     * Default configuration mirroring the paper's platform (§2.1):
     * 32 KB 8-way L1D, 256 KB 8-way non-inclusive L2, 6 MB 12-way
     * inclusive LLC with hashed indexing and 16 partition slots.
     */
    static HierarchyConfig sandyBridge();
};

} // namespace capart

#endif // CAPART_MEM_CACHE_CONFIG_HH
