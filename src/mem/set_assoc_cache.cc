#include "mem/set_assoc_cache.hh"

#include <bit>

#include "common/logging.hh"

namespace capart
{

namespace
{

/** splitmix64 finalizer; decorrelates set selection from line alignment. */
std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace

SetAssocCache::SetAssocCache(const CacheConfig &cfg, std::uint64_t seed)
    : cfg_(cfg),
      sets_(cfg.sets()),
      ways_(cfg.ways),
      tags_(sets_ * ways_, 0),
      valid_(sets_, 0),
      dirty_(sets_, 0),
      repl_(ReplacementState::create(cfg, seed))
{
    if (sets_ == 0 || !std::has_single_bit(sets_)) {
        capart_fatal("cache '" << cfg.name << "': size "
                     << cfg.sizeBytes << " B / " << cfg.ways
                     << " ways / " << kLineBytes
                     << " B lines yields " << sets_
                     << " sets; the set count must be a power of two");
    }
    capart_assert(ways_ >= 1 && ways_ <= 32);
    const unsigned slots = cfg.partitionSlots ? cfg.partitionSlots : 1;
    masks_.assign(slots, WayMask::all(ways_));
    stats_.assign(slots, PartitionStats{});
}

std::uint64_t
SetAssocCache::setIndex(Addr line) const
{
    if (cfg_.index == IndexFn::Hashed)
        return mix64(line) & (sets_ - 1);
    return line & (sets_ - 1);
}

int
SetAssocCache::findWay(std::uint64_t set, Addr line) const
{
    const std::uint64_t tag = line + 1;
    const std::uint64_t base = set * ways_;
    std::uint32_t v = valid_[set];
    while (v) {
        const unsigned w = static_cast<unsigned>(std::countr_zero(v));
        if (tags_[base + w] == tag)
            return static_cast<int>(w);
        v &= v - 1;
    }
    return -1;
}

CacheAccessResult
SetAssocCache::access(Addr line, bool write, unsigned slot)
{
    capart_assert(slot < stats_.size());
    ++stats_[slot].accesses;

    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way >= 0) {
        ++stats_[slot].hits;
        repl_->touch(set, static_cast<unsigned>(way));
        if (write)
            dirty_[set] |= (1u << way);
        return CacheAccessResult{.hit = true};
    }
    return insert(set, line, write, slot);
}

CacheAccessResult
SetAssocCache::fill(Addr line, bool dirty, unsigned slot)
{
    capart_assert(slot < masks_.size());
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way >= 0) {
        repl_->touch(set, static_cast<unsigned>(way));
        if (dirty)
            dirty_[set] |= (1u << way);
        return CacheAccessResult{.hit = true};
    }
    return insert(set, line, dirty, slot);
}

CacheAccessResult
SetAssocCache::insert(std::uint64_t set, Addr line, bool dirty,
                      unsigned slot)
{
    CacheAccessResult res;
    const WayMask mask = masks_[slot];
    capart_assert(!mask.empty());
    const unsigned victim = repl_->victim(set, mask, valid_[set]);
    capart_assert(victim < ways_);
    capart_assert(mask.contains(victim));

    const std::uint64_t idx = set * ways_ + victim;
    const std::uint32_t bit = 1u << victim;
    if (valid_[set] & bit) {
        res.evicted = true;
        res.victimLine = tags_[idx] - 1;
        res.victimDirty = (dirty_[set] & bit) != 0;
    }

    tags_[idx] = line + 1;
    valid_[set] |= bit;
    if (dirty)
        dirty_[set] |= bit;
    else
        dirty_[set] &= ~bit;
    repl_->touch(set, victim);
    return res;
}

bool
SetAssocCache::probe(Addr line) const
{
    return findWay(setIndex(line), line) >= 0;
}

bool
SetAssocCache::markDirty(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return false;
    dirty_[set] |= (1u << way);
    repl_->touch(set, static_cast<unsigned>(way));
    return true;
}

bool
SetAssocCache::touchLine(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return false;
    repl_->touch(set, static_cast<unsigned>(way));
    return true;
}

InvalidateResult
SetAssocCache::invalidate(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return InvalidateResult{};
    const std::uint32_t bit = 1u << static_cast<unsigned>(way);
    InvalidateResult res;
    res.wasPresent = true;
    res.wasDirty = (dirty_[set] & bit) != 0;
    valid_[set] &= ~bit;
    dirty_[set] &= ~bit;
    tags_[set * ways_ + static_cast<unsigned>(way)] = 0;
    repl_->invalidate(set, static_cast<unsigned>(way));
    return res;
}

void
SetAssocCache::setPartitionMask(unsigned slot, WayMask mask)
{
    capart_assert(slot < masks_.size());
    capart_assert(!mask.empty());
    capart_assert((mask & WayMask::all(ways_)) == mask);
    masks_[slot] = mask;
}

WayMask
SetAssocCache::partitionMask(unsigned slot) const
{
    capart_assert(slot < masks_.size());
    return masks_[slot];
}

const PartitionStats &
SetAssocCache::slotStats(unsigned slot) const
{
    capart_assert(slot < stats_.size());
    return stats_[slot];
}

PartitionStats
SetAssocCache::totalStats() const
{
    PartitionStats total;
    for (const auto &s : stats_) {
        total.accesses += s.accesses;
        total.hits += s.hits;
    }
    return total;
}

void
SetAssocCache::resetStats()
{
    for (auto &s : stats_)
        s = PartitionStats{};
}

std::uint64_t
SetAssocCache::residentLines() const
{
    std::uint64_t n = 0;
    for (std::uint32_t v : valid_)
        n += std::popcount(v);
    return n;
}

} // namespace capart
