#include "mem/set_assoc_cache.hh"

#include <bit>

#include "common/logging.hh"

namespace capart
{

SetAssocCache::SetAssocCache(const CacheConfig &cfg, std::uint64_t seed)
    : cfg_(cfg),
      sets_(cfg.sets()),
      ways_(cfg.ways),
      hashed_(cfg.index == IndexFn::Hashed),
      legacy_((cfg.engine == CacheEngine::Auto ? defaultCacheEngine()
                                               : cfg.engine) ==
              CacheEngine::Legacy),
      policy_(cfg.repl),
      tags_(sets_ * ways_, 0),
      owner_(sets_ * ways_, 0),
      valid_(sets_, 0),
      dirty_(sets_, 0),
      fullMask_((cfg.ways >= 32) ? ~0u : ((1u << cfg.ways) - 1u)),
      rng_(seed)
{
    if (sets_ == 0 || !std::has_single_bit(sets_)) {
        capart_fatal("cache '" << cfg.name << "': size "
                     << cfg.sizeBytes << " B / " << cfg.ways
                     << " ways / " << kLineBytes
                     << " B lines yields " << sets_
                     << " sets; the set count must be a power of two");
    }
    capart_assert(ways_ >= 1 && ways_ <= 32);
    const unsigned slots = cfg.partitionSlots ? cfg.partitionSlots : 1;
    masks_.assign(slots, WayMask::all(ways_));
    stats_.assign(slots, PartitionStats{});
    // Inclusive caches keep a core-valid directory so back-invalidation
    // probes only cores that may actually hold the victim.
    if (cfg.inclusive)
        inner_.assign(sets_ * ways_, 0);

    if (legacy_) {
        repl_ = ReplacementState::create(cfg, seed);
        return;
    }
    switch (policy_) {
      case ReplPolicy::LRU:
        age_.assign(sets_ * ways_, 0);
        clock_.assign(sets_, 0);
        break;
      case ReplPolicy::BitPLRU:
      case ReplPolicy::NRU:
        rbits_.assign(sets_, 0);
        break;
      case ReplPolicy::Random:
        break;
      case ReplPolicy::TreePLRU:
        tree_.assign(sets_, 0);
        leaves_ = plruLeaves(ways_);
        levels_ = plruLevels(ways_);
        slotTables_.assign(
            slots, buildPlruMaskTable(ways_, WayMask::all(ways_).bits()));
        break;
    }
}

int
SetAssocCache::ownerOf(Addr line) const
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return -1;
    return owner_[set * ways_ + static_cast<unsigned>(way)];
}

bool
SetAssocCache::markDirty(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return false;
    dirty_[set] |= (1u << way);
    if (legacy_)
        repl_->touch(set, static_cast<unsigned>(way));
    else
        replTouch(set, static_cast<unsigned>(way));
    return true;
}

InvalidateResult
SetAssocCache::invalidate(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return InvalidateResult{};
    const std::uint32_t bit = 1u << static_cast<unsigned>(way);
    InvalidateResult res;
    res.wasPresent = true;
    res.wasDirty = (dirty_[set] & bit) != 0;
    valid_[set] &= ~bit;
    dirty_[set] &= ~bit;
    tags_[set * ways_ + static_cast<unsigned>(way)] = 0;
    if (!inner_.empty())
        inner_[set * ways_ + static_cast<unsigned>(way)] = 0;
    if (legacy_) {
        repl_->invalidate(set, static_cast<unsigned>(way));
        return res;
    }
    switch (policy_) {
      case ReplPolicy::LRU:
        age_[set * ways_ + static_cast<unsigned>(way)] = 0;
        break;
      case ReplPolicy::BitPLRU:
      case ReplPolicy::NRU:
        rbits_[set] &= ~bit;
        break;
      case ReplPolicy::Random:
      case ReplPolicy::TreePLRU:
        // Nothing to forget: victim() prefers invalid allowed ways
        // before consulting policy state.
        break;
    }
    return res;
}

void
SetAssocCache::setPartitionMask(unsigned slot, WayMask mask)
{
    capart_assert(slot < masks_.size());
    capart_assert(!mask.empty());
    capart_assert((mask & WayMask::all(ways_)) == mask);
    masks_[slot] = mask;
    if (!legacy_ && policy_ == ReplPolicy::TreePLRU)
        slotTables_[slot] = buildPlruMaskTable(ways_, mask.bits());
}

WayMask
SetAssocCache::partitionMask(unsigned slot) const
{
    capart_assert(slot < masks_.size());
    return masks_[slot];
}

const PartitionStats &
SetAssocCache::slotStats(unsigned slot) const
{
    capart_assert(slot < stats_.size());
    return stats_[slot];
}

PartitionStats
SetAssocCache::totalStats() const
{
    PartitionStats total;
    for (const auto &s : stats_) {
        total.accesses += s.accesses;
        total.hits += s.hits;
    }
    return total;
}

void
SetAssocCache::resetStats()
{
    for (auto &s : stats_)
        s = PartitionStats{};
}

std::uint64_t
SetAssocCache::residentLines() const
{
    std::uint64_t n = 0;
    for (std::uint32_t v : valid_)
        n += std::popcount(v);
    return n;
}

} // namespace capart
