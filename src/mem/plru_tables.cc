#include "mem/plru_tables.hh"

#include "common/logging.hh"

namespace capart
{

PlruMaskTable
buildPlruMaskTable(unsigned ways, std::uint32_t maskBits)
{
    capart_assert(ways >= 1 && ways <= kPlruMaxLeaves);
    capart_assert(maskBits != 0);

    const unsigned leaves = plruLeaves(ways);
    // has[i] over the full heap (leaves live at [leaves, 2*leaves)):
    // does the subtree rooted at i contain an allowed way?
    bool has[2 * kPlruMaxLeaves] = {};
    for (unsigned leaf = 0; leaf < leaves; ++leaf)
        has[leaves + leaf] = leaf < ways && ((maskBits >> leaf) & 1u);
    PlruMaskTable table;
    for (unsigned n = leaves - 1; n >= 1; --n) {
        has[n] = has[2 * n] || has[2 * n + 1];
        table.node[n] = static_cast<std::uint8_t>(
            (has[2 * n] ? 1u : 0u) | (has[2 * n + 1] ? 2u : 0u));
    }
    capart_assert(leaves == 1 || has[1]);
    return table;
}

} // namespace capart
