#include "mem/hierarchy.hh"

#include "common/logging.hh"

namespace capart
{

CacheHierarchy::CacheHierarchy(const HierarchyConfig &cfg,
                               unsigned num_cores, std::uint64_t seed)
    : cfg_(cfg)
{
    capart_assert(num_cores >= 1);
    for (unsigned c = 0; c < num_cores; ++c) {
        l1_.push_back(std::make_unique<SetAssocCache>(cfg.l1, seed + c));
        l2_.push_back(
            std::make_unique<SetAssocCache>(cfg.l2, seed + 100 + c));
    }
    llc_ = std::make_unique<SetAssocCache>(cfg.llc, seed + 1000);
}

void
CacheHierarchy::writebackToLlc(CoreId core, unsigned slot, Addr line,
                               HierarchyOutcome &out)
{
    // A dirty L2 victim normally hits in the inclusive LLC; if the LLC
    // already dropped the line (it back-invalidates on its own evictions,
    // so this means the writeback raced a remask), re-install it. The
    // line may survive in the core's L1 (non-inclusive L2), so the
    // directory keeps the core marked.
    if (llc_->markDirty(line)) {
        llc_->noteInnerPresence(line, core);
        return;
    }
    const CacheAccessResult res = llc_->fill(line, true, slot);
    llc_->noteInnerPresenceAt(res.set, res.way, core);
    if (res.evicted)
        handleLlcEviction(res, out);
}

void
CacheHierarchy::writebackToL2(CoreId core, unsigned slot, Addr line,
                              HierarchyOutcome &out)
{
    // Non-inclusive L2: the line may or may not be resident. Allocate on
    // writeback (victim cache behaviour), cascading any dirty L2 victim.
    if (l2_[core]->markDirty(line))
        return;
    const CacheAccessResult res = l2_[core]->fill(line, true, 0);
    if (res.evicted && res.victimDirty)
        writebackToLlc(core, slot, res.victimLine, out);
}

void
CacheHierarchy::handleLlcEviction(const CacheAccessResult &res,
                                  HierarchyOutcome &out)
{
    capart_assert(res.evicted);
    bool dirty = res.victimDirty;
    // Inclusive LLC: no inner cache may keep a line the LLC evicts.
    // The core-valid directory names every core that may hold a copy
    // (a superset — probing a non-holder is a harmless no-op), so
    // back-invalidation is O(holders) instead of O(cores); without a
    // directory (non-inclusive config, >64 cores) probe everyone.
    const bool tracked =
        llc_->tracksInnerPresence() && numCores() <= 64;
    for (unsigned c = 0; c < numCores(); ++c) {
        if (tracked && !((res.victimInner >> c) & 1ull))
            continue;
        const InvalidateResult i1 = l1_[c]->invalidate(res.victimLine);
        dirty = dirty || i1.wasDirty;
        const InvalidateResult i2 = l2_[c]->invalidate(res.victimLine);
        dirty = dirty || i2.wasDirty;
    }
    if (dirty)
        ++out.dramWrites;
}

HierarchyOutcome
CacheHierarchy::access(CoreId core, unsigned slot, Addr byte_addr,
                       bool write)
{
    capart_assert(core < numCores());
    HierarchyOutcome out;
    const Addr line = lineAddr(byte_addr);

    // L1 lookup. On a miss the line is allocated immediately; the
    // displaced victim spills into the L2.
    const CacheAccessResult r1 = l1_[core]->access(line, write, 0);
    if (r1.hit) {
        out.servedBy = ServiceLevel::L1;
        return out;
    }
    if (r1.evicted && r1.victimDirty) {
        // The writeback below may cascade into an LLC fill whose victim
        // is `line` itself; the directory must already know this core
        // holds the fresh L1 copy so back-invalidation reaches it.
        llc_->noteInnerPresence(line, core);
        writebackToL2(core, slot, r1.victimLine, out);
    }

    const CacheAccessResult r2 = l2_[core]->access(line, false, 0);
    if (r2.evicted && r2.victimDirty) {
        llc_->noteInnerPresence(line, core); // same race as above
        writebackToLlc(core, slot, r2.victimLine, out);
    }
    if (r2.hit) {
        out.servedBy = ServiceLevel::L2;
        return out;
    }

    out.llcAccess = true;
    const CacheAccessResult r3 = llc_->access(line, false, slot);
    llc_->noteInnerPresenceAt(r3.set, r3.way, core);
    if (r3.evicted)
        handleLlcEviction(r3, out);
    if (r3.hit) {
        out.servedBy = ServiceLevel::LLC;
        return out;
    }

    out.servedBy = ServiceLevel::Memory;
    ++out.dramReads;
    return out;
}

void
CacheHierarchy::ensureInLlc(CoreId core, unsigned slot, Addr line,
                            HierarchyOutcome &out)
{
    const int touched = llc_->touchLineWay(line);
    if (touched >= 0) {
        // Already resident; refreshed recency so the prefetched line is
        // not the next victim.
        llc_->noteInnerPresenceAt(llc_->setIndex(line), touched, core);
        return;
    }
    out.llcAccess = true;
    ++out.dramReads;
    const CacheAccessResult res = llc_->fill(line, false, slot);
    llc_->noteInnerPresenceAt(res.set, res.way, core);
    if (res.evicted)
        handleLlcEviction(res, out);
}

HierarchyOutcome
CacheHierarchy::prefetchIntoL1(CoreId core, unsigned slot, Addr line)
{
    capart_assert(core < numCores());
    HierarchyOutcome out;
    if (l1_[core]->probe(line))
        return out;

    if (!l2_[core]->probe(line))
        ensureInLlc(core, slot, line, out);

    const CacheAccessResult r1 = l1_[core]->fill(line, false, 0);
    if (r1.evicted && r1.victimDirty)
        writebackToL2(core, slot, r1.victimLine, out);
    return out;
}

HierarchyOutcome
CacheHierarchy::prefetchIntoL2(CoreId core, unsigned slot, Addr line)
{
    capart_assert(core < numCores());
    HierarchyOutcome out;
    if (l2_[core]->probe(line) || l1_[core]->probe(line))
        return out;

    ensureInLlc(core, slot, line, out);

    const CacheAccessResult r2 = l2_[core]->fill(line, false, 0);
    if (r2.evicted && r2.victimDirty)
        writebackToLlc(core, slot, r2.victimLine, out);
    return out;
}

void
CacheHierarchy::setLlcPartition(unsigned slot, WayMask mask)
{
    llc_->setPartitionMask(slot, mask);
}

WayMask
CacheHierarchy::llcPartition(unsigned slot) const
{
    return llc_->partitionMask(slot);
}

Cycles
CacheHierarchy::latency(ServiceLevel level, Cycles mem_latency) const
{
    switch (level) {
      case ServiceLevel::L1:
        return cfg_.l1Latency;
      case ServiceLevel::L2:
        return cfg_.l2Latency;
      case ServiceLevel::LLC:
        return cfg_.llcLatency;
      case ServiceLevel::Memory:
        return cfg_.llcLatency + mem_latency;
    }
    capart_panic("unknown service level");
}

} // namespace capart
