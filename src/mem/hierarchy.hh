/**
 * @file
 * The paper platform's three-level cache hierarchy: per-core private
 * L1D and non-inclusive L2, plus one shared, inclusive, way-partitionable
 * LLC (§2.1). All levels are write-back/write-allocate. Inclusive LLC
 * evictions back-invalidate every inner copy.
 */

#ifndef CAPART_MEM_HIERARCHY_HH
#define CAPART_MEM_HIERARCHY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/cache_config.hh"
#include "mem/set_assoc_cache.hh"

namespace capart
{

/** Which level serviced a demand access. */
enum class ServiceLevel
{
    L1,
    L2,
    LLC,
    Memory
};

/** Everything the timing/energy models need to know about one access. */
struct HierarchyOutcome
{
    ServiceLevel servedBy = ServiceLevel::L1;
    /** Demand or prefetch lines fetched from DRAM by this operation. */
    unsigned dramReads = 0;
    /** Dirty lines pushed to DRAM by evictions this operation caused. */
    unsigned dramWrites = 0;
    /** The access (or fill) reached the LLC lookup path. */
    bool llcAccess = false;
};

/**
 * Private L1/L2 per core plus the shared partitionable LLC.
 *
 * Partition slots are an LLC-wide namespace (the co-scheduler maps one
 * slot per application); L1/L2 are never partitioned, matching the
 * hardware.
 */
class CacheHierarchy
{
  public:
    CacheHierarchy(const HierarchyConfig &cfg, unsigned num_cores,
                   std::uint64_t seed = 1);

    /** Demand load/store from @p core charged to LLC partition @p slot. */
    HierarchyOutcome access(CoreId core, unsigned slot, Addr byte_addr,
                            bool write);

    /** DCU prefetch: pull @p line into @p core's L1 (and LLC, inclusive). */
    HierarchyOutcome prefetchIntoL1(CoreId core, unsigned slot, Addr line);

    /** MLC prefetch: pull @p line into @p core's L2 (and LLC, inclusive). */
    HierarchyOutcome prefetchIntoL2(CoreId core, unsigned slot, Addr line);

    /** Install an LLC partition way mask (never flushes; §2.1). */
    void setLlcPartition(unsigned slot, WayMask mask);
    WayMask llcPartition(unsigned slot) const;

    SetAssocCache &llc() { return *llc_; }
    const SetAssocCache &llc() const { return *llc_; }
    SetAssocCache &l1(CoreId core) { return *l1_.at(core); }
    SetAssocCache &l2(CoreId core) { return *l2_.at(core); }

    unsigned numCores() const { return static_cast<unsigned>(l1_.size()); }
    const HierarchyConfig &config() const { return cfg_; }

    /** Load-to-use latency of @p level in core cycles. */
    Cycles latency(ServiceLevel level, Cycles memLatency) const;

  private:
    /** Writeback a dirty line from an L1 into its L2 (cascades outward). */
    void writebackToL2(CoreId core, unsigned slot, Addr line,
                       HierarchyOutcome &out);

    /** Writeback a dirty line from @p core's L2 into the LLC. */
    void writebackToLlc(CoreId core, unsigned slot, Addr line,
                        HierarchyOutcome &out);

    /** Handle an LLC eviction: back-invalidate inner copies, count WBs. */
    void handleLlcEviction(const CacheAccessResult &res,
                           HierarchyOutcome &out);

    /** Ensure @p line is resident in the LLC (fill path for prefetches). */
    void ensureInLlc(CoreId core, unsigned slot, Addr line,
                     HierarchyOutcome &out);

    HierarchyConfig cfg_;
    std::vector<std::unique_ptr<SetAssocCache>> l1_;
    std::vector<std::unique_ptr<SetAssocCache>> l2_;
    std::unique_ptr<SetAssocCache> llc_;
};

} // namespace capart

#endif // CAPART_MEM_HIERARCHY_HH
