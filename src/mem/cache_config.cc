#include "mem/cache_config.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace capart
{

namespace
{

/** Engine named by CAPART_CACHE_ENGINE ("legacy"/"fast"), else Fast. */
CacheEngine
engineFromEnv()
{
    const char *env = std::getenv("CAPART_CACHE_ENGINE");
    if (env && std::strcmp(env, "legacy") == 0)
        return CacheEngine::Legacy;
    return CacheEngine::Fast;
}

/** Atomic so sweep worker threads may construct caches concurrently. */
std::atomic<CacheEngine> g_default_engine{CacheEngine::Auto};

} // namespace

CacheEngine
defaultCacheEngine()
{
    CacheEngine e = g_default_engine.load(std::memory_order_relaxed);
    if (e == CacheEngine::Auto) {
        e = engineFromEnv();
        g_default_engine.store(e, std::memory_order_relaxed);
    }
    return e;
}

void
setDefaultCacheEngine(CacheEngine engine)
{
    g_default_engine.store(engine == CacheEngine::Auto ? engineFromEnv()
                                                       : engine,
                           std::memory_order_relaxed);
}

HierarchyConfig
HierarchyConfig::sandyBridge()
{
    HierarchyConfig cfg;

    cfg.l1.name = "l1d";
    cfg.l1.sizeBytes = kib(32);
    cfg.l1.ways = 8;
    cfg.l1.repl = ReplPolicy::LRU;
    cfg.l1.index = IndexFn::Modulo;
    cfg.l1.inclusive = false;
    cfg.l1.partitionSlots = 0;

    cfg.l2.name = "l2";
    cfg.l2.sizeBytes = kib(256);
    cfg.l2.ways = 8;
    cfg.l2.repl = ReplPolicy::BitPLRU;
    cfg.l2.index = IndexFn::Modulo;
    cfg.l2.inclusive = false;
    cfg.l2.partitionSlots = 0;

    cfg.llc.name = "llc";
    cfg.llc.sizeBytes = mib(6);
    cfg.llc.ways = 12;
    cfg.llc.repl = ReplPolicy::BitPLRU;
    cfg.llc.index = IndexFn::Hashed;
    cfg.llc.inclusive = true;
    cfg.llc.partitionSlots = 16;

    return cfg;
}

} // namespace capart
