/**
 * @file
 * Way-allocation masks — the paper's partitioning mechanism (§2.1).
 *
 * Each core (here: each partition slot) is assigned a subset of the LLC's
 * ways. Allocations may be private, fully shared, or overlapping. A core
 * hits on data in *any* way but may only choose replacement victims within
 * its own ways, and remasking never flushes data.
 */

#ifndef CAPART_MEM_WAY_MASK_HH
#define CAPART_MEM_WAY_MASK_HH

#include <bit>
#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace capart
{

/** A bitmask over cache ways (bit i set == way i replaceable). */
class WayMask
{
  public:
    /** Empty mask (no ways); invalid to install, useful as a builder. */
    constexpr WayMask() = default;

    /** Mask from raw bits. */
    constexpr explicit WayMask(std::uint32_t bits) : bits_(bits) {}

    /** Mask covering all @p ways ways. */
    static constexpr WayMask
    all(unsigned ways)
    {
        return WayMask((ways >= 32) ? 0xffffffffu : ((1u << ways) - 1u));
    }

    /**
     * Contiguous range of @p count ways starting at @p first — the shape
     * static fair/biased policies install.
     */
    static WayMask
    range(unsigned first, unsigned count)
    {
        capart_assert(count > 0 && first + count <= 32);
        const std::uint32_t base = (count >= 32)
            ? 0xffffffffu
            : ((1u << count) - 1u);
        return WayMask(base << first);
    }

    constexpr std::uint32_t bits() const { return bits_; }
    constexpr bool empty() const { return bits_ == 0; }
    unsigned count() const { return std::popcount(bits_); }
    constexpr bool contains(unsigned way) const
    {
        return (bits_ >> way) & 1u;
    }

    constexpr bool operator==(const WayMask &o) const = default;

    constexpr WayMask
    operator|(const WayMask &o) const
    {
        return WayMask(bits_ | o.bits_);
    }

    constexpr WayMask
    operator&(const WayMask &o) const
    {
        return WayMask(bits_ & o.bits_);
    }

    /** e.g. "0b000000111111" for the low 6 of 12 ways. */
    std::string
    str(unsigned ways = 12) const
    {
        std::string s = "0b";
        for (unsigned i = ways; i-- > 0;)
            s += contains(i) ? '1' : '0';
        return s;
    }

  private:
    std::uint32_t bits_ = 0;
};

} // namespace capart

#endif // CAPART_MEM_WAY_MASK_HH
