/**
 * @file
 * Precomputed traversal tables for mask-restricted tree-PLRU.
 *
 * A tree-PLRU victim walk descends a binary tree of direction bits.
 * Partitioning (§2.1) restricts victims to the accessor's way mask, so
 * the walk must avoid subtrees that contain no allowed way. Instead of
 * scanning leaves at every node, we precompute — once per installed
 * way mask — a per-node pair of "subtree contains an allowed way"
 * bits. The descent then needs no data-dependent branches:
 *
 *     want = (state >> node) & 1          — where the PLRU bits point
 *     ok   = (table[node] >> want) & 1    — is that side allowed?
 *     node = 2*node + (want ^ (ok ^ 1))   — flip direction iff not
 *
 * Tables are keyed by the raw way-mask bits (up to 20 ways on the
 * paper's platforms; anything ≤ 32 works). Non-power-of-two
 * associativities pad the leaf level to std::bit_ceil(ways); padding
 * leaves are never allowed because masks are confined to real ways.
 */

#ifndef CAPART_MEM_PLRU_TABLES_HH
#define CAPART_MEM_PLRU_TABLES_HH

#include <bit>
#include <cstdint>

namespace capart
{

/** Upper bound on padded leaves (ways ≤ 32 ⇒ bit_ceil ≤ 32). */
inline constexpr unsigned kPlruMaxLeaves = 32;

/**
 * One mask's traversal table. node[n] (internal nodes are heap-indexed
 * 1..leaves-1) holds bit 0 = left subtree has an allowed way, bit 1 =
 * right subtree has one. node[0] is unused padding.
 */
struct PlruMaskTable
{
    std::uint8_t node[kPlruMaxLeaves] = {};
};

/** Padded leaf count of a @p ways-associative tree (power of two). */
inline constexpr unsigned
plruLeaves(unsigned ways)
{
    return ways <= 1 ? 1u : std::bit_ceil(ways);
}

/** Depth of the direction-bit tree (victim walk trip count). */
inline constexpr unsigned
plruLevels(unsigned ways)
{
    return static_cast<unsigned>(std::countr_zero(plruLeaves(ways)));
}

/** Build the traversal table for @p maskBits over @p ways ways. */
PlruMaskTable buildPlruMaskTable(unsigned ways, std::uint32_t maskBits);

} // namespace capart

#endif // CAPART_MEM_PLRU_TABLES_HH
