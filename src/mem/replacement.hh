/**
 * @file
 * Per-set replacement-state machines.
 *
 * All policies implement victim selection *restricted to a way mask*,
 * which is exactly how the paper's hardware implements partitioning:
 * the replacement algorithm is modified, nothing else (§2.1).
 */

#ifndef CAPART_MEM_REPLACEMENT_HH
#define CAPART_MEM_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "mem/cache_config.hh"
#include "mem/plru_tables.hh"
#include "mem/way_mask.hh"

namespace capart
{

/**
 * Replacement state for every set of one cache. Concrete policies keep
 * their own compact per-set arrays.
 */
class ReplacementState
{
  public:
    virtual ~ReplacementState() = default;

    /** Record a use (hit or fill) of @p way in @p set. */
    virtual void touch(std::uint64_t set, unsigned way) = 0;

    /**
     * Pick a victim way within @p allowed for @p set. @p valid marks ways
     * currently holding data; invalid allowed ways are preferred.
     * @return the chosen way index.
     */
    virtual unsigned victim(std::uint64_t set, WayMask allowed,
                            std::uint32_t valid) = 0;

    /** Forget @p way in @p set (back-invalidation). */
    virtual void invalidate(std::uint64_t set, unsigned way) = 0;

    /** Factory for the policy named in @p cfg. */
    static std::unique_ptr<ReplacementState> create(const CacheConfig &cfg,
                                                    std::uint64_t seed);

  protected:
    /** First allowed-but-invalid way, or -1 if none. */
    static int
    firstInvalid(WayMask allowed, std::uint32_t valid)
    {
        const std::uint32_t candidates = allowed.bits() & ~valid;
        if (candidates == 0)
            return -1;
        return std::countr_zero(candidates);
    }
};

/** Exact LRU via per-set age counters (O(ways) per operation). */
class LruState : public ReplacementState
{
  public:
    LruState(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, WayMask allowed,
                    std::uint32_t valid) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    unsigned ways_;
    /** age[set*ways + way]; larger == more recently used. */
    std::vector<std::uint32_t> age_;
    std::vector<std::uint32_t> clock_;
};

/**
 * Bit-PLRU: one MRU bit per way; victim is the first allowed way with a
 * clear bit; when all allowed bits saturate they are cleared. This is the
 * flavour of pseudo-LRU that, combined with hashed indexing, removes the
 * sharp working-set knees the paper observed missing on real hardware.
 */
class BitPlruState : public ReplacementState
{
  public:
    BitPlruState(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, WayMask allowed,
                    std::uint32_t valid) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    unsigned ways_;
    std::vector<std::uint32_t> mru_; //!< one bitmask per set
};

/** NRU: like bit-PLRU but bits clear only when no victim is found. */
class NruState : public ReplacementState
{
  public:
    NruState(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, WayMask allowed,
                    std::uint32_t valid) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    unsigned ways_;
    std::vector<std::uint32_t> ref_;
};

/**
 * Tree-PLRU: one direction bit per internal node of a binary tree over
 * the (power-of-two padded) ways. A touch points every node on the
 * leaf's root path away from it; the victim walk follows the bits,
 * detouring around subtrees that contain no allowed way. This legacy
 * implementation rescans leaves at each node; the fast engine uses the
 * precomputed per-mask tables of mem/plru_tables.hh and must pick
 * bit-identical victims (tests/test_mem_differential.cc enforces it).
 */
class TreePlruState : public ReplacementState
{
  public:
    TreePlruState(std::uint64_t sets, unsigned ways);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, WayMask allowed,
                    std::uint32_t valid) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    /** Any allowed way among the leaves under @p node? */
    bool subtreeHasAllowed(unsigned node, WayMask allowed) const;

    unsigned ways_;
    unsigned leaves_;  //!< std::bit_ceil(ways)
    unsigned levels_;  //!< log2(leaves)
    /** Bit n = victim direction at heap node n (0 left, 1 right). */
    std::vector<std::uint32_t> tree_;
};

/** Uniform-random victim among allowed ways. */
class RandomState : public ReplacementState
{
  public:
    RandomState(unsigned ways, std::uint64_t seed);

    void touch(std::uint64_t set, unsigned way) override;
    unsigned victim(std::uint64_t set, WayMask allowed,
                    std::uint32_t valid) override;
    void invalidate(std::uint64_t set, unsigned way) override;

  private:
    Rng rng_;
};

} // namespace capart

#endif // CAPART_MEM_REPLACEMENT_HH
