/**
 * @file
 * A way-partitionable set-associative cache model.
 *
 * Partitioning follows the paper's mechanism exactly (§2.1): each
 * partition slot owns a @ref WayMask; lookups hit on data in any way;
 * only victim selection is restricted to the accessor's mask; and
 * changing a mask never flushes resident data.
 */

#ifndef CAPART_MEM_SET_ASSOC_CACHE_HH
#define CAPART_MEM_SET_ASSOC_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hh"
#include "mem/cache_config.hh"
#include "mem/replacement.hh"
#include "mem/way_mask.hh"

namespace capart
{

/** What a cache access did. */
struct CacheAccessResult
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool evicted = false;
    /** Line address of the evicted victim (valid iff evicted). */
    Addr victimLine = 0;
    /** The victim was dirty and must be written back outward. */
    bool victimDirty = false;
};

/** Result of a probe-invalidate (inclusive back-invalidation). */
struct InvalidateResult
{
    bool wasPresent = false;
    bool wasDirty = false;
};

/** Per-partition-slot hit/miss accounting. */
struct PartitionStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;

    std::uint64_t misses() const { return accesses - hits; }
};

/**
 * A single cache level: tag array, per-set replacement state, and
 * optional partition way masks.
 */
class SetAssocCache
{
  public:
    /**
     * @param cfg   geometry/policy; sets() must be a power of two.
     * @param seed  RNG seed (only the Random policy consumes it).
     */
    explicit SetAssocCache(const CacheConfig &cfg, std::uint64_t seed = 1);

    /**
     * Demand access (read or write) by partition @p slot.
     * Misses allocate; the victim, if any, is reported for inclusive
     * back-invalidation and dirty writeback by the caller.
     */
    CacheAccessResult access(Addr line, bool write, unsigned slot = 0);

    /**
     * Install @p line without demand-counting it (prefetch fill or
     * writeback allocation). Replacement is still mask-restricted.
     */
    CacheAccessResult fill(Addr line, bool dirty, unsigned slot = 0);

    /** True if @p line is resident (no state update). */
    bool probe(Addr line) const;

    /**
     * Way currently holding @p line, or -1 if absent (no state
     * update). Lets differential tests assert that a victim chosen
     * for a slot lay inside that slot's way mask.
     */
    int wayOf(Addr line) const { return findWay(setIndex(line), line); }

    /** Mark a resident line dirty (inner writeback hit); no-op if absent. */
    bool markDirty(Addr line);

    /** Refresh replacement recency of a resident line; no-op if absent. */
    bool touchLine(Addr line);

    /** Remove @p line if present (back-invalidation). */
    InvalidateResult invalidate(Addr line);

    /** Install a partition mask; data is deliberately not flushed. */
    void setPartitionMask(unsigned slot, WayMask mask);

    WayMask partitionMask(unsigned slot) const;

    const CacheConfig &config() const { return cfg_; }
    std::uint64_t sets() const { return sets_; }

    const PartitionStats &slotStats(unsigned slot) const;
    /** Aggregate over all slots. */
    PartitionStats totalStats() const;
    void resetStats();

    /** Number of resident lines whose set index falls in this cache. */
    std::uint64_t residentLines() const;

    /**
     * Visit every resident line as (lineAddr, way). Read-only walk of
     * the tag array in (set, way) order; the attribution sampler uses
     * it to count occupancy per owning application.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (std::uint64_t set = 0; set < sets_; ++set) {
            const std::uint32_t valid = valid_[set];
            if (!valid)
                continue;
            for (unsigned way = 0; way < ways_; ++way) {
                if (valid & (1u << way))
                    fn(tags_[set * ways_ + way] - 1, way);
            }
        }
    }

    /** Set index for @p line under this cache's indexing function. */
    std::uint64_t setIndex(Addr line) const;

  private:
    /** Way of @p line within @p set, or -1. */
    int findWay(std::uint64_t set, Addr line) const;

    CacheAccessResult insert(std::uint64_t set, Addr line, bool dirty,
                             unsigned slot);

    CacheConfig cfg_;
    std::uint64_t sets_;
    unsigned ways_;

    /** tag[set*ways+way] = lineAddr+1; 0 means invalid. */
    std::vector<std::uint64_t> tags_;
    std::vector<std::uint32_t> valid_; //!< per-set valid bitmask
    std::vector<std::uint32_t> dirty_; //!< per-set dirty bitmask

    std::unique_ptr<ReplacementState> repl_;
    std::vector<WayMask> masks_;
    std::vector<PartitionStats> stats_;
};

} // namespace capart

#endif // CAPART_MEM_SET_ASSOC_CACHE_HH
