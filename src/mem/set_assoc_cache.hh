/**
 * @file
 * A way-partitionable set-associative cache model.
 *
 * Partitioning follows the paper's mechanism exactly (§2.1): each
 * partition slot owns a @ref WayMask; lookups hit on data in any way;
 * only victim selection is restricted to the accessor's mask; and
 * changing a mask never flushes resident data.
 *
 * Two implementations share this class (DESIGN.md "fast-path layout"):
 *
 *  - the **fast engine** (default) keeps all state in flat contiguous
 *    planes — tags, inserter/owner ids, and per-policy replacement
 *    bits — and dispatches replacement with a switch on a member enum,
 *    so the entire access path inlines into callers with no virtual
 *    calls. Tree-PLRU victims descend precomputed per-mask traversal
 *    tables (mem/plru_tables.hh) branch-free.
 *  - the **legacy engine** is the original virtual-dispatch
 *    @ref ReplacementState machinery, kept as a bit-exact reference:
 *    tests/test_mem_differential.cc and the golden suite prove both
 *    engines produce identical hit/miss/victim streams and identical
 *    sweep results before the legacy path may be deleted.
 *
 * Selection: CacheConfig::engine, resolving Auto through
 * defaultCacheEngine() (overridable via setDefaultCacheEngine() or
 * `CAPART_CACHE_ENGINE=legacy`).
 */

#ifndef CAPART_MEM_SET_ASSOC_CACHE_HH
#define CAPART_MEM_SET_ASSOC_CACHE_HH

#include <bit>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "mem/cache_config.hh"
#include "mem/plru_tables.hh"
#include "mem/replacement.hh"
#include "mem/way_mask.hh"

namespace capart
{

/** What a cache access did. */
struct CacheAccessResult
{
    bool hit = false;
    /** A valid line was evicted to make room. */
    bool evicted = false;
    /** Line address of the evicted victim (valid iff evicted). */
    Addr victimLine = 0;
    /** The victim was dirty and must be written back outward. */
    bool victimDirty = false;
    /**
     * Inner-presence (core-valid) mask of the evicted victim: bit c set
     * means core c's private caches may hold a copy that must be
     * back-invalidated. Maintained only when tracksInnerPresence();
     * always a superset of the true holders. Meaningful iff `evicted`.
     */
    std::uint64_t victimInner = 0;
    /** Set index of the accessed/filled line. */
    std::uint64_t set = 0;
    /** Way now holding the line (hit or fresh insert); -1 if unknown. */
    std::int32_t way = -1;
};

/** Result of a probe-invalidate (inclusive back-invalidation). */
struct InvalidateResult
{
    bool wasPresent = false;
    bool wasDirty = false;
};

/** Per-partition-slot hit/miss accounting. */
struct PartitionStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;

    std::uint64_t misses() const { return accesses - hits; }
};

namespace detail
{

/** splitmix64 finalizer; decorrelates set selection from line alignment. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
}

} // namespace detail

/**
 * A single cache level: tag array, per-set replacement state, and
 * optional partition way masks.
 */
class SetAssocCache
{
  public:
    /**
     * @param cfg   geometry/policy; sets() must be a power of two.
     * @param seed  RNG seed (only the Random policy consumes it).
     */
    explicit SetAssocCache(const CacheConfig &cfg, std::uint64_t seed = 1);

    /**
     * Demand access (read or write) by partition @p slot.
     * Misses allocate; the victim, if any, is reported for inclusive
     * back-invalidation and dirty writeback by the caller.
     */
    CacheAccessResult access(Addr line, bool write, unsigned slot = 0);

    /**
     * Install @p line without demand-counting it (prefetch fill or
     * writeback allocation). Replacement is still mask-restricted.
     */
    CacheAccessResult fill(Addr line, bool dirty, unsigned slot = 0);

    /** True if @p line is resident (no state update). */
    bool probe(Addr line) const;

    /**
     * Way currently holding @p line, or -1 if absent (no state
     * update). Lets differential tests assert that a victim chosen
     * for a slot lay inside that slot's way mask.
     */
    int wayOf(Addr line) const { return findWay(setIndex(line), line); }

    /**
     * Partition slot that inserted the resident @p line, or -1 if the
     * line is absent. Occupancy audits (property tests, future UCP
     * policies) read this owner plane; demand hits by other slots do
     * not transfer ownership.
     */
    int ownerOf(Addr line) const;

    /**
     * Directory upkeep for inclusive caches: record that core @p core's
     * private caches may now hold @p line (no-op if the line is absent
     * or presence is untracked). The mask is sticky until the entry is
     * evicted or invalidated, so it stays a superset of true holders —
     * exactly the core-valid bits an inclusive LLC keeps in hardware.
     */
    void
    noteInnerPresence(Addr line, unsigned core)
    {
        if (inner_.empty() || core >= 64)
            return;
        const std::uint64_t set = setIndex(line);
        const int way = findWay(set, line);
        if (way >= 0)
            inner_[set * ways_ + way] |= 1ull << core;
    }

    /**
     * O(1) directory upkeep when the caller already knows where the
     * line sits (from the CacheAccessResult of the access/fill that
     * located it) — skips the tag lookup noteInnerPresence() pays.
     */
    void
    noteInnerPresenceAt(std::uint64_t set, std::int32_t way, unsigned core)
    {
        if (inner_.empty() || way < 0 || core >= 64)
            return;
        inner_[set * ways_ + static_cast<unsigned>(way)] |= 1ull << core;
    }

    /** Inner-presence directory allocated (inclusive caches only). */
    bool tracksInnerPresence() const { return !inner_.empty(); }

    /** Mark a resident line dirty (inner writeback hit); no-op if absent. */
    bool markDirty(Addr line);

    /** Refresh replacement recency of a resident line; no-op if absent. */
    bool touchLine(Addr line) { return touchLineWay(line) >= 0; }

    /** As touchLine, but returns the way touched (-1 if absent). */
    int touchLineWay(Addr line);

    /** Remove @p line if present (back-invalidation). */
    InvalidateResult invalidate(Addr line);

    /** Install a partition mask; data is deliberately not flushed. */
    void setPartitionMask(unsigned slot, WayMask mask);

    WayMask partitionMask(unsigned slot) const;

    const CacheConfig &config() const { return cfg_; }
    std::uint64_t sets() const { return sets_; }

    /** Which implementation services this cache (never Auto). */
    CacheEngine engine() const
    {
        return legacy_ ? CacheEngine::Legacy : CacheEngine::Fast;
    }

    const PartitionStats &slotStats(unsigned slot) const;
    /** Aggregate over all slots. */
    PartitionStats totalStats() const;
    void resetStats();

    /** Number of resident lines whose set index falls in this cache. */
    std::uint64_t residentLines() const;

    /**
     * Visit every resident line as (lineAddr, way). Read-only walk of
     * the tag array in (set, way) order; the attribution sampler uses
     * it to count occupancy per owning application.
     */
    template <typename Fn>
    void
    forEachResident(Fn &&fn) const
    {
        for (std::uint64_t set = 0; set < sets_; ++set) {
            const std::uint32_t valid = valid_[set];
            if (!valid)
                continue;
            for (unsigned way = 0; way < ways_; ++way) {
                if (valid & (1u << way))
                    fn(tags_[set * ways_ + way] - 1, way);
            }
        }
    }

    /** Set index for @p line under this cache's indexing function. */
    std::uint64_t
    setIndex(Addr line) const
    {
        if (hashed_)
            return detail::mix64(line) & (sets_ - 1);
        return line & (sets_ - 1);
    }

  private:
    /** Way of @p line within @p set, or -1. */
    int
    findWay(std::uint64_t set, Addr line) const
    {
        const std::uint64_t tag = line + 1;
        const std::uint64_t base = set * ways_;
        std::uint32_t v = valid_[set];
        while (v) {
            const unsigned w = static_cast<unsigned>(std::countr_zero(v));
            if (tags_[base + w] == tag)
                return static_cast<int>(w);
            v &= v - 1;
        }
        return -1;
    }

    /** Fast-engine recency update; bit-identical to the legacy states. */
    void
    replTouch(std::uint64_t set, unsigned way)
    {
        switch (policy_) {
          case ReplPolicy::LRU:
            age_[set * ways_ + way] = ++clock_[set];
            return;
          case ReplPolicy::BitPLRU: {
            std::uint32_t bits = rbits_[set] | (1u << way);
            // Saturation: when every way is marked MRU, restart the
            // epoch but keep the just-touched way marked.
            if ((bits & fullMask_) == fullMask_)
                bits = (1u << way);
            rbits_[set] = bits;
            return;
          }
          case ReplPolicy::NRU:
            rbits_[set] |= (1u << way);
            return;
          case ReplPolicy::Random:
            return;
          case ReplPolicy::TreePLRU: {
            std::uint32_t state = tree_[set];
            unsigned node = leaves_ + way;
            while (node > 1) {
                const unsigned parent = node >> 1;
                // Point the parent away from the child we came from.
                const std::uint32_t away = (node & 1u) ^ 1u;
                state = (state & ~(1u << parent)) | (away << parent);
                node = parent;
            }
            tree_[set] = state;
            return;
          }
        }
    }

    /** Fast-engine victim inside @p slot's mask (invalid ways first). */
    unsigned
    replVictim(std::uint64_t set, unsigned slot)
    {
        const std::uint32_t allowed = masks_[slot].bits();
        const std::uint32_t invalid = allowed & ~valid_[set];
        if (invalid != 0)
            return static_cast<unsigned>(std::countr_zero(invalid));

        switch (policy_) {
          case ReplPolicy::LRU: {
            const std::uint64_t base = set * ways_;
            unsigned best = 0;
            std::uint32_t best_age =
                std::numeric_limits<std::uint32_t>::max();
            bool found = false;
            for (unsigned w = 0; w < ways_; ++w) {
                if (!((allowed >> w) & 1u))
                    continue;
                const std::uint32_t a = age_[base + w];
                if (!found || a < best_age) {
                    best = w;
                    best_age = a;
                    found = true;
                }
            }
            capart_assert(found);
            return best;
          }
          case ReplPolicy::BitPLRU: {
            const std::uint32_t clear = allowed & ~rbits_[set];
            if (clear != 0)
                return static_cast<unsigned>(std::countr_zero(clear));
            // Every allowed way is MRU-marked: treat the mask as one
            // epoch and take the lowest allowed way.
            rbits_[set] &= ~allowed;
            return static_cast<unsigned>(std::countr_zero(allowed));
          }
          case ReplPolicy::NRU: {
            std::uint32_t clear = allowed & ~rbits_[set];
            if (clear == 0) {
                rbits_[set] &= ~allowed;
                clear = allowed;
            }
            return static_cast<unsigned>(std::countr_zero(clear));
          }
          case ReplPolicy::Random: {
            const unsigned n =
                static_cast<unsigned>(std::popcount(allowed));
            unsigned pick = static_cast<unsigned>(rng_.below(n));
            std::uint32_t bits = allowed;
            while (pick--)
                bits &= bits - 1;
            return static_cast<unsigned>(std::countr_zero(bits));
          }
          case ReplPolicy::TreePLRU: {
            // Branch-free descent over the slot's precomputed table:
            // follow the direction bits, flipping only where the
            // pointed-to subtree holds no allowed way.
            const PlruMaskTable &tbl = slotTables_[slot];
            const std::uint32_t state = tree_[set];
            unsigned node = 1;
            for (unsigned lvl = 0; lvl < levels_; ++lvl) {
                const unsigned want = (state >> node) & 1u;
                const unsigned ok = (tbl.node[node] >> want) & 1u;
                node = 2 * node + (want ^ (ok ^ 1u));
            }
            return node - leaves_;
          }
        }
        capart_panic("unknown replacement policy");
    }

    CacheAccessResult
    insert(std::uint64_t set, Addr line, bool dirty, unsigned slot)
    {
        CacheAccessResult res;
        res.set = set;
        capart_assert(!masks_[slot].empty());
        const unsigned victim = legacy_
            ? repl_->victim(set, masks_[slot], valid_[set])
            : replVictim(set, slot);
        capart_assert(victim < ways_);
        capart_assert(masks_[slot].contains(victim));
        res.way = static_cast<std::int32_t>(victim);

        const std::uint64_t idx = set * ways_ + victim;
        const std::uint32_t bit = 1u << victim;
        if (valid_[set] & bit) {
            res.evicted = true;
            res.victimLine = tags_[idx] - 1;
            res.victimDirty = (dirty_[set] & bit) != 0;
        }
        if (!inner_.empty()) {
            res.victimInner = inner_[idx];
            inner_[idx] = 0; // new line starts with no inner copies
        }

        tags_[idx] = line + 1;
        owner_[idx] = static_cast<std::uint8_t>(slot);
        valid_[set] |= bit;
        if (dirty)
            dirty_[set] |= bit;
        else
            dirty_[set] &= ~bit;
        if (legacy_)
            repl_->touch(set, victim);
        else
            replTouch(set, victim);
        return res;
    }

    CacheConfig cfg_;
    std::uint64_t sets_;
    unsigned ways_;
    bool hashed_;
    bool legacy_;
    ReplPolicy policy_;

    // ---- SoA planes (fast-path layout; see DESIGN.md) ---------------
    /** tag[set*ways+way] = lineAddr+1; 0 means invalid. */
    std::vector<std::uint64_t> tags_;
    /** owner[set*ways+way] = partition slot that inserted the line. */
    std::vector<std::uint8_t> owner_;
    /** inner[set*ways+way] = core-valid mask (inclusive caches only). */
    std::vector<std::uint64_t> inner_;
    std::vector<std::uint32_t> valid_; //!< per-set valid bitmask
    std::vector<std::uint32_t> dirty_; //!< per-set dirty bitmask

    // ---- fast-engine replacement planes (policy-dependent) ----------
    std::vector<std::uint32_t> age_;   //!< LRU: age[set*ways+way]
    std::vector<std::uint32_t> clock_; //!< LRU: per-set tick counter
    std::vector<std::uint32_t> rbits_; //!< BitPLRU mru / NRU ref bits
    std::vector<std::uint32_t> tree_;  //!< TreePLRU direction bits
    /** TreePLRU traversal table per partition slot (mask-derived). */
    std::vector<PlruMaskTable> slotTables_;
    unsigned leaves_ = 1;   //!< TreePLRU padded leaf count
    unsigned levels_ = 0;   //!< TreePLRU tree depth
    std::uint32_t fullMask_; //!< all `ways_` bits set
    Rng rng_;                //!< Random policy only

    /** Legacy engine (engine() == Legacy); null on the fast path. */
    std::unique_ptr<ReplacementState> repl_;

    std::vector<WayMask> masks_;
    std::vector<PartitionStats> stats_;
};

inline CacheAccessResult
SetAssocCache::access(Addr line, bool write, unsigned slot)
{
    capart_assert(slot < stats_.size());
    ++stats_[slot].accesses;

    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way >= 0) {
        ++stats_[slot].hits;
        if (legacy_)
            repl_->touch(set, static_cast<unsigned>(way));
        else
            replTouch(set, static_cast<unsigned>(way));
        if (write)
            dirty_[set] |= (1u << way);
        return CacheAccessResult{.hit = true, .set = set, .way = way};
    }
    return insert(set, line, write, slot);
}

inline CacheAccessResult
SetAssocCache::fill(Addr line, bool dirty, unsigned slot)
{
    capart_assert(slot < masks_.size());
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way >= 0) {
        if (legacy_)
            repl_->touch(set, static_cast<unsigned>(way));
        else
            replTouch(set, static_cast<unsigned>(way));
        if (dirty)
            dirty_[set] |= (1u << way);
        return CacheAccessResult{.hit = true, .set = set, .way = way};
    }
    return insert(set, line, dirty, slot);
}

inline int
SetAssocCache::touchLineWay(Addr line)
{
    const std::uint64_t set = setIndex(line);
    const int way = findWay(set, line);
    if (way < 0)
        return -1;
    if (legacy_)
        repl_->touch(set, static_cast<unsigned>(way));
    else
        replTouch(set, static_cast<unsigned>(way));
    return way;
}

inline bool
SetAssocCache::probe(Addr line) const
{
    return findWay(setIndex(line), line) >= 0;
}

} // namespace capart

#endif // CAPART_MEM_SET_ASSOC_CACHE_HH
