#include "mem/replacement.hh"

#include <bit>
#include <limits>

#include "common/logging.hh"

namespace capart
{

std::unique_ptr<ReplacementState>
ReplacementState::create(const CacheConfig &cfg, std::uint64_t seed)
{
    const std::uint64_t sets = cfg.sets();
    switch (cfg.repl) {
      case ReplPolicy::LRU:
        return std::make_unique<LruState>(sets, cfg.ways);
      case ReplPolicy::BitPLRU:
        return std::make_unique<BitPlruState>(sets, cfg.ways);
      case ReplPolicy::NRU:
        return std::make_unique<NruState>(sets, cfg.ways);
      case ReplPolicy::Random:
        return std::make_unique<RandomState>(cfg.ways, seed);
      case ReplPolicy::TreePLRU:
        return std::make_unique<TreePlruState>(sets, cfg.ways);
    }
    capart_panic("unknown replacement policy");
}

// ---------------------------------------------------------------- LRU --

LruState::LruState(std::uint64_t sets, unsigned ways)
    : ways_(ways), age_(sets * ways, 0), clock_(sets, 0)
{
}

void
LruState::touch(std::uint64_t set, unsigned way)
{
    age_[set * ways_ + way] = ++clock_[set];
}

unsigned
LruState::victim(std::uint64_t set, WayMask allowed, std::uint32_t valid)
{
    capart_assert(!allowed.empty());
    const int inv = firstInvalid(allowed, valid);
    if (inv >= 0)
        return static_cast<unsigned>(inv);

    unsigned best = 0;
    std::uint32_t best_age = std::numeric_limits<std::uint32_t>::max();
    bool found = false;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!allowed.contains(w))
            continue;
        const std::uint32_t a = age_[set * ways_ + w];
        if (!found || a < best_age) {
            best = w;
            best_age = a;
            found = true;
        }
    }
    capart_assert(found);
    return best;
}

void
LruState::invalidate(std::uint64_t set, unsigned way)
{
    age_[set * ways_ + way] = 0;
}

// ----------------------------------------------------------- bit-PLRU --

BitPlruState::BitPlruState(std::uint64_t sets, unsigned ways)
    : ways_(ways), mru_(sets, 0)
{
    capart_assert(ways <= 32);
}

void
BitPlruState::touch(std::uint64_t set, unsigned way)
{
    std::uint32_t &bits = mru_[set];
    bits |= (1u << way);
    // Saturation: when every way is marked MRU, restart the epoch but
    // keep the just-touched way marked.
    const std::uint32_t full = (ways_ >= 32) ? ~0u : ((1u << ways_) - 1u);
    if ((bits & full) == full)
        bits = (1u << way);
}

unsigned
BitPlruState::victim(std::uint64_t set, WayMask allowed, std::uint32_t valid)
{
    capart_assert(!allowed.empty());
    const int inv = firstInvalid(allowed, valid);
    if (inv >= 0)
        return static_cast<unsigned>(inv);

    const std::uint32_t clear = allowed.bits() & ~mru_[set];
    if (clear != 0)
        return static_cast<unsigned>(std::countr_zero(clear));
    // Every allowed way is MRU-marked: treat the mask as one epoch and
    // take the lowest allowed way (hardware clears and picks way 0).
    mru_[set] &= ~allowed.bits();
    return static_cast<unsigned>(std::countr_zero(allowed.bits()));
}

void
BitPlruState::invalidate(std::uint64_t set, unsigned way)
{
    mru_[set] &= ~(1u << way);
}

// ---------------------------------------------------------------- NRU --

NruState::NruState(std::uint64_t sets, unsigned ways)
    : ways_(ways), ref_(sets, 0)
{
    capart_assert(ways <= 32);
}

void
NruState::touch(std::uint64_t set, unsigned way)
{
    ref_[set] |= (1u << way);
}

unsigned
NruState::victim(std::uint64_t set, WayMask allowed, std::uint32_t valid)
{
    capart_assert(!allowed.empty());
    const int inv = firstInvalid(allowed, valid);
    if (inv >= 0)
        return static_cast<unsigned>(inv);

    std::uint32_t clear = allowed.bits() & ~ref_[set];
    if (clear == 0) {
        // No not-recently-used candidate: clear reference bits (the NRU
        // "second chance" sweep) and retry.
        ref_[set] &= ~allowed.bits();
        clear = allowed.bits();
    }
    return static_cast<unsigned>(std::countr_zero(clear));
}

void
NruState::invalidate(std::uint64_t set, unsigned way)
{
    ref_[set] &= ~(1u << way);
}

// ---------------------------------------------------------- tree-PLRU --

TreePlruState::TreePlruState(std::uint64_t sets, unsigned ways)
    : ways_(ways),
      leaves_(plruLeaves(ways)),
      levels_(plruLevels(ways)),
      tree_(sets, 0)
{
    capart_assert(ways >= 1 && ways <= 32);
}

void
TreePlruState::touch(std::uint64_t set, unsigned way)
{
    std::uint32_t state = tree_[set];
    unsigned node = leaves_ + way;
    while (node > 1) {
        const unsigned parent = node >> 1;
        // Point the parent away from the child we arrived from.
        const std::uint32_t away = (node & 1u) ^ 1u;
        state = (state & ~(1u << parent)) | (away << parent);
        node = parent;
    }
    tree_[set] = state;
}

bool
TreePlruState::subtreeHasAllowed(unsigned node, WayMask allowed) const
{
    if (node >= leaves_) {
        const unsigned way = node - leaves_;
        return way < ways_ && allowed.contains(way);
    }
    return subtreeHasAllowed(2 * node, allowed) ||
           subtreeHasAllowed(2 * node + 1, allowed);
}

unsigned
TreePlruState::victim(std::uint64_t set, WayMask allowed,
                      std::uint32_t valid)
{
    capart_assert(!allowed.empty());
    const int inv = firstInvalid(allowed, valid);
    if (inv >= 0)
        return static_cast<unsigned>(inv);

    const std::uint32_t state = tree_[set];
    unsigned node = 1;
    for (unsigned lvl = 0; lvl < levels_; ++lvl) {
        const unsigned want = (state >> node) & 1u;
        const unsigned dir = subtreeHasAllowed(2 * node + want, allowed)
            ? want
            : want ^ 1u;
        node = 2 * node + dir;
    }
    const unsigned way = node - leaves_;
    capart_assert(allowed.contains(way));
    return way;
}

void
TreePlruState::invalidate(std::uint64_t, unsigned)
{
    // Nothing to forget: victim() prefers invalid allowed ways before
    // consulting the tree, so stale direction bits are harmless.
}

// ------------------------------------------------------------- random --

RandomState::RandomState(unsigned ways, std::uint64_t seed)
    : rng_(seed)
{
    capart_assert(ways <= 32);
}

void
RandomState::touch(std::uint64_t, unsigned)
{
}

unsigned
RandomState::victim(std::uint64_t, WayMask allowed, std::uint32_t valid)
{
    capart_assert(!allowed.empty());
    const int inv = firstInvalid(allowed, valid);
    if (inv >= 0)
        return static_cast<unsigned>(inv);

    const unsigned n = allowed.count();
    unsigned pick = static_cast<unsigned>(rng_.below(n));
    std::uint32_t bits = allowed.bits();
    while (pick--)
        bits &= bits - 1; // drop lowest set bit
    return static_cast<unsigned>(std::countr_zero(bits));
}

void
RandomState::invalidate(std::uint64_t, unsigned)
{
}

} // namespace capart
