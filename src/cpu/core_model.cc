#include "cpu/core_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace capart
{

StallBreakdown
CoreTimingModel::quantumBreakdown(const QuantumCounts &q, double base_ipc,
                                  double mlp, bool smt_peer,
                                  const HierarchyLatencies &lat) const
{
    capart_assert(base_ipc > 0.0);
    capart_assert(mlp >= 1.0);

    StallBreakdown b;
    const double ipc =
        base_ipc * (smt_peer ? cfg_.smtFactor : 1.0);
    b.base = static_cast<double>(q.insts) / ipc;

    // Exposed fractions of on-chip hit latencies beyond the (hidden) L1.
    b.l2 = static_cast<double>(q.l2Hits) *
           static_cast<double>(lat.l2) * cfg_.l2Exposed;
    const double llc_latency =
        static_cast<double>(lat.llc + q.ringExtra);
    b.llc = static_cast<double>(q.llcHits) * llc_latency *
            cfg_.llcExposed;

    // DRAM misses overlap up to the workload's MLP (MSHR-capped).
    const double eff_mlp = std::clamp(mlp, 1.0, cfg_.maxMlp);
    const double miss_latency =
        llc_latency + static_cast<double>(q.memLatency);
    b.dram = static_cast<double>(q.llcMisses) * miss_latency / eff_mlp;
    return b;
}

Cycles
CoreTimingModel::quantumCycles(const QuantumCounts &q, double base_ipc,
                               double mlp, bool smt_peer,
                               const HierarchyLatencies &lat) const
{
    return totalCycles(quantumBreakdown(q, base_ipc, mlp, smt_peer, lat));
}

} // namespace capart
