/**
 * @file
 * Analytic out-of-order core timing model with SMT.
 *
 * The simulator advances each hardware thread in instruction quanta; this
 * model converts a quantum's event counts into cycles. The core is the
 * paper's quad-issue OoO Sandy Bridge core with two hyperthreads (§2.1):
 *
 *   cycles = insts / (baseIpc * smtFactor)
 *          + exposed L2 / LLC hit penalties
 *          + llcMisses * memLatency / MLP
 *
 * Out-of-order execution hides most L2 latency, some LLC latency, and
 * overlaps DRAM misses up to the workload's memory-level parallelism.
 */

#ifndef CAPART_CPU_CORE_MODEL_HH
#define CAPART_CPU_CORE_MODEL_HH

#include <cstdint>

#include "common/types.hh"
#include "common/units.hh"

namespace capart
{

/** Static core parameters. */
struct CpuConfig
{
    double freqHz = ghz(3.4);
    /**
     * Per-hyperthread throughput multiplier when the sibling hyperthread
     * is simultaneously active. 0.62 per thread yields the ~1.24x
     * combined SMT throughput typical of Sandy Bridge.
     */
    double smtFactor = 0.62;
    /** Fraction of L2 hit latency the OoO window cannot hide. */
    double l2Exposed = 0.35;
    /** Fraction of LLC hit latency the OoO window cannot hide. */
    double llcExposed = 0.65;
    /** Ceiling on per-thread MLP imposed by the MSHRs. */
    double maxMlp = 10.0;
};

/** Load-to-use latencies of the cache levels, in core cycles. */
struct HierarchyLatencies
{
    Cycles l1 = 4;
    Cycles l2 = 12;
    Cycles llc = 30;
};

/** Event counts for one executed quantum of one hardware thread. */
struct QuantumCounts
{
    Insts insts = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0; //!< serviced by DRAM
    /** Extra ring cycles per LLC-level access under current load. */
    Cycles ringExtra = 0;
    /** Effective DRAM latency under current load. */
    Cycles memLatency = 0;
};

/**
 * A quantum's cycles split by where the thread spent them.
 *
 * The four terms are exactly the four addends of the timing formula,
 * kept separate so the attribution sampler can report *where* a core's
 * cycles went. Summing them in declaration order — ((base + l2) + llc)
 * + dram — reproduces quantumCycles() bit for bit; that identity is
 * what keeps attribution free (see totalCycles()).
 */
struct StallBreakdown
{
    double base = 0.0; //!< compute: insts / effective IPC
    double l2 = 0.0;   //!< exposed L2 hit latency
    double llc = 0.0;  //!< exposed LLC hit latency (incl. ring)
    double dram = 0.0; //!< MLP-overlapped DRAM miss latency
};

/** Converts quantum event counts to cycles. */
class CoreTimingModel
{
  public:
    explicit CoreTimingModel(const CpuConfig &cfg = CpuConfig{})
        : cfg_(cfg)
    {
    }

    /**
     * Cycles consumed by a quantum.
     *
     * @param q         event counts.
     * @param base_ipc  the workload's compute IPC (all hits in L1).
     * @param mlp       the workload's achievable memory-level parallelism.
     * @param smt_peer  the sibling hyperthread was active concurrently.
     */
    Cycles quantumCycles(const QuantumCounts &q, double base_ipc,
                         double mlp, bool smt_peer,
                         const HierarchyLatencies &lat) const;

    /** The same computation with the four addends kept separate. */
    StallBreakdown quantumBreakdown(const QuantumCounts &q,
                                    double base_ipc, double mlp,
                                    bool smt_peer,
                                    const HierarchyLatencies &lat) const;

    /**
     * Collapse a breakdown into total cycles using the same floating
     * point association order as the historical single-accumulator
     * formula, so quantumCycles(q,...) ==
     * totalCycles(quantumBreakdown(q,...)) exactly.
     */
    static Cycles
    totalCycles(const StallBreakdown &b)
    {
        return static_cast<Cycles>(((b.base + b.l2) + b.llc) + b.dram);
    }

    Seconds
    cyclesToSeconds(Cycles c) const
    {
        return static_cast<double>(c) / cfg_.freqHz;
    }

    const CpuConfig &config() const { return cfg_; }

  private:
    CpuConfig cfg_;
};

} // namespace capart

#endif // CAPART_CPU_CORE_MODEL_HH
