/**
 * @file
 * A reusable block buffer between workload generation and replay.
 *
 * The quantum loop is a strict producer/consumer cycle: a
 * ThreadWorkload emits one quantum's accesses as a block, then
 * System::stepHt drains the whole block before the next quantum
 * starts. The ring exploits that discipline: producers claim raw
 * storage for a known-size block and write through a pointer (no
 * per-access capacity checks or growth), consumers iterate the
 * contiguous span, and clear() recycles the same allocation every
 * quantum. Capacity grows geometrically to the largest burst seen and
 * then never reallocates, so steady-state replay touches no allocator.
 */

#ifndef CAPART_WORKLOAD_ACCESS_RING_HH
#define CAPART_WORKLOAD_ACCESS_RING_HH

#include <cstddef>
#include <vector>

#include "workload/generator.hh"

namespace capart
{

/** Flat, recycled buffer of one quantum's MemAccess block. */
class AccessRing
{
  public:
    explicit AccessRing(std::size_t capacity = 4096)
    {
        buf_.resize(capacity);
    }

    /**
     * Reserve room for @p n more accesses and return the write cursor.
     * The caller fills entries [0, n) and then calls commit(); claimed
     * but uncommitted entries are simply reused by the next claim.
     */
    MemAccess *
    claim(std::size_t n)
    {
        if (size_ + n > buf_.size()) {
            std::size_t cap = buf_.size() ? buf_.size() : 1;
            while (cap < size_ + n)
                cap *= 2;
            buf_.resize(cap);
        }
        return buf_.data() + size_;
    }

    /** Publish @p n entries written after the last claim(). */
    void commit(std::size_t n) { size_ += n; }

    /** Drop all entries; storage is retained. */
    void clear() { size_ = 0; }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    const MemAccess *begin() const { return buf_.data(); }
    const MemAccess *end() const { return buf_.data() + size_; }

  private:
    std::vector<MemAccess> buf_;
    std::size_t size_ = 0;
};

} // namespace capart

#endif // CAPART_WORKLOAD_ACCESS_RING_HH
