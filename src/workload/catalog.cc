#include "workload/catalog.hh"

#include "common/logging.hh"
#include "common/units.hh"

namespace capart
{

namespace
{

PatternSpec
seq(std::uint64_t region, double w, std::uint64_t stride = 8)
{
    PatternSpec p;
    p.kind = PatternKind::Sequential;
    p.regionBytes = region;
    p.strideBytes = stride;
    p.weight = w;
    return p;
}

PatternSpec
strided(std::uint64_t region, double w, std::uint64_t stride,
        double jump = 0.0)
{
    PatternSpec p;
    p.kind = PatternKind::Strided;
    p.regionBytes = region;
    p.strideBytes = stride;
    p.weight = w;
    p.jumpProbability = jump;
    return p;
}

PatternSpec
rnd(std::uint64_t region, double w)
{
    PatternSpec p;
    p.kind = PatternKind::RandomInRegion;
    p.regionBytes = region;
    p.weight = w;
    return p;
}

PatternSpec
chase(std::uint64_t region, double w)
{
    PatternSpec p;
    p.kind = PatternKind::PointerChase;
    p.regionBytes = region;
    p.weight = w;
    p.writeFraction = 0.05;
    return p;
}

PatternSpec
uncachedStream(std::uint64_t region, double w)
{
    PatternSpec p;
    p.kind = PatternKind::StreamUncached;
    p.regionBytes = region;
    p.strideBytes = kLineBytes;
    p.weight = w;
    p.writeFraction = 0.5;
    return p;
}

PhaseSpec
phase(double frac, double mem_ratio, std::vector<PatternSpec> pats)
{
    PhaseSpec ph;
    ph.instFraction = frac;
    ph.memRatio = mem_ratio;
    ph.patterns = std::move(pats);
    return ph;
}

/** Amdahl/sync parameters for each Table 1 scalability class. */
void
setScalability(AppParams &a, ScalClass c)
{
    a.expectedScal = c;
    switch (c) {
      case ScalClass::High:
        a.serialFraction = 0.03;
        a.syncCost = 0.004;
        break;
      case ScalClass::Saturated:
        // "Applications that scale up to a reduced number of threads":
        // performance saturates after 4 or 6 threads (§3.1) — beyond
        // the cap extra threads find no work (GC bottlenecks, pipeline
        // depth limits).
        a.serialFraction = 0.17;
        a.syncCost = 0.025;
        a.maxThreads = 6;
        break;
      case ScalClass::Low:
        a.serialFraction = 0.62;
        a.syncCost = 0.05;
        break;
    }
}

AppParams
base(const char *name, Suite suite, ScalClass scal, UtilClass util)
{
    AppParams a;
    a.name = name;
    a.suite = suite;
    a.expectedUtil = util;
    setScalability(a, scal);
    if (suite == Suite::SpecCpu || suite == Suite::Microbench) {
        // Single-threaded codes: extra threads do no useful work.
        a.maxThreads = 1;
        a.serialFraction = 1.0;
        a.syncCost = 0.0;
    }
    return a;
}

// Weight calibration (see DESIGN.md): with memory ratio m, the LLC
// accesses per kilo-instruction are roughly m * 1000 * (sum of random
// weights to regions larger than the L2 + 1/8 of dense-sequential
// weights). The paper's Table 2 bolds apps above 10 APKI; weights below
// are chosen to land each app on the right side of that line and to
// put its miss curve's knee at the paper's working-set size.

std::vector<AppParams>
buildCatalog()
{
    std::vector<AppParams> apps;
    const std::uint64_t K = 1024, M = 1024 * 1024;

    // ------------------------------------------------------- PARSEC --
    {
        AppParams a = base("blackscholes", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 30'000'000;
        a.baseIpc = 2.1;
        a.mlp = 4;
        a.phases = {phase(1.0, 0.08,
                          {rnd(160 * K, 0.97), rnd(768 * K, 0.03)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("bodytrack", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 26'000'000;
        a.baseIpc = 1.9;
        a.mlp = 4;
        a.phases = {phase(1.0, 0.10,
                          {rnd(192 * K, 0.95), rnd(896 * K, 0.05)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("canneal", Suite::Parsec, ScalClass::Saturated,
                           UtilClass::Saturated);
        a.lengthInsts = 22'000'000;
        a.baseIpc = 1.1;
        a.mlp = 2.2;
        a.expectedHighApki = true;
        // canneal's netlist is far larger than the LLC: a cold streaming
        // component misses regardless of allocation, while the hot
        // working set saturates around 2.5 MB (Table 2: saturated).
        a.phases = {phase(1.0, 0.20,
                          {rnd(128 * K, 0.90), rnd(48 * M, 0.045),
                           rnd(2 * M + 256 * K, 0.04),
                           chase(1 * M, 0.015)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("dedup", Suite::Parsec, ScalClass::Saturated,
                           UtilClass::Low);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.8;
        a.mlp = 5;
        a.phases = {phase(1.0, 0.14,
                          {rnd(160 * K, 0.93), rnd(640 * K, 0.05),
                           seq(4 * M, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("facesim", Suite::Parsec, ScalClass::High,
                           UtilClass::Saturated);
        a.lengthInsts = 28'000'000;
        a.baseIpc = 1.7;
        a.mlp = 5;
        a.expectedPrefetchSensitive = true;
        a.phases = {phase(1.0, 0.16,
                          {rnd(160 * K, 0.80),
                           rnd(2 * M + 256 * K, 0.035),
                           seq(12 * M, 0.165)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("ferret", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 30'000'000;
        a.baseIpc = 2.0;
        a.mlp = 4;
        a.phases = {phase(1.0, 0.11,
                          {rnd(192 * K, 0.94), rnd(512 * K, 0.04),
                           seq(3 * M, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("fluidanimate", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 26'000'000;
        a.baseIpc = 1.8;
        a.mlp = 6;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.20,
                          {rnd(160 * K, 0.68), seq(192 * M, 0.30),
                           rnd(512 * K, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("freqmine", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 30'000'000;
        a.baseIpc = 1.9;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.09,
                          {rnd(192 * K, 0.96), rnd(768 * K, 0.04)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("raytrace", Suite::Parsec, ScalClass::Saturated,
                           UtilClass::Low);
        a.lengthInsts = 28'000'000;
        a.baseIpc = 2.0;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.08,
                          {rnd(160 * K, 0.95), rnd(448 * K, 0.05)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("streamcluster", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.5;
        a.mlp = 7;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.32,
                          {rnd(128 * K, 0.55), seq(224 * M, 0.44),
                           rnd(192 * K, 0.01)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("swaptions", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 32'000'000;
        a.baseIpc = 2.2;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.05, {rnd(96 * K, 1.0)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("vips", Suite::Parsec, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 28'000'000;
        a.baseIpc = 2.0;
        a.mlp = 4;
        a.phases = {phase(1.0, 0.12,
                          {rnd(192 * K, 0.93), seq(6 * M, 0.05),
                           rnd(256 * K, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("x264", Suite::Parsec, ScalClass::High,
                           UtilClass::High);
        a.lengthInsts = 26'000'000;
        a.baseIpc = 1.9;
        a.mlp = 4;
        a.phases = {phase(1.0, 0.15,
                          {rnd(160 * K, 0.87), rnd(7 * M, 0.09),
                           seq(8 * M, 0.04)})};
        apps.push_back(a);
    }

    // ------------------------------------------------------- DaCapo --
    {
        AppParams a = base("avrora", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::Low);
        a.lengthInsts = 22'000'000;
        a.baseIpc = 1.2;
        a.mlp = 2.5;
        a.phases = {phase(1.0, 0.09,
                          {rnd(224 * K, 0.97), rnd(320 * K, 0.03)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("batik", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::Saturated);
        a.lengthInsts = 18'000'000;
        a.baseIpc = 1.3;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.12,
                          {rnd(160 * K, 0.955),
                           rnd(1 * M + 768 * K, 0.045)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("eclipse", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::High);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.2;
        a.mlp = 2.5;
        a.phases = {phase(1.0, 0.13,
                          {rnd(160 * K, 0.88),
                           rnd(6 * M + 768 * K, 0.12)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("fop", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::High);
        a.lengthInsts = 16'000'000;
        a.baseIpc = 1.25;
        a.mlp = 2.5;
        a.phases = {phase(1.0, 0.13,
                          {rnd(160 * K, 0.87),
                           rnd(7 * M, 0.13)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("h2", Suite::DaCapo, ScalClass::Low,
                           UtilClass::Saturated);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.15;
        a.mlp = 2.2;
        a.phases = {phase(1.0, 0.12,
                          {rnd(192 * K, 0.94),
                           rnd(2 * M + 512 * K, 0.05),
                           chase(1 * M, 0.01)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("jython", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::Saturated);
        a.lengthInsts = 26'000'000;
        a.baseIpc = 1.3;
        a.mlp = 2.5;
        a.phases = {phase(1.0, 0.11,
                          {rnd(192 * K, 0.95),
                           rnd(1 * M + 512 * K, 0.05)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("luindex", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::Saturated);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.35;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.11,
                          {rnd(192 * K, 0.95), rnd(2 * M, 0.04),
                           seq(3 * M, 0.01)})};
        apps.push_back(a);
    }
    {
        // lusearch: the one DaCapo code the prefetchers actively hurt
        // (Fig. 3): irregular multi-line strides trigger useless
        // adjacent-line/streamer fetches that pollute and burn
        // bandwidth while the IP prefetcher cannot lock onto a stride.
        AppParams a = base("lusearch", Suite::DaCapo, ScalClass::Saturated,
                           UtilClass::High);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.3;
        a.mlp = 3;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.phases = {phase(1.0, 0.22,
                          {rnd(128 * K, 0.85),
                           strided(12 * M, 0.05, 5 * kLineBytes, 0.35),
                           rnd(6 * M + 512 * K, 0.10)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("pmd", Suite::DaCapo, ScalClass::High,
                           UtilClass::High);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.25;
        a.mlp = 2.5;
        a.phases = {phase(1.0, 0.12,
                          {rnd(176 * K, 0.89),
                           rnd(6 * M + 512 * K, 0.11)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("sunflow", Suite::DaCapo, ScalClass::High,
                           UtilClass::Low);
        a.lengthInsts = 28'000'000;
        a.baseIpc = 1.6;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.08,
                          {rnd(256 * K, 0.96), rnd(384 * K, 0.04)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("tomcat", Suite::DaCapo, ScalClass::High,
                           UtilClass::Saturated);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.3;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.11,
                          {rnd(192 * K, 0.95),
                           rnd(2 * M + 256 * K, 0.05)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("tradebeans", Suite::DaCapo, ScalClass::Low,
                           UtilClass::High);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.1;
        a.mlp = 2.2;
        a.phases = {phase(1.0, 0.12,
                          {rnd(176 * K, 0.88), rnd(6 * M + 512 * K, 0.12)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("tradesoap", Suite::DaCapo, ScalClass::Low,
                           UtilClass::Saturated);
        a.lengthInsts = 22'000'000;
        a.baseIpc = 1.1;
        a.mlp = 2.2;
        a.phases = {phase(1.0, 0.11,
                          {rnd(176 * K, 0.95), rnd(2 * M, 0.05)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("xalan", Suite::DaCapo, ScalClass::High,
                           UtilClass::High);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.3;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.13,
                          {rnd(160 * K, 0.88),
                           rnd(6 * M + 768 * K, 0.12)})};
        apps.push_back(a);
    }

    // --------------------------------------------------------- SPEC --
    {
        // 429.mcf: the paper's phase-behaviour example (Fig. 12) —
        // alternating high-MPKI phases (need ~4.5 MB) and low-MPKI
        // phases (need ~1.5 MB).
        AppParams a = base("429.mcf", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Saturated);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 0.9;
        a.mlp = 2.0;
        a.expectedHighApki = true;
        auto hi = [&](double frac) {
            return phase(frac, 0.28,
                         {rnd(128 * K, 0.70),
                          rnd(4 * M + 512 * K, 0.26),
                          chase(1 * M, 0.04)});
        };
        auto lo = [&](double frac) {
            return phase(frac, 0.18,
                         {rnd(96 * K, 0.80),
                          rnd(1 * M + 384 * K, 0.20)});
        };
        a.phases = {hi(0.14), lo(0.16), hi(0.14), lo(0.16), hi(0.14),
                    lo(0.26)};
        apps.push_back(a);
    }
    {
        AppParams a = base("436.cactusADM", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 30'000'000;
        a.baseIpc = 1.7;
        a.mlp = 4;
        a.phases = {phase(1.0, 0.10,
                          {rnd(192 * K, 0.96),
                           strided(4 * M, 0.04, 256)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("437.leslie3d", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.6;
        a.mlp = 8;
        a.expectedHighApki = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.24,
                          {rnd(160 * K, 0.58), seq(128 * M, 0.40),
                           rnd(256 * K, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("450.soplex", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 22'000'000;
        a.baseIpc = 1.4;
        a.mlp = 6;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.26,
                          {rnd(160 * K, 0.51), seq(192 * M, 0.45),
                           rnd(512 * K, 0.04)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("453.povray", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 34'000'000;
        a.baseIpc = 2.1;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.05, {rnd(128 * K, 1.0)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("454.calculix", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 34'000'000;
        a.baseIpc = 2.0;
        a.mlp = 3;
        a.phases = {phase(1.0, 0.06,
                          {rnd(160 * K, 0.98), seq(1 * M, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("459.GemsFDTD", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 22'000'000;
        a.baseIpc = 1.5;
        a.mlp = 7;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.24,
                          {rnd(256 * K, 0.52), seq(192 * M, 0.45),
                           strided(96 * M, 0.03, 2 * kLineBytes)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("462.libquantum", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.6;
        a.mlp = 8;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.30,
                          {seq(256 * M, 0.92), rnd(64 * K, 0.08)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("470.lbm", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Low);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.5;
        a.mlp = 8;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        PatternSpec wr = seq(192 * M, 0.45);
        wr.writeFraction = 0.5;
        a.phases = {phase(1.0, 0.28,
                          {wr, seq(96 * M, 0.35), rnd(64 * K, 0.20)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("471.omnetpp", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::High);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.0;
        a.mlp = 1.8;
        a.expectedHighApki = true;
        a.phases = {phase(1.0, 0.26,
                          {rnd(128 * K, 0.87), rnd(3 * M + 512 * K, 0.08),
                           chase(5 * M + 512 * K, 0.05)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("473.astar", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Saturated);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.2;
        a.mlp = 1.8;
        a.phases = {phase(1.0, 0.16,
                          {rnd(160 * K, 0.95),
                           chase(1 * M + 512 * K, 0.03),
                           rnd(1 * M, 0.02)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("482.sphinx3", Suite::SpecCpu, ScalClass::Low,
                           UtilClass::Saturated);
        a.lengthInsts = 24'000'000;
        a.baseIpc = 1.4;
        a.mlp = 4;
        a.expectedHighApki = true;
        a.phases = {phase(1.0, 0.24,
                          {rnd(160 * K, 0.915),
                           rnd(2 * M + 256 * K, 0.055),
                           seq(8 * M, 0.03)})};
        apps.push_back(a);
    }

    // ------------------------------------------- parallel applications --
    {
        AppParams a = base("browser_animation", Suite::ParallelApps,
                           ScalClass::Saturated, UtilClass::High);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.5;
        a.mlp = 5;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.26,
                          {rnd(160 * K, 0.64), seq(14 * M, 0.28),
                           rnd(7 * M, 0.055), rnd(16 * M, 0.025)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("g500_csr", Suite::ParallelApps,
                           ScalClass::Saturated, UtilClass::High);
        a.lengthInsts = 18'000'000;
        a.baseIpc = 1.2;
        a.mlp = 5;
        a.expectedHighApki = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.30,
                          {rnd(192 * K, 0.80),
                           chase(7 * M + 512 * K, 0.06),
                           rnd(24 * M, 0.03), seq(6 * M, 0.11)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("ParaDecoder", Suite::ParallelApps,
                           ScalClass::Low, UtilClass::Saturated);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.3;
        a.mlp = 4;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.24,
                          {rnd(160 * K, 0.70),
                           rnd(2 * M + 512 * K, 0.06),
                           seq(96 * M, 0.24)})};
        apps.push_back(a);
    }
    {
        AppParams a = base("stencilprobe", Suite::ParallelApps,
                           ScalClass::Saturated, UtilClass::Saturated);
        a.lengthInsts = 20'000'000;
        a.baseIpc = 1.6;
        a.mlp = 6;
        a.expectedHighApki = true;
        a.expectedPrefetchSensitive = true;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.22,
                          {rnd(160 * K, 0.665), seq(16 * M, 0.30),
                           strided(16 * M, 0.01, 4 * kLineBytes),
                           rnd(2 * M, 0.025)})};
        apps.push_back(a);
    }

    // ----------------------------------------------- microbenchmarks --
    {
        // ccbench walks pointer chains through arrays of doubling size
        // to map out the cache hierarchy.
        AppParams a = base("ccbench", Suite::Microbench, ScalClass::Low,
                           UtilClass::Saturated);
        a.lengthInsts = 16'000'000;
        a.baseIpc = 1.8;
        a.mlp = 1.0;
        std::vector<PhaseSpec> phases;
        std::uint64_t size = 16 * K;
        for (int i = 0; i < 8; ++i) {
            phases.push_back(phase(0.125, 0.30, {chase(size, 1.0)}));
            size *= 2; // 16 KB ... 2 MB
        }
        a.phases = std::move(phases);
        apps.push_back(a);
    }
    {
        // The bandwidth hog: non-temporal streaming loads/stores that
        // never allocate in any cache (§2.3).
        AppParams a = base("stream_uncached", Suite::Microbench,
                           ScalClass::Low, UtilClass::Saturated);
        a.lengthInsts = 22'000'000;
        a.baseIpc = 2.0;
        a.mlp = 8;
        a.expectedBandwidthSensitive = true;
        a.phases = {phase(1.0, 0.45, {uncachedStream(64 * M, 1.0)})};
        apps.push_back(a);
    }

    for (auto &a : apps)
        a.validate();
    return apps;
}

} // namespace

const std::vector<AppParams> &
Catalog::all()
{
    static const std::vector<AppParams> apps = buildCatalog();
    capart_assert(apps.size() == kNumApps);
    return apps;
}

const AppParams &
Catalog::byName(std::string_view name)
{
    for (const auto &a : all()) {
        if (a.name == name)
            return a;
    }
    capart_fatal("unknown benchmark: " << std::string(name));
}

bool
Catalog::contains(std::string_view name)
{
    for (const auto &a : all()) {
        if (a.name == name)
            return true;
    }
    return false;
}

std::vector<AppParams>
Catalog::bySuite(Suite suite)
{
    std::vector<AppParams> out;
    for (const auto &a : all()) {
        if (a.suite == suite)
            out.push_back(a);
    }
    return out;
}

std::vector<AppParams>
Catalog::nAppMix(std::size_t n, unsigned variant)
{
    capart_assert(n >= 1);
    // Rosters by LFOC class: steep miss curves (sensitive), high-MPKI
    // capacity-insensitive codes (streaming), and low-MPKI codes
    // (light). Drawn from the paper's Table 2 utility classes.
    static const std::array<std::string_view, 5> sensitive = {
        "429.mcf", "fop", "471.omnetpp", "473.astar", "canneal"};
    static const std::array<std::string_view, 5> streaming = {
        "470.lbm", "462.libquantum", "459.GemsFDTD", "streamcluster",
        "450.soplex"};
    static const std::array<std::string_view, 5> light = {
        "ferret", "batik", "swaptions", "453.povray", "blackscholes"};

    std::vector<AppParams> mix;
    mix.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t klass = (i + variant) % 3;
        const std::size_t pick = (i / 3 + variant) % sensitive.size();
        std::string_view name;
        switch (klass) {
          case 0:
            name = sensitive[pick];
            break;
          case 1:
            name = streaming[pick];
            break;
          default:
            name = light[pick];
            break;
        }
        mix.push_back(byName(name));
    }
    return mix;
}

const std::array<std::string_view, 6> &
Catalog::clusterRepresentatives()
{
    static const std::array<std::string_view, 6> reps = {
        "429.mcf",       // C1: low scalability, LLC sensitive
        "459.GemsFDTD",  // C2: low scalability, bandwidth/prefetch bound
        "ferret",        // C3: high scalability, low cache utility
        "fop",           // C4: saturated scalability, cache sensitive
        "dedup",         // C5: saturated scalability, cache insensitive
        "batik",         // C6: saturated scalability, bandwidth insensitive
    };
    return reps;
}

} // namespace capart
