/**
 * @file
 * The 45-application workload catalog (§2.3).
 *
 * Every benchmark the paper runs is modeled here with parameters fitted
 * to its published behaviour: Table 1 (thread scalability), Table 2
 * (LLC utility and the >10-APKI set), Fig. 3 (prefetcher sensitivity)
 * and Fig. 4 (bandwidth sensitivity). The expected* fields carry the
 * paper's ground-truth classifications so tests and benches can check
 * that the models reproduce them.
 */

#ifndef CAPART_WORKLOAD_CATALOG_HH
#define CAPART_WORKLOAD_CATALOG_HH

#include <array>
#include <string_view>
#include <vector>

#include "workload/app_params.hh"

namespace capart
{

/** Static registry of the paper's 45 benchmarks. */
class Catalog
{
  public:
    /** All 45 applications, grouped by suite in the paper's order. */
    static const std::vector<AppParams> &all();

    /** Look up one application; fatal if the name is unknown. */
    static const AppParams &byName(std::string_view name);

    /** True if @p name exists in the catalog. */
    static bool contains(std::string_view name);

    /** All applications from one suite. */
    static std::vector<AppParams> bySuite(Suite suite);

    /**
     * The six cluster representatives of Table 3 (closest to each
     * cluster centroid): C1=429.mcf, C2=459.GemsFDTD, C3=ferret,
     * C4=fop, C5=dedup, C6=batik.
     */
    static const std::array<std::string_view, 6> &clusterRepresentatives();

    /**
     * A deterministic @p n-app consolidation mix for the N-app benches:
     * interleaves cache-sensitive, streaming, and light applications so
     * every mix exercises all three LFOC classes. @p variant rotates
     * the starting point, giving distinct-but-reproducible mixes.
     */
    static std::vector<AppParams> nAppMix(std::size_t n,
                                          unsigned variant = 0);

    /** Expected number of catalog entries. */
    static constexpr std::size_t kNumApps = 45;
};

} // namespace capart

#endif // CAPART_WORKLOAD_CATALOG_HH
