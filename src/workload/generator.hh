/**
 * @file
 * Per-thread synthetic memory reference generation.
 *
 * A @ref ThreadWorkload owns one software thread's share of an
 * application's work and turns instruction quanta into memory accesses
 * according to the active phase's pattern mix. All randomness is
 * deterministic per (app seed, thread index).
 */

#ifndef CAPART_WORKLOAD_GENERATOR_HH
#define CAPART_WORKLOAD_GENERATOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "workload/app_params.hh"

namespace capart
{

/** One synthetic memory reference. */
struct MemAccess
{
    std::uint64_t pc = 0; //!< synthetic instruction pointer (per pattern)
    Addr addr = 0;        //!< byte address
    bool write = false;
    bool uncached = false; //!< bypasses the cache hierarchy entirely
};

/**
 * Generates one thread's accesses. Threads of an application share data
 * regions (they index a common address-space base), so intra-application
 * LLC sharing emerges naturally.
 */
class ThreadWorkload
{
  public:
    /**
     * @param params      the application model (validated).
     * @param thread_idx  this thread's index within the app (0-based).
     * @param num_threads threads the app was launched with (pre-cap).
     * @param base        byte address where the app's regions start.
     * @param seed        deterministic seed for this thread.
     */
    ThreadWorkload(const AppParams &params, unsigned thread_idx,
                   unsigned num_threads, Addr base, std::uint64_t seed);

    /** Instructions this thread must retire in one full app run. */
    Insts totalWork() const { return totalWork_; }

    /** Instructions retired so far in the current run. */
    Insts retired() const { return retired_; }

    bool done() const { return retired_ >= totalWork_; }

    /** Restart the run (continuously-running background mode, §5). */
    void restart();

    /**
     * Execute up to @p max_insts instructions of the phase selected by
     * @p app_progress (whole-app completed fraction in [0,1]).
     * Appends this quantum's memory accesses to @p out (not cleared).
     *
     * @return instructions actually retired (0 iff already done).
     */
    Insts runQuantum(Insts max_insts, double app_progress,
                     std::vector<MemAccess> &out);

    /**
     * Batched variant: emit the quantum's accesses as one block into
     * @p ring (claim/commit, no per-access growth checks). Consumes
     * the RNG in exactly the same sequence as the vector overload, so
     * both produce bit-identical access streams.
     */
    Insts runQuantum(Insts max_insts, double app_progress,
                     class AccessRing &ring);

    /** The phase in force at @p app_progress. */
    const PhaseSpec &phaseAt(double app_progress) const;

    /** Index of the phase in force at @p app_progress. */
    unsigned phaseIndexAt(double app_progress) const;

    /**
     * Effective MLP of the phase at @p app_progress: pointer-chase
     * accesses serialize, pulling the app's base MLP toward 1.
     */
    double effectiveMlp(double app_progress) const;

    /** This thread's index within its application. */
    unsigned threadIdx() const { return threadIdx_; }

  private:
    /** Mutable per-pattern cursor state. */
    struct PatternState
    {
        Addr regionBase = 0;    //!< absolute byte base of the region
        Addr cursor = 0;        //!< byte offset for walking patterns
        std::uint64_t pc = 0;   //!< synthetic IP of this pattern
        std::uint64_t lines = 0; //!< region size in lines
    };

    /** Pick a pattern index within @p phase by weight. */
    unsigned pickPattern(unsigned phase_idx);

    /** Produce one access from pattern @p p of phase @p phase_idx. */
    MemAccess genAccess(unsigned phase_idx, unsigned pattern_idx);

    /** Owned copy: the caller's AppParams may move after construction. */
    AppParams params_;
    unsigned threadIdx_;
    Insts totalWork_ = 0;
    Insts retired_ = 0;
    double memCarry_ = 0.0; //!< fractional accesses carried across quanta

    Rng rng_;
    /** state_[phase][pattern]. */
    std::vector<std::vector<PatternState>> state_;
    /** Cumulative pattern weights per phase, for O(#patterns) sampling. */
    std::vector<std::vector<double>> weightCdf_;
    /** Cached effective MLP per phase. */
    std::vector<double> phaseMlp_;
    /** Cumulative phase instruction fractions (phase boundary lookup). */
    std::vector<double> phaseCdf_;
};

/**
 * Compute the number of threads an app actually uses and each thread's
 * instruction budget under the Amdahl + synchronization model:
 * thread 0 additionally executes the serial fraction.
 */
Insts threadWorkShare(const AppParams &params, unsigned thread_idx,
                      unsigned num_threads);

} // namespace capart

#endif // CAPART_WORKLOAD_GENERATOR_HH
