#include "workload/generator.hh"

#include <cmath>

#include "common/logging.hh"
#include "workload/access_ring.hh"

namespace capart
{

Insts
threadWorkShare(const AppParams &params, unsigned thread_idx,
                unsigned num_threads)
{
    capart_assert(num_threads >= 1);
    const unsigned used = std::min(num_threads, params.maxThreads);
    if (thread_idx >= used)
        return 0;

    const double total = static_cast<double>(params.lengthInsts);
    const double parallel = total * (1.0 - params.serialFraction);
    // Synchronization inflates every thread's parallel share as threads
    // are added (barriers, GC handshakes, lock traffic).
    const double inflation =
        1.0 + params.syncCost * static_cast<double>(used - 1);
    double share = parallel / static_cast<double>(used) * inflation;
    if (thread_idx == 0)
        share += total * params.serialFraction;
    return static_cast<Insts>(std::llround(share));
}

ThreadWorkload::ThreadWorkload(const AppParams &params, unsigned thread_idx,
                               unsigned num_threads, Addr base,
                               std::uint64_t seed)
    : params_(params), threadIdx_(thread_idx), rng_(seed)
{
    params.validate();
    totalWork_ = threadWorkShare(params, thread_idx, num_threads);

    // Lay the regions of every phase/pattern out consecutively from the
    // app base so distinct patterns never alias. Regions are shared by
    // all threads of the app; walking cursors start at a per-thread
    // random offset so streams from different threads interleave.
    Addr next = base;
    std::uint64_t pattern_pc = (static_cast<std::uint64_t>(base >> 20) << 8);
    double phase_cum = 0.0;
    for (const auto &phase : params.phases) {
        std::vector<PatternState> states;
        std::vector<double> cdf;
        double cum = 0.0;
        double chase_weight = 0.0;
        for (const auto &pat : phase.patterns) {
            PatternState st;
            st.regionBase = next;
            st.lines = (pat.regionBytes + kLineBytes - 1) / kLineBytes;
            st.cursor =
                (rng_.below(st.lines) * kLineBytes) % pat.regionBytes;
            st.pc = pattern_pc++;
            next += pat.regionBytes + kLineBytes; // pad to avoid aliasing
            states.push_back(st);
            cum += pat.weight;
            cdf.push_back(cum);
            if (pat.kind == PatternKind::PointerChase)
                chase_weight += pat.weight;
        }
        state_.push_back(std::move(states));
        weightCdf_.push_back(std::move(cdf));

        const double f = chase_weight / cum;
        phaseMlp_.push_back(1.0 / (f + (1.0 - f) / params.mlp));

        phase_cum += phase.instFraction;
        phaseCdf_.push_back(phase_cum);
    }
}

void
ThreadWorkload::restart()
{
    retired_ = 0;
    memCarry_ = 0.0;
}

unsigned
ThreadWorkload::phaseIndexAt(double app_progress) const
{
    for (unsigned i = 0; i < phaseCdf_.size(); ++i) {
        if (app_progress < phaseCdf_[i])
            return i;
    }
    return static_cast<unsigned>(phaseCdf_.size()) - 1;
}

const PhaseSpec &
ThreadWorkload::phaseAt(double app_progress) const
{
    return params_.phases[phaseIndexAt(app_progress)];
}

double
ThreadWorkload::effectiveMlp(double app_progress) const
{
    return phaseMlp_[phaseIndexAt(app_progress)];
}

unsigned
ThreadWorkload::pickPattern(unsigned phase_idx)
{
    const auto &cdf = weightCdf_[phase_idx];
    if (cdf.size() == 1)
        return 0;
    const double r = rng_.uniform() * cdf.back();
    for (unsigned i = 0; i < cdf.size(); ++i) {
        if (r < cdf[i])
            return i;
    }
    return static_cast<unsigned>(cdf.size()) - 1;
}

MemAccess
ThreadWorkload::genAccess(unsigned phase_idx, unsigned pattern_idx)
{
    const PatternSpec &spec = params_.phases[phase_idx].patterns[pattern_idx];
    PatternState &st = state_[phase_idx][pattern_idx];

    MemAccess acc;
    acc.pc = st.pc;
    acc.write = rng_.chance(spec.writeFraction);

    switch (spec.kind) {
      case PatternKind::Sequential:
      case PatternKind::Strided:
        if (spec.jumpProbability > 0.0 &&
            rng_.chance(spec.jumpProbability)) {
            st.cursor = rng_.below(st.lines) * kLineBytes;
        }
        acc.addr = st.regionBase + st.cursor;
        st.cursor += spec.strideBytes;
        if (st.cursor >= spec.regionBytes)
            st.cursor %= spec.regionBytes;
        break;
      case PatternKind::RandomInRegion:
      case PatternKind::PointerChase:
        acc.addr = st.regionBase + rng_.below(st.lines) * kLineBytes +
                   rng_.below(kLineBytes / 8) * 8;
        break;
      case PatternKind::StreamUncached:
        acc.addr = st.regionBase + st.cursor;
        st.cursor += spec.strideBytes;
        if (st.cursor >= spec.regionBytes)
            st.cursor %= spec.regionBytes;
        acc.uncached = true;
        break;
    }
    return acc;
}

Insts
ThreadWorkload::runQuantum(Insts max_insts, double app_progress,
                           std::vector<MemAccess> &out)
{
    if (done() || max_insts == 0)
        return 0;

    const Insts remaining = totalWork_ - retired_;
    const Insts insts = std::min<Insts>(max_insts, remaining);
    const unsigned phase_idx = phaseIndexAt(app_progress);
    const PhaseSpec &phase = params_.phases[phase_idx];

    const double exact =
        static_cast<double>(insts) * phase.memRatio + memCarry_;
    auto accesses = static_cast<std::uint64_t>(exact);
    memCarry_ = exact - static_cast<double>(accesses);

    out.reserve(out.size() + accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        out.push_back(genAccess(phase_idx, pickPattern(phase_idx)));

    retired_ += insts;
    return insts;
}

Insts
ThreadWorkload::runQuantum(Insts max_insts, double app_progress,
                           AccessRing &ring)
{
    if (done() || max_insts == 0)
        return 0;

    const Insts remaining = totalWork_ - retired_;
    const Insts insts = std::min<Insts>(max_insts, remaining);
    const unsigned phase_idx = phaseIndexAt(app_progress);
    const PhaseSpec &phase = params_.phases[phase_idx];

    const double exact =
        static_cast<double>(insts) * phase.memRatio + memCarry_;
    auto accesses = static_cast<std::uint64_t>(exact);
    memCarry_ = exact - static_cast<double>(accesses);

    // One claim for the whole known-size block; the emit loop writes
    // through a raw cursor with no growth checks. RNG consumption per
    // access is identical to the vector overload above.
    MemAccess *dst = ring.claim(accesses);
    for (std::uint64_t i = 0; i < accesses; ++i)
        dst[i] = genAccess(phase_idx, pickPattern(phase_idx));
    ring.commit(accesses);

    retired_ += insts;
    return insts;
}

} // namespace capart
