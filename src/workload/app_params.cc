#include "workload/app_params.hh"

#include <cmath>

#include "common/logging.hh"

namespace capart
{

const char *
suiteName(Suite s)
{
    switch (s) {
      case Suite::Parsec:
        return "PARSEC";
      case Suite::DaCapo:
        return "DaCapo";
      case Suite::SpecCpu:
        return "SPEC";
      case Suite::ParallelApps:
        return "Parallel";
      case Suite::Microbench:
        return "ubench";
    }
    capart_panic("unknown suite");
}

const char *
scalClassName(ScalClass c)
{
    switch (c) {
      case ScalClass::Low:
        return "low";
      case ScalClass::Saturated:
        return "saturated";
      case ScalClass::High:
        return "high";
    }
    capart_panic("unknown scalability class");
}

const char *
utilClassName(UtilClass c)
{
    switch (c) {
      case UtilClass::Low:
        return "low";
      case UtilClass::Saturated:
        return "saturated";
      case UtilClass::High:
        return "high";
    }
    capart_panic("unknown utility class");
}

AppParams
AppParams::scaled(double factor) const
{
    capart_assert(factor > 0.0);
    AppParams copy = *this;
    copy.lengthInsts = static_cast<Insts>(
        std::llround(static_cast<double>(lengthInsts) * factor));
    if (copy.lengthInsts < 1)
        copy.lengthInsts = 1;
    return copy;
}

void
AppParams::validate() const
{
    capart_assert(!phases.empty());
    capart_assert(lengthInsts > 0);
    capart_assert(baseIpc > 0.0);
    capart_assert(mlp >= 1.0);
    capart_assert(serialFraction >= 0.0 && serialFraction <= 1.0);
    capart_assert(maxThreads >= 1);

    double frac = 0.0;
    for (const auto &ph : phases) {
        capart_assert(ph.instFraction > 0.0);
        capart_assert(ph.memRatio >= 0.0 && ph.memRatio <= 1.0);
        capart_assert(!ph.patterns.empty());
        double w = 0.0;
        for (const auto &p : ph.patterns) {
            capart_assert(p.weight > 0.0);
            capart_assert(p.regionBytes >= kLineBytes);
            w += p.weight;
        }
        capart_assert(std::abs(w - 1.0) < 1e-6);
        frac += ph.instFraction;
    }
    capart_assert(std::abs(frac - 1.0) < 1e-6);
}

} // namespace capart
