/**
 * @file
 * Parameterized synthetic application models.
 *
 * The paper runs 45 real benchmarks; we cannot (no SPEC/DaCapo/PARSEC
 * licenses or inputs here, and no JVM), so each application is modeled
 * as a phased memory-access generator whose parameters are fitted to the
 * published characterization: thread scalability (Table 1), LLC utility
 * (Table 2), prefetcher sensitivity (Fig. 3), and bandwidth sensitivity
 * (Fig. 4). The evaluation only consumes these resource behaviours, so
 * the substitution preserves what the experiments measure (DESIGN.md §2).
 */

#ifndef CAPART_WORKLOAD_APP_PARAMS_HH
#define CAPART_WORKLOAD_APP_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace capart
{

/** Benchmark suite of origin (§2.3). */
enum class Suite
{
    Parsec,
    DaCapo,
    SpecCpu,
    ParallelApps,
    Microbench
};

const char *suiteName(Suite s);

/** Thread-scalability class (Table 1). */
enum class ScalClass
{
    Low,
    Saturated,
    High
};

/** LLC-allocation-sensitivity class (Table 2). */
enum class UtilClass
{
    Low,
    Saturated,
    High
};

const char *scalClassName(ScalClass c);
const char *utilClassName(UtilClass c);

/** Synthetic memory reference pattern kinds. */
enum class PatternKind
{
    /** Dense forward walk through a region (unit/small stride). */
    Sequential,
    /** Forward walk with a multi-line stride. */
    Strided,
    /** Uniform random lines within a region. */
    RandomInRegion,
    /** Random dependent loads (serialized misses; MLP of 1). */
    PointerChase,
    /** Non-temporal streaming that bypasses all caches. */
    StreamUncached
};

/** One reference pattern within a phase. */
struct PatternSpec
{
    PatternKind kind = PatternKind::RandomInRegion;
    /** Bytes of address space this pattern touches. */
    std::uint64_t regionBytes = 1 << 20;
    /** Byte stride for Sequential/Strided walks. */
    std::uint64_t strideBytes = 8;
    /** Fraction of the phase's accesses drawn from this pattern. */
    double weight = 1.0;
    /** Fraction of this pattern's accesses that are stores. */
    double writeFraction = 0.3;
    /**
     * For Strided walks: probability per access of jumping to a random
     * position in the region. Irregular strides defeat the IP
     * prefetcher while still triggering (useless) spatial/streamer
     * prefetches — the lusearch behaviour of Fig. 3.
     */
    double jumpProbability = 0.0;
};

/** One execution phase (§6.1: applications have phases). */
struct PhaseSpec
{
    /** Fraction of the app's total instructions spent in this phase. */
    double instFraction = 1.0;
    /** Memory accesses per instruction during the phase. */
    double memRatio = 0.15;
    std::vector<PatternSpec> patterns;
};

/** Full description of one modeled application. */
struct AppParams
{
    std::string name;
    Suite suite = Suite::SpecCpu;

    /** Total work in instructions (scaled; see EXPERIMENTS.md). */
    Insts lengthInsts = 20'000'000;
    /** Compute IPC with all loads hitting the L1. */
    double baseIpc = 1.6;
    /** Achievable memory-level parallelism of independent misses. */
    double mlp = 4.0;
    /** Amdahl serial fraction (executed by thread 0 only). */
    double serialFraction = 0.05;
    /** Per-extra-thread work inflation (synchronization cost). */
    double syncCost = 0.005;
    /** Hard cap on useful threads (1 for the single-threaded codes). */
    unsigned maxThreads = 8;

    std::vector<PhaseSpec> phases;

    /** Paper-reported classifications (ground truth for tests/benches). */
    ScalClass expectedScal = ScalClass::High;
    UtilClass expectedUtil = UtilClass::Low;
    /** Paper reports >10 LLC accesses per kilo-instruction (Table 2 bold). */
    bool expectedHighApki = false;
    /** Fig. 3: benefits (or suffers) noticeably from prefetchers. */
    bool expectedPrefetchSensitive = false;
    /** Fig. 4: slows >10 % next to the bandwidth hog. */
    bool expectedBandwidthSensitive = false;

    /** Return a copy with the instruction count scaled by @p factor. */
    AppParams scaled(double factor) const;

    /** Sum of phase instFractions must be ~1; panics otherwise. */
    void validate() const;
};

} // namespace capart

#endif // CAPART_WORKLOAD_APP_PARAMS_HH
