/**
 * @file
 * Perf-regression reporting over run ledgers.
 *
 * The run ledger (src/obs/run_ledger.hh) accumulates one `point`
 * record per sweep point across repeated bench invocations. This
 * module turns those raw records into the two artifacts CI consumes:
 *
 *  - `BENCH_capart.json` — a machine-readable time series: one entry
 *    per run id with per-metric mean/min/max over that run's points,
 *    ordered by start time, so dashboards can plot headline figures
 *    (FG slowdown, BG throughput, energy deltas) across history;
 *  - a markdown report — baseline-vs-current deltas per metric with a
 *    distribution-free sign test over per-pair samples and a
 *    pass/warn/fail verdict per metric plus an overall gate verdict.
 *
 * Points are paired across runs by spec hash (the same canonical
 * experiment), never by file position — ledger order is completion
 * order, which is nondeterministic under --jobs > 1. Each metric has a
 * direction (higher-is-worse, higher-is-better, neutral); the gate
 * only fires in the worse direction, and only when the mean moved past
 * the threshold, the majority of pairs moved the same way, and — when
 * enough pairs exist for significance to be reachable — the sign test
 * agrees.
 */

#ifndef CAPART_REPORT_REPORT_HH
#define CAPART_REPORT_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/run_ledger.hh"

namespace capart::obs
{
struct SweepStatus;
}

namespace capart::report
{

/** Every ledger record sharing one run id. */
struct RunGroup
{
    std::string run;
    std::string bench;
    /** Earliest record timestamp (unix ms); groups sort by this. */
    double startTsMs = 0.0;
    /** The run's `point` records, in ledger (completion) order. */
    std::vector<obs::RunRecord> points;
    /** The run's closing `bench` records (normally one). */
    std::vector<obs::RunRecord> benchRecords;
    /** Partitioner `decision` and `npartition_decision` records, in
     *  ledger order. They never enter metric pairing — a decision is
     *  not a sweep point. */
    std::vector<obs::RunRecord> decisions;
    /** `point_failed` records: points the shard supervisor quarantined
     *  after exhausting retries. Surfaced in reports (a silent hole in
     *  a sweep is how regressions hide), never paired as points. */
    std::vector<obs::RunRecord> failures;
    /** `run_interrupted` records: the run was stopped by a signal
     *  after flushing what completed. Flags the run as partial. */
    std::vector<obs::RunRecord> interruptions;
    /** `shard` records: one per supervised shard of a --shards sweep,
     *  carrying the shard's wall time and fleet counters (points done
     *  / from-cache / quarantined, retries, timeout kills, crashes).
     *  Rendered as the per-shard markdown table; never paired as
     *  points. */
    std::vector<obs::RunRecord> shards;

    /** Points replayed from the memoization cache. */
    std::size_t cachedPoints() const;
    /** Total host milliseconds across this run's point records. */
    double totalWallMs() const;
};

/**
 * Group @p records by run id, each group's records in input order,
 * groups sorted by start timestamp (ties broken by run id so output
 * is deterministic).
 */
std::vector<RunGroup> groupRuns(const std::vector<obs::RunRecord> &records);

/**
 * Regression direction of a metric: +1 when higher is worse (times,
 * energy, slowdowns, MPKI), -1 when higher is better (throughput,
 * IPC, speedups), 0 for neutral diagnostics (way counts, flags) that
 * are reported but never gated on.
 */
int metricDirection(const std::string &name);

/** Aggregate of one metric over one run's points. */
struct MetricStats
{
    double mean = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::size_t n = 0;
};

/** Union of metric names across @p g's points, first-seen order. */
std::vector<std::string> metricNames(const RunGroup &g);

/** Aggregate @p name over @p g's points (n == 0 when absent). */
MetricStats metricStats(const RunGroup &g, const std::string &name);

/**
 * Write the BENCH_capart.json document: schema version, generation
 * metadata, and one entry per run group (in time order) with
 * per-metric mean/min/max/n over the group's points.
 */
void writeBenchJson(std::ostream &os, const std::vector<RunGroup> &groups);

/** Gate outcome, worst first. */
enum class Verdict
{
    Pass,
    Warn,
    Fail
};

const char *verdictName(Verdict v);

/** Thresholds of the regression gate. */
struct GateOptions
{
    /** Relative worse-direction mean delta that warns. */
    double warnDelta = 0.02;
    /** Relative worse-direction mean delta that fails. */
    double failDelta = 0.05;
    /** Sign-test significance level for a FAIL. */
    double alpha = 0.05;
};

/** One metric's baseline-vs-current comparison. */
struct MetricComparison
{
    std::string name;
    int direction = 0;
    /** Spec-hash pairs present in both runs with this metric. */
    unsigned pairs = 0;
    double baselineMean = 0.0;
    double currentMean = 0.0;
    /** (current - baseline) / |baseline|, sign as measured. */
    double relDelta = 0.0;
    /** Pairs that moved in the worse / better direction (ties drop). */
    unsigned worse = 0;
    unsigned better = 0;
    /** Sign-test p-value for "current is worse" (1 when untestable). */
    double pValue = 1.0;
    Verdict verdict = Verdict::Pass;
    /** Spec hash of the pair that moved furthest in the worse
     *  direction (0 when no pair moved worse). */
    std::uint64_t worstSpecHash = 0;
    /** That pair's current-run attribution side file ("" when the run
     *  recorded none); lets a regression report link straight to the
     *  offending point's resource timeline. */
    std::string worstAttrFile;
};

/** A full baseline-vs-current comparison. */
struct RunComparison
{
    std::string baselineRun;
    std::string currentRun;
    std::vector<MetricComparison> metrics;
    /** Worst per-metric verdict. */
    Verdict verdict = Verdict::Pass;
};

/**
 * Compare @p current against @p baseline: pair points by spec hash,
 * compare every directional metric the runs share, and apply the
 * @p gate thresholds. A FAIL additionally requires the majority of
 * pairs to have moved in the worse direction and — when at least six
 * untied pairs exist, the minimum for a sign test to reach p <= 0.05
 * — a significant sign test; with fewer pairs the mean threshold and
 * majority alone decide, since significance is unreachable.
 */
RunComparison compareRuns(const RunGroup &baseline, const RunGroup &current,
                          const GateOptions &gate = GateOptions{});

/**
 * Write the human-readable markdown report: run inventory, and — when
 * @p cmp is non-null — the per-metric delta table and overall verdict.
 */
void writeMarkdown(std::ostream &os, const std::vector<RunGroup> &groups,
                   const RunComparison *cmp, const GateOptions &gate);

/**
 * Append a "## Sweep status" markdown section rendering @p status —
 * the final `status.json` snapshot of a sharded sweep (see
 * src/obs/status.hh): sweep state and totals plus the per-shard
 * table. bench_report emits this when given --status=F.
 */
void writeStatusMarkdown(std::ostream &os, const obs::SweepStatus &status);

} // namespace capart::report

#endif // CAPART_REPORT_REPORT_HH
