#include "report/report.hh"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "common/json.hh"
#include "obs/status.hh"
#include "stats/summary.hh"

namespace capart::report
{

namespace
{

/** Suffix test for metric-direction classification. */
bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string
formatDouble(double v, const char *fmt = "%.4g")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, v);
    return buf;
}

} // namespace

std::size_t
RunGroup::cachedPoints() const
{
    std::size_t n = 0;
    for (const obs::RunRecord &r : points)
        n += r.fromCache;
    return n;
}

double
RunGroup::totalWallMs() const
{
    double ms = 0.0;
    for (const obs::RunRecord &r : points)
        ms += r.wallMs;
    return ms;
}

std::vector<RunGroup>
groupRuns(const std::vector<obs::RunRecord> &records)
{
    std::vector<RunGroup> groups;
    std::map<std::string, std::size_t> index;
    for (const obs::RunRecord &rec : records) {
        const auto it = index.find(rec.run);
        RunGroup *g;
        if (it == index.end()) {
            index.emplace(rec.run, groups.size());
            groups.push_back(RunGroup{});
            g = &groups.back();
            g->run = rec.run;
            g->bench = rec.bench;
            g->startTsMs = rec.tsMs;
        } else {
            g = &groups[it->second];
        }
        if (rec.tsMs > 0.0 &&
            (g->startTsMs <= 0.0 || rec.tsMs < g->startTsMs))
            g->startTsMs = rec.tsMs;
        if (rec.kind == "bench")
            g->benchRecords.push_back(rec);
        else if (rec.kind == "decision" ||
                 rec.kind == "npartition_decision")
            g->decisions.push_back(rec);
        else if (rec.kind == "point_failed")
            g->failures.push_back(rec);
        else if (rec.kind == "run_interrupted")
            g->interruptions.push_back(rec);
        else if (rec.kind == "shard")
            g->shards.push_back(rec);
        else if (rec.kind == "point")
            g->points.push_back(rec);
        // Anything else (point_start, future kinds) is dropped: only
        // complete points may enter metric pairing.
    }
    std::sort(groups.begin(), groups.end(),
              [](const RunGroup &a, const RunGroup &b) {
                  if (a.startTsMs != b.startTsMs)
                      return a.startTsMs < b.startTsMs;
                  return a.run < b.run;
              });
    return groups;
}

int
metricDirection(const std::string &name)
{
    // Higher is worse: anything measuring time, energy, misses, or
    // foreground slowdown.
    if (endsWith(name, "fg_slowdown") || endsWith(name, "time_s") ||
        endsWith(name, "_energy_j") || endsWith(name, "energy_vs_seq") ||
        endsWith(name, "mpki") || endsWith(name, "apki") ||
        endsWith(name, "fg_delta_vs_biased") ||
        endsWith(name, "timed_out") || endsWith(name, "unfairness") ||
        endsWith(name, "slo_breaches"))
        return 1;
    // Higher is better: throughput, IPC, and speedup figures —
    // including host simulation throughput (bench_micro_simulator) and
    // the N-app system-throughput metric.
    if (endsWith(name, "throughput_ips") || endsWith(name, "ipc") ||
        endsWith(name, "weighted_speedup") || endsWith(name, "stp") ||
        endsWith(name, "bg_vs_biased") || endsWith(name, "accesses_per_s"))
        return -1;
    // Neutral diagnostics (way counts and anything unrecognized):
    // reported, never gated on.
    return 0;
}

std::vector<std::string>
metricNames(const RunGroup &g)
{
    std::vector<std::string> names;
    for (const obs::RunRecord &r : g.points) {
        for (const auto &[name, value] : r.metrics) {
            if (std::find(names.begin(), names.end(), name) == names.end())
                names.push_back(name);
        }
    }
    return names;
}

MetricStats
metricStats(const RunGroup &g, const std::string &name)
{
    MetricStats s;
    double sum = 0.0;
    for (const obs::RunRecord &r : g.points) {
        for (const auto &[n, v] : r.metrics) {
            if (n != name)
                continue;
            if (s.n == 0) {
                s.min = s.max = v;
            } else {
                s.min = std::min(s.min, v);
                s.max = std::max(s.max, v);
            }
            sum += v;
            ++s.n;
        }
    }
    if (s.n > 0)
        s.mean = sum / static_cast<double>(s.n);
    return s;
}

void
writeBenchJson(std::ostream &os, const std::vector<RunGroup> &groups)
{
    Json doc = Json::object();
    doc.set("version", Json(1.0));
    doc.set("schema", Json("capart-bench-timeseries"));
    Json runs = Json::array();
    for (const RunGroup &g : groups) {
        Json entry = Json::object();
        entry.set("run", Json(g.run));
        entry.set("bench", Json(g.bench));
        entry.set("ts_ms", Json(g.startTsMs));
        entry.set("points", Json(static_cast<double>(g.points.size())));
        entry.set("cached_points",
                  Json(static_cast<double>(g.cachedPoints())));
        entry.set("quarantined_points",
                  Json(static_cast<double>(g.failures.size())));
        entry.set("interrupted", Json(!g.interruptions.empty()));
        entry.set("wall_ms", Json(g.totalWallMs()));
        Json metrics = Json::object();
        for (const std::string &name : metricNames(g)) {
            const MetricStats s = metricStats(g, name);
            Json m = Json::object();
            m.set("mean", Json(s.mean));
            m.set("min", Json(s.min));
            m.set("max", Json(s.max));
            m.set("n", Json(static_cast<double>(s.n)));
            metrics.set(name, std::move(m));
        }
        entry.set("metrics", std::move(metrics));
        runs.push(std::move(entry));
    }
    doc.set("runs", std::move(runs));
    doc.write(os);
    os << "\n";
}

const char *
verdictName(Verdict v)
{
    switch (v) {
      case Verdict::Pass:
        return "PASS";
      case Verdict::Warn:
        return "WARN";
      case Verdict::Fail:
        return "FAIL";
    }
    return "PASS";
}

RunComparison
compareRuns(const RunGroup &baseline, const RunGroup &current,
            const GateOptions &gate)
{
    RunComparison cmp;
    cmp.baselineRun = baseline.run;
    cmp.currentRun = current.run;

    // First point per spec hash per side: the pairing key is "the same
    // canonical experiment", immune to completion-order shuffling.
    std::map<std::uint64_t, const obs::RunRecord *> base_by_spec;
    for (const obs::RunRecord &r : baseline.points)
        base_by_spec.emplace(r.specHash, &r);
    std::map<std::uint64_t, const obs::RunRecord *> cur_by_spec;
    for (const obs::RunRecord &r : current.points)
        cur_by_spec.emplace(r.specHash, &r);

    for (const std::string &name : metricNames(current)) {
        const int dir = metricDirection(name);
        MetricComparison mc;
        mc.name = name;
        mc.direction = dir;

        double base_sum = 0.0;
        double cur_sum = 0.0;
        double worst_move = 0.0;
        const double kAbsent = std::nan("");
        for (const auto &[spec, cur_rec] : cur_by_spec) {
            const auto bit = base_by_spec.find(spec);
            if (bit == base_by_spec.end())
                continue;
            const double cur_v = cur_rec->metric(name, kAbsent);
            const double base_v = bit->second->metric(name, kAbsent);
            if (std::isnan(cur_v) || std::isnan(base_v))
                continue;
            ++mc.pairs;
            base_sum += base_v;
            cur_sum += cur_v;
            const double worse_move =
                static_cast<double>(dir) * (cur_v - base_v);
            if (worse_move > 0.0) {
                ++mc.worse;
                if (worse_move > worst_move) {
                    worst_move = worse_move;
                    mc.worstSpecHash = spec;
                    mc.worstAttrFile = cur_rec->attrFile;
                }
            } else if (worse_move < 0.0) {
                ++mc.better;
            }
            // dir == 0: both counters stay 0; the metric reports only.
        }
        if (mc.pairs == 0)
            continue;
        mc.baselineMean = base_sum / static_cast<double>(mc.pairs);
        mc.currentMean = cur_sum / static_cast<double>(mc.pairs);
        const double denom = std::abs(mc.baselineMean);
        mc.relDelta = denom > 1e-12
                          ? (mc.currentMean - mc.baselineMean) / denom
                          : 0.0;
        mc.pValue = signTestPValue(mc.worse, mc.better);

        if (dir != 0) {
            const double worse_delta =
                static_cast<double>(dir) * mc.relDelta;
            const bool majority_worse = mc.worse > mc.better;
            // Six untied pairs is the smallest sample where a sign
            // test can reach p <= 0.05 (2^-6 < 0.05 <= 2^-5); below
            // that the threshold and majority alone must decide.
            const bool testable = mc.worse + mc.better >= 6;
            if (worse_delta >= gate.failDelta && majority_worse &&
                (!testable || mc.pValue <= gate.alpha)) {
                mc.verdict = Verdict::Fail;
            } else if (worse_delta >= gate.warnDelta &&
                       mc.worse >= mc.better) {
                mc.verdict = Verdict::Warn;
            }
        }
        if (static_cast<int>(mc.verdict) >
            static_cast<int>(cmp.verdict))
            cmp.verdict = mc.verdict;
        cmp.metrics.push_back(std::move(mc));
    }
    return cmp;
}

void
writeMarkdown(std::ostream &os, const std::vector<RunGroup> &groups,
              const RunComparison *cmp, const GateOptions &gate)
{
    os << "# capart benchmark report\n\n";

    os << "## Runs\n\n";
    if (groups.empty()) {
        os << "_No runs in the ledger._\n";
        return;
    }
    os << "| run | bench | points | cached | failed | wall (s) | |\n";
    os << "|---|---|---:|---:|---:|---:|---|\n";
    for (const RunGroup &g : groups) {
        os << "| " << g.run << " | " << g.bench << " | "
           << g.points.size() << " | " << g.cachedPoints() << " | "
           << g.failures.size() << " | "
           << formatDouble(g.totalWallMs() / 1000.0, "%.2f") << " | "
           << (g.interruptions.empty() ? "" : "interrupted") << " |\n";
    }

    // A quarantined point is a hole in the sweep: say which points and
    // why, or a regression can hide inside the gap.
    bool have_failures = false;
    for (const RunGroup &g : groups) {
        for (const obs::RunRecord &rec : g.failures) {
            if (!have_failures) {
                have_failures = true;
                os << "\n### Quarantined points\n\n";
                os << "| run | spec | reason | attempts |\n";
                os << "|---|---|---|---:|\n";
            }
            char hash[24];
            std::snprintf(hash, sizeof(hash), "%016" PRIx64,
                          rec.specHash);
            os << "| " << g.run << " | `0x" << hash << "` | "
               << rec.rule << " | "
               << static_cast<unsigned>(rec.metric("attempts"))
               << " |\n";
        }
    }

    // A sharded sweep's per-shard summary: where the wall time went,
    // which shard burned retries or ate SIGKILLs. Sorted by shard
    // index so the table is deterministic regardless of merge order.
    bool have_shards = false;
    for (const RunGroup &g : groups) {
        std::vector<const obs::RunRecord *> shard_recs;
        for (const obs::RunRecord &rec : g.shards)
            shard_recs.push_back(&rec);
        std::sort(shard_recs.begin(), shard_recs.end(),
                  [](const obs::RunRecord *a, const obs::RunRecord *b) {
                      return a->metric("shard") < b->metric("shard");
                  });
        for (const obs::RunRecord *rec : shard_recs) {
            if (!have_shards) {
                have_shards = true;
                os << "\n### Shards\n\n";
                os << "| run | shard | wall (s) | computed | cached | "
                      "retries | quarantined | timeout kills | crashes "
                      "|\n";
                os << "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
            }
            const std::uint64_t done =
                static_cast<std::uint64_t>(rec->metric("points_done"));
            const std::uint64_t cached = static_cast<std::uint64_t>(
                rec->metric("points_from_cache"));
            os << "| " << g.run << " | "
               << static_cast<unsigned>(rec->metric("shard")) << " | "
               << formatDouble(rec->wallMs / 1000.0, "%.2f") << " | "
               << (done - std::min(done, cached)) << " | " << cached
               << " | "
               << static_cast<std::uint64_t>(rec->metric("retries"))
               << " | "
               << static_cast<std::uint64_t>(
                      rec->metric("points_quarantined"))
               << " | "
               << static_cast<std::uint64_t>(
                      rec->metric("timeout_kills"))
               << " | "
               << static_cast<std::uint64_t>(rec->metric("crashes"))
               << " |\n";
        }
    }

    if (!cmp)
        return;

    os << "\n## Regression gate: " << verdictName(cmp->verdict) << "\n\n";
    os << "Baseline `" << cmp->baselineRun << "` vs current `"
       << cmp->currentRun << "`; warn at "
       << formatDouble(gate.warnDelta * 100.0, "%.3g") << "%, fail at "
       << formatDouble(gate.failDelta * 100.0, "%.3g")
       << "% worse-direction mean delta (sign test alpha "
       << formatDouble(gate.alpha, "%.3g")
       << "). Directions: `+` higher is worse, `-` higher is better, "
          "`.` not gated.\n\n";
    os << "| metric | dir | baseline | current | delta | pairs "
          "| worse/better | p | verdict |\n";
    os << "|---|---|---:|---:|---:|---:|---:|---:|---|\n";
    for (const MetricComparison &m : cmp->metrics) {
        const char dir_ch =
            m.direction > 0 ? '+' : (m.direction < 0 ? '-' : '.');
        os << "| " << m.name << " | " << dir_ch << " | "
           << formatDouble(m.baselineMean) << " | "
           << formatDouble(m.currentMean) << " | "
           << formatDouble(m.relDelta * 100.0, "%+.2f") << "% | "
           << m.pairs << " | " << m.worse << "/" << m.better << " | "
           << formatDouble(m.pValue, "%.3g") << " | "
           << verdictName(m.verdict) << " |\n";
    }

    // Point every gated metric at the single pair that regressed
    // hardest, with the attribution timeline when the run recorded one
    // — the fastest path from "the gate fired" to "who ate the cache".
    const RunGroup *current_group = nullptr;
    for (const RunGroup &g : groups) {
        if (g.run == cmp->currentRun)
            current_group = &g;
    }
    bool have_worst = false;
    for (const MetricComparison &m : cmp->metrics) {
        if (m.verdict == Verdict::Pass || m.worstSpecHash == 0)
            continue;
        if (!have_worst) {
            have_worst = true;
            os << "\n### Worst pairs\n\n";
        }
        char hash[24];
        std::snprintf(hash, sizeof(hash), "%016" PRIx64, m.worstSpecHash);
        os << "- `" << m.name << "`: spec `0x" << hash << "`";
        if (!m.worstAttrFile.empty())
            os << " — attribution timeline `" << m.worstAttrFile << "`";
        // Journaled decision evidence: how many replayable control
        // decisions (Algorithm 6.2 and N-app policy) the current run
        // ledgered for this point.
        if (current_group) {
            std::size_t pair_dec = 0;
            std::size_t napp_dec = 0;
            for (const obs::RunRecord &d : current_group->decisions) {
                if (d.specHash != m.worstSpecHash)
                    continue;
                if (d.kind == "npartition_decision")
                    ++napp_dec;
                else
                    ++pair_dec;
            }
            if (pair_dec > 0)
                os << " — " << pair_dec << " journaled decision(s)";
            if (napp_dec > 0)
                os << " — " << napp_dec
                   << " journaled N-app policy decision(s)";
        }
        os << "\n";
    }
}

void
writeStatusMarkdown(std::ostream &os, const obs::SweepStatus &status)
{
    os << "\n## Sweep status\n\n";
    os << "`" << status.bench << "` run `"
       << (status.run.empty() ? "-" : status.run) << "` — **"
       << status.state << "** with " << status.shards << " shard(s): "
       << status.pointsDone << "/" << status.pointsTotal
       << " points done (" << status.pointsFromCache << " cached, "
       << status.pointsQuarantined << " quarantined, " << status.retries
       << " retries)";
    if (status.throughputPointsPerMin > 0.0)
        os << ", " << formatDouble(status.throughputPointsPerMin, "%.1f")
           << " points/min";
    if (status.pointsDone > 0)
        os << ", cache-hit rate "
           << formatDouble(status.cacheHitRate * 100.0, "%.0f") << "%";
    os << ".\n\n";
    os << "| shard | state | done | cached | quarantined | retries | "
          "spawns | timeout kills | crashes |\n";
    os << "|---:|---|---:|---:|---:|---:|---:|---:|---:|\n";
    for (const obs::ShardStatus &sh : status.shardStates) {
        os << "| " << sh.shard << " | " << sh.state << " | "
           << sh.pointsDone << "/" << sh.pointsAssigned << " | "
           << sh.pointsFromCache << " | " << sh.pointsQuarantined
           << " | " << sh.retries << " | " << sh.spawns << " | "
           << sh.timeoutKills << " | " << sh.crashes << " |\n";
    }
}

} // namespace capart::report
