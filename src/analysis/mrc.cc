#include "analysis/mrc.hh"

#include "common/logging.hh"

namespace capart
{

StackDistanceProfiler::StackDistanceProfiler()
{
    bit_.reserve(1 << 16);
}

void
StackDistanceProfiler::bitAdd(std::size_t pos, int delta)
{
    for (std::size_t i = pos + 1; i <= bit_.size(); i += i & (~i + 1))
        bit_[i - 1] += delta;
}

std::uint64_t
StackDistanceProfiler::bitPrefix(std::size_t pos) const
{
    std::int64_t sum = 0;
    for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1))
        sum += bit_[i - 1];
    capart_assert(sum >= 0);
    return static_cast<std::uint64_t>(sum);
}

void
StackDistanceProfiler::access(Addr line)
{
    const std::uint64_t now = accesses_;
    // Grow the Fenwick tree by one slot for this access. Appending a
    // zero keeps all prefix sums valid.
    bit_.push_back(0);
    // Fix up the new node: its range covers [now+1 - lowbit, now], and
    // appending zero means it must hold the sum of that range.
    {
        const std::size_t i = now + 1;
        const std::size_t low = i & (~i + 1);
        if (low > 1) {
            // Sum of the covered range equals prefix(now-1)-prefix(now-low).
            const std::uint64_t hi = bitPrefix(now - 1);
            const std::uint64_t lo =
                (now >= low) ? bitPrefix(now - low) : 0;
            bit_[now] = static_cast<std::int32_t>(hi - lo);
        }
    }

    const auto it = lastSeen_.find(line);
    if (it == lastSeen_.end()) {
        ++coldMisses_;
    } else {
        const std::uint64_t last = it->second - 1;
        // Stack distance = distinct lines touched since `last` =
        // number of live markers strictly after `last`.
        const std::uint64_t d =
            bitPrefix(now - 1) - bitPrefix(last);
        if (hist_.size() <= d)
            hist_.resize(d + 1, 0);
        ++hist_[d];
        bitAdd(last, -1); // the old marker dies; the line moves to top
    }
    bitAdd(now, +1);
    lastSeen_[line] = now + 1;
    ++accesses_;
}

double
StackDistanceProfiler::missRatio(std::uint64_t capacity_lines) const
{
    if (accesses_ == 0)
        return 0.0;
    // A reuse at stack distance d hits iff the cache holds at least
    // d+1 lines (the referenced line is below d other lines).
    std::uint64_t misses = coldMisses_;
    for (std::uint64_t d = 0; d < hist_.size(); ++d) {
        if (d + 1 > capacity_lines)
            misses += hist_[d];
    }
    return static_cast<double>(misses) / static_cast<double>(accesses_);
}

std::vector<double>
StackDistanceProfiler::missRatios(
    const std::vector<std::uint64_t> &capacities) const
{
    std::vector<double> out;
    out.reserve(capacities.size());
    for (const std::uint64_t c : capacities)
        out.push_back(missRatio(c));
    return out;
}

} // namespace capart
