/**
 * @file
 * Hierarchical agglomerative clustering with single linkage — the
 * scipy-cluster algorithm the paper uses to pick representative
 * applications (§3.5) — plus feature-vector normalization helpers.
 */

#ifndef CAPART_ANALYSIS_CLUSTERING_HH
#define CAPART_ANALYSIS_CLUSTERING_HH

#include <cstddef>
#include <string>
#include <vector>

namespace capart
{

/** One observation: an application and its characterization features. */
struct FeatureVector
{
    std::string name;
    std::vector<double> values;
};

/**
 * Min-max normalize every feature dimension to [0, 1] in place
 * (constant dimensions become 0). All vectors must share an arity.
 */
void normalizeFeatures(std::vector<FeatureVector> &features);

/** Euclidean distance between two (equal-arity) vectors. */
double euclidean(const FeatureVector &a, const FeatureVector &b);

/**
 * One agglomeration step, scipy-linkage style: clusters @p a and @p b
 * (ids < n are leaves; id n+k is the cluster formed by merge k) join at
 * @p distance into a cluster of @p size leaves.
 */
struct Merge
{
    std::size_t a = 0;
    std::size_t b = 0;
    double distance = 0.0;
    std::size_t size = 0;
};

/** The full agglomeration sequence (n-1 merges for n observations). */
struct Dendrogram
{
    std::size_t numLeaves = 0;
    std::vector<Merge> merges;
};

/** Single-linkage agglomerative clustering over Euclidean distances. */
Dendrogram singleLinkage(const std::vector<FeatureVector> &features);

/**
 * Flat clusters: cut the dendrogram at @p cutoff (merges with distance
 * < cutoff are applied). Returns a label per leaf, labels densely
 * numbered from 0 in order of first appearance.
 */
std::vector<unsigned> clustersAtDistance(const Dendrogram &dendro,
                                         double cutoff);

/**
 * Index of the observation closest to the centroid of @p cluster under
 * labeling @p labels — the paper's per-cluster representative.
 */
std::size_t centroidRepresentative(
    const std::vector<FeatureVector> &features,
    const std::vector<unsigned> &labels, unsigned cluster);

/** Number of distinct labels. */
unsigned numClusters(const std::vector<unsigned> &labels);

} // namespace capart

#endif // CAPART_ANALYSIS_CLUSTERING_HH
