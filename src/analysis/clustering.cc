#include "analysis/clustering.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.hh"

namespace capart
{

void
normalizeFeatures(std::vector<FeatureVector> &features)
{
    if (features.empty())
        return;
    const std::size_t dims = features.front().values.size();
    for (const auto &f : features)
        capart_assert(f.values.size() == dims);

    for (std::size_t d = 0; d < dims; ++d) {
        double lo = std::numeric_limits<double>::infinity();
        double hi = -std::numeric_limits<double>::infinity();
        for (const auto &f : features) {
            lo = std::min(lo, f.values[d]);
            hi = std::max(hi, f.values[d]);
        }
        const double span = hi - lo;
        for (auto &f : features)
            f.values[d] = span > 0.0 ? (f.values[d] - lo) / span : 0.0;
    }
}

double
euclidean(const FeatureVector &a, const FeatureVector &b)
{
    capart_assert(a.values.size() == b.values.size());
    double sum = 0.0;
    for (std::size_t d = 0; d < a.values.size(); ++d) {
        const double diff = a.values[d] - b.values[d];
        sum += diff * diff;
    }
    return std::sqrt(sum);
}

Dendrogram
singleLinkage(const std::vector<FeatureVector> &features)
{
    const std::size_t n = features.size();
    Dendrogram dendro;
    dendro.numLeaves = n;
    if (n < 2)
        return dendro;

    // Active clusters, each a list of leaf indices plus its current id.
    struct Cluster
    {
        std::size_t id;
        std::vector<std::size_t> leaves;
    };
    std::vector<Cluster> active;
    for (std::size_t i = 0; i < n; ++i)
        active.push_back(Cluster{i, {i}});

    // Precomputed leaf-to-leaf distances.
    std::vector<double> dist(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            const double d = euclidean(features[i], features[j]);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }
    }

    std::size_t next_id = n;
    while (active.size() > 1) {
        // Single linkage: cluster distance is the minimum leaf pair
        // distance. O(k^2 * leaves^2) is fine at benchmark-suite scale.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 1;
        for (std::size_t i = 0; i < active.size(); ++i) {
            for (std::size_t j = i + 1; j < active.size(); ++j) {
                double d = std::numeric_limits<double>::infinity();
                for (const std::size_t a : active[i].leaves)
                    for (const std::size_t b : active[j].leaves)
                        d = std::min(d, dist[a * n + b]);
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }

        Merge m;
        m.a = active[bi].id;
        m.b = active[bj].id;
        m.distance = best;
        m.size = active[bi].leaves.size() + active[bj].leaves.size();
        dendro.merges.push_back(m);

        Cluster merged;
        merged.id = next_id++;
        merged.leaves = active[bi].leaves;
        merged.leaves.insert(merged.leaves.end(),
                             active[bj].leaves.begin(),
                             active[bj].leaves.end());
        // Erase the higher index first to keep the lower one valid.
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(bj));
        active.erase(active.begin() + static_cast<std::ptrdiff_t>(bi));
        active.push_back(std::move(merged));
    }
    return dendro;
}

std::vector<unsigned>
clustersAtDistance(const Dendrogram &dendro, double cutoff)
{
    const std::size_t n = dendro.numLeaves;
    // Union-find over leaf+merge ids.
    std::vector<std::size_t> parent(n + dendro.merges.size());
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&](std::size_t x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };

    for (std::size_t k = 0; k < dendro.merges.size(); ++k) {
        const Merge &m = dendro.merges[k];
        const std::size_t id = n + k;
        if (m.distance < cutoff) {
            parent[find(m.a)] = id;
            parent[find(m.b)] = id;
        } else {
            // The merge node still needs a root (itself); its children
            // stay separate.
        }
    }

    std::vector<unsigned> labels(n, 0);
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t r = find(i);
        auto it = std::find(roots.begin(), roots.end(), r);
        if (it == roots.end()) {
            roots.push_back(r);
            labels[i] = static_cast<unsigned>(roots.size() - 1);
        } else {
            labels[i] =
                static_cast<unsigned>(std::distance(roots.begin(), it));
        }
    }
    return labels;
}

std::size_t
centroidRepresentative(const std::vector<FeatureVector> &features,
                       const std::vector<unsigned> &labels,
                       unsigned cluster)
{
    capart_assert(features.size() == labels.size());
    const std::size_t dims =
        features.empty() ? 0 : features.front().values.size();

    std::vector<double> centroid(dims, 0.0);
    std::size_t count = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
        if (labels[i] != cluster)
            continue;
        for (std::size_t d = 0; d < dims; ++d)
            centroid[d] += features[i].values[d];
        ++count;
    }
    capart_assert(count > 0);
    for (double &c : centroid)
        c /= static_cast<double>(count);

    double best = std::numeric_limits<double>::infinity();
    std::size_t best_idx = 0;
    for (std::size_t i = 0; i < features.size(); ++i) {
        if (labels[i] != cluster)
            continue;
        double sum = 0.0;
        for (std::size_t d = 0; d < dims; ++d) {
            const double diff = features[i].values[d] - centroid[d];
            sum += diff * diff;
        }
        if (sum < best) {
            best = sum;
            best_idx = i;
        }
    }
    return best_idx;
}

unsigned
numClusters(const std::vector<unsigned> &labels)
{
    unsigned max_label = 0;
    for (const unsigned l : labels)
        max_label = std::max(max_label, l);
    return labels.empty() ? 0 : max_label + 1;
}

} // namespace capart
