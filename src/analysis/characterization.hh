/**
 * @file
 * Assembly of the paper's 19-value characterization feature vectors
 * (§3.5): 7 thread-scaling features, 10 LLC-size features, 1 prefetcher
 * sensitivity, 1 bandwidth sensitivity.
 */

#ifndef CAPART_ANALYSIS_CHARACTERIZATION_HH
#define CAPART_ANALYSIS_CHARACTERIZATION_HH

#include <string>
#include <vector>

#include "analysis/clustering.hh"
#include "common/logging.hh"

namespace capart
{

/** Measured characterization of one application (§3.1–§3.4). */
struct AppCharacterization
{
    std::string name;
    /** Execution time at 2..8 threads relative to 1 thread (7 values). */
    std::vector<double> threadScaling;
    /** Execution time at 10 increasing LLC allocations, normalized to
     *  the largest allocation (10 values). */
    std::vector<double> llcSensitivity;
    /** Exec time with all prefetchers on / all off (1 value, Fig. 3). */
    double prefetchSensitivity = 1.0;
    /** Exec time next to the bandwidth hog / solo (1 value, Fig. 4). */
    double bandwidthSensitivity = 1.0;
};

/** Expected arity of the paper's feature vectors. */
constexpr std::size_t kNumFeatures = 19;

/** Flatten a characterization into the 19-value feature vector. */
inline FeatureVector
toFeatureVector(const AppCharacterization &c)
{
    capart_assert(c.threadScaling.size() == 7);
    capart_assert(c.llcSensitivity.size() == 10);
    FeatureVector f;
    f.name = c.name;
    f.values.reserve(kNumFeatures);
    f.values.insert(f.values.end(), c.threadScaling.begin(),
                    c.threadScaling.end());
    f.values.insert(f.values.end(), c.llcSensitivity.begin(),
                    c.llcSensitivity.end());
    f.values.push_back(c.prefetchSensitivity);
    f.values.push_back(c.bandwidthSensitivity);
    capart_assert(f.values.size() == kNumFeatures);
    return f;
}

} // namespace capart

#endif // CAPART_ANALYSIS_CHARACTERIZATION_HH
