/**
 * @file
 * Exact LRU stack-distance profiling and miss-rate curves.
 *
 * The paper's related work (§7) builds partitioning policies on
 * miss-rate curves — RapidMRC approximates them online, FlexDCP and
 * UCP add hardware monitors. This module provides the reference
 * implementation: Mattson's stack algorithm with a Fenwick-tree
 * holes-counting formulation (O(log n) per access), yielding the exact
 * LRU miss rate at every cache size in one pass. The MRC ablation
 * compares these predictions against the simulator's measured
 * way-sweep curves.
 */

#ifndef CAPART_ANALYSIS_MRC_HH
#define CAPART_ANALYSIS_MRC_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hh"

namespace capart
{

/** One-pass exact LRU stack-distance profiler. */
class StackDistanceProfiler
{
  public:
    StackDistanceProfiler();

    /** Feed one line-granular reference. */
    void access(Addr line);

    /** References seen. */
    std::uint64_t accesses() const { return accesses_; }

    /** Distinct lines seen (cold misses). */
    std::uint64_t uniqueLines() const
    {
        return static_cast<std::uint64_t>(lastSeen_.size());
    }

    /**
     * Exact LRU miss ratio for a fully-associative cache of
     * @p capacity_lines lines (cold misses count as misses).
     */
    double missRatio(std::uint64_t capacity_lines) const;

    /**
     * Miss ratios for several capacities at once (one histogram scan).
     * @p capacities must be sorted ascending.
     */
    std::vector<double> missRatios(
        const std::vector<std::uint64_t> &capacities) const;

    /** Histogram of observed stack distances (index = distance). */
    const std::vector<std::uint64_t> &histogram() const { return hist_; }

  private:
    /** Fenwick (BIT) over access timestamps marking "still in stack". */
    void bitAdd(std::size_t pos, int delta);
    std::uint64_t bitPrefix(std::size_t pos) const;

    std::vector<std::int32_t> bit_;
    std::unordered_map<Addr, std::uint64_t> lastSeen_; //!< line -> time+1
    std::vector<std::uint64_t> hist_;
    std::uint64_t coldMisses_ = 0;
    std::uint64_t accesses_ = 0;
};

} // namespace capart

#endif // CAPART_ANALYSIS_MRC_HH
