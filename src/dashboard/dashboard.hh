/**
 * @file
 * Self-contained HTML dashboard over attribution data.
 *
 * renderDashboardHtml() joins everything the observability layer
 * records about a run — per-owner attribution time series, the
 * partitioner decision journal, SLO evaluations, and the run ledger's
 * point records — into one HTML file with zero external dependencies:
 * all data is embedded as a JSON blob and all charts are drawn
 * client-side by inline vanilla JavaScript into inline SVG. The file
 * opens offline from a CI artifact tab or an `open` on a laptop, years
 * after the toolchain that made it is gone.
 *
 * Charts per experiment point (batch): stacked per-owner LLC
 * way-occupancy timeline with remask markers, per-owner stall
 * breakdown (share of cycles), per-owner power split (W), per-channel
 * DRAM bandwidth, and the SLO burn-rate strip. A table lists every
 * partitioner decision with its complete recorded inputs (the replay
 * contract of core/decision_journal.hh).
 *
 * The renderer is deterministic — no timestamps, no randomness — so
 * golden tests can diff its output byte-for-byte. Under CAPART_OBS=OFF
 * the data sources are empty and the page renders with
 * `data-samples="0"`, which CI greps to prove attribution compiled
 * out.
 */

#ifndef CAPART_DASHBOARD_DASHBOARD_HH
#define CAPART_DASHBOARD_DASHBOARD_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/run_ledger.hh"
#include "obs/timeseries.hh"

namespace capart::dashboard
{

/** Everything one dashboard page shows. */
struct DashboardData
{
    /** Page title (bench name, run id, ...). */
    std::string title;
    /** One batch per experiment point: samples plus journal. */
    std::vector<obs::AttributionBatch> batches;
    /** Ledger `point` records for the summary table (may be empty). */
    std::vector<obs::RunRecord> points;
    /** A sharded sweep's final `status.json` document (see
     *  src/obs/status.hh), embedded verbatim so the page shows the
     *  fleet summary (per-shard retries, kills, quarantines). Empty or
     *  unparsable = section omitted. */
    std::string statusJson;
};

/** Total attribution samples across @p data's batches. */
std::size_t sampleTotal(const DashboardData &data);

/**
 * Serialize @p data as the dashboard's embedded JSON blob (exposed for
 * tests; renderDashboardHtml() embeds exactly this).
 */
std::string dashboardJson(const DashboardData &data);

/** Write the complete self-contained HTML page. */
void renderDashboardHtml(std::ostream &os, const DashboardData &data);

/**
 * Convenience for bench binaries: collect the process-wide
 * obs::timeseries() batches (drained scopes included) and render to
 * @p path. Returns false (after a stderr note) when the file cannot
 * be written. @p points may be empty. A non-empty @p status_path names
 * a sweep `status.json` to embed as the fleet-status section (missing
 * or unreadable is not an error — the section is just omitted).
 */
bool writeDashboardFile(const std::string &path, const std::string &title,
                        const std::vector<obs::RunRecord> &points,
                        const std::string &status_path = "");

} // namespace capart::dashboard

#endif // CAPART_DASHBOARD_DASHBOARD_HH
