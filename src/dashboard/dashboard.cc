#include "dashboard/dashboard.hh"

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"

namespace capart::dashboard
{

namespace
{

/**
 * Make a JSON blob safe inside a <script> element: the only sequence
 * HTML parsing cares about is "</" (it could open "</script>"), and
 * "\/" is a legal JSON escape for "/", so the replacement never
 * changes the parsed value.
 */
std::string
scriptSafe(std::string json)
{
    std::string out;
    out.reserve(json.size());
    for (std::size_t i = 0; i < json.size(); ++i) {
        if (json[i] == '<' && i + 1 < json.size() && json[i + 1] == '/') {
            out += "<\\/";
            ++i;
        } else {
            out += json[i];
        }
    }
    return out;
}

/** One attribution batch as its standalone-document JSON text. */
std::string
batchJson(const obs::AttributionBatch &batch)
{
    std::ostringstream os;
    obs::writeAttributionJson(os, batch);
    std::string text = os.str();
    while (!text.empty() && text.back() == '\n')
        text.pop_back();
    return text;
}

// The page shell. Split around the embedded blob; the JavaScript lives
// in kPageScript below. Everything inline: no fonts, no CDNs, no
// fetches — the file must render from a CI artifact tab, offline.
constexpr const char *kPageHead = R"HTML(<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
:root { color-scheme: light; }
body { font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
       margin: 0 auto; max-width: 960px; padding: 16px 24px 48px;
       color: #1a1a1a; background: #fcfcfc; }
h1 { font-size: 22px; margin: 8px 0 2px; }
h2 { font-size: 16px; margin: 28px 0 4px; }
.meta { color: #666; margin: 0 0 16px; }
.sub { color: #666; font-size: 12px; margin: 0 0 8px; }
select { font: inherit; padding: 2px 6px; margin: 4px 0 12px; }
svg { display: block; background: #fff; border: 1px solid #e3e3e3;
      border-radius: 4px; margin: 4px 0 2px; }
.axis line, .axis path { stroke: #999; }
.grid line { stroke: #eee; }
.axis text { fill: #555; font-size: 11px; }
.ctitle { fill: #333; font-size: 12px; font-weight: 600; }
.legend { display: flex; flex-wrap: wrap; gap: 4px 14px;
          font-size: 12px; color: #444; margin: 2px 0 10px; }
.legend span.swatch { display: inline-block; width: 10px; height: 10px;
          border-radius: 2px; margin-right: 5px; }
table { border-collapse: collapse; font-size: 12px; margin: 6px 0; }
th, td { border: 1px solid #ddd; padding: 3px 8px; text-align: right; }
th { background: #f3f3f3; }
td.s, th.s { text-align: left; font-family: ui-monospace, monospace; }
.empty { color: #888; font-style: italic; margin: 12px 0; }
</style>
</head>
<body>
<script type="application/json" id="capart-data">)HTML";

constexpr const char *kPageMiddle = R"HTML(</script>
<h1 id="page-title"></h1>
<p class="meta" id="page-meta"></p>
<div id="batch-bar"></div>
<div id="charts"></div>
<h2>Partitioner decisions</h2>
<p class="sub">One row per control decision, with the complete
recorded inputs (hover a row for every field). Pair points journal
Algorithm 6.2 rules (plus the watchdog's degradation rules); N-app
points journal one replayable record per Partitioner::decide, named
by policy (shared / fair / ucp / lfoc / dynamic).</p>
<div id="decisions"></div>
<h2>Sweep points</h2>
<div id="points"></div>
<div id="fleet"></div>
<script>
)HTML";

constexpr const char *kPageTail = R"HTML(</script>
</body>
</html>
)HTML";

// All client-side rendering. Vanilla JS + SVG only.
constexpr const char *kPageScript = R"JS('use strict';
(function () {
const data = JSON.parse(document.getElementById('capart-data').textContent);
const batches = data.batches || [];
const points = data.points || [];
const NS = 'http://www.w3.org/2000/svg';

const ownerColors = ['#4e79a7', '#f28e2b', '#59a045', '#b07aa1',
                     '#76b7b2', '#edc948', '#e15759', '#9c755f'];
const stallColors = ['#59a045', '#edc948', '#f28e2b', '#e15759',
                     '#9c755f'];
const stallNames = ['compute', 'L2', 'LLC', 'DRAM', 'queueing'];
const energyColors = ['#4e79a7', '#f28e2b', '#e15759'];
const energyNames = ['core busy', 'LLC', 'DRAM'];

function el(tag, attrs, parent) {
    const e = document.createElementNS(NS, tag);
    for (const k in attrs) e.setAttribute(k, attrs[k]);
    if (parent) parent.appendChild(e);
    return e;
}
function html(tag, cls, parent, text) {
    const e = document.createElement(tag);
    if (cls) e.className = cls;
    if (text !== undefined) e.textContent = text;
    if (parent) parent.appendChild(e);
    return e;
}
function fmt(v, digits) {
    if (!isFinite(v)) return String(v);
    const d = digits === undefined ? 3 : digits;
    if (v !== 0 && (Math.abs(v) >= 1e5 || Math.abs(v) < 1e-3))
        return v.toExponential(2);
    return Number(v.toFixed(d)).toString();
}
function popcount(m) {
    let n = 0;
    for (let v = m >>> 0; v; v &= v - 1) n++;
    return n;
}
function maskHex(m) { return '0x' + (m >>> 0).toString(16); }

function niceTicks(lo, hi, n) {
    if (!(hi > lo)) hi = lo + 1;
    const span = hi - lo;
    const step0 = Math.pow(10, Math.floor(Math.log10(span / n)));
    let step = step0;
    for (const m of [1, 2, 5, 10]) {
        if (span / (step0 * m) <= n) { step = step0 * m; break; }
    }
    const ticks = [];
    for (let v = Math.ceil(lo / step) * step; v <= hi + step * 1e-9;
         v += step)
        ticks.push(Math.abs(v) < step * 1e-9 ? 0 : v);
    return ticks;
}

// One chart frame: axes, grid, scales. Returns {plot, x, y, W, H}.
function frame(parent, o) {
    const M = {l: 56, r: 14, t: 26, b: 36};
    const W = o.w || 860, H = o.h || 200;
    const svg = el('svg', {width: W, height: H + M.t + M.b,
                           viewBox: '0 0 ' + W + ' ' + (H + M.t + M.b)},
                   parent);
    const iw = W - M.l - M.r;
    const x = v => M.l + (v - o.x0) / (o.x1 - o.x0 || 1) * iw;
    const y = v => M.t + H - (v - o.y0) / (o.y1 - o.y0 || 1) * H;
    const grid = el('g', {class: 'grid'}, svg);
    const axis = el('g', {class: 'axis'}, svg);
    el('text', {x: M.l, y: 15, class: 'ctitle'}, svg)
        .textContent = o.title;
    for (const t of niceTicks(o.x0, o.x1, 8)) {
        el('line', {x1: x(t), x2: x(t), y1: M.t, y2: M.t + H}, grid);
        el('line', {x1: x(t), x2: x(t), y1: M.t + H, y2: M.t + H + 4},
           axis);
        const lab = el('text', {x: x(t), y: M.t + H + 16,
                                'text-anchor': 'middle'}, axis);
        lab.textContent = fmt(t);
    }
    for (const t of niceTicks(o.y0, o.y1, 5)) {
        el('line', {x1: M.l, x2: W - M.r, y1: y(t), y2: y(t)}, grid);
        const lab = el('text', {x: M.l - 6, y: y(t) + 3,
                                'text-anchor': 'end'}, axis);
        lab.textContent = fmt(t);
    }
    el('line', {x1: M.l, x2: W - M.r, y1: M.t + H, y2: M.t + H}, axis);
    el('line', {x1: M.l, x2: M.l, y1: M.t, y2: M.t + H}, axis);
    el('text', {x: M.l + iw / 2, y: M.t + H + 31,
                'text-anchor': 'middle', class: 'axis'}, svg)
        .textContent = o.xlab || '';
    const yl = el('text', {x: 14, y: M.t + H / 2, class: 'axis',
                           'text-anchor': 'middle',
                           transform: 'rotate(-90 14 ' + (M.t + H / 2) +
                                      ')'}, svg);
    yl.textContent = o.ylab || '';
    return {plot: el('g', {}, svg), x, y, H, M, W, y0: o.y0, y1: o.y1};
}

function linePath(f, ts, vs, color, dash) {
    let d = '';
    for (let i = 0; i < ts.length; i++)
        d += (i ? 'L' : 'M') + f.x(ts[i]).toFixed(1) + ' ' +
             f.y(vs[i]).toFixed(1);
    const a = {d, fill: 'none', stroke: color, 'stroke-width': 1.6};
    if (dash) a['stroke-dasharray'] = dash;
    el('path', a, f.plot);
}

// Stacked area: layers[k][i] is layer k's value at ts[i].
function stackArea(f, ts, layers, colors) {
    const base = ts.map(() => 0);
    for (let k = 0; k < layers.length; k++) {
        const top = ts.map((_, i) => base[i] + layers[k][i]);
        let d = '';
        for (let i = 0; i < ts.length; i++)
            d += (i ? 'L' : 'M') + f.x(ts[i]).toFixed(1) + ' ' +
                 f.y(top[i]).toFixed(1);
        for (let i = ts.length - 1; i >= 0; i--)
            d += 'L' + f.x(ts[i]).toFixed(1) + ' ' +
                 f.y(base[i]).toFixed(1);
        el('path', {d: d + 'Z', fill: colors[k % colors.length],
                    'fill-opacity': 0.75, stroke: 'none'}, f.plot);
        for (let i = 0; i < ts.length; i++) base[i] = top[i];
    }
}

function marker(f, t, color, label) {
    const g = el('g', {}, f.plot);
    el('line', {x1: f.x(t), x2: f.x(t), y1: f.M.t, y2: f.M.t + f.H,
                stroke: color, 'stroke-width': 1,
                'stroke-dasharray': '3 2'}, g);
    el('title', {}, g).textContent = label;
}

function legend(parent, entries) {
    const box = html('div', 'legend', parent);
    for (const [label, color] of entries) {
        const item = html('span', '', box);
        const sw = html('span', 'swatch', item);
        sw.style.background = color;
        item.appendChild(document.createTextNode(label));
    }
}

function ownerLabel(batch, idx) {
    const parts = (batch.label || '').split('+');
    return parts.length > idx && parts[idx]
        ? parts[idx] + ' (app ' + idx + ')' : 'app ' + idx;
}

// ---- data shaping -----------------------------------------------------

function timesMs(samples) { return samples.map(s => s.t_us / 1000); }

function ownerSeries(samples, idx, get) {
    return samples.map(s => idx < s.owners.length
                            ? get(s.owners[idx]) : 0);
}

function ownerCount(samples) {
    let n = 0;
    for (const s of samples) n = Math.max(n, s.owners.length);
    return n;
}

// Per-interval rates from cumulative owner counters: rate[i] covers
// (t[i-1], t[i]]; the first sample has no interval and is dropped.
function rates(samples, idx, get, perSecond) {
    const out = [];
    for (let i = 1; i < samples.length; i++) {
        const a = idx < samples[i - 1].owners.length
                      ? get(samples[i - 1].owners[idx]) : 0;
        const b = idx < samples[i].owners.length
                      ? get(samples[i].owners[idx]) : 0;
        const dt = (samples[i].t_us - samples[i - 1].t_us) / 1e6;
        out.push(perSecond ? (dt > 0 ? (b - a) / dt : 0) : b - a);
    }
    return out;
}

function decisions(batch) {
    return (batch.journal || []).filter(e => e.kind === 'decision');
}
function sloEntries(batch) {
    return (batch.journal || []).filter(e => e.kind === 'slo');
}
function nappDecisions(batch) {
    return (batch.journal || [])
        .filter(e => e.kind === 'npartition_decision');
}
// One marker per System run inside an N-app point's scope, in run
// order (policies first-run order, then cached solo baselines).
function nappRuns(batch) {
    return (batch.journal || []).filter(e => e.kind === 'napp_run');
}
function isNApp(batch) {
    return nappRuns(batch).length > 0 || nappDecisions(batch).length > 0;
}

// An N-app point's sample stream concatenates several System runs.
// t_us is the sampling hardware thread's local time and jitters
// between threads, but the quantum counter q is strictly increasing
// within one System and restarts with it: split where q drops.
function segmentSamples(samples) {
    const segs = [];
    let cur = [];
    for (const s of samples) {
        if (cur.length && s.q <= cur[cur.length - 1].q) {
            segs.push(cur);
            cur = [];
        }
        cur.push(s);
    }
    if (cur.length) segs.push(cur);
    return segs;
}

// ---- chart sections ---------------------------------------------------

function drawOccupancy(parent, batch, title) {
    const s = batch.samples;
    const ts = timesMs(s);
    const n = ownerCount(s);
    const ways = s.length ? s[0].llc_ways : 12;
    const f = frame(parent, {title: title ||
        'LLC way occupancy by owner (stacked) and allocated ways',
        xlab: 'time (ms)', ylab: 'ways',
        x0: ts[0], x1: ts[ts.length - 1], y0: 0, y1: ways});
    const layers = [];
    for (let k = 0; k < n; k++)
        layers.push(ownerSeries(s, k, o => o.ways));
    stackArea(f, ts, layers, ownerColors);
    for (let k = 0; k < n; k++)
        linePath(f, ts, ownerSeries(s, k, o => popcount(o.mask)),
                 ownerColors[k], '5 3');
    for (const d of decisions(batch)) {
        const fl = d.fields || {};
        if (fl.applied && d.rule !== 'hold')
            marker(f, d.t_us / 1000, '#555',
                   d.rule + ': fg ' + fl.fg_ways + ' -> ' +
                   fl.target_fg_ways + ' ways');
    }
    for (const d of (batch.journal || [])) {
        if (d.kind === 'npartition_decision' && (d.fields || {}).seq > 0)
            marker(f, d.t_us / 1000, '#555',
                   d.rule + ' re-decision #' + d.fields.seq);
    }
    const entries = [];
    for (let k = 0; k < n; k++)
        entries.push([ownerLabel(batch, k) + ' occupied',
                      ownerColors[k]]);
    entries.push(['dashed: allocated ways', '#888']);
    entries.push(['markers: applied remasks', '#555']);
    legend(parent, entries);
}

function drawStalls(parent, batch) {
    const s = batch.samples;
    if (s.length < 2) return;
    const ts = timesMs(s).slice(1);
    const n = ownerCount(s);
    const get = [o => o.stall[0], o => o.stall[1], o => o.stall[2],
                 o => o.stall[3], o => o.stall[4]];
    for (let k = 0; k < n; k++) {
        const deltas = get.map(g => rates(s, k, g, false));
        const cyc = rates(s, k, o => o.cycles, false);
        const shares = deltas.map(layer =>
            layer.map((v, i) => cyc[i] > 0 ? v / cyc[i] : 0));
        const f = frame(parent, {title: 'Cycle breakdown — ' +
            ownerLabel(batch, k), xlab: 'time (ms)',
            ylab: 'share of cycles', h: 140,
            x0: ts[0], x1: ts[ts.length - 1], y0: 0, y1: 1});
        stackArea(f, ts, shares, stallColors);
    }
    legend(parent, stallNames.map((nm, i) => [nm, stallColors[i]]));
}

function drawEnergy(parent, batch) {
    const s = batch.samples;
    if (s.length < 2) return;
    const ts = timesMs(s).slice(1);
    const n = ownerCount(s);
    const get = [o => o.energy[0], o => o.energy[1], o => o.energy[2]];
    let ymax = 0;
    const perOwner = [];
    for (let k = 0; k < n; k++) {
        const layers = get.map(g => rates(s, k, g, true));
        perOwner.push(layers);
        for (let i = 0; i < ts.length; i++)
            ymax = Math.max(ymax, layers[0][i] + layers[1][i] +
                                  layers[2][i]);
    }
    for (let k = 0; k < n; k++) {
        const f = frame(parent, {title: 'Attributed power — ' +
            ownerLabel(batch, k), xlab: 'time (ms)', ylab: 'W', h: 140,
            x0: ts[0], x1: ts[ts.length - 1], y0: 0, y1: ymax || 1});
        stackArea(f, ts, perOwner[k], energyColors);
    }
    legend(parent, energyNames.map((nm, i) => [nm, energyColors[i]]));
}

function drawDram(parent, batch) {
    const s = batch.samples;
    if (s.length < 2) return;
    let chans = 0;
    for (const smp of s)
        for (const o of smp.owners)
            chans = Math.max(chans, o.chan.length);
    if (!chans) return;
    const ts = timesMs(s).slice(1);
    const layers = [];
    let ymax = 0;
    for (let c = 0; c < chans; c++) {
        const layer = [];
        for (let i = 1; i < s.length; i++) {
            let a = 0, b = 0;
            for (const o of s[i - 1].owners) a += o.chan[c] || 0;
            for (const o of s[i].owners) b += o.chan[c] || 0;
            const dt = (s[i].t_us - s[i - 1].t_us) / 1e6;
            layer.push(dt > 0 ? (b - a) / dt / 1e9 : 0);
        }
        layers.push(layer);
    }
    for (let i = 0; i < ts.length; i++) {
        let sum = 0;
        for (const l of layers) sum += l[i];
        ymax = Math.max(ymax, sum);
    }
    const f = frame(parent, {title: 'DRAM bandwidth by channel (stacked)',
        xlab: 'time (ms)', ylab: 'GB/s', h: 140,
        x0: ts[0], x1: ts[ts.length - 1], y0: 0, y1: ymax || 1});
    stackArea(f, ts, layers, ownerColors);
    legend(parent, layers.map((_, c) =>
        ['channel ' + c, ownerColors[c % ownerColors.length]]));
}

function drawSlo(parent, batch) {
    const evals = sloEntries(batch);
    if (!evals.length) return;
    const ts = evals.map(e => e.t_us / 1000);
    const short_ = evals.map(e => e.fields.burn_short || 0);
    const long_ = evals.map(e => e.fields.burn_long || 0);
    let ymax = 1.2;
    for (const v of short_.concat(long_))
        if (isFinite(v)) ymax = Math.max(ymax, v);
    const f = frame(parent, {title:
        'SLO burn rate (short/long windows; shaded = in breach)',
        xlab: 'time (ms)', ylab: 'burn rate', h: 120,
        x0: ts[0], x1: ts[ts.length - 1], y0: 0, y1: ymax});
    for (let i = 0; i < evals.length; i++) {
        if (!evals[i].fields.in_breach) continue;
        const x0 = f.x(i ? ts[i - 1] : ts[i]), x1 = f.x(ts[i]);
        el('rect', {x: x0, y: f.M.t, width: Math.max(x1 - x0, 1),
                    height: f.H, fill: '#e15759',
                    'fill-opacity': 0.15}, f.plot);
    }
    linePath(f, [ts[0], ts[ts.length - 1]], [1, 1], '#999', '2 3');
    linePath(f, ts, short_, '#e15759');
    linePath(f, ts, long_, '#4e79a7');
    legend(parent, [['short-window burn', '#e15759'],
                    ['long-window burn', '#4e79a7'],
                    ['burn = 1 (budget-neutral)', '#999']]);
}

// ---- N-app view -------------------------------------------------------

const classColors = ['#edc948', '#e15759', '#4e79a7'];
const classNames = ['light', 'streaming', 'sensitive'];

// Horizontal mini bar chart: one bar per policy, used by the
// side-by-side comparison strip.
function barChart(parent, title, labels, values) {
    const ROW = 18;
    const M = {l: 110, r: 60, t: 24, b: 6};
    const W = 420, H = ROW * labels.length;
    const svg = el('svg', {width: W, height: H + M.t + M.b,
                           viewBox: '0 0 ' + W + ' ' + (H + M.t + M.b)},
                   parent);
    el('text', {x: 8, y: 15, class: 'ctitle'}, svg).textContent = title;
    let vmax = 0;
    for (const v of values)
        if (isFinite(v)) vmax = Math.max(vmax, v);
    const axis = el('g', {class: 'axis'}, svg);
    for (let i = 0; i < labels.length; i++) {
        const y = M.t + ROW * i;
        el('text', {x: M.l - 6, y: y + 13, 'text-anchor': 'end'}, axis)
            .textContent = labels[i];
        const w = vmax > 0 ? (values[i] / vmax) * (W - M.l - M.r) : 0;
        el('rect', {x: M.l, y: y + 4, width: Math.max(w, 1), height: 12,
                    fill: ownerColors[i % ownerColors.length],
                    'fill-opacity': 0.85}, svg);
        el('text', {x: M.l + Math.max(w, 1) + 5, y: y + 13}, axis)
            .textContent = fmt(values[i]);
    }
}

// Side-by-side policy comparison from the point's embedded ledger
// record: <policy>.stp / .unfairness / .socket_energy_j /
// .slo_breaches, one bar per policy run in the same study.
function drawPolicyStrip(parent, b, rules) {
    const pt = points.find(p => p.spec_hash === b.spec_hash &&
                                p.kind === 'point');
    if (!pt || !rules.length) return;
    const byName = pt.metrics || {};
    const specs = [['stp', 'STP (sum of speedups)'],
                   ['unfairness', 'Unfairness (max/min slowdown)'],
                   ['socket_energy_j', 'Socket energy (J)'],
                   ['slo_breaches', 'SLO breaches']];
    for (const [key, title] of specs) {
        const have = rules.filter(r =>
            byName[r + '.' + key] !== undefined);
        if (!have.length) continue;
        barChart(parent, title, have,
                 have.map(r => byName[r + '.' + key]));
    }
}

// LFOC class-transition lane: one horizontal band per app, coloured
// by the class each journaled decision assigned.
function drawClassLane(parent, b, lds) {
    let n = 0;
    for (const e of lds) n = Math.max(n, e.fields.num_apps || 0);
    if (!n) return;
    const ts = lds.map(e => e.t_us / 1000);
    const gap = ts.length > 1 ? ts[ts.length - 1] - ts[ts.length - 2]
                              : 1;
    const tEnd = ts[ts.length - 1] + (gap || 1);
    const f = frame(parent, {title:
        'LFOC class transitions (one lane per app)',
        xlab: 'time (ms)', ylab: 'app', h: Math.max(18 * n, 60),
        x0: ts[0], x1: tEnd, y0: 0, y1: n});
    for (let i = 0; i < lds.length; i++) {
        const x0 = f.x(ts[i]);
        const x1 = f.x(i + 1 < ts.length ? ts[i + 1] : tEnd);
        for (let a = 0; a < n; a++) {
            const c = lds[i].fields['app' + a + '.class'];
            if (c === undefined) continue;
            const g = el('g', {}, f.plot);
            el('rect', {x: x0, y: f.y(a + 1) + 1,
                        width: Math.max(x1 - x0, 1),
                        height: Math.max(f.y(a) - f.y(a + 1) - 2, 1),
                        fill: classColors[c] || '#999',
                        'fill-opacity': 0.8}, g);
            el('title', {}, g).textContent = ownerLabel(b, a) + ': ' +
                (classNames[c] || String(c));
        }
    }
    legend(parent, classNames.map((nm, i) => [nm, classColors[i]]));
}

// Fractional-way bouncing: each sensitive app's granted integer ways
// per decision (solid steps) against its fractional target (dashed).
function drawBounce(parent, b, lds) {
    let n = 0;
    for (const e of lds) n = Math.max(n, e.fields.num_apps || 0);
    const ts = lds.map(e => e.t_us / 1000);
    const sens = [];
    for (let a = 0; a < n; a++) {
        if (lds.some(e => e.fields['app' + a + '.class'] === 2))
            sens.push(a);
    }
    if (!sens.length || ts.length < 2) return;
    let ymax = 1;
    for (const a of sens) {
        for (const e of lds) {
            ymax = Math.max(ymax, e.fields['app' + a + '.ways'] || 0,
                            e.fields['app' + a + '.target'] || 0);
        }
    }
    const f = frame(parent, {title:
        'LFOC way bouncing: granted ways (solid) vs fractional ' +
        'target (dashed)',
        xlab: 'time (ms)', ylab: 'ways', h: 160,
        x0: ts[0], x1: ts[ts.length - 1], y0: 0, y1: ymax + 1});
    for (const a of sens) {
        linePath(f, ts,
                 lds.map(e => e.fields['app' + a + '.ways'] || 0),
                 ownerColors[a % ownerColors.length]);
        linePath(f, ts,
                 lds.map(e => e.fields['app' + a + '.target'] || 0),
                 ownerColors[a % ownerColors.length], '5 3');
    }
    legend(parent, sens.map(a =>
        [ownerLabel(b, a), ownerColors[a % ownerColors.length]]));
}

function drawNAppBatch(charts, dec, b) {
    const runs = nappRuns(b);
    const nds = nappDecisions(b);
    const rules = [];
    for (const r of runs) {
        if (r.rule !== 'solo' && rules.indexOf(r.rule) < 0)
            rules.push(r.rule);
    }
    for (const e of nds) {
        if (rules.indexOf(e.rule) < 0) rules.push(e.rule);
    }
    drawPolicyStrip(charts, b, rules);
    const segs = segmentSamples(b.samples);
    const labeled = runs.length === segs.length && segs.length > 0;
    if (!labeled && b.samples.length) {
        // Markers and sample segments disagree (e.g. a run too short
        // to sample): fall back to the combined stream.
        drawOccupancy(charts, b);
    }
    const labelFor = r => {
        if (r.rule !== 'solo') return b.label;
        const parts = (b.label || '').split('+');
        const a = (r.fields || {}).app || 0;
        return parts[a] || ('app ' + a);
    };
    if (labeled) {
        for (let i = 0; i < runs.length; i++) {
            const rule = runs[i].rule;
            if (rule === 'solo') continue;
            const sub = {label: b.label, samples: segs[i],
                         journal: nds.filter(e => e.rule === rule)
                             .concat(rule === 'dynamic'
                                     ? decisions(b) : [])};
            drawOccupancy(charts, sub,
                'LLC way occupancy by owner — policy: ' + rule);
        }
    }
    const lds = nds.filter(e => e.rule === 'lfoc');
    if (lds.length) {
        drawClassLane(charts, b, lds);
        drawBounce(charts, b, lds);
    }
    if (labeled) {
        // Per-owner detail (stalls / power / DRAM) for one selected
        // System run of the study.
        const detail = document.createElement('div');
        charts.appendChild(detail);
        const sel = document.createElement('select');
        runs.forEach((r, i) => {
            const opt = document.createElement('option');
            opt.value = i;
            opt.textContent = 'detail: ' + (r.rule === 'solo'
                ? 'solo ' + labelFor(r) : 'policy ' + r.rule);
            sel.appendChild(opt);
        });
        detail.appendChild(sel);
        const body = document.createElement('div');
        detail.appendChild(body);
        const drawDetail = i => {
            body.textContent = '';
            const sub = {label: labelFor(runs[i]), samples: segs[i],
                         journal: []};
            drawStalls(body, sub);
            drawEnergy(body, sub);
            drawDram(body, sub);
        };
        sel.addEventListener('change',
                             () => drawDetail(Number(sel.value)));
        drawDetail(0);
    }
    drawSlo(charts, b);
    nappDecisionsTable(dec, b);
    if (decisions(b).length) decisionsTable(dec, b);
}

// ---- tables -----------------------------------------------------------

function nappDecisionsTable(parent, batch) {
    const ds = nappDecisions(batch);
    if (!ds.length) {
        html('p', 'empty', parent,
             'No N-app partitioner decisions recorded for this point.');
        return;
    }
    const classCh = ['L', 'S', '*'];
    const tbl = html('table', '', parent);
    const hdr = html('tr', '', tbl);
    for (const h of ['t (ms)', 'policy', 'seq', 'apps', 'ways',
                     'per-app ways (L light / S streaming / * target)',
                     'applied'])
        html('th', h === 'policy' || h.indexOf('per-app') === 0
                 ? 's' : '', hdr, h);
    for (const d of ds) {
        const fl = d.fields || {};
        const n = fl.num_apps || 0;
        const cells = [];
        for (let a = 0; a < n; a++) {
            let cell = fmt(fl['app' + a + '.ways'], 0);
            const c = fl['app' + a + '.class'];
            if (c !== undefined && c !== 2) cell += classCh[c] || '';
            const t = fl['app' + a + '.target'];
            if (d.rule === 'lfoc' && c === 2 && t !== undefined)
                cell += '*' + fmt(t, 2);
            cells.push(cell);
        }
        const tr = html('tr', '', tbl);
        tr.title = Object.keys(fl).map(k => k + '=' + fmt(fl[k], 6))
                         .join('  ');
        html('td', '', tr, fmt(d.t_us / 1000));
        html('td', 's', tr, d.rule);
        html('td', '', tr, fmt(fl.seq, 0));
        html('td', '', tr, fmt(n, 0));
        html('td', '', tr, fmt(fl.total_ways, 0));
        html('td', 's', tr, cells.join(' '));
        html('td', '', tr, fl.applied ? 'yes' : 'no');
    }
}

function decisionsTable(parent, batch) {
    const ds = decisions(batch);
    if (!ds.length) {
        html('p', 'empty', parent,
             'No partitioner decisions recorded for this point.');
        return;
    }
    const tbl = html('table', '', parent);
    const hdr = html('tr', '', tbl);
    for (const h of ['t (ms)', 'rule', 'fg ways', 'target', 'mask',
                     'raw MPKI', 'smoothed', 'last', 'delta', 'phase',
                     'probing', 'applied'])
        html('th', h === 'rule' || h === 'mask' ? 's' : '', hdr, h);
    const phases = ['stable', 'transition', 'new-phase'];
    for (const d of ds) {
        const fl = d.fields || {};
        const tr = html('tr', '', tbl);
        tr.title = Object.keys(fl).map(k => k + '=' + fmt(fl[k], 6))
                         .join('  ');
        html('td', '', tr, fmt(d.t_us / 1000));
        html('td', 's', tr, d.rule);
        html('td', '', tr, fmt(fl.fg_ways, 0));
        html('td', '', tr, fmt(fl.target_fg_ways, 0));
        html('td', 's', tr,
             fl.chosen_fg_mask === undefined ? ''
                 : maskHex(fl.chosen_fg_mask));
        html('td', '', tr, fmt(fl.raw_mpki));
        html('td', '', tr, fmt(fl.smoothed_mpki));
        html('td', '', tr, fl.have_last ? fmt(fl.last_mpki) : '-');
        html('td', '', tr, fmt(fl.delta));
        html('td', '', tr, phases[fl.phase] || String(fl.phase));
        html('td', '', tr, fl.probing ? 'yes' : 'no');
        html('td', '', tr, fl.applied ? 'yes' : 'no');
    }
}

function pointsTable(parent) {
    if (!points.length) {
        html('p', 'empty', parent, 'No ledger points embedded.');
        return;
    }
    const cols = [];
    for (const p of points)
        for (const k in (p.metrics || {}))
            if (cols.indexOf(k) < 0) cols.push(k);
    const shown = cols.slice(0, 8);
    const tbl = html('table', '', parent);
    const hdr = html('tr', '', tbl);
    for (const h of ['spec', 'cached'].concat(shown, ['attr file']))
        html('th', 's', hdr, h);
    for (const p of points) {
        const tr = html('tr', '', tbl);
        html('td', 's', tr, (p.spec_hash || '').slice(0, 10));
        html('td', '', tr, p.cached ? 'yes' : 'no');
        const byName = p.metrics || {};
        for (const c of shown)
            html('td', '', tr,
                 byName[c] === undefined ? '-' : fmt(byName[c]));
        html('td', 's', tr, p.attr_file || '-');
    }
}

// Fleet status of a sharded sweep (the supervisor's final
// status.json, embedded verbatim): one row per shard.
function fleetSection(parent) {
    const s = data.status;
    if (!s || !s.shard_states) return;
    html('h2', '', parent, 'Fleet status');
    html('p', 'sub', parent,
         'Sweep ' + (s.state || '?') + ': ' + (s.points_done || 0) +
         '/' + (s.points_total || 0) + ' points done, ' +
         (s.points_from_cache || 0) + ' from cache, ' +
         (s.points_quarantined || 0) + ' quarantined, ' +
         (s.retries || 0) + ' retries across ' + (s.shards || 0) +
         ' shard(s).');
    const tbl = html('table', '', parent);
    const hdr = html('tr', '', tbl);
    for (const h of ['shard', 'state', 'done', 'cached', 'quarantined',
                     'retries', 'spawns', 'timeout kills', 'crashes'])
        html('th', h === 'state' ? 's' : '', hdr, h);
    for (const sh of s.shard_states) {
        const tr = html('tr', '', tbl);
        html('td', '', tr, fmt(sh.shard, 0));
        html('td', 's', tr, sh.state || '?');
        html('td', '', tr, fmt(sh.points_done, 0) + '/' +
                           fmt(sh.points_assigned, 0));
        html('td', '', tr, fmt(sh.points_from_cache, 0));
        html('td', '', tr, fmt(sh.points_quarantined, 0));
        html('td', '', tr, fmt(sh.retries, 0));
        html('td', '', tr, fmt(sh.spawns, 0));
        html('td', '', tr, fmt(sh.timeout_kills, 0));
        html('td', '', tr, fmt(sh.crashes, 0));
    }
}

// ---- page assembly ----------------------------------------------------

function drawBatch(idx) {
    const charts = document.getElementById('charts');
    const dec = document.getElementById('decisions');
    charts.textContent = '';
    dec.textContent = '';
    if (!batches.length) {
        html('p', 'empty', charts,
             'No attribution samples recorded. Run with ' +
             '--obs-sample-period=N (and a CAPART_OBS=ON build) to ' +
             'collect per-owner timelines.');
        html('p', 'empty', dec, 'No decision journal recorded.');
        return;
    }
    const b = batches[idx];
    if (isNApp(b)) {
        drawNAppBatch(charts, dec, b);
        return;
    }
    if (b.samples.length) {
        drawOccupancy(charts, b);
        drawStalls(charts, b);
        drawEnergy(charts, b);
        drawDram(charts, b);
    } else {
        html('p', 'empty', charts,
             'This point recorded journal entries but no samples ' +
             '(sampling period 0 or run shorter than one period).');
    }
    drawSlo(charts, b);
    decisionsTable(dec, b);
}

document.getElementById('page-title').textContent =
    data.title || 'capart dashboard';
document.title = data.title || 'capart dashboard';
let sampleTotal = 0, decisionTotal = 0, nappTotal = 0;
for (const b of batches) {
    sampleTotal += b.samples.length;
    decisionTotal += decisions(b).length;
    nappTotal += nappDecisions(b).length;
}
document.getElementById('page-meta').textContent =
    batches.length + ' point(s), ' + sampleTotal +
    ' attribution sample(s), ' + decisionTotal +
    ' partitioner decision(s), ' + nappTotal +
    ' N-app policy decision(s), ' + points.length +
    ' ledger point record(s).';

if (batches.length > 1) {
    const bar = document.getElementById('batch-bar');
    const sel = document.createElement('select');
    batches.forEach((b, i) => {
        const opt = document.createElement('option');
        opt.value = i;
        opt.textContent = (b.label || 'point ' + i) + ' — ' +
            b.samples.length + ' samples (' + b.spec_hash + ')';
        sel.appendChild(opt);
    });
    sel.addEventListener('change', () => drawBatch(Number(sel.value)));
    bar.appendChild(sel);
}
drawBatch(0);
pointsTable(document.getElementById('points'));
fleetSection(document.getElementById('fleet'));
})();
)JS";

std::string
replaceFirst(std::string haystack, const std::string &needle,
             const std::string &replacement)
{
    const std::size_t pos = haystack.find(needle);
    if (pos != std::string::npos)
        haystack.replace(pos, needle.size(), replacement);
    return haystack;
}

/** Minimal HTML text escaping for the <title> element. */
std::string
htmlEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '&': out += "&amp;"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

std::size_t
sampleTotal(const DashboardData &data)
{
    std::size_t n = 0;
    for (const obs::AttributionBatch &b : data.batches)
        n += b.samples.size();
    return n;
}

std::string
dashboardJson(const DashboardData &data)
{
    // Batches and ledger records reuse their native serializers, so
    // the embedded blob's schemas stay identical to the side files'.
    std::ostringstream os;
    os << "{\"title\":\"" << jsonEscape(data.title) << '"';
    os << ",\"batches\":[";
    for (std::size_t i = 0; i < data.batches.size(); ++i) {
        if (i)
            os << ',';
        os << batchJson(data.batches[i]);
    }
    os << "],\"points\":[";
    for (std::size_t i = 0; i < data.points.size(); ++i) {
        if (i)
            os << ',';
        os << obs::RunLedger::encode(data.points[i]);
    }
    os << "],\"status\":";
    // Re-encode through the parser so a torn or foreign file can never
    // break the page's embedded JSON.
    const auto status = Json::parse(data.statusJson);
    if (!data.statusJson.empty() && status && status->isObj())
        os << status->dump();
    else
        os << "null";
    os << "}";
    return scriptSafe(os.str());
}

void
renderDashboardHtml(std::ostream &os, const DashboardData &data)
{
    // data-samples on <body> is the CI handle: an OBS-off build must
    // produce data-samples="0" no matter what flags were passed.
    std::string head =
        replaceFirst(kPageHead, "__TITLE__", htmlEscape(data.title));
    head = replaceFirst(head, "<body>",
                        "<body data-samples=\"" +
                            std::to_string(sampleTotal(data)) + "\">");
    os << head << dashboardJson(data) << kPageMiddle << kPageScript
       << kPageTail;
}

bool
writeDashboardFile(const std::string &path, const std::string &title,
                   const std::vector<obs::RunRecord> &points,
                   const std::string &status_path)
{
    DashboardData data;
    data.title = title;
    data.batches = obs::timeseries().collect();
    data.points = points;
    if (!status_path.empty()) {
        std::ifstream status(status_path, std::ios::binary);
        if (status) {
            std::ostringstream text;
            text << status.rdbuf();
            data.statusJson = text.str();
        }
    }
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "capart: cannot write --dashboard-out=%s\n",
                     path.c_str());
        return false;
    }
    renderDashboardHtml(out, data);
    return static_cast<bool>(out);
}

} // namespace capart::dashboard
