/**
 * @file
 * Off-chip DRAM interface model: shared bandwidth with queueing delay,
 * per-flow (per-application) traffic accounting so concurrent flows
 * split the pins fairly, and read/write counters for the energy model.
 */

#ifndef CAPART_DRAM_DRAM_MODEL_HH
#define CAPART_DRAM_DRAM_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "interconnect/bandwidth_domain.hh"

namespace capart
{

/** DRAM interface configuration. */
struct DramConfig
{
    /**
     * Sustained bandwidth of the dual-channel DDR3-1333 interface.
     * The rated peak is 21.3 GB/s; mixed read/write streams from
     * multiple cores sustain roughly 80 % of that.
     */
    double peakBytesPerSec = 17e9;
    /** Unloaded DRAM access latency in core cycles. */
    Cycles baseLatency = 180;
    /** Loaded latency tops out around 1.7x unloaded on this platform:
     *  bandwidth starvation, not raw latency, is what crushes victims
     *  (the paper's worst cases are all bandwidth-bound, §8). */
    double maxQueueFactor = 1.7;
    double queueGain = 0.18;
    /** Floor on the bandwidth any one flow can be squeezed to. */
    double minShare = 0.10;
    /**
     * Physical channels behind the shared interface (dual-channel
     * DDR3-1333 on the paper's platform). Only the observability-side
     * per-channel traffic split depends on this; timing models the
     * channels as one aggregated pipe.
     */
    unsigned channels = 2;
};

/**
 * Shared DRAM bandwidth domain. Traffic is attributed to flows
 * (applications) so the simulator can bound each flow's throughput by
 * the bandwidth its competitors leave available — the mechanism behind
 * the paper's Fig. 4 bandwidth-sensitivity results.
 */
class DramModel
{
  public:
    explicit DramModel(const DramConfig &cfg = DramConfig{});

    /** Account @p lines read from DRAM by @p flow at time @p now. */
    void recordRead(Seconds now, unsigned lines, unsigned flow = 0);

    /** Account @p lines of dirty writebacks by @p flow at time @p now. */
    void recordWrite(Seconds now, unsigned lines, unsigned flow = 0);

    /** Uncached/streaming bytes that bypass the caches. */
    void recordUncached(Seconds now, std::uint64_t bytes,
                        unsigned flow = 0);

    /**
     * Record @p flow's *demanded* bandwidth: @p amount window-weighted
     * bytes such that the windowed rate equals bytes/(unthrottled time).
     * Demand can exceed the pins; availableFor() splits the peak
     * proportionally to demand, the way a request-level scheduler
     * serves the flows with more outstanding requests more often.
     */
    void recordDemand(Seconds now, std::uint64_t amount, unsigned flow);

    /** Effective per-miss latency under current total load. */
    Cycles effectiveLatency(Seconds now) const;

    /** Total utilization fraction, clamped to [0, 0.995]. */
    double utilization(Seconds now) const;

    /** Recent achieved bytes/second attributable to @p flow. */
    double flowRate(Seconds now, unsigned flow) const;

    /** Recent demanded bytes/second of @p flow (capped in sharing). */
    double demandRate(Seconds now, unsigned flow) const;

    /**
     * Bandwidth available to @p flow. When total demand fits under the
     * peak, a flow may use whatever the others leave; once the pins
     * oversubscribe, the peak is split proportionally to (capped)
     * per-flow demand, floored at minShare x peak.
     */
    double availableFor(Seconds now, unsigned flow) const;

    std::uint64_t readLines() const { return reads_; }
    std::uint64_t writeLines() const { return writes_; }
    std::uint64_t uncachedBytes() const { return uncached_; }

    /** Total bytes moved over the interface. */
    std::uint64_t totalBytes() const;

    unsigned channels() const { return cfg_.channels; }

    /**
     * Bytes @p flow moved over channel @p ch (observability-only; zero
     * unless obs recording was enabled while the traffic flowed).
     * Traffic is interleaved across channels deterministically per
     * flow, so over any window the split is near-even — the model has
     * no channel-aware address mapping to bias it.
     */
    std::uint64_t channelBytes(unsigned flow, unsigned ch) const;

    /** Bytes all flows together moved over channel @p ch. */
    std::uint64_t channelBytesTotal(unsigned ch) const;

    /** Flows with recorded per-channel traffic. */
    unsigned channelFlows() const
    {
        return static_cast<unsigned>(channelBytes_.size());
    }

    const DramConfig &config() const { return cfg_; }

  private:
    RateWindow &flowWindow(std::vector<RateWindow> &set, unsigned flow);

    /** Attribute @p bytes of @p flow's traffic across the channels. */
    void stripeChannels(unsigned flow, std::uint64_t bytes);

    DramConfig cfg_;
    BandwidthDomain domain_;
    std::vector<RateWindow> flows_;   //!< achieved per-flow traffic
    std::vector<RateWindow> demands_; //!< demanded per-flow traffic
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
    std::uint64_t uncached_ = 0;
    /** Per-flow per-channel byte counters (obs-gated). */
    std::vector<std::vector<std::uint64_t>> channelBytes_;
    /** Per-flow round-robin cursor for remainder bytes. */
    std::vector<unsigned> channelCursor_;
};

} // namespace capart

#endif // CAPART_DRAM_DRAM_MODEL_HH
