#include "dram/dram_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace capart
{

namespace
{

constexpr unsigned kMaxFlows = 64;

BandwidthDomainConfig
toDomainConfig(const DramConfig &cfg)
{
    BandwidthDomainConfig d;
    d.peakBytesPerSec = cfg.peakBytesPerSec;
    d.baseLatency = cfg.baseLatency;
    d.maxQueueFactor = cfg.maxQueueFactor;
    d.queueGain = cfg.queueGain;
    return d;
}

} // namespace

DramModel::DramModel(const DramConfig &cfg)
    : cfg_(cfg), domain_(toDomainConfig(cfg))
{
}

RateWindow &
DramModel::flowWindow(std::vector<RateWindow> &set, unsigned flow)
{
    capart_assert(flow < kMaxFlows);
    const BandwidthDomainConfig &d = domain_.config();
    while (set.size() <= flow)
        set.emplace_back(d.bucketWidth, d.buckets);
    return set[flow];
}

void
DramModel::recordRead(Seconds now, unsigned lines, unsigned flow)
{
    reads_ += lines;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(lines) * kLineBytes;
    domain_.record(now, bytes);
    flowWindow(flows_, flow).record(now, bytes);
}

void
DramModel::recordWrite(Seconds now, unsigned lines, unsigned flow)
{
    writes_ += lines;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(lines) * kLineBytes;
    domain_.record(now, bytes);
    flowWindow(flows_, flow).record(now, bytes);
}

void
DramModel::recordUncached(Seconds now, std::uint64_t bytes, unsigned flow)
{
    uncached_ += bytes;
    domain_.record(now, bytes);
    flowWindow(flows_, flow).record(now, bytes);
}

void
DramModel::recordDemand(Seconds now, std::uint64_t amount, unsigned flow)
{
    flowWindow(demands_, flow).record(now, amount);
}

Cycles
DramModel::effectiveLatency(Seconds now) const
{
    return domain_.effectiveLatency(now);
}

double
DramModel::utilization(Seconds now) const
{
    return domain_.utilization(now);
}

double
DramModel::flowRate(Seconds now, unsigned flow) const
{
    if (flow >= flows_.size())
        return 0.0;
    return flows_[flow].rate(now);
}

double
DramModel::demandRate(Seconds now, unsigned flow) const
{
    if (flow >= demands_.size())
        return 0.0;
    return demands_[flow].rate(now);
}

double
DramModel::availableFor(Seconds now, unsigned flow) const
{
    const double peak = cfg_.peakBytesPerSec;
    // Per-flow demand, capped: one flow cannot claim arbitrarily large
    // scheduler weight no matter how fast it *could* issue.
    const double cap = peak;
    double mine = 0.0;
    double total = 0.0;
    for (unsigned f = 0; f < demands_.size(); ++f) {
        const double d = std::min(demands_[f].rate(now), cap);
        total += d;
        if (f == flow)
            mine = d;
    }
    double avail;
    if (total <= peak) {
        // Undersubscribed: a flow may take whatever the others leave.
        avail = peak - (total - mine);
    } else {
        // Oversubscribed: proportional share by demand weight.
        avail = mine > 0.0 ? peak * mine / total : peak * cfg_.minShare;
    }
    return std::max(avail, cfg_.minShare * peak);
}

std::uint64_t
DramModel::totalBytes() const
{
    return (reads_ + writes_) * kLineBytes + uncached_;
}

} // namespace capart
