#include "dram/dram_model.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/obs.hh"

namespace capart
{

namespace
{

constexpr unsigned kMaxFlows = 64;

BandwidthDomainConfig
toDomainConfig(const DramConfig &cfg)
{
    BandwidthDomainConfig d;
    d.peakBytesPerSec = cfg.peakBytesPerSec;
    d.baseLatency = cfg.baseLatency;
    d.maxQueueFactor = cfg.maxQueueFactor;
    d.queueGain = cfg.queueGain;
    return d;
}

} // namespace

DramModel::DramModel(const DramConfig &cfg)
    : cfg_(cfg), domain_(toDomainConfig(cfg))
{
}

RateWindow &
DramModel::flowWindow(std::vector<RateWindow> &set, unsigned flow)
{
    capart_assert(flow < kMaxFlows);
    const BandwidthDomainConfig &d = domain_.config();
    while (set.size() <= flow)
        set.emplace_back(d.bucketWidth, d.buckets);
    return set[flow];
}

void
DramModel::stripeChannels(unsigned flow, std::uint64_t bytes)
{
    if (!obs::enabled() || bytes == 0)
        return;
    capart_assert(flow < kMaxFlows);
    const unsigned chans = std::max(cfg_.channels, 1u);
    while (channelBytes_.size() <= flow) {
        channelBytes_.emplace_back(chans, 0);
        channelCursor_.push_back(0);
    }
    std::vector<std::uint64_t> &per = channelBytes_[flow];
    // Even split, with the indivisible remainder parked on a rotating
    // cursor so repeated small transfers still spread out. Exact:
    // the per-channel counters always sum to the bytes recorded.
    const std::uint64_t each = bytes / chans;
    for (unsigned c = 0; c < chans; ++c)
        per[c] += each;
    unsigned &cursor = channelCursor_[flow];
    per[cursor] += bytes % chans;
    cursor = (cursor + 1) % chans;
}

void
DramModel::recordRead(Seconds now, unsigned lines, unsigned flow)
{
    reads_ += lines;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(lines) * kLineBytes;
    domain_.record(now, bytes);
    flowWindow(flows_, flow).record(now, bytes);
    stripeChannels(flow, bytes);
}

void
DramModel::recordWrite(Seconds now, unsigned lines, unsigned flow)
{
    writes_ += lines;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(lines) * kLineBytes;
    domain_.record(now, bytes);
    flowWindow(flows_, flow).record(now, bytes);
    stripeChannels(flow, bytes);
}

void
DramModel::recordUncached(Seconds now, std::uint64_t bytes, unsigned flow)
{
    uncached_ += bytes;
    domain_.record(now, bytes);
    flowWindow(flows_, flow).record(now, bytes);
    stripeChannels(flow, bytes);
}

std::uint64_t
DramModel::channelBytes(unsigned flow, unsigned ch) const
{
    if (flow >= channelBytes_.size() || ch >= channelBytes_[flow].size())
        return 0;
    return channelBytes_[flow][ch];
}

std::uint64_t
DramModel::channelBytesTotal(unsigned ch) const
{
    std::uint64_t total = 0;
    for (const auto &per : channelBytes_)
        total += ch < per.size() ? per[ch] : 0;
    return total;
}

void
DramModel::recordDemand(Seconds now, std::uint64_t amount, unsigned flow)
{
    flowWindow(demands_, flow).record(now, amount);
}

Cycles
DramModel::effectiveLatency(Seconds now) const
{
    return domain_.effectiveLatency(now);
}

double
DramModel::utilization(Seconds now) const
{
    return domain_.utilization(now);
}

double
DramModel::flowRate(Seconds now, unsigned flow) const
{
    if (flow >= flows_.size())
        return 0.0;
    return flows_[flow].rate(now);
}

double
DramModel::demandRate(Seconds now, unsigned flow) const
{
    if (flow >= demands_.size())
        return 0.0;
    return demands_[flow].rate(now);
}

double
DramModel::availableFor(Seconds now, unsigned flow) const
{
    const double peak = cfg_.peakBytesPerSec;
    // Per-flow demand, capped: one flow cannot claim arbitrarily large
    // scheduler weight no matter how fast it *could* issue.
    const double cap = peak;
    double mine = 0.0;
    double total = 0.0;
    for (unsigned f = 0; f < demands_.size(); ++f) {
        const double d = std::min(demands_[f].rate(now), cap);
        total += d;
        if (f == flow)
            mine = d;
    }
    double avail;
    if (total <= peak) {
        // Undersubscribed: a flow may take whatever the others leave.
        avail = peak - (total - mine);
    } else {
        // Oversubscribed: proportional share by demand weight.
        avail = mine > 0.0 ? peak * mine / total : peak * cfg_.minShare;
    }
    return std::max(avail, cfg_.minShare * peak);
}

std::uint64_t
DramModel::totalBytes() const
{
    return (reads_ + writes_) * kLineBytes + uncached_;
}

} // namespace capart
