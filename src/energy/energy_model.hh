/**
 * @file
 * Activity-based socket and wall energy accounting (§2.2, §4).
 *
 * Socket energy covers cores, private caches, and the LLC — what the
 * paper reads through RAPL. Wall energy adds DRAM and rest-of-system
 * power, which the paper measured with an external meter. Socket power
 * deliberately does *not* depend on the LLC way allocation: the hardware
 * cannot power-gate ways (§4), so partitioning only saves energy by
 * changing runtime and DRAM traffic — the effect the paper measures.
 */

#ifndef CAPART_ENERGY_ENERGY_MODEL_HH
#define CAPART_ENERGY_ENERGY_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace capart
{

/** Power/energy coefficients of the modeled platform. */
struct EnergyConfig
{
    /** Package power with all cores idle (uncore + LLC static). */
    Watts socketIdle = 9.0;
    /** Extra power of one core executing with one hyperthread. */
    Watts coreActive = 5.0;
    /** Additional power when the second hyperthread is also active. */
    Watts htExtra = 1.2;
    /** Energy per LLC lookup (demand or prefetch). */
    Joules llcAccessEnergy = 1.0e-9;
    /** Energy per 64-byte line moved to/from DRAM (wall only). */
    Joules dramLineEnergy = 20.0e-9;
    /** DRAM background power (wall only). */
    Watts dramBackground = 2.5;
    /** Rest-of-system power at the wall (board, VRs, PSU loss, disk). */
    Watts wallRest = 28.0;
};

/**
 * Integrates socket and wall energy from simulator activity reports.
 * The simulator reports (a) per-hyperthread busy intervals and (b)
 * discrete memory events; idle/static power is charged against total
 * elapsed simulated time when energy is read.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyConfig &cfg = EnergyConfig{})
        : cfg_(cfg)
    {
    }

    /**
     * Charge a busy interval of @p dt seconds on one hyperthread.
     * @param smt_peer_active  the sibling hyperthread was busy too; the
     *        pair splits one coreActive plus one htExtra between them.
     */
    void
    addBusy(Seconds dt, bool smt_peer_active)
    {
        const Watts p = smt_peer_active
            ? (cfg_.coreActive + cfg_.htExtra) * 0.5
            : cfg_.coreActive;
        dynamicSocket_ += p * dt;
    }

    /** Charge @p n LLC lookups. */
    void
    addLlcAccesses(std::uint64_t n)
    {
        dynamicSocket_ += cfg_.llcAccessEnergy * static_cast<double>(n);
    }

    /** Charge @p lines cache lines moved over the DRAM interface. */
    void
    addDramLines(std::uint64_t lines)
    {
        dramEnergy_ += cfg_.dramLineEnergy * static_cast<double>(lines);
    }

    /** Charge @p bytes of uncached streaming DRAM traffic. */
    void
    addDramBytes(std::uint64_t bytes)
    {
        dramEnergy_ += cfg_.dramLineEnergy *
                       (static_cast<double>(bytes) / kLineBytes);
    }

    /** Socket (RAPL-visible) energy after @p elapsed simulated seconds. */
    Joules
    socketEnergy(Seconds elapsed) const
    {
        return cfg_.socketIdle * elapsed + dynamicSocket_;
    }

    /** Wall energy after @p elapsed simulated seconds. */
    Joules
    wallEnergy(Seconds elapsed) const
    {
        return socketEnergy(elapsed) + dramEnergy_ +
               (cfg_.dramBackground + cfg_.wallRest) * elapsed;
    }

    const EnergyConfig &config() const { return cfg_; }

  private:
    EnergyConfig cfg_;
    Joules dynamicSocket_ = 0.0;
    Joules dramEnergy_ = 0.0;
};

} // namespace capart

#endif // CAPART_ENERGY_ENERGY_MODEL_HH
