/**
 * @file
 * Activity-based socket and wall energy accounting (§2.2, §4).
 *
 * Socket energy covers cores, private caches, and the LLC — what the
 * paper reads through RAPL. Wall energy adds DRAM and rest-of-system
 * power, which the paper measured with an external meter. Socket power
 * deliberately does *not* depend on the LLC way allocation: the hardware
 * cannot power-gate ways (§4), so partitioning only saves energy by
 * changing runtime and DRAM traffic — the effect the paper measures.
 */

#ifndef CAPART_ENERGY_ENERGY_MODEL_HH
#define CAPART_ENERGY_ENERGY_MODEL_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "obs/obs.hh"

namespace capart
{

/** Power/energy coefficients of the modeled platform. */
struct EnergyConfig
{
    /** Package power with all cores idle (uncore + LLC static). */
    Watts socketIdle = 9.0;
    /** Extra power of one core executing with one hyperthread. */
    Watts coreActive = 5.0;
    /** Additional power when the second hyperthread is also active. */
    Watts htExtra = 1.2;
    /** Energy per LLC lookup (demand or prefetch). */
    Joules llcAccessEnergy = 1.0e-9;
    /** Energy per 64-byte line moved to/from DRAM (wall only). */
    Joules dramLineEnergy = 20.0e-9;
    /** DRAM background power (wall only). */
    Watts dramBackground = 2.5;
    /** Rest-of-system power at the wall (board, VRs, PSU loss, disk). */
    Watts wallRest = 28.0;
};

/**
 * Per-owner (per-application) share of the dynamic energy, maintained
 * only while obs is enabled. Charges are added to the owner's bucket
 * and the model total in the same call, so the buckets sum to the
 * totals up to floating-point accumulation order (the attribution
 * tests allow 1e-9 relative slack for exactly that reason).
 */
struct OwnerEnergy
{
    Joules busyJ = 0.0; //!< core busy-interval share of dynamicSocket
    Joules llcJ = 0.0;  //!< LLC lookup share of dynamicSocket
    Joules dramJ = 0.0; //!< line + uncached share of dramEnergy
};

/**
 * Integrates socket and wall energy from simulator activity reports.
 * The simulator reports (a) per-hyperthread busy intervals and (b)
 * discrete memory events; idle/static power is charged against total
 * elapsed simulated time when energy is read.
 *
 * Every charge call optionally names the owning application; owner
 * buckets are observability-only (double-gated like the rest of the
 * obs layer) and never feed back into the charged totals.
 */
class EnergyModel
{
  public:
    /** Owner value meaning "do not attribute this charge". */
    static constexpr unsigned kNoOwner = ~0u;

    explicit EnergyModel(const EnergyConfig &cfg = EnergyConfig{})
        : cfg_(cfg)
    {
    }

    /**
     * Charge a busy interval of @p dt seconds on one hyperthread.
     * @param smt_peer_active  the sibling hyperthread was busy too; the
     *        pair splits one coreActive plus one htExtra between them.
     */
    void
    addBusy(Seconds dt, bool smt_peer_active, unsigned owner = kNoOwner)
    {
        const Watts p = smt_peer_active
            ? (cfg_.coreActive + cfg_.htExtra) * 0.5
            : cfg_.coreActive;
        dynamicSocket_ += p * dt;
        if (obs::enabled() && owner != kNoOwner)
            ownerBucket(owner).busyJ += p * dt;
    }

    /** Charge @p n LLC lookups. */
    void
    addLlcAccesses(std::uint64_t n, unsigned owner = kNoOwner)
    {
        const Joules j = cfg_.llcAccessEnergy * static_cast<double>(n);
        dynamicSocket_ += j;
        if (obs::enabled() && owner != kNoOwner)
            ownerBucket(owner).llcJ += j;
    }

    /** Charge @p lines cache lines moved over the DRAM interface. */
    void
    addDramLines(std::uint64_t lines, unsigned owner = kNoOwner)
    {
        const Joules j = cfg_.dramLineEnergy * static_cast<double>(lines);
        dramEnergy_ += j;
        if (obs::enabled() && owner != kNoOwner)
            ownerBucket(owner).dramJ += j;
    }

    /** Charge @p bytes of uncached streaming DRAM traffic. */
    void
    addDramBytes(std::uint64_t bytes, unsigned owner = kNoOwner)
    {
        const Joules j = cfg_.dramLineEnergy *
                         (static_cast<double>(bytes) / kLineBytes);
        dramEnergy_ += j;
        if (obs::enabled() && owner != kNoOwner)
            ownerBucket(owner).dramJ += j;
    }

    /** Owners with at least one attributed charge. */
    unsigned
    ownerCount() const
    {
        return static_cast<unsigned>(owners_.size());
    }

    /** Attributed buckets of @p owner (zeros when never charged). */
    OwnerEnergy
    ownerEnergy(unsigned owner) const
    {
        return owner < owners_.size() ? owners_[owner] : OwnerEnergy{};
    }

    /** Dynamic (non-idle) socket joules accumulated so far. */
    Joules dynamicSocketEnergy() const { return dynamicSocket_; }

    /** DRAM transfer joules accumulated so far (wall only). */
    Joules dramTransferEnergy() const { return dramEnergy_; }

    /** Socket (RAPL-visible) energy after @p elapsed simulated seconds. */
    Joules
    socketEnergy(Seconds elapsed) const
    {
        return cfg_.socketIdle * elapsed + dynamicSocket_;
    }

    /** Wall energy after @p elapsed simulated seconds. */
    Joules
    wallEnergy(Seconds elapsed) const
    {
        return socketEnergy(elapsed) + dramEnergy_ +
               (cfg_.dramBackground + cfg_.wallRest) * elapsed;
    }

    const EnergyConfig &config() const { return cfg_; }

  private:
    OwnerEnergy &
    ownerBucket(unsigned owner)
    {
        if (owner >= owners_.size())
            owners_.resize(owner + 1);
        return owners_[owner];
    }

    EnergyConfig cfg_;
    Joules dynamicSocket_ = 0.0;
    Joules dramEnergy_ = 0.0;
    std::vector<OwnerEnergy> owners_;
};

} // namespace capart

#endif // CAPART_ENERGY_ENERGY_MODEL_HH
