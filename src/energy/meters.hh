/**
 * @file
 * Quantized energy readers mirroring the paper's instruments (§2.2):
 * the RAPL counters update at 1/2^16-second granularity, and the FitPC
 * wall meter samples once per second.
 */

#ifndef CAPART_ENERGY_METERS_HH
#define CAPART_ENERGY_METERS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace capart
{

/**
 * A counter that exposes a continuously integrated energy only at fixed
 * update intervals, like the RAPL MSRs (updates every 2^-16 s) or a wall
 * power meter (updates every second).
 */
class QuantizedEnergyCounter
{
  public:
    /** @param interval seconds between visible updates. */
    explicit QuantizedEnergyCounter(Seconds interval)
        : interval_(interval)
    {
    }

    /** RAPL-style counter: 2^-16 s update period. */
    static QuantizedEnergyCounter
    rapl()
    {
        return QuantizedEnergyCounter(1.0 / 65536.0);
    }

    /** Wall-meter-style counter: 1 s update period. */
    static QuantizedEnergyCounter
    wallMeter()
    {
        return QuantizedEnergyCounter(1.0);
    }

    /** Feed the true integrated energy at simulated time @p now. */
    void
    update(Seconds now, Joules true_energy)
    {
        while (now >= nextUpdate_) {
            // The counter latches the most recent value it was fed when
            // an update boundary passes.
            visible_ = latched_;
            nextUpdate_ += interval_;
        }
        latched_ = true_energy;
    }

    /** Last value visible to software. */
    Joules read() const { return visible_; }

    Seconds interval() const { return interval_; }

  private:
    Seconds interval_;
    Seconds nextUpdate_ = 0.0;
    Joules latched_ = 0.0;
    Joules visible_ = 0.0;
};

/** One timestamped power sample. */
struct PowerSample
{
    Seconds time = 0.0;
    Watts power = 0.0;
};

/**
 * Derives a power trace from successive energy readings, the way the
 * paper correlates wall samples with RAPL via timestamps.
 */
class PowerTrace
{
  public:
    /** Record an energy reading at time @p now. */
    void
    sample(Seconds now, Joules energy)
    {
        if (hasLast_ && now > lastTime_) {
            samples_.push_back(PowerSample{
                now, (energy - lastEnergy_) / (now - lastTime_)});
        }
        lastTime_ = now;
        lastEnergy_ = energy;
        hasLast_ = true;
    }

    const std::vector<PowerSample> &samples() const { return samples_; }

  private:
    bool hasLast_ = false;
    Seconds lastTime_ = 0.0;
    Joules lastEnergy_ = 0.0;
    std::vector<PowerSample> samples_;
};

} // namespace capart

#endif // CAPART_ENERGY_METERS_HH
