/**
 * @file
 * The simulated machine and its quantum-interleaved execution loop.
 *
 * Hardware threads advance in small instruction quanta ordered by local
 * simulated time (the thread furthest behind runs next), so memory
 * accesses from co-scheduled applications interleave at microsecond
 * granularity in the shared LLC, ring, and DRAM — the contention the
 * paper measures. Timing feedback (miss latencies, SMT sharing,
 * bandwidth queueing) is applied per quantum.
 */

#ifndef CAPART_SIM_SYSTEM_HH
#define CAPART_SIM_SYSTEM_HH

#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/types.hh"
#include "cpu/core_model.hh"
#include "dram/dram_model.hh"
#include "energy/energy_model.hh"
#include "interconnect/ring.hh"
#include "mem/hierarchy.hh"
#include "perf/perf_counters.hh"
#include "prefetch/prefetchers.hh"
#include "sim/run_result.hh"
#include "sim/system_config.hh"
#include "workload/access_ring.hh"
#include "workload/generator.hh"

namespace capart
{

class System;

/**
 * Address-space stride between applications (1 TB apart: never alias).
 * Every address an app touches lies in [stride*(id+1), stride*(id+2)),
 * so the owning app of any cache line is recoverable from the line
 * address alone — the basis of per-owner LLC occupancy attribution.
 */
inline constexpr Addr kAppAddressStride = 1ULL << 40;

/**
 * App that owns cache line @p line, or kNoApp for an address outside
 * every app's window (nothing the workload generators emit).
 */
inline AppId
appOfLine(Addr line)
{
    const Addr slot = line / (kAppAddressStride / kLineBytes);
    return slot >= 1 ? static_cast<AppId>(slot - 1) : kNoApp;
}

/**
 * Software hook invoked as perf windows complete — the role the paper's
 * user-level monitoring framework plays (§6.2). Implementations may
 * repartition the LLC through the System reference.
 */
class PartitionController
{
  public:
    virtual ~PartitionController() = default;

    /** A perf window of @p app just closed. */
    virtual void onWindow(System &sys, AppId app, const PerfWindow &w) = 0;
};

/**
 * Interposition point on quantum execution, used by the fault-injection
 * framework (src/fault) to model transient application stalls (page
 * faults, interference from outside the co-schedule, SMM excursions).
 */
class SliceFaultHook
{
  public:
    virtual ~SliceFaultHook() = default;

    /**
     * Cost multiplier (>= 1) for slice @p slice of @p app's next
     * execution quantum; 1 means no fault.
     */
    virtual double quantumStallFactor(AppId app, std::uint64_t slice) = 0;
};

/** The simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &cfg);

    /**
     * Launch an application pinned to explicit hyperthreads (the
     * taskset analogue). Threads are created one per hyperthread.
     *
     * @param continuous  restart forever (background role, §5).
     * @return the new application's id (also its LLC partition slot).
     */
    AppId addApp(const AppParams &params,
                 const std::vector<HwThreadId> &hts,
                 bool continuous = false);

    /**
     * Launch on @p num_cores whole cores starting at @p first_core,
     * filling both hyperthreads of each core first (§3.1).
     */
    AppId addAppOnCores(const AppParams &params, unsigned first_core,
                        unsigned num_cores, bool continuous = false);

    /**
     * Launch with @p num_threads hyperthreads starting at core
     * @p first_core, filling both hyperthreads of a core first.
     */
    AppId addAppThreads(const AppParams &params, unsigned first_core,
                        unsigned num_threads, bool continuous = false);

    /** Restrict @p app's LLC replacement to @p mask (never flushes). */
    void setWayMask(AppId app, WayMask mask);
    WayMask wayMask(AppId app) const;

    /** Install a (non-owned) partition controller. */
    void setController(PartitionController *ctrl) { controller_ = ctrl; }

    /** Install a (non-owned) quantum-stall fault hook. */
    void setSliceFaultHook(SliceFaultHook *hook) { sliceFaults_ = hook; }

    /** Install a (non-owned) telemetry fault hook on @p app's monitor. */
    void setWindowFaultHook(AppId app, WindowFaultHook *hook);

    /** Reconfigure every core's prefetchers (MSR write analogue). */
    void setPrefetchConfig(const PrefetchConfig &cfg);

    /** Run until every non-continuous app completes. */
    RunResult run();

    // ------------- introspection (used by controllers and tests) -----
    Seconds now() const { return now_; }
    unsigned llcWays() const { return cfg_.hierarchy.llc.ways; }
    std::uint64_t llcSizeBytes() const { return cfg_.hierarchy.llc.sizeBytes; }
    unsigned numApps() const { return static_cast<unsigned>(apps_.size()); }
    const PerfMonitor &monitor(AppId app) const;
    CacheHierarchy &hierarchy() { return *hierarchy_; }
    DramModel &dram() { return *dram_; }
    const EnergyModel &energy() const { return energy_; }
    /** Quanta executed so far (the attribution sampling clock). */
    std::uint64_t quantaExecuted() const { return quanta_; }
    const SystemConfig &config() const { return cfg_; }
    const AppParams &appParams(AppId app) const;
    /** True if @p app was launched in continuous (background) mode. */
    bool isContinuous(AppId app) const;

  private:
    /** One launched application. */
    struct AppState
    {
        AppParams params;
        bool continuous = false;
        std::vector<HwThreadId> hts;
        Insts iterationWork = 0; //!< sum of all thread shares
        Insts retiredThisIteration = 0;
        Insts retiredTotal = 0;
        Cycles cycles = 0;
        std::uint64_t llcAccesses = 0;
        std::uint64_t llcMisses = 0;
        std::uint64_t dramReads = 0;
        std::uint64_t dramWrites = 0;
        std::uint64_t uncachedBytes = 0;
        /**
         * Where the app's cycles went (obs-gated; zero when obs is
         * off). The five buckets partition `cycles` exactly: each
         * quantum's total is split by truncating the running prefix
         * sums of the stall breakdown, so no cycle is counted twice
         * or lost.
         */
        std::uint64_t stallCompute = 0;
        std::uint64_t stallL2 = 0;
        std::uint64_t stallLlc = 0;
        std::uint64_t stallDram = 0;
        std::uint64_t stallQueue = 0;
        bool completed = false;
        Seconds completionTime = 0.0;
        unsigned iterations = 0;
        unsigned threadsDone = 0;
        std::unique_ptr<PerfMonitor> perf;
        std::size_t windowsSeen = 0;
    };

    /** One hardware thread. */
    struct HtState
    {
        AppId app = kNoApp;
        std::unique_ptr<ThreadWorkload> workload;
        Seconds localTime = 0.0;
        bool idle = true;
        std::uint64_t slices = 0; //!< quanta executed (fault-hook index)
    };

    /** Run one quantum on hyperthread @p ht. */
    void stepHt(HwThreadId ht);

    /** Snapshot one per-owner attribution sample (obs-gated). */
    void recordAttributionSample();

    /** Hyperthread with the minimum local time among runnable ones. */
    std::optional<HwThreadId> pickNext() const;

    CoreId coreOf(HwThreadId ht) const { return ht / cfg_.htsPerCore; }
    HwThreadId siblingOf(HwThreadId ht) const;
    bool siblingActive(HwThreadId ht) const;

    /** Deliver newly completed perf windows to the controller. */
    void deliverWindows();

    SystemConfig cfg_;
    std::unique_ptr<CacheHierarchy> hierarchy_;
    std::unique_ptr<DramModel> dram_;
    std::unique_ptr<RingInterconnect> ring_;
    CoreTimingModel timing_;
    EnergyModel energy_;
    HierarchyLatencies latencies_;
    std::vector<PrefetcherBank> prefetchers_; //!< one per core

    std::vector<AppState> apps_;
    std::vector<HtState> hts_;
    PartitionController *controller_ = nullptr;
    SliceFaultHook *sliceFaults_ = nullptr;

    Seconds now_ = 0.0;
    bool ran_ = false;
    std::uint64_t quanta_ = 0; //!< attribution sampling clock

    /** Scratch buffers reused across quanta (no per-quantum allocation).
     *  The access ring carries each quantum's block from the workload
     *  generator to the replay loop (see workload/access_ring.hh). */
    AccessRing accessRing_;
    std::vector<PrefetchRequest> prefetchBuf_;
};

} // namespace capart

#endif // CAPART_SIM_SYSTEM_HH
