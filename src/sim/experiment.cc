#include "sim/experiment.hh"

#include "common/logging.hh"

namespace capart
{

SplitMasks
splitWays(unsigned fg_ways, unsigned total_ways)
{
    capart_assert(fg_ways >= 1 && fg_ways < total_ways);
    SplitMasks m;
    m.fg = WayMask::range(0, fg_ways);
    m.bg = WayMask::range(fg_ways, total_ways - fg_ways);
    return m;
}

SoloResult
runSolo(const AppParams &params, const SoloOptions &opts)
{
    capart_assert(opts.threads >= 1);
    System sys(opts.system);
    const AppParams scaled = params.scaled(opts.scale);
    const AppId id = sys.addAppThreads(scaled, 0, opts.threads);
    const unsigned total_ways = sys.llcWays();
    capart_assert(opts.ways >= 1 && opts.ways <= total_ways);
    if (opts.ways < total_ways)
        sys.setWayMask(id, WayMask::range(0, opts.ways));

    const RunResult run = sys.run();
    SoloResult res;
    res.app = run.app(id);
    res.time = run.makespan;
    res.socketEnergy = run.socketEnergy;
    res.wallEnergy = run.wallEnergy;
    res.timedOut = run.timedOut;
    return res;
}

PairResult
runPair(const AppParams &fg, const AppParams &bg, const PairOptions &opts)
{
    SystemConfig cfg = opts.system;
    System sys(cfg);

    const unsigned fg_cores =
        (opts.fgThreads + cfg.htsPerCore - 1) / cfg.htsPerCore;
    capart_assert(opts.fgThreads >= 1 && opts.bgThreads >= 1);
    capart_assert(fg_cores * cfg.htsPerCore +
                      opts.bgThreads <= cfg.numHts());

    const AppId fg_id =
        sys.addAppThreads(fg.scaled(opts.scale), 0, opts.fgThreads);
    const AppId bg_id = sys.addAppThreads(bg.scaled(opts.scale), fg_cores,
                                          opts.bgThreads,
                                          opts.bgContinuous);

    if (!opts.fgMask.empty())
        sys.setWayMask(fg_id, opts.fgMask);
    if (!opts.bgMask.empty())
        sys.setWayMask(bg_id, opts.bgMask);
    if (opts.controller)
        sys.setController(opts.controller);
    if (opts.prepare)
        opts.prepare(sys, fg_id, bg_id);

    const RunResult run = sys.run();
    PairResult res;
    res.fg = run.app(fg_id);
    res.bg = run.app(bg_id);
    res.fgTime = res.fg.completionTime;
    res.bgThroughput = res.bg.throughputIps;
    res.socketEnergy = run.socketEnergy;
    res.wallEnergy = run.wallEnergy;
    res.timedOut = run.timedOut;
    return res;
}

} // namespace capart
