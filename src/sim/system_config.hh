/**
 * @file
 * Whole-system configuration: the paper's platform is 4 cores x 2
 * hyperthreads, the Sandy Bridge cache hierarchy, shared ring and DRAM
 * bandwidth domains, and the RAPL/wall energy model.
 */

#ifndef CAPART_SIM_SYSTEM_CONFIG_HH
#define CAPART_SIM_SYSTEM_CONFIG_HH

#include <cstdint>

#include "cpu/core_model.hh"
#include "dram/dram_model.hh"
#include "energy/energy_model.hh"
#include "interconnect/ring.hh"
#include "mem/cache_config.hh"
#include "prefetch/prefetchers.hh"

namespace capart
{

/** Everything needed to instantiate a @ref System. */
struct SystemConfig
{
    unsigned numCores = 4;
    unsigned htsPerCore = 2;

    HierarchyConfig hierarchy = HierarchyConfig::sandyBridge();
    CpuConfig cpu{};
    DramConfig dram{};
    BandwidthDomainConfig ring = RingInterconnect::defaultConfig();
    EnergyConfig energy{};
    PrefetchConfig prefetch{};

    /** Instructions per scheduling quantum of one hardware thread. */
    Insts quantumInsts = 4000;

    /**
     * Perf-monitor sampling window in simulated seconds. The paper's
     * framework samples every 100 ms of a ~100 s application; our apps
     * are scaled ~10^4x shorter, so the window scales accordingly.
     */
    Seconds perfWindow = 25e-6;

    /** Safety stop for runaway simulations. */
    Seconds maxSimTime = 30.0;

    std::uint64_t seed = 12345;

    unsigned
    numHts() const
    {
        return numCores * htsPerCore;
    }
};

} // namespace capart

#endif // CAPART_SIM_SYSTEM_CONFIG_HH
