/**
 * @file
 * Results of one simulated run: per-application performance counters
 * and whole-system energy, as the paper's measurement stack reports.
 */

#ifndef CAPART_SIM_RUN_RESULT_HH
#define CAPART_SIM_RUN_RESULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace capart
{

/** Counters for one application over a run. */
struct AppRunStats
{
    std::string name;
    /** The app ran to completion at least once. */
    bool completed = false;
    /** Simulated time of the first full completion. */
    Seconds completionTime = 0.0;
    /** Full iterations finished (continuous background apps loop). */
    unsigned iterations = 0;

    Insts retired = 0;
    Cycles cycles = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t uncachedBytes = 0;

    /**
     * Cycle attribution buckets (compute / exposed L2 / exposed LLC /
     * DRAM / queueing). Maintained only while obs recording is on;
     * when populated they partition `cycles` exactly.
     */
    std::uint64_t stallCompute = 0;
    std::uint64_t stallL2 = 0;
    std::uint64_t stallLlc = 0;
    std::uint64_t stallDram = 0;
    std::uint64_t stallQueue = 0;

    /** Instructions per second over the measured interval. */
    double throughputIps = 0.0;

    double
    mpki() const
    {
        return retired ? 1000.0 * static_cast<double>(llcMisses) /
                             static_cast<double>(retired)
                       : 0.0;
    }

    double
    apki() const
    {
        return retired ? 1000.0 * static_cast<double>(llcAccesses) /
                             static_cast<double>(retired)
                       : 0.0;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(retired) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Whole-run outcome. */
struct RunResult
{
    std::vector<AppRunStats> apps;
    /** Time at which the last non-continuous app completed. */
    Seconds makespan = 0.0;
    Joules socketEnergy = 0.0;
    Joules wallEnergy = 0.0;
    std::uint64_t dramTotalBytes = 0;
    /** The run hit the maxSimTime safety stop before completing. */
    bool timedOut = false;

    /** Stats of app @p id (index order of addApp calls). */
    const AppRunStats &
    app(AppId id) const
    {
        return apps.at(id);
    }
};

} // namespace capart

#endif // CAPART_SIM_RUN_RESULT_HH
