/**
 * @file
 * Canned experiment harnesses: solo characterization runs and
 * foreground/background co-scheduling runs with the paper's pinning
 * discipline (each app gets whole cores; both hyperthreads of a core
 * are filled first; co-run apps use disjoint cores, §5).
 */

#ifndef CAPART_SIM_EXPERIMENT_HH
#define CAPART_SIM_EXPERIMENT_HH

#include <cstdint>
#include <functional>

#include "mem/way_mask.hh"
#include "sim/run_result.hh"
#include "sim/system.hh"
#include "sim/system_config.hh"
#include "workload/app_params.hh"

namespace capart
{

/** Options for a solo characterization run (§3). */
struct SoloOptions
{
    /** Hyperthreads given to the app (both HTs of a core first). */
    unsigned threads = 4;
    /** LLC ways the app may replace into (12 = whole cache). */
    unsigned ways = 12;
    /** Instruction-count scale factor for faster sweeps. */
    double scale = 1.0;
    SystemConfig system{};
};

/** Outcome of a solo run. */
struct SoloResult
{
    AppRunStats app;
    Seconds time = 0.0;
    Joules socketEnergy = 0.0;
    Joules wallEnergy = 0.0;
    bool timedOut = false;
};

/** Run one application alone on the machine. */
SoloResult runSolo(const AppParams &params, const SoloOptions &opts);

/** Options for a foreground+background co-run (§5). */
struct PairOptions
{
    /** Hyperthreads for each app (4 = 2 cores x 2 HT, the paper's §5). */
    unsigned fgThreads = 4;
    unsigned bgThreads = 4;
    /** Way masks; empty mask means "all ways" (shared). */
    WayMask fgMask{};
    WayMask bgMask{};
    /** Background restarts continuously (paper's §5 setup). */
    bool bgContinuous = true;
    double scale = 1.0;
    SystemConfig system{};
    /** Optional controller driving dynamic repartitioning. */
    PartitionController *controller = nullptr;
    /**
     * Called after both apps are added and masks/controller installed,
     * immediately before run() — the place to attach fault injectors or
     * extra monitoring to the freshly built System.
     */
    std::function<void(System &sys, AppId fg, AppId bg)> prepare;
};

/** Outcome of a co-run. */
struct PairResult
{
    AppRunStats fg;
    AppRunStats bg;
    Seconds fgTime = 0.0;
    /** Background instructions retired per second of foreground run. */
    double bgThroughput = 0.0;
    Joules socketEnergy = 0.0;
    Joules wallEnergy = 0.0;
    bool timedOut = false;
};

/**
 * Run @p fg on the first half of the cores and @p bg on the second half
 * simultaneously; the run ends when the foreground completes.
 */
PairResult runPair(const AppParams &fg, const AppParams &bg,
                   const PairOptions &opts);

/** Contiguous low-ways mask for the foreground, rest for background. */
struct SplitMasks
{
    WayMask fg;
    WayMask bg;
};

/** Split @p total_ways giving the low @p fg_ways to the foreground. */
SplitMasks splitWays(unsigned fg_ways, unsigned total_ways);

} // namespace capart

#endif // CAPART_SIM_EXPERIMENT_HH
