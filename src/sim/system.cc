#include "sim/system.hh"

#include <algorithm>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace capart
{

System::System(const SystemConfig &cfg)
    : cfg_(cfg),
      hierarchy_(std::make_unique<CacheHierarchy>(cfg.hierarchy,
                                                  cfg.numCores, cfg.seed)),
      dram_(std::make_unique<DramModel>(cfg.dram)),
      ring_(std::make_unique<RingInterconnect>(cfg.ring)),
      timing_(cfg.cpu),
      energy_(cfg.energy)
{
    capart_assert(cfg.numCores >= 1);
    capart_assert(cfg.htsPerCore >= 1);
    capart_assert(cfg.quantumInsts >= 1);
    latencies_.l1 = cfg.hierarchy.l1Latency;
    latencies_.l2 = cfg.hierarchy.l2Latency;
    latencies_.llc = cfg.hierarchy.llcLatency;
    prefetchers_.assign(cfg.numCores, PrefetcherBank(cfg.prefetch));
    hts_.resize(cfg.numHts());
    prefetchBuf_.reserve(16);
}

AppId
System::addApp(const AppParams &params, const std::vector<HwThreadId> &hts,
               bool continuous)
{
    capart_assert(!ran_);
    capart_assert(!hts.empty());
    const unsigned slots = cfg_.hierarchy.llc.partitionSlots
                               ? cfg_.hierarchy.llc.partitionSlots
                               : 1;
    if (apps_.size() >= slots)
        capart_fatal("more apps than LLC partition slots");

    const AppId id = static_cast<AppId>(apps_.size());
    AppState app;
    app.params = params;
    app.params.validate();
    app.continuous = continuous;
    app.hts = hts;
    app.perf = std::make_unique<PerfMonitor>(cfg_.perfWindow);

    const auto num_threads = static_cast<unsigned>(hts.size());
    const Addr base = kAppAddressStride * (static_cast<Addr>(id) + 1);
    for (unsigned t = 0; t < num_threads; ++t) {
        const HwThreadId ht = hts[t];
        capart_assert(ht < hts_.size());
        capart_assert(hts_[ht].app == kNoApp);
        hts_[ht].app = id;
        hts_[ht].workload = std::make_unique<ThreadWorkload>(
            app.params, t, num_threads, base,
            cfg_.seed ^ (0x1234567ULL * (id + 1)) ^ (t * 0x9e37ULL));
        app.iterationWork += hts_[ht].workload->totalWork();
    }
    apps_.push_back(std::move(app));
    return id;
}

AppId
System::addAppOnCores(const AppParams &params, unsigned first_core,
                      unsigned num_cores, bool continuous)
{
    return addAppThreads(params, first_core, num_cores * cfg_.htsPerCore,
                         continuous);
}

AppId
System::addAppThreads(const AppParams &params, unsigned first_core,
                      unsigned num_threads, bool continuous)
{
    // Fill both hyperthreads of one core before moving to the next
    // (the paper's allocation order, §3.1).
    std::vector<HwThreadId> hts;
    for (unsigned i = 0; i < num_threads; ++i)
        hts.push_back(first_core * cfg_.htsPerCore + i);
    return addApp(params, hts, continuous);
}

void
System::setWayMask(AppId app, WayMask mask)
{
    capart_assert(app < apps_.size());
    hierarchy_->setLlcPartition(app, mask);
}

WayMask
System::wayMask(AppId app) const
{
    capart_assert(app < apps_.size());
    return hierarchy_->llcPartition(app);
}

void
System::setWindowFaultHook(AppId app, WindowFaultHook *hook)
{
    capart_assert(app < apps_.size());
    apps_[app].perf->setFaultHook(hook, app);
}

void
System::setPrefetchConfig(const PrefetchConfig &cfg)
{
    for (auto &bank : prefetchers_)
        bank.setConfig(cfg);
}

const PerfMonitor &
System::monitor(AppId app) const
{
    capart_assert(app < apps_.size());
    return *apps_[app].perf;
}

const AppParams &
System::appParams(AppId app) const
{
    capart_assert(app < apps_.size());
    return apps_[app].params;
}

bool
System::isContinuous(AppId app) const
{
    capart_assert(app < apps_.size());
    return apps_[app].continuous;
}

HwThreadId
System::siblingOf(HwThreadId ht) const
{
    const HwThreadId base = (ht / cfg_.htsPerCore) * cfg_.htsPerCore;
    // Two hyperthreads per core on this platform; with more, "sibling
    // active" means any other hyperthread of the core is active.
    return (ht == base) ? base + 1 : base;
}

bool
System::siblingActive(HwThreadId ht) const
{
    if (cfg_.htsPerCore < 2)
        return false;
    const HwThreadId sib = siblingOf(ht);
    if (sib >= hts_.size())
        return false;
    return !hts_[sib].idle;
}

std::optional<HwThreadId>
System::pickNext() const
{
    std::optional<HwThreadId> best;
    for (HwThreadId h = 0; h < hts_.size(); ++h) {
        if (hts_[h].idle)
            continue;
        if (!best || hts_[h].localTime < hts_[*best].localTime)
            best = h;
    }
    return best;
}

void
System::deliverWindows()
{
    if (!controller_)
        return;
    for (AppId id = 0; id < apps_.size(); ++id) {
        AppState &a = apps_[id];
        const auto &windows = a.perf->windows();
        while (a.windowsSeen < windows.size()) {
            controller_->onWindow(*this, id, windows[a.windowsSeen]);
            ++a.windowsSeen;
            if (obs::enabled()) {
                static obs::Counter &delivered =
                    obs::metrics().counter("sim.windows_delivered");
                delivered.inc();
            }
        }
    }
}

void
System::stepHt(HwThreadId ht)
{
    HtState &h = hts_[ht];
    AppState &a = apps_[h.app];
    ThreadWorkload &wl = *h.workload;
    const CoreId core = coreOf(ht);

    const double progress =
        wl.totalWork()
            ? std::min(1.0, static_cast<double>(wl.retired()) /
                                static_cast<double>(wl.totalWork()))
            : 1.0;

    accessRing_.clear();
    const Insts insts =
        wl.runQuantum(cfg_.quantumInsts, progress, accessRing_);
    capart_assert(insts > 0);

    if (obs::enabled()) {
        static obs::Counter &quanta = obs::metrics().counter("sim.quanta");
        quanta.inc();
    }

    QuantumCounts q;
    q.insts = insts;
    std::uint64_t llc_demand = 0;
    std::uint64_t llc_demand_miss = 0;
    std::uint64_t dram_reads = 0;
    std::uint64_t dram_writes = 0;
    std::uint64_t uncached_bytes = 0;
    std::uint64_t prefetch_fills = 0;
    std::uint64_t prefetch_dram_reads = 0;

    // Drain the quantum's block. The replay order — each access, then
    // the prefetches it triggered, then the next access — must match
    // the incremental path exactly: fills perturb replacement state.
    PrefetcherBank &pf = prefetchers_[core];
    for (const MemAccess &acc : accessRing_) {
        if (acc.uncached) {
            // Non-temporal accesses bypass every cache and overlap
            // deeply in the write-combining buffers; their cost is pure
            // bandwidth, applied by the throughput bound below.
            uncached_bytes += kLineBytes;
            dram_->recordUncached(h.localTime, kLineBytes, h.app);
            continue;
        }
        const HierarchyOutcome out =
            hierarchy_->access(core, h.app, acc.addr, acc.write);
        switch (out.servedBy) {
          case ServiceLevel::L1:
            ++q.l1Hits;
            break;
          case ServiceLevel::L2:
            ++q.l2Hits;
            break;
          case ServiceLevel::LLC:
            ++q.llcHits;
            break;
          case ServiceLevel::Memory:
            ++q.llcMisses;
            ++llc_demand_miss;
            break;
        }
        if (out.llcAccess)
            ++llc_demand;
        dram_reads += out.dramReads;
        dram_writes += out.dramWrites;

        prefetchBuf_.clear();
        pf.observe(acc.pc, lineAddr(acc.addr),
                   out.servedBy != ServiceLevel::L1, prefetchBuf_);
        for (const PrefetchRequest &req : prefetchBuf_) {
            const HierarchyOutcome pout =
                req.intoL1
                    ? hierarchy_->prefetchIntoL1(core, h.app, req.line)
                    : hierarchy_->prefetchIntoL2(core, h.app, req.line);
            dram_reads += pout.dramReads;
            dram_writes += pout.dramWrites;
            prefetch_dram_reads += pout.dramReads;
            if (pout.llcAccess)
                ++prefetch_fills;
        }
    }

    // Bandwidth available to this app's flow, judged before this
    // quantum's own traffic is posted (competitors + own recent past).
    // The flow's share is split across the app's running threads: they
    // execute concurrently, so each quantum may claim only its part.
    const std::uint64_t quantum_bytes =
        (dram_reads + dram_writes) * kLineBytes + uncached_bytes;
    unsigned active_threads = 0;
    for (const HwThreadId hw : a.hts)
        active_threads += !hts_[hw].idle;
    if (active_threads == 0)
        active_threads = 1;
    const double avail_bw =
        dram_->availableFor(h.localTime, h.app) / active_threads;

    // Shared-resource feedback under the load present right now.
    if (dram_reads) {
        dram_->recordRead(h.localTime, static_cast<unsigned>(dram_reads),
                          h.app);
    }
    if (dram_writes) {
        dram_->recordWrite(h.localTime,
                           static_cast<unsigned>(dram_writes), h.app);
    }
    const std::uint64_t ring_bytes =
        (llc_demand + prefetch_fills + dram_reads + dram_writes) *
            kLineBytes +
        uncached_bytes;
    if (ring_bytes)
        ring_->domain().record(h.localTime, ring_bytes);

    q.memLatency = dram_->effectiveLatency(h.localTime);
    q.ringExtra = ring_->extraLatency(h.localTime);

    const bool peer = siblingActive(ht);
    // The breakdown's terms sum (in declaration order) to the exact
    // cycles quantumCycles() would return — attribution reuses the
    // timing computation instead of re-deriving it.
    const StallBreakdown stalls = timing_.quantumBreakdown(
        q, a.params.baseIpc, wl.effectiveMlp(progress), peer, latencies_);
    const Cycles model_cycles = CoreTimingModel::totalCycles(stalls);
    Cycles cycles = model_cycles;
    if (sliceFaults_) {
        // An injected stall stretches the quantum: the thread holds the
        // core without retiring faster, like a page fault or an SMI.
        const double stall =
            sliceFaults_->quantumStallFactor(h.app, h.slices);
        if (stall > 1.0)
            cycles = static_cast<Cycles>(static_cast<double>(cycles) *
                                         stall);
    }
    ++h.slices;
    if (quantum_bytes) {
        // A quantum cannot move data faster than the DRAM bandwidth its
        // flow can claim; prefetch-covered streams are bound here.
        const Seconds bw_time =
            static_cast<double>(quantum_bytes) / avail_bw;
        const auto bw_cycles = static_cast<Cycles>(
            bw_time * timing_.config().freqHz);
        cycles = std::max(cycles, bw_cycles);
    }
    const Seconds dt = timing_.cyclesToSeconds(cycles);

    if (quantum_bytes) {
        // Post this flow's *demand*: the rate it would move data at if
        // the pins were unloaded. Weighted by the stretched quantum so
        // the windowed average equals bytes / unthrottled-time.
        const double stretch = static_cast<double>(cycles) /
                               static_cast<double>(model_cycles);
        dram_->recordDemand(
            h.localTime,
            static_cast<std::uint64_t>(
                static_cast<double>(quantum_bytes) * stretch),
            h.app);
    }

    energy_.addBusy(dt, peer, h.app);
    energy_.addLlcAccesses(llc_demand + prefetch_fills, h.app);
    energy_.addDramLines(dram_reads + dram_writes, h.app);
    energy_.addDramBytes(uncached_bytes, h.app);

    if (obs::enabled()) {
        // Split the quantum's integer cycles across the stall buckets
        // by truncating the breakdown's running prefix sums: the five
        // buckets always sum to exactly the cycles charged, and each
        // bucket is within one cycle of its fractional share.
        const auto c0 = static_cast<Cycles>(stalls.base);
        const auto c1 = static_cast<Cycles>(stalls.base + stalls.l2);
        const auto c2 =
            static_cast<Cycles>((stalls.base + stalls.l2) + stalls.llc);
        a.stallCompute += c0;
        a.stallL2 += c1 - c0;
        a.stallLlc += c2 - c1;
        a.stallDram += model_cycles - c2;
        // Everything beyond the core model: bandwidth throttling and
        // injected stalls, i.e. time spent queueing for shared pins.
        a.stallQueue += cycles - model_cycles;
    }

    h.localTime += dt;
    now_ = h.localTime;

    // LLC counters follow the hardware events the paper reads via
    // libpfm: LONGEST_LAT_CACHE.{REFERENCE,MISS} count demand *and*
    // prefetch traffic at the LLC.
    const std::uint64_t llc_acc_counted = llc_demand + prefetch_fills;
    const std::uint64_t llc_miss_counted =
        llc_demand_miss + prefetch_dram_reads;
    a.retiredTotal += insts;
    a.cycles += cycles;
    a.llcAccesses += llc_acc_counted;
    a.llcMisses += llc_miss_counted;
    a.dramReads += dram_reads;
    a.dramWrites += dram_writes;
    a.uncachedBytes += uncached_bytes;
    a.perf->record(h.localTime, insts, llc_acc_counted, llc_miss_counted);

    ++quanta_;
    if (obs::enabled()) {
        const std::uint64_t period = obs::timeseries().period();
        if (period && quanta_ % period == 0)
            recordAttributionSample();
    }

    if (wl.done()) {
        if (a.continuous) {
            if (wl.threadIdx() == 0)
                ++a.iterations;
            wl.restart();
        } else {
            h.idle = true;
            ++a.threadsDone;
            unsigned required = 0;
            for (const HwThreadId hw : a.hts) {
                if (hts_[hw].workload->totalWork() > 0)
                    ++required;
            }
            if (a.threadsDone >= required && !a.completed) {
                a.completed = true;
                a.completionTime = h.localTime;
                if (obs::enabled()) {
                    obs::tracer().instant(
                        "app.complete", "sim", h.localTime * 1e6,
                        {{"app", static_cast<double>(h.app)}});
                }
            }
        }
    }
}

void
System::recordAttributionSample()
{
    obs::AttributionSample s;
    s.tUs = now_ * 1e6;
    s.quantum = quanta_;
    const SetAssocCache &llc = hierarchy_->llc();
    s.llcSets = llc.sets();
    s.llcWays = cfg_.hierarchy.llc.ways;

    s.owners.resize(apps_.size());
    // One read-only tag walk attributes every resident line to the app
    // whose 1 TB address window it falls in.
    llc.forEachResident([&](Addr line, unsigned) {
        ++s.llcResidentLines;
        const AppId owner = appOfLine(line);
        if (owner != kNoApp && owner < s.owners.size())
            ++s.owners[owner].residentLines;
    });

    s.socketDynamicJ = energy_.dynamicSocketEnergy();
    s.dramJ = energy_.dramTransferEnergy();

    const unsigned chans = dram_->channels();
    const double sets = static_cast<double>(s.llcSets);
    for (AppId id = 0; id < apps_.size(); ++id) {
        obs::OwnerSample &o = s.owners[id];
        const AppState &a = apps_[id];
        o.owner = id;
        o.occupancyWays =
            sets > 0.0 ? static_cast<double>(o.residentLines) / sets : 0.0;
        o.wayMaskBits = hierarchy_->llcPartition(id).bits();
        o.retired = a.retiredTotal;
        o.cycles = a.cycles;
        o.stallCompute = a.stallCompute;
        o.stallL2 = a.stallL2;
        o.stallLlc = a.stallLlc;
        o.stallDram = a.stallDram;
        o.stallQueue = a.stallQueue;
        const OwnerEnergy e = energy_.ownerEnergy(id);
        o.busyJ = e.busyJ;
        o.llcJ = e.llcJ;
        o.dramJ = e.dramJ;
        o.channelBytes.resize(chans);
        for (unsigned c = 0; c < chans; ++c)
            o.channelBytes[c] = dram_->channelBytes(id, c);
    }
    obs::timeseries().record(std::move(s));
}

RunResult
System::run()
{
    capart_assert(!ran_);
    ran_ = true;
    capart_assert(!apps_.empty());
    obs::TraceSpan run_span("sim.run", "sim",
                            {{"apps", static_cast<double>(apps_.size())}});

    bool any_primary = false;
    for (const auto &a : apps_)
        any_primary = any_primary || !a.continuous;
    if (!any_primary)
        capart_fatal("no non-continuous application; run() would not end");

    // Threads whose work share is zero (beyond maxThreads) never run.
    for (auto &h : hts_) {
        if (h.app == kNoApp)
            continue;
        if (h.workload->totalWork() == 0)
            h.idle = true;
        else
            h.idle = false;
    }
    // Apps whose every thread has zero work complete instantly (cannot
    // happen with valid params; guard anyway).
    for (auto &a : apps_) {
        if (!a.continuous && a.iterationWork == 0) {
            a.completed = true;
            a.completionTime = 0.0;
        }
    }

    RunResult result;
    auto primaries_done = [&]() {
        for (const auto &a : apps_) {
            if (!a.continuous && !a.completed)
                return false;
        }
        return true;
    };

    while (!primaries_done()) {
        const std::optional<HwThreadId> next = pickNext();
        if (!next) {
            capart_warn("no runnable hardware thread but primaries "
                        "incomplete");
            break;
        }
        if (hts_[*next].localTime > cfg_.maxSimTime) {
            capart_warn("simulation hit maxSimTime safety stop");
            result.timedOut = true;
            break;
        }
        stepHt(*next);
        deliverWindows();
    }

    Seconds makespan = 0.0;
    for (const auto &a : apps_) {
        if (!a.continuous && a.completed)
            makespan = std::max(makespan, a.completionTime);
    }
    if (result.timedOut)
        makespan = std::max(makespan, cfg_.maxSimTime);
    result.makespan = makespan;

    for (const auto &a : apps_) {
        AppRunStats s;
        s.name = a.params.name;
        s.completed = a.completed;
        s.completionTime = a.completionTime;
        s.iterations = a.iterations;
        s.retired = a.retiredTotal;
        s.cycles = a.cycles;
        s.llcAccesses = a.llcAccesses;
        s.llcMisses = a.llcMisses;
        s.dramReads = a.dramReads;
        s.dramWrites = a.dramWrites;
        s.uncachedBytes = a.uncachedBytes;
        s.stallCompute = a.stallCompute;
        s.stallL2 = a.stallL2;
        s.stallLlc = a.stallLlc;
        s.stallDram = a.stallDram;
        s.stallQueue = a.stallQueue;
        s.throughputIps =
            makespan > 0.0
                ? static_cast<double>(a.retiredTotal) / makespan
                : 0.0;
        result.apps.push_back(std::move(s));
    }
    result.socketEnergy = energy_.socketEnergy(makespan);
    result.wallEnergy = energy_.wallEnergy(makespan);
    result.dramTotalBytes = dram_->totalBytes();
    return result;
}

} // namespace capart
