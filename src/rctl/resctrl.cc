#include "rctl/resctrl.hh"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace capart
{

const char *
rctlStatusName(RctlStatus s)
{
    switch (s) {
      case RctlStatus::Ok:
        return "ok";
      case RctlStatus::Exists:
        return "exists";
      case RctlStatus::NotFound:
        return "not-found";
      case RctlStatus::Busy:
        return "busy";
      case RctlStatus::InvalidMask:
        return "invalid-mask";
      case RctlStatus::NoSpace:
        return "no-space";
      case RctlStatus::ParseError:
        return "parse-error";
      case RctlStatus::IoError:
        return "io-error";
    }
    capart_panic("unknown rctl status");
}

ResctrlFs::ResctrlFs(System &sys, CatConstraints cat)
    : sys_(&sys), cat_(cat)
{
    // The default group exists from boot and owns every app.
    Group def;
    def.mask = WayMask::all(sys.llcWays());
    for (AppId a = 0; a < sys.numApps(); ++a)
        def.members.push_back(a);
    groups_.emplace(kDefaultGroup, std::move(def));
}

ResctrlFs::Group *
ResctrlFs::find(const std::string &name)
{
    const auto it = groups_.find(name);
    return it == groups_.end() ? nullptr : &it->second;
}

const ResctrlFs::Group *
ResctrlFs::find(const std::string &name) const
{
    const auto it = groups_.find(name);
    return it == groups_.end() ? nullptr : &it->second;
}

RctlStatus
ResctrlFs::createGroup(const std::string &name)
{
    if (name.empty() || find(name))
        return RctlStatus::Exists;
    if (groups_.size() >= cat_.maxGroups + 1) // +1: default group
        return RctlStatus::NoSpace;
    Group g;
    g.mask = WayMask::all(sys_->llcWays());
    groups_.emplace(name, std::move(g));
    return RctlStatus::Ok;
}

RctlStatus
ResctrlFs::removeGroup(const std::string &name)
{
    if (name.empty())
        return RctlStatus::Busy; // the default group is permanent
    Group *g = find(name);
    if (!g)
        return RctlStatus::NotFound;
    if (!g->members.empty())
        return RctlStatus::Busy;
    groups_.erase(name);
    return RctlStatus::Ok;
}

bool
ResctrlFs::maskAllowed(WayMask mask, unsigned total_ways,
                       const CatConstraints &cat)
{
    if (mask.empty())
        return false;
    if ((mask & WayMask::all(total_ways)) != mask)
        return false;
    if (mask.count() < cat.minWays)
        return false;
    if (cat.requireContiguous) {
        // A contiguous run of ones: x / lowest-run-removed == 0.
        const std::uint32_t bits = mask.bits();
        const std::uint32_t shifted = bits >> std::countr_zero(bits);
        if ((shifted & (shifted + 1)) != 0)
            return false;
    }
    return true;
}

std::optional<WayMask>
ResctrlFs::parseSchemata(const std::string &text, unsigned total_ways)
{
    WayMask mask;
    if (parseSchemataStatus(text, total_ways, mask) != RctlStatus::Ok)
        return std::nullopt;
    return mask;
}

RctlStatus
ResctrlFs::parseSchemataStatus(const std::string &text, unsigned total_ways,
                               WayMask &out)
{
    // Accept "L3:0=<hex>" with optional surrounding whitespace.
    std::string s;
    for (const char c : text) {
        if (!std::isspace(static_cast<unsigned char>(c)))
            s += c;
    }
    const std::string prefix = "L3:0=";
    if (s.rfind(prefix, 0) != 0)
        return RctlStatus::ParseError;
    const std::string hex = s.substr(prefix.size());
    if (hex.empty() || hex.size() > 8)
        return RctlStatus::ParseError;
    std::uint32_t bits = 0;
    for (const char c : hex) {
        bits <<= 4;
        if (c >= '0' && c <= '9')
            bits |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            bits |= static_cast<std::uint32_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            bits |= static_cast<std::uint32_t>(c - 'A' + 10);
        else
            return RctlStatus::ParseError;
    }
    const WayMask mask{bits};
    // An empty mask or bits beyond the cache's ways are syntactically
    // fine but name an allocation the hardware cannot hold.
    if (mask.empty() || (mask & WayMask::all(total_ways)) != mask)
        return RctlStatus::InvalidMask;
    out = mask;
    return RctlStatus::Ok;
}

std::string
ResctrlFs::formatSchemata(WayMask mask)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "L3:0=%x", mask.bits());
    return buf;
}

RctlStatus
ResctrlFs::writeSchemata(const std::string &name,
                         const std::string &schemata)
{
    if (obs::enabled())
        obs::metrics().counter("rctl.schemata_writes").inc();
    Group *g = find(name);
    if (!g)
        return RctlStatus::NotFound;
    WayMask mask;
    const RctlStatus parsed =
        parseSchemataStatus(schemata, sys_->llcWays(), mask);
    if (parsed != RctlStatus::Ok)
        return parsed;
    if (!maskAllowed(mask, sys_->llcWays(), cat_))
        return RctlStatus::InvalidMask;

    // Idempotent fast path: rewriting the installed mask touches no
    // hardware state and cannot fail — what makes retries safe.
    if (g->mask == mask)
        return RctlStatus::Ok;

    if (hook_) {
        const RctlStatus forced = hook_->onSchemataWrite(name);
        if (forced != RctlStatus::Ok) {
            if (obs::enabled())
                obs::metrics().counter("rctl.schemata_failures").inc();
            return forced;
        }
    }

    // Transactional commit: remask every member or roll back the ones
    // already moved, leaving the group's schemata untouched.
    const WayMask old = g->mask;
    std::vector<AppId> moved;
    for (const AppId app : g->members) {
        if (hook_ && !hook_->onApplyMask(name, app)) {
            for (const AppId done : moved)
                sys_->setWayMask(done, old);
            if (obs::enabled()) {
                obs::metrics().counter("rctl.schemata_failures").inc();
                obs::metrics().counter("rctl.rollbacks").inc();
            }
            return RctlStatus::IoError;
        }
        sys_->setWayMask(app, mask);
        moved.push_back(app);
    }
    g->mask = mask;
    if (obs::enabled()) {
        obs::tracer().instant(
            "rctl.write", "rctl", sys_->now() * 1e6,
            {{"mask", static_cast<double>(mask.bits())},
             {"ways", static_cast<double>(mask.count())}});
    }
    return RctlStatus::Ok;
}

RctlStatus
ResctrlFs::writeSchemataWithRetry(const std::string &name,
                                  const std::string &schemata,
                                  unsigned max_attempts)
{
    capart_assert(max_attempts >= 1);
    RctlStatus s = RctlStatus::IoError;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        s = writeSchemata(name, schemata);
        if (s != RctlStatus::IoError)
            return s; // success or a permanent (non-retryable) error
    }
    return s;
}

std::optional<std::string>
ResctrlFs::readSchemata(const std::string &name) const
{
    const Group *g = find(name);
    if (!g)
        return std::nullopt;
    return formatSchemata(g->mask);
}

RctlStatus
ResctrlFs::assignApp(const std::string &name, AppId app)
{
    Group *g = find(name);
    if (!g || app >= sys_->numApps())
        return RctlStatus::NotFound;
    for (auto &[gname, group] : groups_) {
        group.members.erase(
            std::remove(group.members.begin(), group.members.end(), app),
            group.members.end());
    }
    g->members.push_back(app);
    sys_->setWayMask(app, g->mask);
    return RctlStatus::Ok;
}

std::string
ResctrlFs::groupOf(AppId app) const
{
    for (const auto &[name, group] : groups_) {
        if (std::find(group.members.begin(), group.members.end(), app) !=
            group.members.end()) {
            return name;
        }
    }
    return kDefaultGroup;
}

std::vector<std::string>
ResctrlFs::listGroups() const
{
    std::vector<std::string> names;
    names.push_back(kDefaultGroup);
    for (const auto &[name, group] : groups_) {
        if (!name.empty())
            names.push_back(name);
    }
    return names;
}

void
ResctrlFs::applyMask(const Group &g)
{
    for (const AppId app : g.members)
        sys_->setWayMask(app, g.mask);
}

std::optional<ResctrlFs::GroupMonitor>
ResctrlFs::monitor(const std::string &name) const
{
    const Group *g = find(name);
    if (!g)
        return std::nullopt;
    GroupMonitor m;
    for (const AppId app : g->members) {
        const PartitionStats &s =
            sys_->hierarchy().llc().slotStats(app);
        m.llcAccesses += s.accesses;
        m.llcHits += s.hits;
    }
    return m;
}

} // namespace capart
