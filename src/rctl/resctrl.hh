/**
 * @file
 * A Linux-resctrl-flavoured control plane for LLC partitioning.
 *
 * The paper steers its prototype's way masks through a custom BIOS;
 * production hardware exposes the same mechanism (Intel CAT) through
 * the resctrl filesystem: control groups with a `schemata` file
 * ("L3:0=ff0") and a `tasks` file. This module reproduces those
 * semantics over a simulated @ref System so policies written against
 * resctrl port directly:
 *
 *  - groups are created/removed like resctrl directories;
 *  - schemata strings parse/format exactly like `L3:<domain>=<mask>`;
 *  - Intel CAT's hardware rules are enforced (contiguous masks, a
 *    minimum of two ways, a bounded number of CLOS groups);
 *  - assigning an application applies the group's mask, and rewriting
 *    a group's schemata re-masks every member application — without
 *    flushing, per the hardware's semantics (§2.1).
 */

#ifndef CAPART_RCTL_RESCTRL_HH
#define CAPART_RCTL_RESCTRL_HH

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mem/way_mask.hh"
#include "sim/system.hh"

namespace capart
{

/** Outcome of a resctrl operation (errno-style, simplified). */
enum class RctlStatus
{
    Ok,
    Exists,      //!< group already exists
    NotFound,    //!< no such group / app
    Busy,        //!< group still has member tasks
    InvalidMask, //!< violates CAT mask rules
    NoSpace,     //!< out of CLOS (hardware class-of-service) slots
    ParseError,  //!< malformed schemata text (EINVAL on write)
    IoError      //!< transient I/O failure; safe to retry (EIO)
};

const char *rctlStatusName(RctlStatus s);

/**
 * Interposition point on control-plane writes, used by the
 * fault-injection framework (src/fault) to model the transient resctrl
 * failures commodity deployments see (busy MSRs, racing writers).
 */
class RctlFaultHook
{
  public:
    virtual ~RctlFaultHook() = default;

    /**
     * Consulted once per schemata write that would change state;
     * returning anything but Ok fails the write before any mask moves.
     */
    virtual RctlStatus onSchemataWrite(const std::string &group) = 0;

    /**
     * Consulted per member remask while a schemata write commits;
     * false models a transient per-task failure (the write rolls back).
     */
    virtual bool onApplyMask(const std::string &group, AppId app) = 0;
};

/** Hardware-style constraints on allowed masks (Intel CAT rules). */
struct CatConstraints
{
    /** Masks must be one contiguous run of set bits. */
    bool requireContiguous = true;
    /** Minimum number of ways in any mask. */
    unsigned minWays = 1;
    /** Maximum simultaneous control groups (CLOS count). */
    unsigned maxGroups = 4;
};

/** The resctrl-like control plane. */
class ResctrlFs
{
  public:
    /**
     * @param sys  the machine under control (not owned).
     * @param cat  hardware mask constraints.
     */
    explicit ResctrlFs(System &sys, CatConstraints cat = CatConstraints{});

    /** Create a control group (mkdir). New groups start with all ways. */
    RctlStatus createGroup(const std::string &name);

    /** Remove an empty control group (rmdir). */
    RctlStatus removeGroup(const std::string &name);

    /**
     * Write a schemata line ("L3:0=ff0") into a group.
     *
     * The write is transactional: every member is remasked or none is.
     * If a member remask fails mid-commit (transient fault), members
     * already moved are rolled back to the previous mask and the call
     * returns IoError with the group's schemata unchanged. Rewriting
     * the current mask is an idempotent no-op that always succeeds.
     */
    RctlStatus writeSchemata(const std::string &name,
                             const std::string &schemata);

    /**
     * writeSchemata with bounded retry: transient IoError failures are
     * retried up to @p max_attempts total attempts. Idempotent — safe
     * to call again after a reported failure.
     */
    RctlStatus writeSchemataWithRetry(const std::string &name,
                                      const std::string &schemata,
                                      unsigned max_attempts);

    /** Current schemata line of a group. */
    std::optional<std::string> readSchemata(const std::string &name) const;

    /** Move an application into a group (echo pid > tasks). */
    RctlStatus assignApp(const std::string &name, AppId app);

    /** Group currently holding @p app ("" = default group). */
    std::string groupOf(AppId app) const;

    /** All group names, default group first. */
    std::vector<std::string> listGroups() const;

    /** Aggregate LLC monitoring data for a group (CMT-style). */
    struct GroupMonitor
    {
        std::uint64_t llcAccesses = 0;
        std::uint64_t llcHits = 0;
    };
    std::optional<GroupMonitor> monitor(const std::string &name) const;

    /** Parse "L3:0=ff0"; empty optional when malformed. */
    static std::optional<WayMask> parseSchemata(const std::string &text,
                                                unsigned total_ways);

    /**
     * Parse "L3:0=ff0" with a precise error: ParseError for malformed
     * text (missing "L3:0=" prefix, empty/overlong/non-hex digits),
     * InvalidMask for a well-formed mask the cache cannot hold (empty
     * mask or bits beyond @p total_ways). @p out is set only on Ok.
     */
    static RctlStatus parseSchemataStatus(const std::string &text,
                                          unsigned total_ways,
                                          WayMask &out);

    /** Format a mask as "L3:0=<hex>". */
    static std::string formatSchemata(WayMask mask);

    /** True if @p mask satisfies @p cat for a cache of @p total ways. */
    static bool maskAllowed(WayMask mask, unsigned total_ways,
                            const CatConstraints &cat);

    /** Name of the always-present default group. */
    static constexpr const char *kDefaultGroup = "";

    /** Install a (non-owned) fault hook on control-plane writes. */
    void setFaultHook(RctlFaultHook *hook) { hook_ = hook; }

  private:
    struct Group
    {
        WayMask mask;
        std::vector<AppId> members;
    };

    Group *find(const std::string &name);
    const Group *find(const std::string &name) const;
    void applyMask(const Group &g);

    System *sys_;
    CatConstraints cat_;
    std::map<std::string, Group> groups_;
    RctlFaultHook *hook_ = nullptr;
};

} // namespace capart

#endif // CAPART_RCTL_RESCTRL_HH
