/**
 * @file
 * Minimal JSON value, parser, and writer.
 *
 * Just enough JSON for the repository's machine-readable side files —
 * the run ledger (src/obs/run_ledger), the structured log sink
 * (common/logging), and the regression reports (src/report). Objects
 * preserve insertion order so emitted documents are deterministic and
 * diff cleanly. Strict on structure (trailing garbage fails the
 * parse), permissive on nothing; numbers are doubles (callers that
 * need exact 64-bit integers store them as strings).
 */

#ifndef CAPART_COMMON_JSON_HH
#define CAPART_COMMON_JSON_HH

#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace capart
{

/** One JSON value; a tagged union over the seven JSON shapes. */
struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    /** Insertion-ordered members (linear lookup; records are small). */
    std::vector<std::pair<std::string, Json>> obj;

    Json() = default;
    explicit Json(bool b) : kind(Kind::Bool), boolean(b) {}
    explicit Json(double d) : kind(Kind::Num), num(d) {}
    explicit Json(std::string s) : kind(Kind::Str), str(std::move(s)) {}
    explicit Json(const char *s) : kind(Kind::Str), str(s) {}

    static Json array() { Json j; j.kind = Kind::Arr; return j; }
    static Json object() { Json j; j.kind = Kind::Obj; return j; }

    bool isNull() const { return kind == Kind::Null; }
    bool isObj() const { return kind == Kind::Obj; }
    bool isArr() const { return kind == Kind::Arr; }

    /** True when this is an object with member @p key. */
    bool has(const std::string &key) const;

    /**
     * Member @p key of an object, or a shared null value when absent
     * (so lookups chain without null checks: `j.at("a").at("b")`).
     */
    const Json &at(const std::string &key) const;

    /** Append/overwrite member @p key (makes this an object). */
    Json &set(const std::string &key, Json v);

    /** Append an element (makes this an array). */
    Json &push(Json v);

    // Typed accessors with defaults for absent/mismatched values.
    double asNum(double fallback = 0.0) const;
    std::string asStr(const std::string &fallback = "") const;
    bool asBool(bool fallback = false) const;

    /**
     * Serialize compactly (no whitespace). Doubles print with
     * max_digits10 so values round-trip through parse().
     */
    void write(std::ostream &os) const;
    std::string dump() const;

    /** Parse a complete document; nullopt on any syntax error. */
    static std::optional<Json> parse(const std::string &text);
};

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Write a double the way Json::write does (round-trip precision). */
void jsonWriteNumber(std::ostream &os, double v);

} // namespace capart

#endif // CAPART_COMMON_JSON_HH
