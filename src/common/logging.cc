#include "common/logging.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>

#include "common/json.hh"

namespace capart
{

// ------------------------------------------------ structured JSONL log --

namespace
{

/**
 * The process-wide sink. Heap-allocated on first use and never
 * destroyed, so events from static destructors (atexit exporters,
 * panic paths) can still land.
 */
struct LogSink
{
    std::mutex mutex;
    std::ofstream file;
    bool toStderr = false;
    bool open = false;
    LogLevel level = LogLevel::Info;
};

LogSink &
sink()
{
    static LogSink *s = new LogSink;
    return *s;
}

double
unixMillis()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace

const char *
logLevelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Debug:
        return "debug";
      case LogLevel::Info:
        return "info";
      case LogLevel::Warn:
        return "warn";
      case LogLevel::Error:
        return "error";
    }
    return "info";
}

bool
parseLogLevel(const std::string &text, LogLevel *out)
{
    if (text == "debug")
        *out = LogLevel::Debug;
    else if (text == "info")
        *out = LogLevel::Info;
    else if (text == "warn")
        *out = LogLevel::Warn;
    else if (text == "error")
        *out = LogLevel::Error;
    else
        return false;
    return true;
}

void
LogField::writeTo(std::ostream &os) const
{
    os << '"' << jsonEscape(key_) << "\":";
    switch (kind_) {
      case Kind::Num:
        jsonWriteNumber(os, num_);
        break;
      case Kind::Int:
        os << int_;
        break;
      case Kind::Str:
        os << '"' << jsonEscape(str_) << '"';
        break;
      case Kind::Bool:
        os << (int_ ? "true" : "false");
        break;
    }
}

void
setLogSink(const std::string &path)
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.file.is_open())
        s.file.close();
    s.toStderr = false;
    s.open = false;
    if (path.empty())
        return;
    if (path == "-") {
        s.toStderr = true;
        s.open = true;
        return;
    }
    s.file.open(path, std::ios::app);
    if (!s.file) {
        std::fprintf(stderr, "capart: cannot open log sink %s\n",
                     path.c_str());
        return;
    }
    s.open = true;
}

void
setLogLevel(LogLevel lvl)
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.level = lvl;
}

LogLevel
logLevel()
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.level;
}

bool
logEnabled(LogLevel lvl)
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    return s.open && lvl >= s.level;
}

void
logEvent(LogLevel lvl, const char *event,
         std::initializer_list<LogField> fields)
{
    LogSink &s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    if (!s.open || lvl < s.level)
        return;
    // Build the full line before writing: one write + flush per event
    // keeps the stream line-atomic under concurrent emitters and means
    // a crash truncates at most the final line.
    std::ostringstream line;
    line << "{\"ts_ms\":";
    jsonWriteNumber(line, unixMillis());
    line << ",\"level\":\"" << logLevelName(lvl) << "\",\"event\":\""
         << jsonEscape(event) << '"';
    for (const LogField &f : fields) {
        line << ',';
        f.writeTo(line);
    }
    line << "}\n";
    std::ostream &os = s.toStderr ? std::cerr : s.file;
    os << line.str();
    os.flush();
}

// ------------------------------------------------------ stderr macros --

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    logEvent(LogLevel::Error, "log.panic",
             {{"msg", msg}, {"file", file}, {"line", line}});
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    logEvent(LogLevel::Error, "log.fatal",
             {{"msg", msg}, {"file", file}, {"line", line}});
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
    logEvent(LogLevel::Warn, "log.warn", {{"msg", msg}});
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
    logEvent(LogLevel::Info, "log.info", {{"msg", msg}});
}

} // namespace capart
