#include "common/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <sstream>

namespace capart
{

namespace
{

/** Recursive-descent parser over the document text. */
class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    std::optional<Json>
    parse()
    {
        std::optional<Json> v = value();
        skipWs();
        if (!v || pos_ != s_.size())
            return std::nullopt;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (s_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::optional<std::string>
    string()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return out;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return std::nullopt;
                const char esc = s_[pos_++];
                switch (esc) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  case 'n': out += '\n'; break;
                  case 'r': out += '\r'; break;
                  case 't': out += '\t'; break;
                  case 'u': {
                    if (pos_ + 4 > s_.size())
                        return std::nullopt;
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = s_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9')
                            cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            cp |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return std::nullopt;
                    }
                    // Escaped names in our documents are ASCII control
                    // characters; anything wider encodes as UTF-8.
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                  }
                  default:
                    return std::nullopt;
                }
            } else {
                out += c;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Json>
    value()
    {
        skipWs();
        if (pos_ >= s_.size())
            return std::nullopt;
        const char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            Json obj = Json::object();
            skipWs();
            if (consume('}'))
                return obj;
            while (true) {
                std::optional<std::string> key = string();
                if (!key || !consume(':'))
                    return std::nullopt;
                std::optional<Json> v = value();
                if (!v)
                    return std::nullopt;
                obj.obj.emplace_back(std::move(*key), std::move(*v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return obj;
                return std::nullopt;
            }
        }
        if (c == '[') {
            ++pos_;
            Json arr = Json::array();
            skipWs();
            if (consume(']'))
                return arr;
            while (true) {
                std::optional<Json> v = value();
                if (!v)
                    return std::nullopt;
                arr.arr.push_back(std::move(*v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return arr;
                return std::nullopt;
            }
        }
        if (c == '"') {
            std::optional<std::string> s = string();
            if (!s)
                return std::nullopt;
            return Json(std::move(*s));
        }
        if (c == 't')
            return literal("true") ? std::optional<Json>(Json(true))
                                   : std::nullopt;
        if (c == 'f')
            return literal("false") ? std::optional<Json>(Json(false))
                                    : std::nullopt;
        if (c == 'n')
            return literal("null") ? std::optional<Json>(Json())
                                   : std::nullopt;
        // Number: delegate to strtod over the longest plausible span.
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start || !std::isfinite(d))
            return std::nullopt;
        pos_ += static_cast<std::size_t>(end - start);
        return Json(d);
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
jsonWriteNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no NaN/Inf; null is the conventional stand-in.
        os << "null";
        return;
    }
    if (v == static_cast<double>(static_cast<long long>(v)) &&
        std::abs(v) < 1e15) {
        os << static_cast<long long>(v);
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    os << buf;
}

bool
Json::has(const std::string &key) const
{
    for (const auto &[k, v] : obj) {
        if (k == key)
            return true;
    }
    return false;
}

const Json &
Json::at(const std::string &key) const
{
    static const Json null;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return v;
    }
    return null;
}

Json &
Json::set(const std::string &key, Json v)
{
    kind = Kind::Obj;
    for (auto &[k, existing] : obj) {
        if (k == key) {
            existing = std::move(v);
            return *this;
        }
    }
    obj.emplace_back(key, std::move(v));
    return *this;
}

Json &
Json::push(Json v)
{
    kind = Kind::Arr;
    arr.push_back(std::move(v));
    return *this;
}

double
Json::asNum(double fallback) const
{
    return kind == Kind::Num ? num : fallback;
}

std::string
Json::asStr(const std::string &fallback) const
{
    return kind == Kind::Str ? str : fallback;
}

bool
Json::asBool(bool fallback) const
{
    return kind == Kind::Bool ? boolean : fallback;
}

void
Json::write(std::ostream &os) const
{
    switch (kind) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (boolean ? "true" : "false");
        break;
      case Kind::Num:
        jsonWriteNumber(os, num);
        break;
      case Kind::Str:
        os << '"' << jsonEscape(str) << '"';
        break;
      case Kind::Arr: {
        os << '[';
        bool first = true;
        for (const Json &v : arr) {
            if (!first)
                os << ',';
            first = false;
            v.write(os);
        }
        os << ']';
        break;
      }
      case Kind::Obj: {
        os << '{';
        bool first = true;
        for (const auto &[k, v] : obj) {
            if (!first)
                os << ',';
            first = false;
            os << '"' << jsonEscape(k) << "\":";
            v.write(os);
        }
        os << '}';
        break;
      }
    }
}

std::string
Json::dump() const
{
    std::ostringstream oss;
    write(oss);
    return oss.str();
}

std::optional<Json>
Json::parse(const std::string &text)
{
    return Parser(text).parse();
}

} // namespace capart
