/**
 * @file
 * Error and status reporting, in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated; this is a capart bug.
 *            Aborts so a debugger or core dump can capture state.
 * fatal()  — the user supplied an impossible configuration; exits cleanly
 *            with a nonzero status.
 * warn() / inform() — non-fatal status messages on stderr.
 */

#ifndef CAPART_COMMON_LOGGING_HH
#define CAPART_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace capart
{

/** @cond INTERNAL implementation hooks for the macros below. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** @endcond */

} // namespace capart

/** Abort with a message; use for violated internal invariants. */
#define capart_panic(msg)                                                    \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::panicImpl(__FILE__, __LINE__, capart_oss_.str());         \
    } while (0)

/** Exit with a message; use for invalid user configuration. */
#define capart_fatal(msg)                                                    \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::fatalImpl(__FILE__, __LINE__, capart_oss_.str());         \
    } while (0)

/** Print a warning to stderr and continue. */
#define capart_warn(msg)                                                     \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::warnImpl(capart_oss_.str());                              \
    } while (0)

/** Print an informational message to stderr and continue. */
#define capart_inform(msg)                                                   \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::informImpl(capart_oss_.str());                            \
    } while (0)

/**
 * Check an internal invariant; panics with the stringified condition on
 * failure. Always enabled (the simulator is cheap relative to debugging).
 */
#define capart_assert(cond)                                                  \
    do {                                                                     \
        if (!(cond))                                                         \
            capart_panic("assertion failed: " #cond);                        \
    } while (0)

#endif // CAPART_COMMON_LOGGING_HH
