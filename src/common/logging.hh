/**
 * @file
 * Error and status reporting, in the spirit of gem5's base/logging.hh.
 *
 * panic()  — an internal invariant was violated; this is a capart bug.
 *            Aborts so a debugger or core dump can capture state.
 * fatal()  — the user supplied an impossible configuration; exits cleanly
 *            with a nonzero status.
 * warn() / inform() — non-fatal status messages on stderr.
 *
 * Beyond the stderr macros, the module owns the process-wide
 * *structured* log: a JSONL sink (one JSON object per line, flushed
 * per line) that typed events — controller health decisions, SLO
 * breaches, injected faults, warnings — are routed into so one
 * machine-readable stream tells the whole story of a run. The sink is
 * off until setLogSink() names a file (the benches wire `--log-out=F`
 * / `--log-level=L` to it); with no sink, logEvent() is a cheap early
 * return, so instrumentation sites need no gating of their own.
 */

#ifndef CAPART_COMMON_LOGGING_HH
#define CAPART_COMMON_LOGGING_HH

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>

namespace capart
{

/** @cond INTERNAL implementation hooks for the macros below. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
/** @endcond */

// ------------------------------------------------ structured JSONL log --

/** Severity of a structured log event (ordered; sink filters by it). */
enum class LogLevel
{
    Debug = 0,
    Info,
    Warn,
    Error
};

/** Lower-case level name ("debug", "info", ...). */
const char *logLevelName(LogLevel lvl);

/** Parse "debug"/"info"/"warn"/"error"; false on anything else. */
bool parseLogLevel(const std::string &text, LogLevel *out);

/** One key/value attached to a structured event. Keys are literals. */
class LogField
{
  public:
    LogField(const char *key, double v)
        : key_(key), kind_(Kind::Num), num_(v)
    {
    }
    // Small integers ride the double path (exact below 2^53 and
    // printed without a fraction); only uint64 needs the exact lane.
    LogField(const char *key, int v)
        : LogField(key, static_cast<double>(v))
    {
    }
    LogField(const char *key, unsigned v)
        : LogField(key, static_cast<double>(v))
    {
    }
    LogField(const char *key, std::uint64_t v)
        : key_(key), kind_(Kind::Int), int_(v)
    {
    }
    LogField(const char *key, const char *v)
        : key_(key), kind_(Kind::Str), str_(v)
    {
    }
    LogField(const char *key, const std::string &v)
        : key_(key), kind_(Kind::Str), str_(v)
    {
    }
    LogField(const char *key, bool v)
        : key_(key), kind_(Kind::Bool), int_(v ? 1 : 0)
    {
    }

    /** Emit `"key":value` (no surrounding braces). */
    void writeTo(std::ostream &os) const;

  private:
    enum class Kind { Num, Int, Str, Bool };

    const char *key_;
    Kind kind_;
    std::uint64_t int_ = 0;
    double num_ = 0.0;
    std::string str_;
};

/**
 * Open (append) the structured sink at @p path; "" closes it, "-"
 * writes to stderr. Replaces any previous sink.
 */
void setLogSink(const std::string &path);

/** Drop structured events below @p lvl (default Info). */
void setLogLevel(LogLevel lvl);
LogLevel logLevel();

/** True when a sink is open and @p lvl passes the filter. */
bool logEnabled(LogLevel lvl);

/**
 * Append one structured event line:
 * `{"ts_ms":<unix ms>,"level":"...","event":"...",<fields...>}`.
 * No-op (one branch) when no sink is open or the level is filtered.
 * The line is built whole and flushed in one write, so a crash can
 * truncate at most the final line — loaders skip unparsable tails.
 */
void logEvent(LogLevel lvl, const char *event,
              std::initializer_list<LogField> fields = {});

} // namespace capart

/** Abort with a message; use for violated internal invariants. */
#define capart_panic(msg)                                                    \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::panicImpl(__FILE__, __LINE__, capart_oss_.str());         \
    } while (0)

/** Exit with a message; use for invalid user configuration. */
#define capart_fatal(msg)                                                    \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::fatalImpl(__FILE__, __LINE__, capart_oss_.str());         \
    } while (0)

/** Print a warning to stderr and continue. */
#define capart_warn(msg)                                                     \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::warnImpl(capart_oss_.str());                              \
    } while (0)

/** Print an informational message to stderr and continue. */
#define capart_inform(msg)                                                   \
    do {                                                                     \
        std::ostringstream capart_oss_;                                     \
        capart_oss_ << msg;                                                 \
        ::capart::informImpl(capart_oss_.str());                            \
    } while (0)

/**
 * Check an internal invariant; panics with the stringified condition on
 * failure. Always enabled (the simulator is cheap relative to debugging).
 */
#define capart_assert(cond)                                                  \
    do {                                                                     \
        if (!(cond))                                                         \
            capart_panic("assertion failed: " #cond);                        \
    } while (0)

#endif // CAPART_COMMON_LOGGING_HH
