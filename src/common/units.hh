/**
 * @file
 * Unit helpers: binary sizes and time conversions used across capart.
 */

#ifndef CAPART_COMMON_UNITS_HH
#define CAPART_COMMON_UNITS_HH

#include <cstdint>

namespace capart
{

/** Kibibytes to bytes. */
constexpr std::uint64_t
kib(std::uint64_t n)
{
    return n * 1024ULL;
}

/** Mebibytes to bytes. */
constexpr std::uint64_t
mib(std::uint64_t n)
{
    return n * 1024ULL * 1024ULL;
}

/** Gibibytes to bytes. */
constexpr std::uint64_t
gib(std::uint64_t n)
{
    return n * 1024ULL * 1024ULL * 1024ULL;
}

/** Milliseconds to seconds. */
constexpr double
msec(double n)
{
    return n * 1e-3;
}

/** Microseconds to seconds. */
constexpr double
usec(double n)
{
    return n * 1e-6;
}

/** GHz to Hz. */
constexpr double
ghz(double n)
{
    return n * 1e9;
}

/** GB/s to bytes per second. */
constexpr double
gbps(double n)
{
    return n * 1e9;
}

} // namespace capart

#endif // CAPART_COMMON_UNITS_HH
