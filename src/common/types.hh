/**
 * @file
 * Fundamental scalar types shared by every capart subsystem.
 *
 * The simulator measures time in two domains: discrete core clock
 * @ref capart::Cycles and wall-clock @ref capart::Seconds. Memory is
 * addressed with 64-bit physical addresses (@ref capart::Addr) and moved
 * in 64-byte cache lines.
 */

#ifndef CAPART_COMMON_TYPES_HH
#define CAPART_COMMON_TYPES_HH

#include <cstdint>

namespace capart
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Count of core clock cycles. */
using Cycles = std::uint64_t;

/** Count of retired instructions. */
using Insts = std::uint64_t;

/** Wall-clock time in seconds (simulated). */
using Seconds = double;

/** Energy in joules. */
using Joules = double;

/** Power in watts. */
using Watts = double;

/** Size of one cache line in bytes (Sandy Bridge: 64 B). */
constexpr unsigned kLineBytes = 64;

/** log2(kLineBytes); used to strip the line offset from addresses. */
constexpr unsigned kLineShift = 6;

static_assert((1u << kLineShift) == kLineBytes,
              "line shift must match line size");

/** Convert a byte address to its cache-line address (offset stripped). */
constexpr Addr
lineAddr(Addr byte_addr)
{
    return byte_addr >> kLineShift;
}

/** Identifier of a hardware thread (hyperthread) in the system. */
using HwThreadId = unsigned;

/** Identifier of a physical core in the system. */
using CoreId = unsigned;

/** Identifier of an application (workload) instance in a scenario. */
using AppId = unsigned;

/** Sentinel for "no application". */
constexpr AppId kNoApp = static_cast<AppId>(-1);

} // namespace capart

#endif // CAPART_COMMON_TYPES_HH
