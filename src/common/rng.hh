/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every stochastic choice in capart flows through an explicitly seeded
 * @ref capart::Rng so that every experiment is reproducible bit-for-bit.
 * The generator is xoshiro256** (Blackman & Vigna), which is fast, has a
 * 2^256-1 period, and passes BigCrush.
 */

#ifndef CAPART_COMMON_RNG_HH
#define CAPART_COMMON_RNG_HH

#include <cstdint>

namespace capart
{

/**
 * Derive a child seed from a base seed and a salt.
 *
 * This is the seeding scheme of the parallel sweep infrastructure
 * (src/exec): every experiment in a sweep runs with
 * `mixSeed(base_seed, spec.hash())`, a pure function of *what* the run
 * is, never of *when* or *where* it executes — which is what makes
 * `--jobs=N` output bit-identical to serial for every N. The mix is a
 * hash-combine followed by the splitmix64 finalizer, so nearby bases
 * and salts decorrelate fully.
 */
inline std::uint64_t
mixSeed(std::uint64_t base, std::uint64_t salt)
{
    std::uint64_t z =
        base ^ (salt + 0x9e3779b97f4a7c15ULL + (base << 6) + (base >> 2));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Deterministic xoshiro256** pseudo-random number generator. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step: decorrelates nearby seeds.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free approximation is fine
        // here: bias is < 2^-40 for the bounds workloads use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace capart

#endif // CAPART_COMMON_RNG_HH
