/**
 * @file
 * Deterministic fault injection for the partitioning control plane.
 *
 * The paper's prototype enjoys perfect telemetry and an infallible
 * remasking path; production deployments of the same policy (Intel CAT
 * via resctrl, perf_events sampling) do not. This subsystem injects the
 * faults such deployments actually see — corrupted or stale counter
 * reads, dropped sampling windows, failed or delayed schemata writes,
 * transient application stalls — at the seams the rest of the library
 * exposes (@ref WindowFaultHook, @ref SliceFaultHook,
 * @ref RctlFaultHook, @ref Remasker), so the hardened controller can be
 * *proved* to degrade gracefully under a chaos bench.
 *
 * Every decision is a pure hash of (seed, fault kind, stream, index):
 * the same plan and seed produce bit-identical fault sequences
 * regardless of call interleaving, preserving the repository's
 * reproducibility guarantee.
 */

#ifndef CAPART_FAULT_FAULT_INJECTOR_HH
#define CAPART_FAULT_FAULT_INJECTOR_HH

#include <cstdint>
#include <map>
#include <string>

#include "core/remasker.hh"
#include "perf/perf_counters.hh"
#include "rctl/resctrl.hh"
#include "sim/system.hh"

namespace capart
{

/**
 * One fault scenario: per-event probabilities and shapes. All rates are
 * probabilities in [0, 1] evaluated independently per opportunity.
 */
struct FaultPlan
{
    // ---- telemetry faults (per closed perf window of the target) ----
    /** Window never delivered (missed sampling deadline). */
    double windowDropRate = 0.0;
    /** Counter read corrupted into an MPKI spike. */
    double counterCorruptRate = 0.0;
    /** Multiplier a corrupted window's MPKI/misses are scaled by. */
    double spikeMultiplier = 10.0;
    /** Counter read corrupted into NaN (wrapped/garbage register). */
    double nanRate = 0.0;
    /** Stale read: the previous window's counters are served again. */
    double staleRate = 0.0;
    /**
     * Hard telemetry blackout: every window of the target stream with
     * index in [blackoutStart, blackoutStart + blackoutLen) is dropped.
     * blackoutLen = 0 disables; use a huge length for "forever".
     */
    std::uint64_t blackoutStart = 0;
    std::uint64_t blackoutLen = 0;
    /** App whose telemetry the faults above target (others untouched). */
    AppId telemetryTarget = 0;

    // ---- control-plane faults ---------------------------------------
    /** Remask / schemata write fails transiently (EIO-style). */
    double remaskFailRate = 0.0;
    /** Remask reported applied but lands late (propagation delay). */
    double remaskDelayRate = 0.0;
    /** Windows a delayed remask takes to land. */
    unsigned remaskDelayWindows = 2;

    // ---- execution faults -------------------------------------------
    /** Per-quantum probability of a transient stall (any app). */
    double stallRate = 0.0;
    /** Cost multiplier of a stalled quantum. */
    double stallFactor = 6.0;

    // ---- canned plans used by benches and tests ---------------------
    /** No faults at all (the baseline row of the chaos bench). */
    static FaultPlan none() { return FaultPlan{}; }

    /** Corrupt/drop/stale each at @p rate on the target's telemetry. */
    static FaultPlan
    noisyTelemetry(double rate)
    {
        FaultPlan p;
        p.windowDropRate = rate;
        p.counterCorruptRate = rate;
        p.nanRate = rate / 2;
        p.staleRate = rate;
        return p;
    }

    /** Schemata writes fail at @p rate; some land late. */
    static FaultPlan
    flakyRemask(double rate)
    {
        FaultPlan p;
        p.remaskFailRate = rate;
        p.remaskDelayRate = rate / 2;
        return p;
    }

    /** The target's telemetry dies for good at @p start_window. */
    static FaultPlan
    telemetryBlackout(std::uint64_t start_window)
    {
        FaultPlan p;
        p.blackoutStart = start_window;
        p.blackoutLen = ~0ULL - start_window;
        return p;
    }
};

/** Tally of every fault actually injected. */
struct FaultStats
{
    std::uint64_t windowsDropped = 0;
    std::uint64_t windowsCorrupted = 0;
    std::uint64_t windowsNaN = 0;
    std::uint64_t windowsStale = 0;
    std::uint64_t remaskFails = 0;
    std::uint64_t remaskDelays = 0;
    std::uint64_t schemataFails = 0;
    std::uint64_t applyFails = 0;
    std::uint64_t stalls = 0;
};

/**
 * The seeded injector. One instance drives every seam at once; attach
 * it to a @ref System (telemetry + stalls), a @ref ResctrlFs
 * (schemata/apply faults), and/or wrap a @ref Remasker in a
 * @ref FaultyRemasker.
 */
class FaultInjector final : public WindowFaultHook,
                            public SliceFaultHook,
                            public RctlFaultHook
{
  public:
    FaultInjector(const FaultPlan &plan, std::uint64_t seed);

    /** Install telemetry hooks on every app and the stall hook. */
    void attach(System &sys);

    const FaultPlan &plan() const { return plan_; }
    const FaultStats &stats() const { return stats_; }

    // ---- WindowFaultHook --------------------------------------------
    bool onWindowClose(std::uint64_t stream, std::uint64_t index,
                       PerfWindow &w) override;

    // ---- SliceFaultHook ---------------------------------------------
    double quantumStallFactor(AppId app, std::uint64_t slice) override;

    // ---- RctlFaultHook ----------------------------------------------
    RctlStatus onSchemataWrite(const std::string &group) override;
    bool onApplyMask(const std::string &group, AppId app) override;

    // ---- Remasker-facing decisions (used by FaultyRemasker) ---------
    /** Should the next remask operation fail outright? */
    bool remaskShouldFail();
    /** Should the next remask operation land late instead of now? */
    bool remaskShouldDelay();

  private:
    /** Stateless uniform [0,1) from (seed, kind, a, b). */
    double unit(std::uint64_t kind, std::uint64_t a, std::uint64_t b) const;

    FaultPlan plan_;
    std::uint64_t seed_;
    FaultStats stats_;
    std::uint64_t remaskCalls_ = 0;
    std::uint64_t schemataCalls_ = 0;
    std::uint64_t applyCalls_ = 0;
    std::map<std::uint64_t, PerfWindow> lastDelivered_;
};

/**
 * A @ref Remasker whose writes fail or land late per an injector's
 * plan — the fallible control plane the hardened partitioner retries
 * against. Wraps the infallible direct path.
 */
class FaultyRemasker final : public Remasker
{
  public:
    explicit FaultyRemasker(FaultInjector &inj) : inj_(&inj) {}

    bool apply(System &sys, AppId fg, const std::vector<AppId> &bgs,
               const SplitMasks &masks) override;
    void tick(System &sys) override;

    /** A delayed application is still waiting to land. */
    bool pendingDelayed() const { return pending_; }

  private:
    FaultInjector *inj_;
    DirectRemasker direct_;
    bool pending_ = false;
    unsigned wait_ = 0;
    AppId pendingFg_ = 0;
    std::vector<AppId> pendingBgs_;
    SplitMasks pendingMasks_;
};

} // namespace capart

#endif // CAPART_FAULT_FAULT_INJECTOR_HH
