#include "fault/fault_injector.hh"

#include <limits>

#include "common/logging.hh"

namespace capart
{

namespace
{

/** Salt per decision kind so streams never correlate. */
enum Kind : std::uint64_t
{
    kDrop = 1,
    kCorrupt,
    kNaN,
    kStale,
    kRemaskFail,
    kRemaskDelay,
    kSchemata,
    kApply,
    kStall
};

/** splitmix64 finalizer — decorrelates nearby inputs. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace

FaultInjector::FaultInjector(const FaultPlan &plan, std::uint64_t seed)
    : plan_(plan), seed_(seed)
{
    capart_assert(plan.spikeMultiplier > 1.0);
    capart_assert(plan.stallFactor >= 1.0);
}

double
FaultInjector::unit(std::uint64_t kind, std::uint64_t a,
                    std::uint64_t b) const
{
    // Three mixing rounds over (seed, kind, a, b): a pure function of
    // the decision's identity, independent of call order.
    const std::uint64_t h = mix(mix(mix(seed_ ^ (kind * 0xd6e8feb8ULL)) ^
                                    a * 0x2545f4914f6cdd1dULL) ^
                                b);
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

void
FaultInjector::attach(System &sys)
{
    for (AppId a = 0; a < sys.numApps(); ++a)
        sys.setWindowFaultHook(a, this);
    sys.setSliceFaultHook(this);
}

bool
FaultInjector::onWindowClose(std::uint64_t stream, std::uint64_t index,
                             PerfWindow &w)
{
    if (stream != plan_.telemetryTarget)
        return true;
    if (plan_.blackoutLen > 0 && index >= plan_.blackoutStart &&
        index - plan_.blackoutStart < plan_.blackoutLen) {
        ++stats_.windowsDropped;
        return false;
    }
    // At most one fault per window; independent draws, first hit wins.
    if (plan_.windowDropRate > 0.0 &&
        unit(kDrop, stream, index) < plan_.windowDropRate) {
        ++stats_.windowsDropped;
        return false;
    }
    if (plan_.nanRate > 0.0 &&
        unit(kNaN, stream, index) < plan_.nanRate) {
        w.mpki = std::numeric_limits<double>::quiet_NaN();
        ++stats_.windowsNaN;
        return true;
    }
    if (plan_.counterCorruptRate > 0.0 &&
        unit(kCorrupt, stream, index) < plan_.counterCorruptRate) {
        // A glitched miss counter: misses (and the derived MPKI) spike
        // while instructions stay plausible.
        w.llcMisses = static_cast<std::uint64_t>(
            static_cast<double>(w.llcMisses) * plan_.spikeMultiplier);
        w.mpki *= plan_.spikeMultiplier;
        ++stats_.windowsCorrupted;
        return true;
    }
    if (plan_.staleRate > 0.0 &&
        unit(kStale, stream, index) < plan_.staleRate) {
        const auto it = lastDelivered_.find(stream);
        if (it != lastDelivered_.end()) {
            // Serve yesterday's counters under today's timestamps. The
            // remembered window stays put, so a run of stale reads
            // repeats the same value.
            const PerfWindow &prev = it->second;
            w.insts = prev.insts;
            w.llcAccesses = prev.llcAccesses;
            w.llcMisses = prev.llcMisses;
            w.mpki = prev.mpki;
            w.apki = prev.apki;
            ++stats_.windowsStale;
            return true;
        }
        // Nothing cached yet: the real window goes through (and below
        // becomes the value future stale reads repeat).
    }
    lastDelivered_[stream] = w;
    return true;
}

double
FaultInjector::quantumStallFactor(AppId app, std::uint64_t slice)
{
    if (plan_.stallRate <= 0.0)
        return 1.0;
    if (unit(kStall, app, slice) < plan_.stallRate) {
        ++stats_.stalls;
        return plan_.stallFactor;
    }
    return 1.0;
}

RctlStatus
FaultInjector::onSchemataWrite(const std::string &group)
{
    (void)group;
    const std::uint64_t call = schemataCalls_++;
    if (plan_.remaskFailRate > 0.0 &&
        unit(kSchemata, call, 0) < plan_.remaskFailRate) {
        ++stats_.schemataFails;
        return RctlStatus::IoError;
    }
    return RctlStatus::Ok;
}

bool
FaultInjector::onApplyMask(const std::string &group, AppId app)
{
    (void)group;
    const std::uint64_t call = applyCalls_++;
    if (plan_.remaskFailRate > 0.0 &&
        unit(kApply, call, app) < plan_.remaskFailRate) {
        ++stats_.applyFails;
        return false;
    }
    return true;
}

bool
FaultInjector::remaskShouldFail()
{
    const std::uint64_t call = remaskCalls_++;
    if (plan_.remaskFailRate > 0.0 &&
        unit(kRemaskFail, call, 0) < plan_.remaskFailRate) {
        ++stats_.remaskFails;
        return true;
    }
    return false;
}

bool
FaultInjector::remaskShouldDelay()
{
    const std::uint64_t call = remaskCalls_++;
    if (plan_.remaskDelayRate > 0.0 &&
        unit(kRemaskDelay, call, 0) < plan_.remaskDelayRate) {
        ++stats_.remaskDelays;
        return true;
    }
    return false;
}

bool
FaultyRemasker::apply(System &sys, AppId fg,
                      const std::vector<AppId> &bgs,
                      const SplitMasks &masks)
{
    if (inj_->remaskShouldFail())
        return false;
    if (inj_->remaskShouldDelay()) {
        // Reported applied, but the masks land only after the
        // propagation delay (a newer write supersedes an older one).
        pending_ = true;
        wait_ = inj_->plan().remaskDelayWindows;
        pendingFg_ = fg;
        pendingBgs_ = bgs;
        pendingMasks_ = masks;
        return true;
    }
    pending_ = false; // an immediate write supersedes any delayed one
    return direct_.apply(sys, fg, bgs, masks);
}

void
FaultyRemasker::tick(System &sys)
{
    if (!pending_)
        return;
    if (wait_ > 0) {
        --wait_;
        return;
    }
    direct_.apply(sys, pendingFg_, pendingBgs_, pendingMasks_);
    pending_ = false;
}

} // namespace capart
