/**
 * @file
 * Environment-driven process-level chaos for shard workers.
 *
 * The in-process @ref FaultInjector perturbs telemetry and the remask
 * path *inside* a run; this module injects the failures the shard
 * supervisor (src/exec/shard_supervisor.hh) must survive at the
 * process boundary: a worker that crashes outright, hangs forever, or
 * tears its ledger segment mid-write. Injection is armed purely
 * through environment variables so the chaos CI job and tests can
 * target unmodified bench binaries:
 *
 *   CAPART_CHAOS_CRASH_MOD=M       crash (_exit 42) at the start of any
 *                                  point whose spec hash % M == 0
 *   CAPART_CHAOS_CRASH_ATTEMPTS=A  ... but only while the point's
 *                                  attempt number is < A (default 1:
 *                                  first try crashes, the retry
 *                                  succeeds; a huge A forces the point
 *                                  to fail every retry and be
 *                                  quarantined)
 *   CAPART_CHAOS_HANG_MOD=M        hang forever at the start of any
 *                                  point whose spec hash % M == 0
 *   CAPART_CHAOS_HANG_ATTEMPTS=A   attempt gate for hangs (default 1)
 *   CAPART_CHAOS_TORN_MOD=M        after completing any point whose
 *                                  spec hash % M == 0, append half a
 *                                  garbage record to the segment (no
 *                                  newline) and _exit 42 — the torn
 *                                  tail a crash mid-write leaves
 *   CAPART_CHAOS_TORN_ATTEMPTS=A   attempt gate for torn writes
 *                                  (default 1)
 *
 * Every decision is a pure function of (spec hash, attempt, env), so
 * the same environment injects the same faults no matter how points
 * are sharded — which is what lets the chaos tests assert bit-identical
 * final results. Unset environment means every hook is a no-op.
 */

#ifndef CAPART_FAULT_PROCESS_CHAOS_HH
#define CAPART_FAULT_PROCESS_CHAOS_HH

#include <cstdint>
#include <string>

namespace capart::fault
{

/** Exit code of a chaos-injected crash (distinguishable from real
 *  failures in shard logs; the supervisor treats any nonzero exit the
 *  same way). */
constexpr int kChaosCrashExit = 42;

/** Parsed CAPART_CHAOS_* environment; see file comment. */
class ProcessChaos
{
  public:
    /** Read the environment once; unset variables disable each hook. */
    static ProcessChaos fromEnv();

    /** Any hook armed at all (cheap guard for hot paths). */
    bool armed() const
    {
        return crashMod_ != 0 || hangMod_ != 0 || tornMod_ != 0;
    }

    /**
     * Called by the shard worker after the point's `point_start`
     * record is durable (so the supervisor can identify the culprit).
     * May _exit(kChaosCrashExit) or hang forever; returns normally
     * when the point is not selected.
     */
    void atPointStart(std::uint64_t spec_hash, unsigned attempt) const;

    /** True when the worker should tear the segment tail after this
     *  completed point and die (caller performs the tear). */
    bool tearAfterPoint(std::uint64_t spec_hash, unsigned attempt) const;

    /** Append a partial garbage line (no newline) to @p segment_path
     *  and _exit(kChaosCrashExit). */
    [[noreturn]] static void tearAndDie(const std::string &segment_path);

  private:
    std::uint64_t crashMod_ = 0;
    std::uint64_t hangMod_ = 0;
    std::uint64_t tornMod_ = 0;
    unsigned crashAttempts_ = 1;
    unsigned hangAttempts_ = 1;
    unsigned tornAttempts_ = 1;
};

} // namespace capart::fault

#endif // CAPART_FAULT_PROCESS_CHAOS_HH
