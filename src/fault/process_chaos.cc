#include "fault/process_chaos.hh"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

namespace capart::fault
{

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

bool
selected(std::uint64_t mod, std::uint64_t spec_hash, unsigned attempt,
         unsigned attempts_gate)
{
    return mod != 0 && spec_hash % mod == 0 && attempt < attempts_gate;
}

} // namespace

ProcessChaos
ProcessChaos::fromEnv()
{
    ProcessChaos c;
    c.crashMod_ = envU64("CAPART_CHAOS_CRASH_MOD", 0);
    c.hangMod_ = envU64("CAPART_CHAOS_HANG_MOD", 0);
    c.tornMod_ = envU64("CAPART_CHAOS_TORN_MOD", 0);
    c.crashAttempts_ = static_cast<unsigned>(
        envU64("CAPART_CHAOS_CRASH_ATTEMPTS", 1));
    c.hangAttempts_ = static_cast<unsigned>(
        envU64("CAPART_CHAOS_HANG_ATTEMPTS", 1));
    c.tornAttempts_ = static_cast<unsigned>(
        envU64("CAPART_CHAOS_TORN_ATTEMPTS", 1));
    return c;
}

void
ProcessChaos::atPointStart(std::uint64_t spec_hash, unsigned attempt) const
{
    if (selected(crashMod_, spec_hash, attempt, crashAttempts_)) {
        std::fprintf(stderr,
                     "capart-chaos: crashing at point %016llx attempt %u\n",
                     static_cast<unsigned long long>(spec_hash), attempt);
        _exit(kChaosCrashExit);
    }
    if (selected(hangMod_, spec_hash, attempt, hangAttempts_)) {
        std::fprintf(stderr,
                     "capart-chaos: hanging at point %016llx attempt %u\n",
                     static_cast<unsigned long long>(spec_hash), attempt);
        // Spin-sleep until the supervisor's point timeout SIGKILLs us.
        for (;;)
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

bool
ProcessChaos::tearAfterPoint(std::uint64_t spec_hash, unsigned attempt) const
{
    return selected(tornMod_, spec_hash, attempt, tornAttempts_);
}

void
ProcessChaos::tearAndDie(const std::string &segment_path)
{
    {
        std::ofstream out(segment_path, std::ios::app);
        // Half a plausible record, no terminating newline: exactly the
        // tail a crash between write() and the record boundary leaves.
        out << R"({"v":1,"kind":"point","bench":"torn)";
        out.flush();
    }
    std::fprintf(stderr, "capart-chaos: tore segment tail %s\n",
                 segment_path.c_str());
    _exit(kChaosCrashExit);
}

} // namespace capart::fault
