#include "fault/resctrl_remasker.hh"

namespace capart
{

ResctrlRemasker::ResctrlRemasker(ResctrlFs &fs, std::string fg_group,
                                 std::string bg_group)
    : fs_(&fs), fgGroup_(std::move(fg_group)), bgGroup_(std::move(bg_group))
{
}

bool
ResctrlRemasker::apply(System &sys, AppId fg,
                       const std::vector<AppId> &bgs,
                       const SplitMasks &masks)
{
    (void)sys;
    (void)fg;
    (void)bgs; // membership is owned by the control groups
    // One attempt per group per apply; the controller owns retry and
    // backoff policy. If the FG write lands and the BG write fails, the
    // whole apply reports failure — on retry the FG write is an
    // idempotent no-op and only the BG write touches hardware.
    ++writes_;
    if (fs_->writeSchemataWithRetry(fgGroup_,
                                    ResctrlFs::formatSchemata(masks.fg),
                                    1) != RctlStatus::Ok) {
        ++failures_;
        return false;
    }
    ++writes_;
    if (fs_->writeSchemataWithRetry(bgGroup_,
                                    ResctrlFs::formatSchemata(masks.bg),
                                    1) != RctlStatus::Ok) {
        ++failures_;
        return false;
    }
    return true;
}

} // namespace capart
