/**
 * @file
 * A @ref Remasker that drives the resctrl-style control plane instead
 * of writing way masks directly — the path a production daemon takes
 * (echo "L3:0=..." > group/schemata). Failures of the underlying
 * schemata writes (including injected ones) surface to the controller
 * as retryable remask failures; the idempotent no-op fast path of
 * @ref ResctrlFs::writeSchemata makes partial-success retries cheap.
 */

#ifndef CAPART_FAULT_RESCTRL_REMASKER_HH
#define CAPART_FAULT_RESCTRL_REMASKER_HH

#include <string>

#include "core/remasker.hh"
#include "rctl/resctrl.hh"

namespace capart
{

/** Applies FG/BG splits through two resctrl control groups. */
class ResctrlRemasker final : public Remasker
{
  public:
    /**
     * @param fs        the control plane (not owned).
     * @param fg_group  group holding the foreground.
     * @param bg_group  group holding the background(s).
     */
    ResctrlRemasker(ResctrlFs &fs, std::string fg_group,
                    std::string bg_group);

    bool apply(System &sys, AppId fg, const std::vector<AppId> &bgs,
               const SplitMasks &masks) override;

    /** Schemata writes attempted / failed through this remasker. */
    std::uint64_t writes() const { return writes_; }
    std::uint64_t writeFailures() const { return failures_; }

  private:
    ResctrlFs *fs_;
    std::string fgGroup_;
    std::string bgGroup_;
    std::uint64_t writes_ = 0;
    std::uint64_t failures_ = 0;
};

} // namespace capart

#endif // CAPART_FAULT_RESCTRL_REMASKER_HH
