#include "obs/status.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/json.hh"
#include "obs/metrics.hh"

namespace capart::obs
{

namespace
{

std::string
hexU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(s.c_str(), &end, 0); // 0x... or decimal
    return end && *end == '\0';
}

/** Read @p key of @p j as a count; counts ride as JSON numbers (they
 *  are far below 2^53 in any real sweep). */
std::uint64_t
asCount(const Json &j, const std::string &key)
{
    return static_cast<std::uint64_t>(j.at(key).asNum(0.0));
}

Json
shardToJson(const ShardStatus &s)
{
    Json j = Json::object();
    j.set("shard", Json(static_cast<double>(s.shard)));
    j.set("pid", Json(static_cast<double>(s.pid)));
    j.set("state", Json(s.state));
    j.set("points_assigned", Json(static_cast<double>(s.pointsAssigned)));
    j.set("points_done", Json(static_cast<double>(s.pointsDone)));
    j.set("points_from_cache", Json(static_cast<double>(s.pointsFromCache)));
    j.set("points_quarantined",
          Json(static_cast<double>(s.pointsQuarantined)));
    j.set("retries", Json(static_cast<double>(s.retries)));
    j.set("spawns", Json(static_cast<double>(s.spawns)));
    j.set("timeout_kills", Json(static_cast<double>(s.timeoutKills)));
    j.set("crashes", Json(static_cast<double>(s.crashes)));
    j.set("last_beat_age_s", Json(s.lastBeatAgeS));
    j.set("current_spec", Json(s.currentSpec));
    j.set("current_spec_hash", Json(hexU64(s.currentSpecHash)));
    j.set("current_elapsed_s", Json(s.currentElapsedS));
    return j;
}

bool
shardFromJson(const Json &j, ShardStatus *out)
{
    if (!j.isObj() || !j.has("shard") || !j.has("state"))
        return false;
    out->shard = static_cast<unsigned>(j.at("shard").asNum(0.0));
    out->pid = static_cast<long>(j.at("pid").asNum(-1.0));
    out->state = j.at("state").asStr("idle");
    out->pointsAssigned = asCount(j, "points_assigned");
    out->pointsDone = asCount(j, "points_done");
    out->pointsFromCache = asCount(j, "points_from_cache");
    out->pointsQuarantined = asCount(j, "points_quarantined");
    out->retries = asCount(j, "retries");
    out->spawns = asCount(j, "spawns");
    out->timeoutKills = asCount(j, "timeout_kills");
    out->crashes = asCount(j, "crashes");
    out->lastBeatAgeS = j.at("last_beat_age_s").asNum(-1.0);
    out->currentSpec = j.at("current_spec").asStr("");
    if (!parseU64(j.at("current_spec_hash").asStr("0"),
                  &out->currentSpecHash))
        out->currentSpecHash = 0;
    out->currentElapsedS = j.at("current_elapsed_s").asNum(0.0);
    return true;
}

} // namespace

Json
statusToJson(const SweepStatus &status)
{
    Json j = Json::object();
    j.set("version", Json(static_cast<double>(SweepStatus::kVersion)));
    j.set("bench", Json(status.bench));
    j.set("run", Json(status.run));
    j.set("state", Json(status.state));
    // Exact for any 64-bit seed; JSON numbers are doubles.
    j.set("seed", Json(std::to_string(status.seed)));
    j.set("shards", Json(static_cast<double>(status.shards)));
    j.set("points_total", Json(static_cast<double>(status.pointsTotal)));
    j.set("points_done", Json(static_cast<double>(status.pointsDone)));
    j.set("points_from_cache",
          Json(static_cast<double>(status.pointsFromCache)));
    j.set("points_quarantined",
          Json(static_cast<double>(status.pointsQuarantined)));
    j.set("retries", Json(static_cast<double>(status.retries)));
    j.set("start_ts_ms", Json(status.startTsMs));
    j.set("updated_ts_ms", Json(status.updatedTsMs));
    j.set("throughput_points_per_min", Json(status.throughputPointsPerMin));
    j.set("eta_s", Json(status.etaS));
    j.set("cache_hit_rate", Json(status.cacheHitRate));
    Json shards = Json::array();
    for (const ShardStatus &s : status.shardStates)
        shards.push(shardToJson(s));
    j.set("shard_states", std::move(shards));
    return j;
}

std::string
encodeStatus(const SweepStatus &status)
{
    return statusToJson(status).dump() + "\n";
}

bool
decodeStatus(const std::string &text, SweepStatus *out)
{
    const auto doc = Json::parse(text);
    if (!doc || !doc->isObj())
        return false;
    if (static_cast<int>(doc->at("version").asNum(0.0)) !=
        SweepStatus::kVersion)
        return false;
    if (!doc->has("bench") || !doc->has("state") ||
        !doc->has("shard_states"))
        return false;
    SweepStatus s;
    s.bench = doc->at("bench").asStr("");
    s.run = doc->at("run").asStr("");
    s.state = doc->at("state").asStr("running");
    if (!parseU64(doc->at("seed").asStr("0"), &s.seed))
        s.seed = 0;
    s.shards = static_cast<unsigned>(doc->at("shards").asNum(0.0));
    s.pointsTotal = asCount(*doc, "points_total");
    s.pointsDone = asCount(*doc, "points_done");
    s.pointsFromCache = asCount(*doc, "points_from_cache");
    s.pointsQuarantined = asCount(*doc, "points_quarantined");
    s.retries = asCount(*doc, "retries");
    s.startTsMs = doc->at("start_ts_ms").asNum(0.0);
    s.updatedTsMs = doc->at("updated_ts_ms").asNum(0.0);
    s.throughputPointsPerMin =
        doc->at("throughput_points_per_min").asNum(0.0);
    s.etaS = doc->at("eta_s").asNum(-1.0);
    s.cacheHitRate = doc->at("cache_hit_rate").asNum(0.0);
    for (const Json &sj : doc->at("shard_states").arr) {
        ShardStatus shard;
        if (!shardFromJson(sj, &shard))
            return false;
        s.shardStates.push_back(std::move(shard));
    }
    *out = std::move(s);
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::trunc | std::ios::binary);
        if (!os) {
            std::fprintf(stderr, "capart: cannot write %s\n", tmp.c_str());
            return false;
        }
        os << content;
        os.flush();
        if (!os) {
            std::fprintf(stderr, "capart: short write to %s\n", tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::fprintf(stderr, "capart: cannot rename %s over %s\n",
                     tmp.c_str(), path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
writeStatusFile(const std::string &path, const SweepStatus &status)
{
    return writeFileAtomic(path, encodeStatus(status));
}

bool
readStatusFile(const std::string &path, SweepStatus *out)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream text;
    text << is.rdbuf();
    return decodeStatus(text.str(), out);
}

std::string
promSanitize(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

namespace
{

void
promSample(std::ostream &os, const std::string &name, double v,
           const std::string &labels = "")
{
    os << name << labels << ' ';
    jsonWriteNumber(os, v);
    os << '\n';
}

std::string
shardLabel(unsigned shard)
{
    return "{shard=\"" + std::to_string(shard) + "\"}";
}

void
writeStatusProm(std::ostream &os, const SweepStatus &s)
{
    os << "# TYPE capart_sweep_points gauge\n";
    promSample(os, "capart_sweep_points_total",
               static_cast<double>(s.pointsTotal));
    promSample(os, "capart_sweep_points_done",
               static_cast<double>(s.pointsDone));
    promSample(os, "capart_sweep_points_from_cache",
               static_cast<double>(s.pointsFromCache));
    promSample(os, "capart_sweep_points_quarantined",
               static_cast<double>(s.pointsQuarantined));
    promSample(os, "capart_sweep_retries_total",
               static_cast<double>(s.retries));
    os << "# TYPE capart_sweep_running gauge\n";
    promSample(os, "capart_sweep_running", s.state == "running" ? 1 : 0);
    os << "# TYPE capart_sweep_shards gauge\n";
    promSample(os, "capart_sweep_shards", static_cast<double>(s.shards));
    os << "# TYPE capart_sweep_throughput_points_per_min gauge\n";
    promSample(os, "capart_sweep_throughput_points_per_min",
               s.throughputPointsPerMin);
    os << "# TYPE capart_sweep_eta_seconds gauge\n";
    promSample(os, "capart_sweep_eta_seconds", s.etaS);
    os << "# TYPE capart_sweep_cache_hit_rate gauge\n";
    promSample(os, "capart_sweep_cache_hit_rate", s.cacheHitRate);
    os << "# TYPE capart_shard gauge\n";
    for (const ShardStatus &sh : s.shardStates) {
        const std::string l = shardLabel(sh.shard);
        promSample(os, "capart_shard_up",
                   sh.state == "running" ? 1 : 0, l);
        promSample(os, "capart_shard_points_assigned",
                   static_cast<double>(sh.pointsAssigned), l);
        promSample(os, "capart_shard_points_done",
                   static_cast<double>(sh.pointsDone), l);
        promSample(os, "capart_shard_points_from_cache",
                   static_cast<double>(sh.pointsFromCache), l);
        promSample(os, "capart_shard_points_quarantined",
                   static_cast<double>(sh.pointsQuarantined), l);
        promSample(os, "capart_shard_retries_total",
                   static_cast<double>(sh.retries), l);
        promSample(os, "capart_shard_spawns_total",
                   static_cast<double>(sh.spawns), l);
        promSample(os, "capart_shard_timeout_kills_total",
                   static_cast<double>(sh.timeoutKills), l);
        promSample(os, "capart_shard_crashes_total",
                   static_cast<double>(sh.crashes), l);
        promSample(os, "capart_shard_last_beat_age_seconds",
                   sh.lastBeatAgeS, l);
        promSample(os, "capart_shard_current_point_elapsed_seconds",
                   sh.currentElapsedS, l);
    }
}

} // namespace

void
writePromText(std::ostream &os, const MetricsRegistry &registry,
              const SweepStatus *status)
{
    registry.writeProm(os);
    if (status != nullptr)
        writeStatusProm(os, *status);
}

bool
appendWorkerCounters(std::ostream &os, const std::string &metrics_json_path,
                     unsigned shard)
{
    std::ifstream is(metrics_json_path, std::ios::binary);
    if (!is)
        return false;
    std::ostringstream text;
    text << is.rdbuf();
    const auto doc = Json::parse(text.str());
    if (!doc || !doc->isObj())
        return false;
    const Json &counters = doc->at("counters");
    if (!counters.isObj())
        return false;
    const std::string l = shardLabel(shard);
    for (const auto &[name, value] : counters.obj) {
        if (value.kind != Json::Kind::Num)
            continue;
        promSample(os, "capart_worker_" + promSanitize(name), value.num, l);
    }
    return true;
}

bool
writePromFile(const std::string &path, const MetricsRegistry &registry,
              const SweepStatus *status,
              const std::vector<std::pair<std::string, unsigned>>
                  &worker_metrics_paths)
{
    std::ostringstream os;
    writePromText(os, registry, status);
    if (!worker_metrics_paths.empty()) {
        os << "# TYPE capart_worker counter\n";
        for (const auto &[p, shard] : worker_metrics_paths)
            appendWorkerCounters(os, p, shard);
    }
    return writeFileAtomic(path, os.str());
}

} // namespace capart::obs
