/**
 * @file
 * Live sweep status plane: the supervisor-maintained `status.json`
 * snapshot and the Prometheus-style text exposition file.
 *
 * While a sharded sweep runs, the supervisor keeps two side files
 * fresh on every heartbeat tick:
 *
 *  - `--status-out=F` — a single JSON document (@ref SweepStatus)
 *    describing the whole fleet: per shard the worker pid, lifecycle
 *    state, point counts (done / from-cache / quarantined), retries,
 *    last-heartbeat age, and the point currently being computed with
 *    its elapsed time; sweep-wide the throughput in points/min, the
 *    ETA, and the cache-hit rate. The file is *atomically replaced*
 *    (write `<F>.tmp`, then rename), so a concurrent reader — the
 *    `bench_status` CLI, a dashboard, `cat` in a loop — always sees a
 *    complete document, never a torn one.
 *  - `--prom-out=F` — the metrics registry plus the sweep/shard gauges
 *    in Prometheus text exposition format (counters, gauges, histogram
 *    quantiles as summaries), also atomically replaced, so an external
 *    scraper can watch a long sweep with nothing but a file mount.
 *
 * Everything here is observability *output*: nothing reads these files
 * back into the simulation, so the plane cannot perturb results — the
 * same contract as the rest of src/obs, and the property
 * tests/test_shard.cc locks down bit-for-bit. Under CAPART_OBS=OFF the
 * supervisor's write sites are dead code and neither file is created.
 */

#ifndef CAPART_OBS_STATUS_HH
#define CAPART_OBS_STATUS_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace capart
{
struct Json;
}

namespace capart::obs
{

class MetricsRegistry;

/** One supervised shard's live state inside a @ref SweepStatus. */
struct ShardStatus
{
    unsigned shard = 0;
    /** Worker pid (-1 while not running). */
    long pid = -1;
    /** "running", "backoff" (waiting out a respawn delay), "settled"
     *  (every assigned point complete or quarantined), or "idle"
     *  (nothing assigned). */
    std::string state = "idle";
    std::uint64_t pointsAssigned = 0;
    /** Complete `point` records in the shard's segment. */
    std::uint64_t pointsDone = 0;
    /** Of those, replayed from the user-level result cache. */
    std::uint64_t pointsFromCache = 0;
    std::uint64_t pointsQuarantined = 0;
    /** Point re-attempts: `point_start` records beyond each point's
     *  first (the quantity a segment digest can recompute exactly). */
    std::uint64_t retries = 0;
    /** Worker processes spawned for this shard so far. */
    std::uint64_t spawns = 0;
    /** Workers SIGKILLed for exceeding --point-timeout. */
    std::uint64_t timeoutKills = 0;
    /** Worker deaths attributed to a crash (nonzero exit). */
    std::uint64_t crashes = 0;
    /** Seconds since the segment last grew (-1 = no heartbeat yet). */
    double lastBeatAgeS = -1.0;
    /** Canonical spec of the point being computed ("" = between
     *  points); the dangling `point_start` of the segment. */
    std::string currentSpec;
    std::uint64_t currentSpecHash = 0;
    /** Seconds the current point has been running (0 when none). */
    double currentElapsedS = 0.0;
};

/** The whole fleet's live state: what `status.json` holds. */
struct SweepStatus
{
    /** Schema version of the document (bump on breaking change). */
    static constexpr int kVersion = 1;

    std::string bench;
    std::string run;
    /** "running", "complete", or "interrupted". */
    std::string state = "running";
    std::uint64_t seed = 0;
    unsigned shards = 0;
    std::uint64_t pointsTotal = 0;
    std::uint64_t pointsDone = 0;
    std::uint64_t pointsFromCache = 0;
    std::uint64_t pointsQuarantined = 0;
    std::uint64_t retries = 0;
    /** Unix epoch ms when the sweep started / this snapshot was cut. */
    double startTsMs = 0.0;
    double updatedTsMs = 0.0;
    /** Completed points per minute since the sweep started (0 until
     *  the first completion). */
    double throughputPointsPerMin = 0.0;
    /** Estimated seconds to completion (-1 = unknown). */
    double etaS = -1.0;
    /** pointsFromCache / pointsDone (0 when nothing done yet). */
    double cacheHitRate = 0.0;
    std::vector<ShardStatus> shardStates;
};

/** Serialize @p status as the status.json document. */
Json statusToJson(const SweepStatus &status);
std::string encodeStatus(const SweepStatus &status);

/** Parse a status.json document; false on schema mismatch. */
bool decodeStatus(const std::string &text, SweepStatus *out);

/**
 * Replace @p path atomically: write @p content to `<path>.tmp`, flush,
 * and rename over @p path. A reader opening @p path therefore sees
 * either the previous complete document or the new one — never a
 * partial write. Returns false (after a stderr note) on I/O failure.
 */
bool writeFileAtomic(const std::string &path, const std::string &content);

/** @ref writeFileAtomic of @ref encodeStatus. */
bool writeStatusFile(const std::string &path, const SweepStatus &status);

/** Load and decode @p path; false when missing or unparsable. */
bool readStatusFile(const std::string &path, SweepStatus *out);

/**
 * Prometheus text exposition of @p registry: counters and gauges as
 * `capart_<name> value` samples (names sanitized to the exposition
 * charset), histograms as summaries with p50/p90/p99 quantile samples
 * plus `_sum`/`_count`. When @p status is non-null, sweep-level and
 * per-shard (`shard="k"`-labelled) gauges derived from it follow.
 */
void writePromText(std::ostream &os, const MetricsRegistry &registry,
                   const SweepStatus *status = nullptr);

/**
 * Append worker-side counters collected from a shard's
 * `--metrics-out` JSON side file as `capart_worker_<name>{shard="k"}`
 * samples. Missing or unparsable files are skipped silently (a worker
 * that never exported is not an error). Returns false when skipped.
 */
bool appendWorkerCounters(std::ostream &os, const std::string &metrics_json_path,
                          unsigned shard);

/** Atomically write the full exposition (registry + status + any
 *  readable worker counter files in @p worker_metrics_paths). */
bool writePromFile(const std::string &path, const MetricsRegistry &registry,
                   const SweepStatus *status = nullptr,
                   const std::vector<std::pair<std::string, unsigned>>
                       &worker_metrics_paths = {});

/** Sanitize @p name to the Prometheus metric-name charset
 *  ([a-zA-Z0-9_:], '.' and '-' become '_'). */
std::string promSanitize(const std::string &name);

} // namespace capart::obs

#endif // CAPART_OBS_STATUS_HH
