#include "obs/run_ledger.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/json.hh"

namespace capart::obs
{

namespace
{

/** Record-format version; bump when fields change meaning. */
constexpr int kVersion = 1;

std::string
hexU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

bool
parseU64(const std::string &s, std::uint64_t *out)
{
    if (s.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(s.c_str(), &end, 0); // 0x... or decimal
    return end && *end == '\0';
}

void
writePairs(std::ostringstream &os, const char *key,
           const std::vector<std::pair<std::string, double>> &pairs)
{
    os << ",\"" << key << "\":{";
    bool first = true;
    for (const auto &[name, value] : pairs) {
        if (!first)
            os << ',';
        first = false;
        os << '"' << jsonEscape(name) << "\":";
        jsonWriteNumber(os, value);
    }
    os << '}';
}

void
readPairs(const Json &obj, std::vector<std::pair<std::string, double>> *out)
{
    for (const auto &[name, value] : obj.obj) {
        if (value.kind == Json::Kind::Num)
            out->emplace_back(name, value.num);
    }
}

} // namespace

double
RunRecord::metric(const std::string &name, double fallback) const
{
    for (const auto &[k, v] : metrics) {
        if (k == name)
            return v;
    }
    return fallback;
}

RunLedger::RunLedger(std::string path) : path_(std::move(path))
{
    file_.open(path_, std::ios::app);
    ok_ = static_cast<bool>(file_);
    if (!ok_) {
        std::fprintf(stderr, "capart: cannot open run ledger %s\n",
                     path_.c_str());
    }
}

void
RunLedger::append(const RunRecord &rec)
{
    const std::string line = encode(rec);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!ok_)
        return;
    // One write call for line + newline, then a flush: the on-disk
    // ledger always ends at a record boundary except after a crash
    // mid-write, which load() skips.
    file_ << line << '\n';
    file_.flush();
    ++appended_;
}

std::uint64_t
RunLedger::appended() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return appended_;
}

std::string
RunLedger::encode(const RunRecord &rec)
{
    std::ostringstream os;
    os << "{\"v\":" << kVersion;
    os << ",\"kind\":\"" << jsonEscape(rec.kind) << '"';
    os << ",\"bench\":\"" << jsonEscape(rec.bench) << '"';
    os << ",\"run\":\"" << jsonEscape(rec.run) << '"';
    // 64-bit identifiers as strings: doubles cannot hold them exactly.
    os << ",\"spec_hash\":\"" << hexU64(rec.specHash) << '"';
    os << ",\"seed\":\"" << rec.seed << '"';
    os << ",\"ts_ms\":";
    jsonWriteNumber(os, rec.tsMs);
    os << ",\"wall_ms\":";
    jsonWriteNumber(os, rec.wallMs);
    os << ",\"sim_s\":";
    jsonWriteNumber(os, rec.simS);
    os << ",\"cached\":" << (rec.fromCache ? "true" : "false");
    os << ",\"spec\":\"" << jsonEscape(rec.spec) << '"';
    // Optional fields are written only when set, so records from
    // before these fields existed re-encode byte-identically.
    if (!rec.attrFile.empty())
        os << ",\"attr_file\":\"" << jsonEscape(rec.attrFile) << '"';
    if (!rec.rule.empty())
        os << ",\"rule\":\"" << jsonEscape(rec.rule) << '"';
    writePairs(os, "metrics", rec.metrics);
    writePairs(os, "counters", rec.counters);
    os << '}';
    return os.str();
}

bool
RunLedger::decode(const std::string &line, RunRecord *out)
{
    const std::optional<Json> doc = Json::parse(line);
    if (!doc || !doc->isObj())
        return false;
    if (doc->at("v").asNum(0) != kVersion)
        return false;
    RunRecord rec;
    rec.kind = doc->at("kind").asStr();
    rec.bench = doc->at("bench").asStr();
    rec.run = doc->at("run").asStr();
    rec.spec = doc->at("spec").asStr();
    if (!parseU64(doc->at("spec_hash").asStr("0"), &rec.specHash))
        return false;
    if (!parseU64(doc->at("seed").asStr("0"), &rec.seed))
        return false;
    rec.tsMs = doc->at("ts_ms").asNum();
    rec.wallMs = doc->at("wall_ms").asNum();
    rec.simS = doc->at("sim_s").asNum();
    rec.fromCache = doc->at("cached").asBool();
    rec.attrFile = doc->at("attr_file").asStr();
    rec.rule = doc->at("rule").asStr();
    readPairs(doc->at("metrics"), &rec.metrics);
    readPairs(doc->at("counters"), &rec.counters);
    if (rec.kind != "point" && rec.kind != "bench" &&
        rec.kind != "decision" && rec.kind != "npartition_decision" &&
        rec.kind != "point_start" && rec.kind != "point_failed" &&
        rec.kind != "run_interrupted" && rec.kind != "shard")
        return false;
    *out = std::move(rec);
    return true;
}

RunLedger::LoadResult
RunLedger::load(const std::string &path)
{
    LoadResult result;
    std::ifstream in(path);
    if (!in)
        return result; // missing file == empty ledger
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        RunRecord rec;
        if (decode(line, &rec))
            result.records.push_back(std::move(rec));
        else
            ++result.skipped;
    }
    return result;
}

namespace
{

/** Sort rank of a record kind inside the merged output. */
int
kindRank(const std::string &kind)
{
    if (kind == "point")
        return 0;
    if (kind == "point_failed")
        return 1;
    if (kind == "decision" || kind == "npartition_decision")
        return 2;
    if (kind == "bench")
        return 3;
    return 4; // run_interrupted and anything future
}

/** "a supersedes b" for two same-spec point records: later timestamp
 *  wins, ties broken by wall time then by encoding, so the winner is a
 *  pure function of record content. */
bool
supersedes(const RunRecord &a, const RunRecord &b)
{
    if (a.tsMs != b.tsMs)
        return a.tsMs > b.tsMs;
    if (a.wallMs != b.wallMs)
        return a.wallMs > b.wallMs;
    return RunLedger::encode(a) > RunLedger::encode(b);
}

/** Content key of a decision record with the timestamp zeroed:
 *  re-journaled duplicates from retried (deterministic) points differ
 *  only in ts_ms and must collapse to one. */
std::string
decisionKey(const RunRecord &rec)
{
    RunRecord copy = rec;
    copy.tsMs = 0.0;
    copy.wallMs = 0.0;
    copy.run.clear(); // a resumed run re-journals under a new run id
    return RunLedger::encode(copy);
}

} // namespace

MergeResult
mergeLedgerSegments(const std::vector<std::string> &segment_paths,
                    const MergeOptions &opts)
{
    MergeResult out;

    std::unordered_map<std::uint64_t, RunRecord> points;
    std::unordered_map<std::uint64_t, RunRecord> failed;
    std::unordered_map<std::string, RunRecord> decisions;
    std::vector<RunRecord> other;

    std::unordered_set<std::uint64_t> keep;
    keep.insert(opts.specFilter.begin(), opts.specFilter.end());

    for (const std::string &path : segment_paths) {
        std::ifstream probe(path);
        if (!probe) {
            ++out.missingSegments;
            continue;
        }
        probe.close();
        RunLedger::LoadResult seg = RunLedger::load(path);
        out.tornLines += seg.skipped;
        for (RunRecord &rec : seg.records) {
            const bool spec_bound = rec.kind == "point" ||
                                    rec.kind == "point_start" ||
                                    rec.kind == "point_failed" ||
                                    rec.kind == "decision" ||
                                    rec.kind == "npartition_decision";
            if (spec_bound) {
                if (opts.filterSeed && rec.seed != opts.expectedSeed) {
                    ++out.duplicatesDropped;
                    continue;
                }
                if (!keep.empty() && keep.count(rec.specHash) == 0) {
                    ++out.duplicatesDropped;
                    continue;
                }
            }
            if (rec.kind == "point_start") {
                continue; // worker-internal liveness bookkeeping
            } else if (rec.kind == "point") {
                auto [it, inserted] =
                    points.emplace(rec.specHash, rec);
                if (!inserted) {
                    ++out.duplicatesDropped;
                    if (supersedes(rec, it->second))
                        it->second = std::move(rec);
                }
            } else if (rec.kind == "point_failed") {
                auto [it, inserted] =
                    failed.emplace(rec.specHash, rec);
                if (!inserted) {
                    ++out.duplicatesDropped;
                    if (rec.metric("attempts") >
                            it->second.metric("attempts") ||
                        (rec.metric("attempts") ==
                             it->second.metric("attempts") &&
                         supersedes(rec, it->second)))
                        it->second = std::move(rec);
                }
            } else if (rec.kind == "decision" ||
                       rec.kind == "npartition_decision") {
                auto [it, inserted] =
                    decisions.emplace(decisionKey(rec), rec);
                if (!inserted) {
                    ++out.duplicatesDropped;
                    if (supersedes(rec, it->second))
                        it->second = std::move(rec);
                }
            } else {
                other.push_back(std::move(rec));
            }
        }
    }

    for (auto &[hash, rec] : points)
        out.records.push_back(std::move(rec));
    for (auto &[hash, rec] : failed) {
        if (points.count(hash) != 0)
            continue; // a retry eventually completed the point
        ++out.quarantined;
        out.records.push_back(std::move(rec));
    }
    for (auto &[key, rec] : decisions) {
        // A decision only makes sense for a point that exists in the
        // merged output (a crashed attempt's partial journal would
        // otherwise leak records for a quarantined point).
        if (points.count(rec.specHash) != 0)
            out.records.push_back(std::move(rec));
        else
            ++out.duplicatesDropped;
    }
    for (RunRecord &rec : other)
        out.records.push_back(std::move(rec));

    std::sort(out.records.begin(), out.records.end(),
              [](const RunRecord &a, const RunRecord &b) {
                  const int ra = kindRank(a.kind);
                  const int rb = kindRank(b.kind);
                  if (ra != rb)
                      return ra < rb;
                  if (a.specHash != b.specHash)
                      return a.specHash < b.specHash;
                  const double ta = a.metric("t_us");
                  const double tb = b.metric("t_us");
                  if (ta != tb)
                      return ta < tb;
                  return RunLedger::encode(a) < RunLedger::encode(b);
              });
    return out;
}

} // namespace capart::obs
