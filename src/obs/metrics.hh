/**
 * @file
 * MetricsRegistry: named counters, gauges, and histograms with
 * lock-free hot-path updates and JSON/CSV export.
 *
 * Registration (looking a metric up by name) takes a mutex; the
 * returned reference is stable for the registry's lifetime, so hot
 * paths cache it once and then update with relaxed atomics only:
 *
 *     if (obs::enabled()) {
 *         static obs::Counter &quanta =
 *             obs::metrics().counter("sim.quanta");
 *         quanta.inc();
 *     }
 *
 * The function-local static keeps the lookup off the hot path *and*
 * defers it until observability is actually enabled.
 */

#ifndef CAPART_OBS_METRICS_HH
#define CAPART_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hh"

namespace capart::obs
{

/** Monotonically increasing event count. */
class Counter
{
  public:
    void
    inc(std::uint64_t n = 1)
    {
        v_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> v_{0};
};

/** Last-written level (allocation sizes, queue depths, ratios). */
class Gauge
{
  public:
    void
    set(double v)
    {
        bits_.store(std::bit_cast<std::uint64_t>(v),
                    std::memory_order_relaxed);
    }

    double
    value() const
    {
        return std::bit_cast<double>(
            bits_.load(std::memory_order_relaxed));
    }

    void reset() { set(0.0); }

  private:
    std::atomic<std::uint64_t> bits_{0};
};

/**
 * Power-of-two-bucketed histogram of non-negative integer samples
 * (latencies in ns, sizes in bytes, retry counts). Bucket i counts
 * samples whose value needs i significant bits, i.e. bucket upper
 * bounds 0, 1, 3, 7, ..., 2^k - 1.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 65;

    void
    record(std::uint64_t v)
    {
        buckets_[std::bit_width(v)].fetch_add(1,
                                              std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    std::uint64_t
    count() const
    {
        std::uint64_t n = 0;
        for (const auto &b : buckets_)
            n += b.load(std::memory_order_relaxed);
        return n;
    }

    std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

    std::uint64_t
    bucket(unsigned i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }

    /** Inclusive upper bound of bucket @p i (max for the last). */
    static std::uint64_t
    bucketBound(unsigned i)
    {
        if (i >= 64)
            return ~0ULL;
        return (1ULL << i) - 1;
    }

    /** Inclusive lower bound of bucket @p i (0 for the first). */
    static std::uint64_t
    bucketLowerBound(unsigned i)
    {
        return i == 0 ? 0 : bucketBound(i - 1) + 1;
    }

    /**
     * Approximate quantile @p q in [0, 1], linearly interpolated
     * inside the winning power-of-two bucket (so the estimate is
     * exact to within that bucket's span). Returns 0 for an empty
     * histogram. Export-time only — walks every bucket.
     */
    double percentile(double q) const;

    void
    reset()
    {
        for (auto &b : buckets_)
            b.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> sum_{0};
};

/**
 * Owns every named metric. Thread-safe; lookups lock, updates through
 * the returned references do not. Export order is deterministic
 * (lexicographic by name) so repeated dumps diff cleanly.
 */
class MetricsRegistry
{
  public:
    /** Find or create; the reference stays valid for the registry's life. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * {"counters": {...}, "gauges": {...}, "histograms": {...}} with
     * histogram buckets as [{"le": bound, "n": count}, ...] (zero
     * buckets omitted) plus p50/p90/p99 summaries interpolated from
     * the log2 buckets.
     */
    void writeJson(std::ostream &os) const;

    /**
     * One `kind,name,stat,value` row per scalar / histogram bucket,
     * with p50/p90/p99 rows per histogram.
     */
    void writeCsv(std::ostream &os) const;

    /**
     * Prometheus text exposition: counters as `capart_<name>_total`,
     * gauges as `capart_<name>`, histograms as summaries (quantile
     * samples at 0.5/0.9/0.99 plus `_sum` and `_count`). Names are
     * sanitized to the exposition charset; each family is preceded by
     * a `# TYPE` line. Consumed by obs::writePromFile (--prom-out).
     */
    void writeProm(std::ostream &os) const;

    /**
     * Snapshot of every counter as (name, value) in export order —
     * what the run ledger embeds in bench records. Values ride as
     * doubles (exact below 2^53, far beyond any real counter).
     */
    std::vector<std::pair<std::string, double>> counterSnapshot() const;

    /** Zero every metric's value; registered names persist. */
    void reset();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** The process-wide registry every instrumentation seam writes to. */
MetricsRegistry &metrics();

} // namespace capart::obs

#endif // CAPART_OBS_METRICS_HH
