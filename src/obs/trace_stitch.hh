/**
 * @file
 * Cross-process Chrome-trace stitching for sharded sweeps.
 *
 * A sharded sweep produces one Chrome trace per process: the
 * supervisor's own (spawn/kill/quarantine lifecycle instants) and one
 * per worker (`<trace>.shard-<k>`, see bench/bench_common). Each of
 * those files uses the fixed two-pid layout of obs::Tracer
 * (pid 1 = simulated time, pid 2 = host wall clock), so opened
 * together they collide. @ref stitchTraces merges them into one
 * well-formed timeline:
 *
 *  - source i's pids are remapped to 2*i+1 / 2*i+2, so every process
 *    track in the stitched file is unique;
 *  - each source contributes `process_name` metadata ("<label> ·
 *    simulated time (us)", "<label> · host wall clock") and a
 *    `process_sort_index`, so Perfetto shows the supervisor first and
 *    the shards in order, each with both clock domains preserved;
 *  - events are globally sorted by timestamp;
 *  - a torn or missing source file (a worker SIGKILLed mid-export) is
 *    tolerated: it is skipped and counted in the stitched metadata
 *    (`sources_missing` / `sources_malformed`), never fails the merge.
 *
 * The result opens as a single view in ui.perfetto.dev or
 * chrome://tracing: an 8-shard sweep is one page, with the
 * supervisor's lifecycle instants lined up against the workers' point
 * spans on a shared wall-clock axis.
 */

#ifndef CAPART_OBS_TRACE_STITCH_HH
#define CAPART_OBS_TRACE_STITCH_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace capart::obs
{

/** One per-process trace file feeding a stitch. */
struct StitchSource
{
    /** Chrome-trace JSON file as written by Tracer::writeChromeTrace. */
    std::string path;
    /** Track label, e.g. "supervisor" or "shard 3". */
    std::string label;
};

/** What a stitch consumed and produced (mirrored into the output's
 *  `metadata` object). */
struct StitchStats
{
    unsigned sourcesRead = 0;
    unsigned sourcesMissing = 0;
    unsigned sourcesMalformed = 0;
    std::uint64_t events = 0;
    /** Sum of the sources' own `dropped_events` counts. */
    std::uint64_t droppedEvents = 0;
};

/**
 * Merge @p sources into one Chrome trace on @p os. Missing/unreadable
 * and unparsable sources are skipped and counted, so the output is
 * well-formed whenever at least the document frame can be written.
 * Returns false only when *no* source could be read (the stitched
 * file would be empty of events) — the frame is still written.
 */
bool stitchTraces(const std::vector<StitchSource> &sources,
                  std::ostream &os, StitchStats *stats = nullptr);

/** @ref stitchTraces into @p out_path via an atomic replace. */
bool stitchTraceFiles(const std::vector<StitchSource> &sources,
                      const std::string &out_path,
                      StitchStats *stats = nullptr);

} // namespace capart::obs

#endif // CAPART_OBS_TRACE_STITCH_HH
