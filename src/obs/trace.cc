#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <ostream>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace capart::obs
{

namespace
{

std::atomic<std::uint64_t> gNextTracerId{1};

/** Escape a (should-be-literal) event name for JSON output. */
void
writeEscaped(std::ostream &os, const char *s)
{
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' ';
        else
            os << c;
    }
}

} // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : capacity_(ring_capacity),
      id_(gNextTracerId.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now())
{
    capart_assert(ring_capacity >= 2);
}

Tracer::~Tracer() = default;

double
Tracer::wallUs() const
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

Tracer::Ring &
Tracer::ring()
{
    // Each thread caches (tracer id -> ring) so a thread touching
    // several tracers (tests build local ones) never re-registers.
    thread_local std::vector<std::pair<std::uint64_t, Ring *>> cache;
    for (const auto &[id, r] : cache) {
        if (id == id_)
            return *r;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    rings_.push_back(std::make_unique<Ring>(
        capacity_, static_cast<std::uint32_t>(rings_.size())));
    Ring *r = rings_.back().get();
    cache.emplace_back(id_, r);
    return *r;
}

void
Tracer::record(const char *name, const char *cat, double ts_us,
               double dur_us, char ph,
               std::initializer_list<TraceArg> args, Track track)
{
    Ring &r = ring();
    if (r.recorded >= r.buf.size()) {
        // The slot we are about to take still holds a retained event:
        // this write evicts it. Count the loss — per track of the
        // *evicted* event, so a sim-instant flood that pushes host
        // spans out of the ring is charged to the host track — so
        // exports can say how much of each timeline the ring forgot.
        static Counter &drops = metrics().counter("trace.dropped");
        drops.inc();
        const Event &victim = r.buf[r.next];
        if (victim.track == static_cast<std::uint8_t>(Track::Host)) {
            static Counter &host = metrics().counter("trace.dropped.host");
            host.inc();
            ++r.droppedHost;
        } else {
            static Counter &sim = metrics().counter("trace.dropped.sim");
            sim.inc();
            ++r.droppedSim;
        }
    }
    Event &e = r.buf[r.next];
    e.name = name;
    e.cat = cat;
    e.ts = ts_us;
    e.dur = dur_us;
    e.tid = r.tid;
    e.track = static_cast<std::uint8_t>(track);
    e.ph = ph;
    e.nargs = 0;
    for (const TraceArg &a : args) {
        if (e.nargs >= 2)
            break;
        e.argName[e.nargs] = a.name;
        e.argVal[e.nargs] = a.value;
        ++e.nargs;
    }
    r.next = (r.next + 1) % r.buf.size();
    ++r.recorded;
}

void
Tracer::instant(const char *name, const char *cat, double ts_us,
                std::initializer_list<TraceArg> args, Track track)
{
    if (!enabled())
        return;
    record(name, cat, ts_us, 0.0, 'i', args, track);
}

void
Tracer::complete(const char *name, const char *cat, double ts_us,
                 double dur_us, std::initializer_list<TraceArg> args,
                 Track track)
{
    if (!enabled())
        return;
    record(name, cat, ts_us, dur_us, 'X', args, track);
}

std::uint64_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &r : rings_)
        n += std::min<std::uint64_t>(r->recorded, r->buf.size());
    return n;
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &r : rings_) {
        if (r->recorded > r->buf.size())
            n += r->recorded - r->buf.size();
    }
    return n;
}

std::uint64_t
Tracer::dropped(Track track) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const auto &r : rings_)
        n += track == Track::Host ? r->droppedHost : r->droppedSim;
    return n;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &r : rings_) {
        r->next = 0;
        r->recorded = 0;
        r->droppedSim = 0;
        r->droppedHost = 0;
    }
}

void
Tracer::writeChromeTrace(std::ostream &os) const
{
    // Snapshot every ring in chronological ring order (oldest retained
    // event first), then sort the union by timestamp. Recording threads
    // may still be appending; the snapshot is whatever has landed.
    std::vector<Event> events;
    std::uint64_t dropped_events = 0;
    std::uint64_t dropped_sim = 0;
    std::uint64_t dropped_host = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &r : rings_) {
            if (r->recorded > r->buf.size())
                dropped_events += r->recorded - r->buf.size();
            dropped_sim += r->droppedSim;
            dropped_host += r->droppedHost;
            const std::size_t cap = r->buf.size();
            const std::size_t n =
                static_cast<std::size_t>(std::min<std::uint64_t>(
                    r->recorded, cap));
            const std::size_t start =
                r->recorded > cap ? r->next : 0;
            for (std::size_t i = 0; i < n; ++i)
                events.push_back(r->buf[(start + i) % cap]);
        }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event &a, const Event &b) {
                         return a.ts < b.ts;
                     });

    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    // Process-name metadata: makes the two clock domains explicit.
    os << "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", "
          "\"args\": {\"name\": \"simulated time (us)\"}},\n";
    os << "{\"ph\": \"M\", \"pid\": 2, \"name\": \"process_name\", "
          "\"args\": {\"name\": \"host wall clock\"}}";
    for (const Event &e : events) {
        os << ",\n{\"name\": \"";
        writeEscaped(os, e.name);
        os << "\", \"cat\": \"";
        writeEscaped(os, e.cat);
        os << "\", \"ph\": \"" << e.ph << "\", \"ts\": " << e.ts;
        if (e.ph == 'X')
            os << ", \"dur\": " << e.dur;
        os << ", \"pid\": " << static_cast<unsigned>(e.track)
           << ", \"tid\": " << e.tid;
        if (e.ph == 'i')
            os << ", \"s\": \"t\"";
        if (e.nargs > 0) {
            os << ", \"args\": {";
            for (unsigned a = 0; a < e.nargs; ++a) {
                if (a)
                    os << ", ";
                os << "\"";
                writeEscaped(os, e.argName[a]);
                os << "\": " << e.argVal[a];
            }
            os << "}";
        }
        os << "}";
    }
    // dropped_events counts every eviction regardless of track;
    // the per-track fields split it (host drops used to be invisible
    // to consumers that only look at per-track totals).
    os << "\n], \"metadata\": {\"dropped_events\": " << dropped_events
       << ", \"dropped_sim_events\": " << dropped_sim
       << ", \"dropped_host_events\": " << dropped_host
       << ", \"retained_events\": " << events.size() << "}}\n";
}

Tracer &
tracer()
{
    static Tracer global;
    return global;
}

TraceSpan::TraceSpan(const char *name, const char *cat,
                     std::initializer_list<TraceArg> args)
    : name_(name), cat_(cat), startUs_(0.0), nargs_(0),
      active_(enabled())
{
    if (!active_)
        return;
    for (const TraceArg &a : args) {
        if (nargs_ >= 2)
            break;
        args_[nargs_++] = a;
    }
    startUs_ = tracer().wallUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    const double end = tracer().wallUs();
    // initializer_list cannot be built from a runtime array; dispatch
    // on the small fixed arity instead.
    switch (nargs_) {
      case 0:
        tracer().complete(name_, cat_, startUs_, end - startUs_, {},
                          Track::Host);
        break;
      case 1:
        tracer().complete(name_, cat_, startUs_, end - startUs_,
                          {args_[0]}, Track::Host);
        break;
      default:
        tracer().complete(name_, cat_, startUs_, end - startUs_,
                          {args_[0], args_[1]}, Track::Host);
        break;
    }
}

} // namespace capart::obs
