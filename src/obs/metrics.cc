#include "obs/metrics.hh"

#include <cstdio>
#include <ostream>

#include "obs/status.hh"

namespace capart::obs
{

namespace detail
{
std::atomic<bool> gEnabled{false};
} // namespace detail

void
setEnabled(bool on)
{
    if constexpr (kCompiledIn)
        detail::gEnabled.store(on, std::memory_order_relaxed);
    else
        (void)on;
}

namespace
{

/** Escape for JSON string values (metric names are plain identifiers,
 *  but exports must stay valid JSON for any registered name). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

template <typename Map, typename Fn>
void
writeJsonSection(std::ostream &os, const char *title, const Map &map,
                 Fn &&value, bool &first_section)
{
    if (!first_section)
        os << ",\n";
    first_section = false;
    os << "  \"" << title << "\": {";
    bool first = true;
    for (const auto &[name, metric] : map) {
        if (!first)
            os << ",";
        first = false;
        os << "\n    \"" << jsonEscape(name) << "\": ";
        value(os, *metric);
    }
    if (!first)
        os << "\n  ";
    os << "}";
}

} // namespace

double
Histogram::percentile(double q) const
{
    // Snapshot the buckets once: concurrent record() calls may land
    // while we walk, and a consistent-if-slightly-stale view beats a
    // torn one.
    std::array<std::uint64_t, kBuckets> snap;
    std::uint64_t total = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        snap[i] = buckets_[i].load(std::memory_order_relaxed);
        total += snap[i];
    }
    if (total == 0)
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    const double target = q * static_cast<double>(total);
    double before = 0.0;
    unsigned last_nonempty = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        if (snap[i] == 0)
            continue;
        last_nonempty = i;
        const double n = static_cast<double>(snap[i]);
        if (before + n >= target) {
            const double lo =
                static_cast<double>(bucketLowerBound(i));
            const double hi = static_cast<double>(bucketBound(i));
            double frac = (target - before) / n;
            if (frac < 0.0)
                frac = 0.0;
            if (frac > 1.0)
                frac = 1.0;
            return lo + frac * (hi - lo);
        }
        before += n;
    }
    // Floating-point slack pushed the target past the running sum:
    // the answer is the top of the highest occupied bucket.
    return static_cast<double>(bucketBound(last_nonempty));
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "{\n";
    bool first_section = true;
    writeJsonSection(os, "counters", counters_,
                     [](std::ostream &o, const Counter &c) {
                         o << c.value();
                     },
                     first_section);
    writeJsonSection(os, "gauges", gauges_,
                     [](std::ostream &o, const Gauge &g) {
                         o << g.value();
                     },
                     first_section);
    writeJsonSection(
        os, "histograms", histograms_,
        [](std::ostream &o, const Histogram &h) {
            o << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
              << ", \"p50\": " << h.percentile(0.50)
              << ", \"p90\": " << h.percentile(0.90)
              << ", \"p99\": " << h.percentile(0.99)
              << ", \"buckets\": [";
            bool first = true;
            for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
                const std::uint64_t n = h.bucket(i);
                if (n == 0)
                    continue;
                if (!first)
                    o << ", ";
                first = false;
                o << "{\"le\": " << Histogram::bucketBound(i)
                  << ", \"n\": " << n << "}";
            }
            o << "]}";
        },
        first_section);
    os << "\n}\n";
}

void
MetricsRegistry::writeCsv(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "kind,name,stat,value\n";
    for (const auto &[name, c] : counters_)
        os << "counter," << name << ",value," << c->value() << "\n";
    for (const auto &[name, g] : gauges_)
        os << "gauge," << name << ",value," << g->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        os << "histogram," << name << ",count," << h->count() << "\n";
        os << "histogram," << name << ",sum," << h->sum() << "\n";
        os << "histogram," << name << ",p50," << h->percentile(0.50)
           << "\n";
        os << "histogram," << name << ",p90," << h->percentile(0.90)
           << "\n";
        os << "histogram," << name << ",p99," << h->percentile(0.99)
           << "\n";
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            const std::uint64_t n = h->bucket(i);
            if (n == 0)
                continue;
            os << "histogram," << name << ",le_"
               << Histogram::bucketBound(i) << "," << n << "\n";
        }
    }
}

void
MetricsRegistry::writeProm(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, c] : counters_) {
        const std::string n = "capart_" + promSanitize(name) + "_total";
        os << "# TYPE " << n << " counter\n";
        os << n << ' ' << c->value() << '\n';
    }
    for (const auto &[name, g] : gauges_) {
        const std::string n = "capart_" + promSanitize(name);
        os << "# TYPE " << n << " gauge\n";
        os << n << ' ' << g->value() << '\n';
    }
    for (const auto &[name, h] : histograms_) {
        const std::string n = "capart_" + promSanitize(name);
        os << "# TYPE " << n << " summary\n";
        os << n << "{quantile=\"0.5\"} " << h->percentile(0.50) << '\n';
        os << n << "{quantile=\"0.9\"} " << h->percentile(0.90) << '\n';
        os << n << "{quantile=\"0.99\"} " << h->percentile(0.99) << '\n';
        os << n << "_sum " << h->sum() << '\n';
        os << n << "_count " << h->count() << '\n';
    }
}

std::vector<std::pair<std::string, double>>
MetricsRegistry::counterSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<std::string, double>> out;
    out.reserve(counters_.size());
    for (const auto &[name, c] : counters_)
        out.emplace_back(name, static_cast<double>(c->value()));
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

MetricsRegistry &
metrics()
{
    static MetricsRegistry registry;
    return registry;
}

} // namespace capart::obs
