#include "obs/trace_stitch.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>
#include <utility>

#include "common/json.hh"
#include "obs/status.hh"

namespace capart::obs
{

namespace
{

/** An event carried from a source into the stitched timeline. */
struct StitchedEvent
{
    double ts;
    std::string json; //!< the event object, pid already remapped
};

/** Remap a source-local pid (1 = sim, 2 = host) into the stitched
 *  pid space: source i owns pids 2i+1 and 2i+2. */
unsigned
remapPid(unsigned source, double orig_pid)
{
    const unsigned local = orig_pid == 2.0 ? 2 : 1;
    return 2 * source + local;
}

void
emitProcessMeta(std::ostream &os, unsigned pid, const std::string &name,
                unsigned sort_index, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"ph\": \"M\", \"pid\": " << pid
       << ", \"name\": \"process_name\", \"args\": {\"name\": \""
       << jsonEscape(name) << "\"}},\n";
    os << "{\"ph\": \"M\", \"pid\": " << pid
       << ", \"name\": \"process_sort_index\", \"args\": {\"sort_index\": "
       << sort_index << "}}";
}

} // namespace

bool
stitchTraces(const std::vector<StitchSource> &sources, std::ostream &os,
             StitchStats *stats)
{
    StitchStats local;
    std::vector<StitchedEvent> events;
    std::vector<std::pair<unsigned, std::string>> labels; // (source, label)

    for (unsigned i = 0; i < sources.size(); ++i) {
        std::ifstream is(sources[i].path, std::ios::binary);
        if (!is) {
            ++local.sourcesMissing;
            continue;
        }
        std::ostringstream text;
        text << is.rdbuf();
        const auto doc = Json::parse(text.str());
        if (!doc || !doc->isObj() || !doc->at("traceEvents").isArr()) {
            // A worker killed mid-export leaves a torn file; skip it
            // but keep the shard visible in the stats.
            ++local.sourcesMalformed;
            continue;
        }
        ++local.sourcesRead;
        labels.emplace_back(i, sources[i].label);
        local.droppedEvents += static_cast<std::uint64_t>(
            doc->at("metadata").at("dropped_events").asNum(0.0));
        for (const Json &ev : doc->at("traceEvents").arr) {
            if (!ev.isObj())
                continue;
            if (ev.at("ph").asStr("") == "M")
                continue; // source metadata is re-synthesized below
            Json copy = ev;
            copy.set("pid", Json(static_cast<double>(
                                remapPid(i, ev.at("pid").asNum(1.0)))));
            events.push_back(
                {ev.at("ts").asNum(0.0), copy.dump()});
        }
    }

    std::stable_sort(events.begin(), events.end(),
                     [](const StitchedEvent &a, const StitchedEvent &b) {
                         return a.ts < b.ts;
                     });
    local.events = events.size();

    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
    bool first = true;
    for (const auto &[i, label] : labels) {
        emitProcessMeta(os, 2 * i + 1, label + " · simulated time (us)",
                        2 * i + 1, first);
        emitProcessMeta(os, 2 * i + 2, label + " · host wall clock",
                        2 * i + 2, first);
    }
    for (const StitchedEvent &e : events) {
        if (!first)
            os << ",\n";
        first = false;
        os << e.json;
    }
    os << "\n], \"metadata\": {\"stitched_sources\": " << local.sourcesRead
       << ", \"sources_missing\": " << local.sourcesMissing
       << ", \"sources_malformed\": " << local.sourcesMalformed
       << ", \"retained_events\": " << local.events
       << ", \"dropped_events\": " << local.droppedEvents << "}}\n";

    if (stats != nullptr)
        *stats = local;
    return local.sourcesRead > 0;
}

bool
stitchTraceFiles(const std::vector<StitchSource> &sources,
                 const std::string &out_path, StitchStats *stats)
{
    std::ostringstream os;
    const bool ok = stitchTraces(sources, os, stats);
    return writeFileAtomic(out_path, os.str()) && ok;
}

} // namespace capart::obs
