/**
 * @file
 * Master switch of the observability layer (src/obs).
 *
 * Observability is gated twice:
 *
 *  - compile time: configuring with -DCAPART_OBS=OFF defines
 *    CAPART_OBS_DISABLED, making enabled() a constant false so every
 *    `if (obs::enabled()) ...` seam is dead code the optimizer deletes;
 *  - run time: even when compiled in, recording is off until
 *    setEnabled(true) (the benches flip it for --metrics-out /
 *    --trace-out). The disabled hot path is one relaxed atomic load.
 *
 * Recording never feeds back into simulation state, so enabling
 * observability cannot change any experiment's output — a property
 * tests/test_obs.cc locks down bit-for-bit.
 */

#ifndef CAPART_OBS_OBS_HH
#define CAPART_OBS_OBS_HH

#include <atomic>

namespace capart::obs
{

#ifdef CAPART_OBS_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/** @cond INTERNAL */
namespace detail
{
extern std::atomic<bool> gEnabled;
} // namespace detail
/** @endcond */

/**
 * True when instrumentation sites should record. Constant false when
 * compiled out; otherwise one relaxed atomic load, cheap enough to
 * guard per-quantum counters.
 */
inline bool
enabled()
{
    if constexpr (!kCompiledIn)
        return false;
    else
        return detail::gEnabled.load(std::memory_order_relaxed);
}

/** Turn runtime recording on or off (no-op when compiled out). */
void setEnabled(bool on);

} // namespace capart::obs

#endif // CAPART_OBS_OBS_HH
