/**
 * @file
 * Timeline tracer exporting Chrome `trace_event` JSON.
 *
 * Events land in a preallocated per-thread ring buffer — the hot path
 * is an enabled check, a thread-local pointer chase, and a struct
 * write; no locks, no allocation after a thread's first event. When a
 * ring fills, the oldest events are overwritten (most-recent-window
 * semantics) and the drop is counted.
 *
 * The export is a Chrome/Perfetto trace with two process tracks:
 *
 *  - pid 1 "simulated time": instants and completes stamped with
 *    *simulated* microseconds (phase detections, remask operations,
 *    watchdog trips, app completions);
 *  - pid 2 "host wall clock": RAII @ref TraceSpan scopes stamped with
 *    host microseconds since tracer start (sweep-runner point
 *    scheduling, per-policy runs, whole-sim runs).
 *
 * The two tracks use different clock domains on purpose: one answers
 * "when in the experiment did the controller act", the other "where
 * did the host spend time". Open the file in ui.perfetto.dev or
 * chrome://tracing. Event/category names must be string literals (the
 * ring stores pointers, not copies).
 */

#ifndef CAPART_OBS_TRACE_HH
#define CAPART_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/obs.hh"

namespace capart::obs
{

/** One numeric argument attached to a trace event. */
struct TraceArg
{
    const char *name; //!< string literal
    double value;
};

/** Which exported process track an event belongs to. */
enum class Track : std::uint8_t
{
    Sim = 1, //!< timestamps are simulated microseconds
    Host = 2 //!< timestamps are host microseconds since tracer start
};

class Tracer
{
  public:
    /** @param ring_capacity events retained per recording thread. */
    explicit Tracer(std::size_t ring_capacity = 1 << 15);
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Record a point-in-time event ("i") at @p ts_us on @p track. */
    void instant(const char *name, const char *cat, double ts_us,
                 std::initializer_list<TraceArg> args = {},
                 Track track = Track::Sim);

    /** Record a span ("X") covering [@p ts_us, @p ts_us + @p dur_us]. */
    void complete(const char *name, const char *cat, double ts_us,
                  double dur_us, std::initializer_list<TraceArg> args = {},
                  Track track = Track::Sim);

    /** Host microseconds since this tracer was constructed. */
    double wallUs() const;

    /** Events currently retained across all rings. */
    std::uint64_t eventCount() const;

    /** Events overwritten because a ring filled. */
    std::uint64_t dropped() const;

    /**
     * Events of @p track overwritten because a ring filled. Eviction
     * inspects the event actually overwritten, so host-track spans
     * pushed out by a flood of sim-track instants (or vice versa) are
     * charged to the right track.
     */
    std::uint64_t dropped(Track track) const;

    /** Forget all recorded events (rings stay allocated). */
    void clear();

    /**
     * Emit the retained events as Chrome trace JSON, globally sorted
     * by timestamp, preceded by process-name metadata records.
     */
    void writeChromeTrace(std::ostream &os) const;

  private:
    struct Event
    {
        const char *name;
        const char *cat;
        double ts;
        double dur;
        const char *argName[2];
        double argVal[2];
        std::uint32_t tid;
        std::uint8_t nargs;
        std::uint8_t track;
        char ph;
    };

    struct Ring
    {
        Ring(std::size_t cap, std::uint32_t tid_) : buf(cap), tid(tid_) {}

        std::vector<Event> buf;
        std::size_t next = 0;      //!< slot the next event lands in
        std::uint64_t recorded = 0; //!< events ever recorded
        /** Evicted events, split by the *evicted* event's track. */
        std::uint64_t droppedSim = 0;
        std::uint64_t droppedHost = 0;
        std::uint32_t tid;
    };

    Ring &ring();
    void record(const char *name, const char *cat, double ts_us,
                double dur_us, char ph,
                std::initializer_list<TraceArg> args, Track track);

    const std::size_t capacity_;
    const std::uint64_t id_; //!< distinguishes tracer instances in TLS
    const std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Ring>> rings_;
};

/** The process-wide tracer every instrumentation seam records into. */
Tracer &tracer();

/**
 * RAII wall-clock span on the global tracer's host track. Records one
 * complete event on destruction; free when observability is disabled
 * at construction time.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *cat,
              std::initializer_list<TraceArg> args = {});
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_;
    const char *cat_;
    double startUs_;
    TraceArg args_[2];
    std::uint8_t nargs_;
    bool active_;
};

} // namespace capart::obs

#endif // CAPART_OBS_TRACE_HH
