/**
 * @file
 * Append-only JSONL run ledger: the durable record every experiment
 * run leaves behind.
 *
 * One ledger is one file of newline-delimited JSON records. Eight
 * kinds of record exist:
 *
 *  - `point`  — one @ref capart::exec::SweepRunner sweep point: the
 *    spec's canonical encoding and hash, the base seed, host wall time,
 *    simulated time, cache provenance, and the point's headline figures
 *    (FG slowdown, BG throughput, energy deltas) as a flat name→value
 *    metric map; when attribution sampling was on, also a pointer to
 *    the point's attribution side file (`attr_file`);
 *  - `bench`  — one bench-binary invocation: total wall time plus a
 *    snapshot of the observability counters at exit;
 *  - `decision` — one dynamic-partitioner control decision taken while
 *    computing a point: the complete decision inputs and outputs as
 *    the metric map, the fired rule in `rule`, so the decision can be
 *    replayed deterministically from the record alone;
 *  - `npartition_decision` — one N-app Partitioner decision (shared /
 *    fair / biased / dynamic / ucp / lfoc), same replay contract as
 *    `decision`: per-app observations, miss curves, and LFOC bounce
 *    state in the metric map, the policy name in `rule`
 *    (core/npartition_journal rebuilds and re-decides from it);
 *  - `point_start` — a shard worker is about to compute a point
 *    (attempt number in the metric map). Dangling starts — a start
 *    with no later `point` for the same spec hash — are how the shard
 *    supervisor identifies the point a crashed or hung worker died on.
 *    Worker-internal bookkeeping: mergeLedgerSegments() drops them;
 *  - `point_failed` — the supervisor quarantined a point that failed
 *    every retry; `rule` carries the reason ("crash", "timeout",
 *    "shard_failed"), the metric map the attempt count;
 *  - `run_interrupted` — the run was stopped by SIGTERM/SIGINT after
 *    flushing everything completed so far; `rule` names the signal;
 *  - `shard` — one supervised shard's lifetime summary, appended by
 *    the shard supervisor after the segment merge: shard index, wall
 *    time, and the fleet counters (points done / from-cache /
 *    quarantined, retries, spawns, timeout kills, crashes) in the
 *    metric map. The report layer renders these as the per-shard
 *    table.
 *
 * Records carry a `run` id (bench + seed + start timestamp) so a single
 * growing ledger holds the full trajectory of repeated runs; the report
 * layer (src/report) groups by that id and pairs points across runs by
 * spec hash. Writes are crash-safe line-at-a-time: each record is
 * serialized whole, written with one call, and flushed, so a killed run
 * can truncate at most the final line — which load() tolerates by
 * skipping anything that does not parse.
 *
 * The ledger is observability *output*, never input: nothing in the
 * simulator reads it, so ledger recording cannot perturb results (the
 * same contract as the rest of src/obs). It stays functional under
 * CAPART_OBS=OFF — only the counter snapshots become empty.
 */

#ifndef CAPART_OBS_RUN_LEDGER_HH
#define CAPART_OBS_RUN_LEDGER_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace capart::obs
{

/** One ledger line; plain data, serializable both ways. */
struct RunRecord
{
    /** "point" (sweep point), "bench" (binary invocation), "decision"
     *  (one partitioner control decision), "npartition_decision" (one
     *  N-app Partitioner decision), "point_start" (shard worker
     *  liveness), "point_failed" (quarantined point),
     *  "run_interrupted" (signal-terminated run), or "shard" (one
     *  supervised shard's lifetime summary). */
    std::string kind = "point";
    /** Bench the record belongs to (e.g. "fig13_dynamic"). */
    std::string bench;
    /** Invocation id shared by every record of one run. */
    std::string run;
    /** Canonical ExperimentSpec encoding ("" for bench records). */
    std::string spec;
    /** FNV-1a hash of the spec (0 for bench records). */
    std::uint64_t specHash = 0;
    /** Base seed of the run (spec seeds derive from it). */
    std::uint64_t seed = 0;
    /** Wall-clock unix epoch milliseconds when the record was made. */
    double tsMs = 0.0;
    /** Host milliseconds the unit of work took. */
    double wallMs = 0.0;
    /** Simulated seconds the unit covered (points only). */
    double simS = 0.0;
    /** The point was replayed from the on-disk result cache. */
    bool fromCache = false;
    /** Headline figures, flat name → value (insertion-ordered). */
    std::vector<std::pair<std::string, double>> metrics;
    /** Observability counter snapshot (bench records). */
    std::vector<std::pair<std::string, double>> counters;
    /** Path of the point's attribution sample file ("" = none). */
    std::string attrFile;
    /** Decision records: the rule that fired ("" otherwise). */
    std::string rule;

    /** Value of metric @p name, or @p fallback when absent. */
    double metric(const std::string &name, double fallback = 0.0) const;
};

/** Thread-safe appender plus tolerant loader; see file comment. */
class RunLedger
{
  public:
    /** Open @p path for appending (parent directory must exist). */
    explicit RunLedger(std::string path);

    /** Serialize @p rec as one line, write it whole, and flush. */
    void append(const RunRecord &rec);

    const std::string &path() const { return path_; }

    /** Records appended through this instance (not the file total). */
    std::uint64_t appended() const;

    /** The file opened successfully; append() is a no-op otherwise. */
    bool ok() const { return ok_; }

    /** Result of loading a ledger file. */
    struct LoadResult
    {
        std::vector<RunRecord> records;
        /** Lines skipped because they failed to parse (torn tails). */
        std::uint64_t skipped = 0;
    };

    /**
     * Read every parseable record of @p path in file order. Unparsable
     * lines — a truncated tail after a crash, foreign text — are
     * counted in `skipped`, never fatal. A missing file is simply an
     * empty ledger.
     */
    static LoadResult load(const std::string &path);

    /** Serialize / parse one record line (exposed for tests). */
    static std::string encode(const RunRecord &rec);
    static bool decode(const std::string &line, RunRecord *out);

  private:
    std::string path_;
    mutable std::mutex mutex_;
    std::ofstream file_;
    bool ok_ = false;
    std::uint64_t appended_ = 0;
};

// ------------------------------------------------- segment merging --

/** Knobs of @ref mergeLedgerSegments. */
struct MergeOptions
{
    /** When true, drop spec-carrying records whose seed differs from
     *  expectedSeed (stale segments from an earlier run with another
     *  seed must not poison a resumed sweep). */
    bool filterSeed = false;
    std::uint64_t expectedSeed = 0;
    /** When non-empty, keep only spec-carrying records whose hash is
     *  in this set (the sweep the supervisor actually scheduled). */
    std::vector<std::uint64_t> specFilter;
};

/** Outcome of folding shard segments into one canonical record set. */
struct MergeResult
{
    /** The merged records, in a deterministic order that depends only
     *  on record content — never on segment order or file position. */
    std::vector<RunRecord> records;
    /** Segment paths that did not exist (killed before first write). */
    std::uint64_t missingSegments = 0;
    /** Unparsable lines skipped across all segments (torn tails). */
    std::uint64_t tornLines = 0;
    /** Superseded duplicates dropped (retried points, re-journaled
     *  decisions): last-complete-wins keyed by spec hash. */
    std::uint64_t duplicatesDropped = 0;
    /** `point_failed` records surviving in the output (no complete
     *  point ever landed for that spec). */
    std::uint64_t quarantined = 0;
};

/**
 * Fold shard ledger segments into the canonical record set.
 *
 * Tolerates torn tails (skipped, counted), empty and missing segments,
 * duplicate records from retried points, and records interleaved from
 * several run ids (a sweep interrupted and resumed under a new id).
 * Per spec hash, the last complete `point` record wins — "last" judged
 * by (ts_ms, wall_ms, encoding), so the choice is deterministic and
 * independent of the order segments are listed or records appear.
 * `point_start` records are dropped (worker-internal), `point_failed`
 * survives only while no complete point exists for its spec, and
 * duplicate `decision` records (identical but for timestamp, as
 * re-runs of a deterministic point re-journal identical decisions)
 * collapse to one. The output is sorted by (kind rank, spec hash,
 * simulated time, encoding): permuting @p segment_paths cannot change
 * a single output byte.
 */
MergeResult mergeLedgerSegments(const std::vector<std::string> &segment_paths,
                                const MergeOptions &opts = MergeOptions{});

} // namespace capart::obs

#endif // CAPART_OBS_RUN_LEDGER_HH
