/**
 * @file
 * Per-owner attribution time series and structured journal.
 *
 * The metrics registry says *that* resources were consumed and the
 * tracer says *when* things happened; this sampler records *who*
 * consumed each resource over time. Every N executed quanta (the
 * `--obs-sample-period` knob; 0 = off) the simulator snapshots one
 * @ref AttributionSample: per-owner LLC occupancy, the per-owner stall
 * breakdown, per-owner/per-channel DRAM bytes, and per-owner energy.
 * Control-plane components append @ref JournalEntry records (one per
 * partitioner decision or SLO evaluation) to the same per-thread
 * scope, so a point's samples and its decisions drain together.
 *
 * Gating follows the tracer exactly: compile-time CAPART_OBS=OFF makes
 * every seam dead code, runtime obs::enabled() plus a non-zero period
 * arm recording, and nothing recorded here ever feeds back into
 * simulation state — results stay bit-identical with sampling on
 * (tests/test_attribution.cc locks this down).
 *
 * Threading model: the sweep runner executes each experiment point on
 * one worker thread, so per-thread scopes double as per-point scopes;
 * drainScope() hands a completed point's data to the caller, and
 * whatever is never drained (single-threaded benches driving System
 * directly) is picked up by collect() at export time.
 */

#ifndef CAPART_OBS_TIMESERIES_HH
#define CAPART_OBS_TIMESERIES_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.hh"

namespace capart::obs
{

/** One owner's (application's) slice of one attribution sample. */
struct OwnerSample
{
    unsigned owner = 0;
    /** LLC lines resident and owned at sample time. */
    std::uint64_t residentLines = 0;
    /** residentLines / sets: average ways of each set occupied. */
    double occupancyWays = 0.0;
    /** The owner's LLC way mask at sample time. */
    std::uint32_t wayMaskBits = 0;
    /** Cumulative instructions retired. */
    std::uint64_t retired = 0;
    /** Cumulative core cycles, equal to the sum of the five stalls. */
    std::uint64_t cycles = 0;
    /** Cumulative stall breakdown (compute/L2/LLC/DRAM/queueing). */
    std::uint64_t stallCompute = 0;
    std::uint64_t stallL2 = 0;
    std::uint64_t stallLlc = 0;
    std::uint64_t stallDram = 0;
    std::uint64_t stallQueue = 0;
    /** Cumulative attributed energy (core busy / LLC / DRAM joules). */
    double busyJ = 0.0;
    double llcJ = 0.0;
    double dramJ = 0.0;
    /** Cumulative DRAM bytes per channel. */
    std::vector<std::uint64_t> channelBytes;
};

/** One snapshot of the whole machine, taken every N quanta. */
struct AttributionSample
{
    /** Simulated microseconds at the sampling quantum. */
    double tUs = 0.0;
    /** Quanta executed so far (the sampling clock). */
    std::uint64_t quantum = 0;
    /** Total LLC lines resident (conservation: owners sum to this). */
    std::uint64_t llcResidentLines = 0;
    std::uint64_t llcSets = 0;
    unsigned llcWays = 0;
    /** Model-total dynamic socket / DRAM joules at sample time. */
    double socketDynamicJ = 0.0;
    double dramJ = 0.0;
    std::vector<OwnerSample> owners;
};

/**
 * One structured control-plane record: a partitioner decision or an
 * SLO evaluation. Flat name->number fields keep the schema open (and
 * map 1:1 onto run-ledger metric pairs for replay).
 */
struct JournalEntry
{
    double tUs = 0.0;
    std::string kind; //!< "decision" or "slo"
    std::string rule; //!< rule that fired / transition that occurred
    std::vector<std::pair<std::string, double>> fields;

    double field(const std::string &name, double fallback = 0.0) const;
};

/** A drained scope: one experiment point's samples plus journal. */
struct AttributionBatch
{
    std::string label;          //!< bench/point label for display
    std::uint64_t specHash = 0; //!< owning ExperimentSpec, if any
    std::string attrFile;       //!< side file this batch was written to
    std::vector<AttributionSample> samples;
    std::vector<JournalEntry> journal;
};

/** Ring-buffered attribution recorder; see file comment. */
class TimeSeries
{
  public:
    /**
     * @param sample_capacity  samples retained per recording thread.
     * @param journal_capacity journal entries retained per thread.
     */
    explicit TimeSeries(std::size_t sample_capacity = 1 << 12,
                        std::size_t journal_capacity = 1 << 14);
    ~TimeSeries();

    TimeSeries(const TimeSeries &) = delete;
    TimeSeries &operator=(const TimeSeries &) = delete;

    /**
     * Quanta between samples; 0 disables sampling. The simulator reads
     * this each quantum (one relaxed load), so flipping it mid-process
     * takes effect immediately.
     */
    void setPeriod(std::uint64_t quanta);
    std::uint64_t
    period() const
    {
        return period_.load(std::memory_order_relaxed);
    }

    /** Record a sample into the calling thread's ring. */
    void record(AttributionSample sample);

    /** Append a control-plane record to the calling thread's scope. */
    void journal(JournalEntry entry);

    /**
     * Move the calling thread's retained samples and journal entries
     * (oldest first) into a batch, leaving the scope empty. Sweep
     * workers call this after each point.
     */
    AttributionBatch drainScope();

    /** Park a completed batch for collect() (dashboard export). */
    void deposit(AttributionBatch batch);

    /**
     * Deposited batches followed by any still-undrained per-thread
     * scopes (as one batch each, labeled @p leftover_label).
     */
    std::vector<AttributionBatch>
    collect(const std::string &leftover_label = "run");

    /** Samples evicted because a ring filled. */
    std::uint64_t droppedSamples() const;
    /** Journal entries evicted because a scope filled. */
    std::uint64_t droppedJournal() const;

    /** Retained samples across all scopes (deposited + undrained). */
    std::uint64_t sampleCount() const;

    /** Forget everything recorded and deposited. */
    void clear();

  private:
    struct Scope
    {
        Scope(std::size_t sample_cap, std::size_t journal_cap)
            : samples(sample_cap), journal(journal_cap)
        {
        }

        std::vector<AttributionSample> samples;
        std::size_t sampleNext = 0;
        std::uint64_t samplesRecorded = 0;
        std::vector<JournalEntry> journal;
        std::size_t journalNext = 0;
        std::uint64_t journalRecorded = 0;
    };

    Scope &scope();
    static void drainRing(Scope &s, AttributionBatch *out);

    const std::size_t sampleCapacity_;
    const std::size_t journalCapacity_;
    const std::uint64_t id_; //!< distinguishes instances in TLS cache
    std::atomic<std::uint64_t> period_{0};

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Scope>> scopes_;
    std::vector<AttributionBatch> deposited_;
    std::uint64_t droppedSamples_ = 0;
    std::uint64_t droppedJournal_ = 0;
};

/** The process-wide attribution recorder. */
TimeSeries &timeseries();

/** Write a batch as a standalone attribution JSON document. */
void writeAttributionJson(std::ostream &os, const AttributionBatch &batch);

/** Parse a document written by writeAttributionJson. */
bool parseAttributionJson(const std::string &text, AttributionBatch *out);

} // namespace capart::obs

#endif // CAPART_OBS_TIMESERIES_HH
