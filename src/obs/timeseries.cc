#include "obs/timeseries.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"

namespace capart::obs
{

namespace
{

std::atomic<std::uint64_t> gNextSeriesId{1};

std::string
hexU64(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
    return buf;
}

Json
u64Json(std::uint64_t v)
{
    // Doubles hold integers exactly up to 2^53; counters in one run
    // stay far below that, so numeric JSON keeps the files readable.
    return Json(static_cast<double>(v));
}

Json
ownerToJson(const OwnerSample &o)
{
    Json j = Json::object();
    j.set("owner", Json(static_cast<double>(o.owner)));
    j.set("lines", u64Json(o.residentLines));
    j.set("ways", Json(o.occupancyWays));
    j.set("mask", Json(static_cast<double>(o.wayMaskBits)));
    j.set("retired", u64Json(o.retired));
    j.set("cycles", u64Json(o.cycles));
    Json stall = Json::array();
    stall.push(u64Json(o.stallCompute));
    stall.push(u64Json(o.stallL2));
    stall.push(u64Json(o.stallLlc));
    stall.push(u64Json(o.stallDram));
    stall.push(u64Json(o.stallQueue));
    j.set("stall", std::move(stall));
    Json energy = Json::array();
    energy.push(Json(o.busyJ));
    energy.push(Json(o.llcJ));
    energy.push(Json(o.dramJ));
    j.set("energy", std::move(energy));
    Json chan = Json::array();
    for (const std::uint64_t b : o.channelBytes)
        chan.push(u64Json(b));
    j.set("chan", std::move(chan));
    return j;
}

OwnerSample
ownerFromJson(const Json &j)
{
    OwnerSample o;
    o.owner = static_cast<unsigned>(j.at("owner").asNum());
    o.residentLines = static_cast<std::uint64_t>(j.at("lines").asNum());
    o.occupancyWays = j.at("ways").asNum();
    o.wayMaskBits = static_cast<std::uint32_t>(j.at("mask").asNum());
    o.retired = static_cast<std::uint64_t>(j.at("retired").asNum());
    o.cycles = static_cast<std::uint64_t>(j.at("cycles").asNum());
    const Json &stall = j.at("stall");
    auto stallAt = [&](std::size_t i) {
        return i < stall.arr.size()
                   ? static_cast<std::uint64_t>(stall.arr[i].num)
                   : 0;
    };
    o.stallCompute = stallAt(0);
    o.stallL2 = stallAt(1);
    o.stallLlc = stallAt(2);
    o.stallDram = stallAt(3);
    o.stallQueue = stallAt(4);
    const Json &energy = j.at("energy");
    auto energyAt = [&](std::size_t i) {
        return i < energy.arr.size() ? energy.arr[i].num : 0.0;
    };
    o.busyJ = energyAt(0);
    o.llcJ = energyAt(1);
    o.dramJ = energyAt(2);
    for (const Json &b : j.at("chan").arr)
        o.channelBytes.push_back(static_cast<std::uint64_t>(b.num));
    return o;
}

Json
sampleToJson(const AttributionSample &s)
{
    Json j = Json::object();
    j.set("t_us", Json(s.tUs));
    j.set("q", u64Json(s.quantum));
    j.set("llc_lines", u64Json(s.llcResidentLines));
    j.set("llc_sets", u64Json(s.llcSets));
    j.set("llc_ways", Json(static_cast<double>(s.llcWays)));
    j.set("socket_j", Json(s.socketDynamicJ));
    j.set("dram_j", Json(s.dramJ));
    Json owners = Json::array();
    for (const OwnerSample &o : s.owners)
        owners.push(ownerToJson(o));
    j.set("owners", std::move(owners));
    return j;
}

AttributionSample
sampleFromJson(const Json &j)
{
    AttributionSample s;
    s.tUs = j.at("t_us").asNum();
    s.quantum = static_cast<std::uint64_t>(j.at("q").asNum());
    s.llcResidentLines =
        static_cast<std::uint64_t>(j.at("llc_lines").asNum());
    s.llcSets = static_cast<std::uint64_t>(j.at("llc_sets").asNum());
    s.llcWays = static_cast<unsigned>(j.at("llc_ways").asNum());
    s.socketDynamicJ = j.at("socket_j").asNum();
    s.dramJ = j.at("dram_j").asNum();
    for (const Json &o : j.at("owners").arr)
        s.owners.push_back(ownerFromJson(o));
    return s;
}

Json
entryToJson(const JournalEntry &e)
{
    Json j = Json::object();
    j.set("t_us", Json(e.tUs));
    j.set("kind", Json(e.kind));
    j.set("rule", Json(e.rule));
    Json fields = Json::object();
    for (const auto &[name, value] : e.fields)
        fields.set(name, Json(value));
    j.set("fields", std::move(fields));
    return j;
}

JournalEntry
entryFromJson(const Json &j)
{
    JournalEntry e;
    e.tUs = j.at("t_us").asNum();
    e.kind = j.at("kind").asStr();
    e.rule = j.at("rule").asStr();
    for (const auto &[name, value] : j.at("fields").obj) {
        if (value.kind == Json::Kind::Num)
            e.fields.emplace_back(name, value.num);
    }
    return e;
}

} // namespace

double
JournalEntry::field(const std::string &name, double fallback) const
{
    for (const auto &[k, v] : fields) {
        if (k == name)
            return v;
    }
    return fallback;
}

TimeSeries::TimeSeries(std::size_t sample_capacity,
                       std::size_t journal_capacity)
    : sampleCapacity_(sample_capacity), journalCapacity_(journal_capacity),
      id_(gNextSeriesId.fetch_add(1, std::memory_order_relaxed))
{
    capart_assert(sample_capacity >= 2);
    capart_assert(journal_capacity >= 2);
}

TimeSeries::~TimeSeries() = default;

void
TimeSeries::setPeriod(std::uint64_t quanta)
{
    period_.store(quanta, std::memory_order_relaxed);
}

TimeSeries::Scope &
TimeSeries::scope()
{
    // Same idiom as Tracer::ring(): each thread caches (instance id ->
    // scope) so re-lookups after the first record are lock-free.
    thread_local std::vector<std::pair<std::uint64_t, Scope *>> cache;
    for (const auto &[id, s] : cache) {
        if (id == id_)
            return *s;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    scopes_.push_back(
        std::make_unique<Scope>(sampleCapacity_, journalCapacity_));
    Scope *s = scopes_.back().get();
    cache.emplace_back(id_, s);
    return *s;
}

void
TimeSeries::record(AttributionSample sample)
{
    if (!enabled())
        return;
    Scope &s = scope();
    if (s.samplesRecorded >= s.samples.size()) {
        static Counter &drops = metrics().counter("timeseries.dropped");
        drops.inc();
        std::lock_guard<std::mutex> lock(mutex_);
        ++droppedSamples_;
    }
    s.samples[s.sampleNext] = std::move(sample);
    s.sampleNext = (s.sampleNext + 1) % s.samples.size();
    ++s.samplesRecorded;
}

void
TimeSeries::journal(JournalEntry entry)
{
    if (!enabled())
        return;
    Scope &s = scope();
    if (s.journalRecorded >= s.journal.size()) {
        static Counter &drops = metrics().counter("journal.dropped");
        drops.inc();
        std::lock_guard<std::mutex> lock(mutex_);
        ++droppedJournal_;
    }
    s.journal[s.journalNext] = std::move(entry);
    s.journalNext = (s.journalNext + 1) % s.journal.size();
    ++s.journalRecorded;
}

void
TimeSeries::drainRing(Scope &s, AttributionBatch *out)
{
    {
        const std::size_t cap = s.samples.size();
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(s.samplesRecorded, cap));
        const std::size_t start =
            s.samplesRecorded > cap ? s.sampleNext : 0;
        for (std::size_t i = 0; i < n; ++i)
            out->samples.push_back(
                std::move(s.samples[(start + i) % cap]));
        s.sampleNext = 0;
        s.samplesRecorded = 0;
    }
    {
        const std::size_t cap = s.journal.size();
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(s.journalRecorded, cap));
        const std::size_t start =
            s.journalRecorded > cap ? s.journalNext : 0;
        for (std::size_t i = 0; i < n; ++i)
            out->journal.push_back(
                std::move(s.journal[(start + i) % cap]));
        s.journalNext = 0;
        s.journalRecorded = 0;
    }
}

AttributionBatch
TimeSeries::drainScope()
{
    AttributionBatch batch;
    if constexpr (!kCompiledIn)
        return batch;
    Scope &s = scope();
    // The scope belongs to the calling thread, but drain under the
    // lock anyway: collect() walks all scopes from the export thread.
    std::lock_guard<std::mutex> lock(mutex_);
    drainRing(s, &batch);
    return batch;
}

void
TimeSeries::deposit(AttributionBatch batch)
{
    if constexpr (!kCompiledIn)
        return;
    std::lock_guard<std::mutex> lock(mutex_);
    deposited_.push_back(std::move(batch));
}

std::vector<AttributionBatch>
TimeSeries::collect(const std::string &leftover_label)
{
    std::vector<AttributionBatch> out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (AttributionBatch &b : deposited_)
        out.push_back(std::move(b));
    deposited_.clear();
    for (const auto &s : scopes_) {
        if (!s->samplesRecorded && !s->journalRecorded)
            continue;
        AttributionBatch batch;
        batch.label = leftover_label;
        drainRing(*s, &batch);
        out.push_back(std::move(batch));
    }
    return out;
}

std::uint64_t
TimeSeries::droppedSamples() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return droppedSamples_;
}

std::uint64_t
TimeSeries::droppedJournal() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return droppedJournal_;
}

std::uint64_t
TimeSeries::sampleCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t n = 0;
    for (const AttributionBatch &b : deposited_)
        n += b.samples.size();
    for (const auto &s : scopes_)
        n += std::min<std::uint64_t>(s->samplesRecorded,
                                     s->samples.size());
    return n;
}

void
TimeSeries::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    deposited_.clear();
    for (const auto &s : scopes_) {
        s->sampleNext = 0;
        s->samplesRecorded = 0;
        s->journalNext = 0;
        s->journalRecorded = 0;
    }
    droppedSamples_ = 0;
    droppedJournal_ = 0;
}

TimeSeries &
timeseries()
{
    static TimeSeries global;
    return global;
}

void
writeAttributionJson(std::ostream &os, const AttributionBatch &batch)
{
    Json doc = Json::object();
    doc.set("v", Json(1.0));
    doc.set("label", Json(batch.label));
    doc.set("spec_hash", Json(hexU64(batch.specHash)));
    doc.set("attr_file", Json(batch.attrFile));
    Json samples = Json::array();
    for (const AttributionSample &s : batch.samples)
        samples.push(sampleToJson(s));
    doc.set("samples", std::move(samples));
    Json journal = Json::array();
    for (const JournalEntry &e : batch.journal)
        journal.push(entryToJson(e));
    doc.set("journal", std::move(journal));
    doc.write(os);
    os << '\n';
}

bool
parseAttributionJson(const std::string &text, AttributionBatch *out)
{
    const std::optional<Json> doc = Json::parse(text);
    if (!doc || !doc->isObj())
        return false;
    if (doc->at("v").asNum(0) != 1.0)
        return false;
    AttributionBatch batch;
    batch.label = doc->at("label").asStr();
    batch.attrFile = doc->at("attr_file").asStr();
    {
        const std::string hash = doc->at("spec_hash").asStr("0");
        char *end = nullptr;
        batch.specHash = std::strtoull(hash.c_str(), &end, 0);
        if (!end || *end != '\0')
            return false;
    }
    for (const Json &s : doc->at("samples").arr)
        batch.samples.push_back(sampleFromJson(s));
    for (const Json &e : doc->at("journal").arr)
        batch.journal.push_back(entryFromJson(e));
    *out = std::move(batch);
    return true;
}

} // namespace capart::obs
