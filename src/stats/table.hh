/**
 * @file
 * Plain-text and CSV table emitters used by the bench binaries to print
 * the rows/series the paper's tables and figures report.
 */

#ifndef CAPART_STATS_TABLE_HH
#define CAPART_STATS_TABLE_HH

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace capart
{

/**
 * A simple column-aligned table. Collect rows of strings, then render
 * either aligned for the terminal or as CSV for plotting scripts.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Number of data rows (excluding the header). */
    std::size_t rows() const { return rows_.size(); }

    /** Render column-aligned text with a header separator. */
    void print(std::ostream &os) const;

    /** Render RFC-4180-ish CSV (quotes cells containing commas). */
    void printCsv(std::ostream &os) const;

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace capart

#endif // CAPART_STATS_TABLE_HH
