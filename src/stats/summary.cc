#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace capart
{

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    capart_assert(hi > lo);
    capart_assert(bins > 0);
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    double frac = (x - lo_) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(counts_.size()));
    if (idx >= counts_.size())
        idx = counts_.size() - 1;
    ++counts_[idx];
    ++total_;
}

double
Histogram::binLo(std::size_t i) const
{
    capart_assert(i < counts_.size());
    const double step = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + step * static_cast<double>(i);
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        capart_assert(x > 0.0);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
weightedSpeedup(const std::vector<double> &solo_times,
                const std::vector<double> &corun_times)
{
    capart_assert(solo_times.size() == corun_times.size());
    capart_assert(!solo_times.empty());
    double sequential = 0.0;
    double makespan = 0.0;
    for (std::size_t i = 0; i < solo_times.size(); ++i) {
        sequential += solo_times[i];
        makespan = std::max(makespan, corun_times[i]);
    }
    capart_assert(makespan > 0.0);
    return sequential / makespan;
}

double
signTestPValue(unsigned wins, unsigned losses)
{
    const unsigned n = wins + losses;
    if (n == 0)
        return 1.0;
    // P[X >= wins] for X ~ Binomial(n, 1/2), summed in log space so
    // large n cannot overflow the binomial coefficients.
    double p = 0.0;
    double log_choose = 0.0; // log C(n, 0)
    const double log_half_n =
        static_cast<double>(n) * std::log(0.5);
    for (unsigned k = 0; k <= n; ++k) {
        if (k >= wins)
            p += std::exp(log_choose + log_half_n);
        // C(n, k+1) = C(n, k) * (n - k) / (k + 1)
        if (k < n) {
            log_choose += std::log(static_cast<double>(n - k)) -
                          std::log(static_cast<double>(k + 1));
        }
    }
    return std::min(p, 1.0);
}

} // namespace capart
