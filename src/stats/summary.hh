/**
 * @file
 * Small statistics helpers: running aggregates, histograms, and the
 * geometric/weighted means the paper's evaluation metrics use.
 */

#ifndef CAPART_STATS_SUMMARY_HH
#define CAPART_STATS_SUMMARY_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace capart
{

/** Incremental mean / min / max / variance (Welford's algorithm). */
class RunningStat
{
  public:
    /** Fold one sample into the aggregate. */
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Population variance. */
    double
    variance() const
    {
        return n_ ? m2_ / static_cast<double>(n_) : 0.0;
    }

    double stddev() const;

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bin histogram over [lo, hi); out-of-range samples clamp. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    std::size_t bins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    std::uint64_t total() const { return total_; }

    /** Lower edge of bin i. */
    double binLo(std::size_t i) const;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/** Arithmetic mean of a vector; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Geometric mean; all inputs must be positive. */
double geomean(const std::vector<double> &xs);

/** Maximum element; 0 for empty input. */
double maxOf(const std::vector<double> &xs);

/**
 * Weighted speedup of a co-run versus sequential execution (Fig. 11):
 * with per-app co-run times t_i and solo times s_i, the consolidated
 * makespan is max(t_i) and the sequential makespan is sum(s_i).
 */
double weightedSpeedup(const std::vector<double> &solo_times,
                       const std::vector<double> &corun_times);

/**
 * One-sided sign test: the probability of seeing >= @p wins successes
 * in @p wins + @p losses fair coin flips (ties are excluded by the
 * caller). This is the p-value for "current is genuinely worse than
 * baseline" when each paired sweep point that moved in the worse
 * direction counts as a win. Distribution-free, so it needs no
 * assumption about how per-point deltas are shaped. Returns 1 when
 * there are no untied pairs.
 */
double signTestPValue(unsigned wins, unsigned losses);

} // namespace capart

#endif // CAPART_STATS_SUMMARY_HH
