/**
 * @file
 * Bucketed sliding-window rate tracker.
 *
 * Bandwidth contention in the quantum-interleaved simulator is computed
 * from the traffic all hardware threads generated over the recent past;
 * this class provides that "recent bytes per second" estimate cheaply.
 */

#ifndef CAPART_STATS_RATE_WINDOW_HH
#define CAPART_STATS_RATE_WINDOW_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace capart
{

/**
 * Accumulates (time, amount) samples into fixed-width buckets and reports
 * the average rate over the last `buckets × bucketWidth` seconds.
 */
class RateWindow
{
  public:
    /**
     * @param bucket_width  seconds covered by one bucket.
     * @param buckets       number of buckets in the window.
     */
    RateWindow(Seconds bucket_width, unsigned buckets)
        : width_(bucket_width), counts_(buckets, 0), epochs_(buckets, ~0ULL)
    {
        capart_assert(bucket_width > 0.0);
        capart_assert(buckets >= 2);
    }

    /**
     * Add @p amount units at time @p now. Samples may arrive mildly
     * out of order (hardware threads post traffic at their own local
     * times); anything still inside the window folds into its bucket.
     * A sample older than the whole window is dropped — its slot has
     * been reused for a newer epoch, and folding it in would either
     * corrupt that bucket or resurrect expired traffic. Dropped
     * samples still count toward total().
     */
    void
    record(Seconds now, std::uint64_t amount)
    {
        const std::uint64_t epoch = bucketEpoch(now);
        total_ += amount;
        if (lastEpoch_ != ~0ULL && epoch + counts_.size() <= lastEpoch_) {
            ++staleDrops_;
            return;
        }
        if (lastEpoch_ == ~0ULL || epoch > lastEpoch_)
            lastEpoch_ = epoch;
        const std::size_t slot = epoch % counts_.size();
        if (epochs_[slot] != epoch) {
            epochs_[slot] = epoch;
            counts_[slot] = 0;
        }
        counts_[slot] += amount;
    }

    /** Average units/second over the live window ending at @p now. */
    double
    rate(Seconds now) const
    {
        const std::uint64_t epoch = bucketEpoch(now);
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            // A slot is live if its epoch lies within the window.
            if (epochs_[i] != ~0ULL && epochs_[i] + counts_.size() > epoch &&
                epochs_[i] <= epoch) {
                sum += counts_[i];
            }
        }
        return static_cast<double>(sum) /
               (width_ * static_cast<double>(counts_.size()));
    }

    /** All units ever recorded (including dropped stale samples). */
    std::uint64_t total() const { return total_; }

    /** Samples dropped for arriving older than the whole window. */
    std::uint64_t staleDrops() const { return staleDrops_; }

    /** Window span in seconds. */
    Seconds
    span() const
    {
        return width_ * static_cast<double>(counts_.size());
    }

  private:
    std::uint64_t
    bucketEpoch(Seconds now) const
    {
        return static_cast<std::uint64_t>(now / width_);
    }

    Seconds width_;
    std::vector<std::uint64_t> counts_;
    std::vector<std::uint64_t> epochs_;
    std::uint64_t total_ = 0;
    std::uint64_t lastEpoch_ = ~0ULL; //!< newest epoch ever recorded
    std::uint64_t staleDrops_ = 0;
};

} // namespace capart

#endif // CAPART_STATS_RATE_WINDOW_HH
