/**
 * @file
 * Multi-app fairness and throughput metrics.
 *
 * The N-app benches report the metrics the LFOC line of work uses
 * (PAPERS.md): per-app slowdown against a solo baseline, the
 * *unfairness* ratio max slowdown / min slowdown (1.0 = perfectly
 * fair), and system throughput STP = sum of per-app speedups (N =
 * every app at solo speed). Hand-computed fixtures in
 * tests/test_stats.cc pin the definitions.
 */

#ifndef CAPART_STATS_FAIRNESS_HH
#define CAPART_STATS_FAIRNESS_HH

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace capart
{

/**
 * Unfairness of a co-schedule: max_i slowdown_i / min_i slowdown_i,
 * where slowdown_i = (solo throughput) / (co-run throughput) of app i.
 * 1.0 means every app degrades equally; bigger is less fair.
 * @p slowdowns must be non-empty and strictly positive.
 */
inline double
unfairness(const std::vector<double> &slowdowns)
{
    capart_assert(!slowdowns.empty());
    const auto [lo, hi] =
        std::minmax_element(slowdowns.begin(), slowdowns.end());
    capart_assert(*lo > 0.0);
    return *hi / *lo;
}

/**
 * System throughput (STP): sum over apps of 1 / slowdown_i — the
 * aggregate rate of progress in units of "solo apps' worth of work".
 */
inline double
systemThroughput(const std::vector<double> &slowdowns)
{
    capart_assert(!slowdowns.empty());
    double stp = 0.0;
    for (const double s : slowdowns) {
        capart_assert(s > 0.0);
        stp += 1.0 / s;
    }
    return stp;
}

} // namespace capart

#endif // CAPART_STATS_FAIRNESS_HH
