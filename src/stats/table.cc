#include "stats/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace capart
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    capart_assert(!headers_.empty());
}

void
Table::addRow(std::vector<std::string> cells)
{
    capart_assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    emit(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(width[c], '-')
           << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto &row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find(',') == std::string::npos &&
            s.find('"') == std::string::npos) {
            return s;
        }
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << quote(row[c]) << (c + 1 == row.size() ? "\n" : ",");
    };

    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

} // namespace capart
