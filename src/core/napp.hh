/**
 * @file
 * N-app co-scheduling: run 2–64 applications on one simulated machine
 * under any @ref NPolicy, with offline miss-curve profiling for the
 * curve-driven policies and solo-baseline bookkeeping for the fairness
 * metrics.
 *
 * This is the N-app generalization of sim/experiment.hh's runPair /
 * core/co_scheduler.hh: apps are pinned to disjoint whole cores in
 * member order (both hyperthreads of a core filled first, §5), app 0
 * is the latency-sensitive foreground, and the run ends when every
 * non-continuous app completes. At N = 2 the construction sequence is
 * identical to runPair's, which the differential tests in
 * tests/test_sim.cc hold to bit-identity for all four ported policies.
 */

#ifndef CAPART_CORE_NAPP_HH
#define CAPART_CORE_NAPP_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "core/dynamic_partitioner.hh"
#include "core/lfoc.hh"
#include "core/partitioner.hh"
#include "sim/run_result.hh"
#include "sim/system_config.hh"
#include "workload/app_params.hh"

namespace capart
{

/**
 * A machine sized for N-app consolidation: @p num_cores cores (2 HTs
 * each) and a @p llc_ways-way LLC at 128 KiB per way (so the set count
 * stays a power of two at any associativity, and scaled catalog
 * working sets still span multiple ways), with enough partition slots
 * for 64 co-runners. 16 cores / 20 ways models the commodity server
 * LFOC targets.
 */
SystemConfig nAppSystem(unsigned num_cores, unsigned llc_ways,
                        std::uint64_t seed = 12345);

/** One co-runner in an N-app schedule. */
struct NAppMember
{
    AppParams params;
    /** Hyperthreads (both HTs of a core are filled first). */
    unsigned threads = 2;
    /** Restart forever (background role); app 0 usually runs once. */
    bool continuous = true;
};

/** An offline-profiled miss-rate curve (analysis/mrc replay). */
struct MissCurve
{
    /** mpkiAtWays[w]: expected MPKI with w ways of the LLC, w = 0 is
     *  no cache at all. Size = llc ways + 1. */
    std::vector<double> mpkiAtWays;
    /** Cache-hierarchy accesses per kilo-instruction. */
    double apki = 0.0;
    /** Line references fed to the profiler. */
    std::uint64_t accesses = 0;
};

/**
 * Profile @p params by replaying one thread of its (scaled) reference
 * stream into the exact LRU stack-distance profiler and reading the
 * miss ratio at every way count of @p system's LLC. Deterministic in
 * (params, system seed, scale); capped at @p max_accesses references.
 */
MissCurve profileMissCurve(const AppParams &params,
                           const SystemConfig &system, double scale,
                           std::uint64_t max_accesses = 200'000);

/** Knobs of one N-app run. */
struct NAppOptions
{
    /** The machine; use nAppSystem() for more than 4 cores. */
    SystemConfig system{};
    /** Instruction-scale factor applied to every member. */
    double scale = 1.0;
    /** Foreground ways of the Biased policy; 0 = half the LLC. */
    unsigned biasedFgWays = 0;
    DynamicPartitionerConfig dynamic{};
    /**
     * Scale the dynamic controller's probe ceiling to the machine:
     * maxFgWays = llc ways - 1 (the paper's 11-of-12 generalized).
     * On the 12-way default machine this equals the stock config, so
     * the N = 2 differential tests stay bit-identical.
     */
    bool autoScaleDynamic = true;
    LfocConfig lfoc{};
    /** LFOC re-decides (and bounces) every this many app-0 windows. */
    unsigned decisionWindows = 1;
    /** Reference cap of each miss-curve profile. */
    std::uint64_t profileAccesses = 200'000;
};

/** Outcome of one N-app run. */
struct NAppRunResult
{
    NPolicy policy = NPolicy::Shared;
    /** Per-app counters, indexed by member order. */
    std::vector<AppRunStats> apps;
    /** Completion time of app 0 (the responsiveness metric). */
    Seconds fgTime = 0.0;
    Joules socketEnergy = 0.0;
    Joules wallEnergy = 0.0;
    bool timedOut = false;
    /** Mask installations after the initial decision. */
    std::uint64_t remasks = 0;
    /** LFOC only: the classes assigned at the last decision. */
    std::vector<AppClass> lfocClasses;
};

/**
 * Run @p members under @p policy. Curve-driven policies (UCP, LFOC)
 * profile each member's miss curve first; UCP then allocates once up
 * front, LFOC keeps re-deciding every decisionWindows windows so its
 * fractional-way bouncing is exercised. Dynamic reuses the hardened
 * Algorithm 6.2 controller with members 1..N-1 as the background set.
 */
NAppRunResult runNApp(const std::vector<NAppMember> &members,
                      NPolicy policy, const NAppOptions &opts);

/** Everything the N-app benches report about one (mix, policy) cell. */
struct NAppPolicySummary
{
    NPolicy policy = NPolicy::Shared;
    /** STP: sum of per-app speedups vs solo (N = no interference). */
    double stp = 0.0;
    /** Aggregate instructions per second across all apps. */
    double throughputIps = 0.0;
    /** max slowdown / min slowdown (LFOC's metric; 1 = fair). */
    double unfairness = 1.0;
    double worstSlowdown = 1.0;
    /** App 0's slowdown vs running alone on the machine. */
    double fgSlowdown = 1.0;
    Joules socketEnergyJ = 0.0;
    Joules wallEnergyJ = 0.0;
    /** Apps whose slowdown exceeds the SLO threshold. */
    unsigned sloBreaches = 0;
    std::uint64_t remasks = 0;
    bool timedOut = false;
};

/** Knobs of an @ref NAppStudy. */
struct NAppStudyOptions
{
    NAppOptions run{};
    /** Slowdown above which an app counts as an SLO breach. */
    double sloSlowdown = 1.10;
};

/**
 * Runs one mix under several policies, caching the per-app solo
 * baselines (each app alone on the whole machine) that slowdown,
 * unfairness, STP, and SLO accounting share.
 */
class NAppStudy
{
  public:
    NAppStudy(std::vector<NAppMember> members,
              NAppStudyOptions opts = NAppStudyOptions{});

    /** Solo throughput baseline of member @p i (cached). */
    double soloIps(std::size_t i);

    /** The raw run under @p policy (cached). */
    const NAppRunResult &runPolicy(NPolicy policy);

    /** All headline metrics for @p policy. */
    NAppPolicySummary summarize(NPolicy policy);

    const std::vector<NAppMember> &members() const { return members_; }
    const NAppStudyOptions &options() const { return opts_; }

  private:
    std::vector<NAppMember> members_;
    NAppStudyOptions opts_;
    std::vector<std::optional<double>> soloIps_;
    std::map<NPolicy, NAppRunResult> runs_;
};

} // namespace capart

#endif // CAPART_CORE_NAPP_HH
