/**
 * @file
 * Structured, replayable records of dynamic-partitioner decisions.
 *
 * Every control decision of Algorithm 6.2 is reduced to a pure
 * function: @ref decidePartition maps a complete snapshot of the
 * inputs the controller saw (@ref DecisionInputs) to the action it
 * must take (@ref Decision). DynamicPartitioner::onWindow *calls*
 * this function — the journal is not a log of what the code happened
 * to do, it is the decision procedure itself, so a recorded decision
 * can be replayed deterministically:
 *
 *     decidePartition(inputsFromRecord(rec)) == outputsFromRecord(rec)
 *
 * holds for every journaled window (tests/test_attribution.cc asserts
 * it end to end on a fig13 run). Records are emitted as flat
 * name->number @ref obs::JournalEntry fields so they append to the run
 * ledger unchanged and survive a JSON round trip.
 */

#ifndef CAPART_CORE_DECISION_JOURNAL_HH
#define CAPART_CORE_DECISION_JOURNAL_HH

#include <string>

#include "core/phase_detector.hh"
#include "obs/timeseries.hh"

namespace capart
{

/** Which rule of the control algorithm fired for a window. */
enum class DecisionRule
{
    Hold,          //!< in transition, or stable and not probing
    PhaseStartMax, //!< new phase: give the FG everything (§6.3)
    ProbeShrink,   //!< no MPKI reaction: release one more way
    SettleBack,    //!< MPKI reacted: give the way back and settle
    SettleFloor,   //!< probe hit minFgWays without a reaction
    Retry,         //!< a failed remask is in flight; no new decision
    RejectHold,    //!< telemetry rejected; allocation held
    FallbackHold,  //!< watchdog fallback active; fair split held
    FallbackEnter, //!< watchdog tripped into the fair split
    ResumeProbe    //!< dynamic control resumed; re-probe from the top
};

/** Stable wire name of @p rule (the journal/ledger encoding). */
const char *decisionRuleName(DecisionRule rule);

/** Inverse of decisionRuleName; false on an unknown name. */
bool decisionRuleFromName(const std::string &name, DecisionRule *out);

/**
 * Everything Algorithm 6.2's decision step reads. A journal record
 * stores exactly these fields, making the decision reproducible.
 */
struct DecisionInputs
{
    /** The window's raw MPKI (the shrink probe compares raw windows). */
    double rawMpki = 0.0;
    /** EWMA-smoothed MPKI (what the phase detector consumed). */
    double smoothedMpki = 0.0;
    /** Previous valid window's raw MPKI. */
    double lastMpki = 0.0;
    bool haveLast = false;
    /** Phase detector verdict for this window. */
    PhaseEvent phase = PhaseEvent::Stable;
    /** The controller is probing downward (a phase start is active). */
    bool probing = false;
    /** A failed remask awaits retry (suspends new decisions). */
    bool retryPending = false;
    unsigned retryWays = 0;
    /** Foreground ways currently installed. */
    unsigned fgWays = 0;
    // Config the decision reads.
    double thr3 = 0.0;
    double minDenominator = 0.0;
    unsigned minFgWays = 0;
    unsigned maxFgWays = 0;
};

/** What the controller must do for a window. */
struct Decision
{
    DecisionRule rule = DecisionRule::Hold;
    /** Foreground ways to install (== fgWays for hold-style rules). */
    unsigned targetFgWays = 0;
    /** Probing state after the action. */
    bool probingAfter = false;
    /** Relative MPKI change the probe computed (0 unless probing). */
    double delta = 0.0;
};

/**
 * The decision step of Algorithm 6.2 as a pure function of its
 * inputs; see the file comment for the replay contract.
 */
Decision decidePartition(const DecisionInputs &in);

/**
 * Encode one journaled decision: @p in and @p out flattened to
 * fields, plus the chosen/candidate way masks and whether the remask
 * landed. @p total_ways sizes the complement (background) masks.
 */
obs::JournalEntry makeDecisionEntry(double t_us, const DecisionInputs &in,
                                    const Decision &out, unsigned total_ways,
                                    bool applied, unsigned installed_ways);

/** Rebuild the decision inputs from a journal record's fields. */
DecisionInputs decisionInputsFromEntry(const obs::JournalEntry &entry);

/** Rebuild the recorded decision outputs from a journal record. */
Decision decisionFromEntry(const obs::JournalEntry &entry);

} // namespace capart

#endif // CAPART_CORE_DECISION_JOURNAL_HH
