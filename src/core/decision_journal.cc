#include "core/decision_journal.hh"

#include <algorithm>
#include <cmath>

#include "sim/experiment.hh"

namespace capart
{

const char *
decisionRuleName(DecisionRule rule)
{
    switch (rule) {
      case DecisionRule::Hold:
        return "hold";
      case DecisionRule::PhaseStartMax:
        return "phase_start_max";
      case DecisionRule::ProbeShrink:
        return "probe_shrink";
      case DecisionRule::SettleBack:
        return "settle_back";
      case DecisionRule::SettleFloor:
        return "settle_floor";
      case DecisionRule::Retry:
        return "retry";
      case DecisionRule::RejectHold:
        return "reject_hold";
      case DecisionRule::FallbackHold:
        return "fallback_hold";
      case DecisionRule::FallbackEnter:
        return "fallback_enter";
      case DecisionRule::ResumeProbe:
        return "resume_probe";
    }
    return "hold";
}

bool
decisionRuleFromName(const std::string &name, DecisionRule *out)
{
    static constexpr DecisionRule kAll[] = {
        DecisionRule::Hold,          DecisionRule::PhaseStartMax,
        DecisionRule::ProbeShrink,   DecisionRule::SettleBack,
        DecisionRule::SettleFloor,   DecisionRule::Retry,
        DecisionRule::RejectHold,    DecisionRule::FallbackHold,
        DecisionRule::FallbackEnter, DecisionRule::ResumeProbe,
    };
    for (const DecisionRule r : kAll) {
        if (name == decisionRuleName(r)) {
            *out = r;
            return true;
        }
    }
    return false;
}

Decision
decidePartition(const DecisionInputs &in)
{
    Decision d;
    d.rule = DecisionRule::Hold;
    d.targetFgWays = in.fgWays;
    d.probingAfter = in.probing;

    if (in.retryPending) {
        // A mask application is in flight: retry it on schedule and do
        // not take new decisions on state that never landed.
        d.rule = DecisionRule::Retry;
        d.targetFgWays = in.retryWays;
        return d;
    }
    if (in.phase == PhaseEvent::NewPhase) {
        // A new phase begins: give the foreground everything we can,
        // then probe downward from there (Algorithm 6.2).
        d.rule = DecisionRule::PhaseStartMax;
        d.targetFgWays = in.maxFgWays;
        d.probingAfter = true;
        return d;
    }
    if (in.phase == PhaseEvent::Stable && in.probing) {
        // The shrink probe compares *raw* successive windows: the
        // reaction to a one-way shrink must not be averaged away.
        const double denom =
            std::max(std::abs(in.lastMpki), in.minDenominator);
        d.delta =
            in.haveLast ? std::abs(in.lastMpki - in.rawMpki) / denom : 0.0;
        if (d.delta < in.thr3) {
            if (in.fgWays > in.minFgWays) {
                d.rule = DecisionRule::ProbeShrink;
                d.targetFgWays = in.fgWays - 1;
                d.probingAfter = true;
            } else {
                d.rule = DecisionRule::SettleFloor;
                d.probingAfter = false;
            }
        } else {
            d.rule = DecisionRule::SettleBack;
            d.targetFgWays = std::min(in.fgWays + 1, in.maxFgWays);
            d.probingAfter = false;
        }
        return d;
    }
    return d;
}

obs::JournalEntry
makeDecisionEntry(double t_us, const DecisionInputs &in, const Decision &out,
                  unsigned total_ways, bool applied,
                  unsigned installed_ways)
{
    obs::JournalEntry e;
    e.tUs = t_us;
    e.kind = "decision";
    e.rule = decisionRuleName(out.rule);
    auto f = [&](const char *name, double v) {
        e.fields.emplace_back(name, v);
    };
    // Inputs (the complete DecisionInputs snapshot).
    f("raw_mpki", in.rawMpki);
    f("smoothed_mpki", in.smoothedMpki);
    f("last_mpki", in.lastMpki);
    f("have_last", in.haveLast ? 1.0 : 0.0);
    f("phase", static_cast<double>(static_cast<int>(in.phase)));
    f("probing", in.probing ? 1.0 : 0.0);
    f("retry_pending", in.retryPending ? 1.0 : 0.0);
    f("retry_ways", in.retryWays);
    f("fg_ways", in.fgWays);
    f("thr3", in.thr3);
    f("min_denominator", in.minDenominator);
    f("min_fg_ways", in.minFgWays);
    f("max_fg_ways", in.maxFgWays);
    // The candidate allocations Algorithm 6.2 ever weighs from this
    // state (hold / one-way shrink / one-way grow / full re-probe),
    // each as the foreground way mask it would install.
    const unsigned shrink = std::max(in.fgWays > 0 ? in.fgWays - 1 : 0u,
                                     in.minFgWays);
    const unsigned grow = std::min(in.fgWays + 1, in.maxFgWays);
    f("cand_hold_mask", splitWays(in.fgWays, total_ways).fg.bits());
    f("cand_shrink_mask", splitWays(shrink, total_ways).fg.bits());
    f("cand_grow_mask", splitWays(grow, total_ways).fg.bits());
    f("cand_max_mask", splitWays(in.maxFgWays, total_ways).fg.bits());
    // Outputs.
    f("target_fg_ways", out.targetFgWays);
    f("probing_after", out.probingAfter ? 1.0 : 0.0);
    f("delta", out.delta);
    const SplitMasks chosen = splitWays(out.targetFgWays, total_ways);
    f("chosen_fg_mask", chosen.fg.bits());
    f("chosen_bg_mask", chosen.bg.bits());
    f("applied", applied ? 1.0 : 0.0);
    f("installed_fg_ways", installed_ways);
    f("total_ways", total_ways);
    return e;
}

DecisionInputs
decisionInputsFromEntry(const obs::JournalEntry &entry)
{
    DecisionInputs in;
    in.rawMpki = entry.field("raw_mpki");
    in.smoothedMpki = entry.field("smoothed_mpki");
    in.lastMpki = entry.field("last_mpki");
    in.haveLast = entry.field("have_last") != 0.0;
    in.phase =
        static_cast<PhaseEvent>(static_cast<int>(entry.field("phase")));
    in.probing = entry.field("probing") != 0.0;
    in.retryPending = entry.field("retry_pending") != 0.0;
    in.retryWays = static_cast<unsigned>(entry.field("retry_ways"));
    in.fgWays = static_cast<unsigned>(entry.field("fg_ways"));
    in.thr3 = entry.field("thr3");
    in.minDenominator = entry.field("min_denominator");
    in.minFgWays = static_cast<unsigned>(entry.field("min_fg_ways"));
    in.maxFgWays = static_cast<unsigned>(entry.field("max_fg_ways"));
    return in;
}

Decision
decisionFromEntry(const obs::JournalEntry &entry)
{
    Decision d;
    if (!decisionRuleFromName(entry.rule, &d.rule))
        d.rule = DecisionRule::Hold;
    d.targetFgWays =
        static_cast<unsigned>(entry.field("target_fg_ways"));
    d.probingAfter = entry.field("probing_after") != 0.0;
    d.delta = entry.field("delta");
    return d;
}

} // namespace capart
