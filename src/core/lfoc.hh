/**
 * @file
 * LFOC-style clustering partitioner.
 *
 * LFOC/LFOC+ (PAPERS.md) observe that commodity 20-way LLCs cannot give
 * every co-runner a private partition, but most co-runners do not need
 * one: *light* apps (low MPKI) barely touch the cache and can share a
 * small partition; *streaming* apps (high MPKI, flat miss curve) gain
 * nothing from capacity and must be isolated so they stop thrashing
 * everyone else; only the *cache-sensitive* apps — steep miss curves —
 * deserve dedicated ways. This module implements that scheme:
 *
 *  1. classify each app from its MPKI and miss-curve shape;
 *  2. pack lights into one small shared partition and streamers into
 *     another, both at the top of the way range;
 *  3. split the remaining ways among sensitive apps in proportion to
 *     their miss-curve utility — a *fractional* target per app;
 *  4. realize the fractional targets over time by "bouncing" each
 *     sensitive app between adjacent integer masks across decision
 *     windows (a persistent error accumulator per app, largest-
 *     remainder rounding per window), so the time-averaged allocation
 *     converges on the fractional ideal a way-granular mask cannot
 *     express in any single window.
 *
 * Every window's masks still cover all ways exactly (sensitive
 * allocations are disjoint; the two cluster partitions are shared by
 * their members only), which the invariant tests lock down.
 */

#ifndef CAPART_CORE_LFOC_HH
#define CAPART_CORE_LFOC_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "core/partitioner.hh"

namespace capart
{

/** LFOC's behavioural app classes. */
enum class AppClass
{
    Light,     //!< low MPKI: cache-insensitive, packs into a shared slice
    Streaming, //!< high MPKI, flat curve: isolate, capacity is wasted
    Sensitive  //!< steep curve: dedicated ways pay off
};

const char *appClassName(AppClass c);

/** Tunables of the LFOC-style policy. */
struct LfocConfig
{
    /**
     * MPKI floor below which an app is light (LFOC's "light sharers").
     * Judged cache-rich — against the miss curve's value at the whole
     * LLC — because a small-footprint app squeezed into a thin slice
     * looks heavy right up until the light slice fits it. Falls back
     * to the observed MPKI when no curve was profiled.
     */
    double lightMpki = 10.0;
    /**
     * An app whose miss curve drops by less than this fraction between
     * 1 way and the whole cache is flat — capacity does not help it.
     * Combined with a non-light MPKI floor that means streaming.
     */
    double flatCurveGain = 0.25;
    /** Ways of the shared partition all light apps occupy. */
    unsigned lightWays = 2;
    /** Ways of the isolation partition all streaming apps share. */
    unsigned streamWays = 1;
};

/**
 * Classify one app. Light wins on a low cache-rich MPKI floor alone; a
 * missing curve defaults non-light apps to Sensitive (dedicated ways
 * are the safe misclassification: a streamer wastes them, a sensitive
 * app starved of them breaches its SLO).
 */
AppClass lfocClassify(const AppObservation &app, unsigned total_ways,
                      const LfocConfig &cfg = LfocConfig{});

/** LFOC-style clustering as a (stateful) @ref Partitioner. */
class LfocPartitioner : public Partitioner
{
  public:
    explicit LfocPartitioner(LfocConfig cfg = LfocConfig{});

    const char *name() const override { return "lfoc"; }
    std::vector<WayMask> decide(const std::vector<AppObservation> &apps,
                                unsigned total_ways) override;

    // ------------- introspection (tests and decision traces) ---------
    /** Classes assigned on the last decide() call, one per app. */
    const std::vector<AppClass> &lastClasses() const { return classes_; }
    /**
     * Fractional way targets of the last decide() call, one per app
     * (cluster members report their cluster's width). The bouncing
     * test checks the time-averaged integer allocation of each
     * sensitive app against this target.
     */
    const std::vector<double> &lastTargets() const { return targets_; }
    /**
     * The fractional-way bounce accumulators after the last decide()
     * call (empty before the first). Together with the observation
     * vector this is the *complete* carried state of the policy, so a
     * journaled decision replays on a fresh partitioner via
     * restoreBounceError() (core/npartition_journal).
     */
    const std::vector<double> &bounceError() const { return err_; }
    /** Restore accumulators captured by bounceError() (replay path). */
    void restoreBounceError(std::vector<double> err)
    {
        err_ = std::move(err);
    }

  private:
    LfocConfig cfg_;
    std::vector<AppClass> classes_;
    std::vector<double> targets_;
    /** Per-app fractional-way error carried across windows. */
    std::vector<double> err_;
};

} // namespace capart

#endif // CAPART_CORE_LFOC_HH
