#include "core/slo_monitor.hh"

#include <cmath>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"

namespace capart
{

void
SloMonitorConfig::validate() const
{
    if (slo <= 1.0) {
        capart_panic("SloMonitorConfig: slo must exceed 1 (got "
                     << slo << "); an SLO of 1.0 leaves no error budget");
    }
    if (shortWindows < 1 || longWindows < 1) {
        capart_panic("SloMonitorConfig: window sizes must be >= 1 (got "
                     << shortWindows << "/" << longWindows << ")");
    }
    if (shortWindows > longWindows) {
        capart_panic("SloMonitorConfig: shortWindows ("
                     << shortWindows << ") must not exceed longWindows ("
                     << longWindows << ")");
    }
    if (burnThreshold <= 0.0) {
        capart_panic("SloMonitorConfig: burnThreshold must be positive"
                     " (got " << burnThreshold << ")");
    }
    if (confirmWindows < 1 || recoveryWindows < 1) {
        capart_panic("SloMonitorConfig: confirmWindows and "
                     "recoveryWindows must be >= 1");
    }
}

SloMonitor::SloMonitor(const SloMonitorConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

void
SloMonitor::setBaseline(double baseline_ips)
{
    baselineIps_ = baseline_ips;
}

double
SloMonitor::windowMean(const std::deque<double> &win) const
{
    double sum = 0.0;
    for (const double v : win)
        sum += v;
    return sum / static_cast<double>(win.size());
}

SloTransition
SloMonitor::onWindow(Seconds now, const PerfWindow &w)
{
    const Seconds span = w.end - w.start;
    if (baselineIps_ <= 0.0 || span <= 0.0 || w.insts == 0 ||
        !std::isfinite(span))
        return SloTransition::None; // unusable window; not evaluated

    const double ips = static_cast<double>(w.insts) / span;
    const double slowdown = baselineIps_ / ips;
    if (!std::isfinite(slowdown) || slowdown <= 0.0)
        return SloTransition::None;

    lastSlowdown_ = slowdown;
    ++windows_;

    shortWin_.push_back(slowdown);
    if (shortWin_.size() > cfg_.shortWindows)
        shortWin_.pop_front();
    longWin_.push_back(slowdown);
    if (longWin_.size() > cfg_.longWindows)
        longWin_.pop_front();

    const double budget = cfg_.slo - 1.0;
    shortBurn_ = (windowMean(shortWin_) - 1.0) / budget;
    longBurn_ = (windowMean(longWin_) - 1.0) / budget;

    // "Burning" needs the window itself to violate the objective, not
    // just the sliding means: one extreme spike inflates both means for
    // shortWindows evaluations, and counting its echo as consecutive
    // burn would turn a single bad window into a breach. Requiring the
    // violation to be live in every confirming window is what makes the
    // confirmation count mean "sustained".
    const bool burning = slowdown > cfg_.slo &&
                         shortBurn_ >= cfg_.burnThreshold &&
                         longBurn_ >= cfg_.burnThreshold;
    if (burning) {
        ++burnStreak_;
        calmStreak_ = 0;
    } else {
        burnStreak_ = 0;
        ++calmStreak_;
    }

    if (inBreach_)
        ++breachWindows_;

    if (obs::enabled()) {
        static obs::Counter &windows =
            obs::metrics().counter("slo.windows");
        windows.inc();
        obs::metrics().gauge("slo.burn_short").set(shortBurn_);
        obs::metrics().gauge("slo.burn_long").set(longBurn_);
        obs::metrics().gauge("slo.slowdown").set(slowdown);
        if (inBreach_)
            obs::metrics().counter("slo.breach_windows").inc();
        // One journal record per evaluation: the dashboard's burn-rate
        // strip is drawn straight from these.
        obs::JournalEntry e;
        e.tUs = now * 1e6;
        e.kind = "slo";
        e.rule = inBreach_ ? "breach" : (burning ? "burning" : "healthy");
        e.fields.emplace_back("slowdown", slowdown);
        e.fields.emplace_back("burn_short", shortBurn_);
        e.fields.emplace_back("burn_long", longBurn_);
        e.fields.emplace_back("slo", cfg_.slo);
        e.fields.emplace_back("in_breach", inBreach_ ? 1.0 : 0.0);
        obs::timeseries().journal(std::move(e));
    }

    SloTransition transition = SloTransition::None;
    if (!inBreach_ && burnStreak_ >= cfg_.confirmWindows) {
        inBreach_ = true;
        ++breaches_;
        transition = SloTransition::Breach;
        health_.push_back(HealthEvent{now, HealthEventKind::SloBreach, 0,
                                      burnStreak_});
        if (obs::enabled()) {
            obs::metrics().counter("slo.breaches").inc();
            obs::tracer().instant("slo.breach", "slo", now * 1e6,
                                  {{"burn_short", shortBurn_},
                                   {"burn_long", longBurn_}});
        }
        logEvent(LogLevel::Warn, "slo.breach",
                 {{"t_s", now},
                  {"slowdown", slowdown},
                  {"burn_short", shortBurn_},
                  {"burn_long", longBurn_},
                  {"slo", cfg_.slo}});
    } else if (inBreach_ && calmStreak_ >= cfg_.recoveryWindows) {
        inBreach_ = false;
        transition = SloTransition::Recovered;
        health_.push_back(HealthEvent{now, HealthEventKind::SloRecovered,
                                      0, calmStreak_});
        if (obs::enabled()) {
            obs::tracer().instant("slo.recovered", "slo", now * 1e6,
                                  {{"burn_short", shortBurn_},
                                   {"burn_long", longBurn_}});
        }
        logEvent(LogLevel::Info, "slo.recovered",
                 {{"t_s", now},
                  {"slowdown", slowdown},
                  {"burn_short", shortBurn_},
                  {"burn_long", longBurn_}});
    }
    return transition;
}

SloController::SloController(AppId fg, SloMonitor *monitor,
                             PartitionController *inner)
    : fg_(fg), monitor_(monitor), inner_(inner)
{
    capart_assert(monitor_ != nullptr);
}

void
SloController::onWindow(System &sys, AppId app, const PerfWindow &w)
{
    if (app == fg_)
        monitor_->onWindow(sys.now(), w);
    if (inner_)
        inner_->onWindow(sys, app, w);
}

} // namespace capart
