/**
 * @file
 * Static LLC partitioning policies evaluated in §5.2:
 *
 *  - shared — no partitioning; both applications replace anywhere.
 *  - fair   — the 12 ways split evenly (6/6).
 *  - biased — exhaustive search over uneven splits; among splits with
 *             minimum foreground degradation, pick the one maximizing
 *             background throughput.
 */

#ifndef CAPART_CORE_STATIC_POLICIES_HH
#define CAPART_CORE_STATIC_POLICIES_HH

#include <string>
#include <vector>

#include "sim/experiment.hh"
#include "workload/app_params.hh"

namespace capart
{

/** Cache allocation policies compared by the paper. */
enum class Policy
{
    Shared,  //!< unpartitioned LLC
    Fair,    //!< even static split
    Biased,  //!< best uneven static split (oracle search)
    Dynamic  //!< the paper's online algorithm (§6)
};

const char *policyName(Policy p);

/** One point of the biased-search sweep. */
struct BiasedSweepPoint
{
    unsigned fgWays = 0;
    Seconds fgTime = 0.0;
    double bgThroughput = 0.0;
};

/** Result of the exhaustive biased search. */
struct BiasedSearchResult
{
    /** Ways given to the foreground in the winning split. */
    unsigned fgWays = 0;
    SplitMasks masks;
    /** Foreground time / background throughput at the winning split. */
    Seconds fgTime = 0.0;
    double bgThroughput = 0.0;
    /** Every split evaluated (for tables and ablations). */
    std::vector<BiasedSweepPoint> sweep;
};

/** Options controlling the biased search. */
struct BiasedSearchOptions
{
    PairOptions pair{};
    /** FG times within (1+tolerance) x best count as "minimum". */
    double tolerance = 0.01;
    /** Minimum ways either side must keep. */
    unsigned minWays = 1;
};

/**
 * Exhaustively evaluate every uneven split of the LLC between @p fg and
 * @p bg and return the paper's biased choice (§5.2): among allocations
 * with minimum foreground degradation, the one that maximizes
 * background performance.
 */
BiasedSearchResult findBiasedPartition(const AppParams &fg,
                                       const AppParams &bg,
                                       const BiasedSearchOptions &opts);

/** Pair masks for a static policy (Biased requires the search result). */
SplitMasks policyMasks(Policy p, unsigned total_ways,
                       unsigned biased_fg_ways = 0);

} // namespace capart

#endif // CAPART_CORE_STATIC_POLICIES_HH
