/**
 * @file
 * Utility-based cache partitioning (UCP) with lookahead.
 *
 * The canonical N-app allocation baseline (Qureshi & Patt, MICRO'06;
 * cited via the paper's related work on miss-rate-curve policies):
 * given each app's miss curve, repeatedly hand the *block* of ways with
 * the highest marginal utility per way to its app. Plain greedy (block
 * size 1) is exactly optimal when every curve is concave; the lookahead
 * refinement scans all block sizes so an app whose utility comes in
 * steps — flat, then a sharp knee when the working set fits — can claim
 * its knee in one move. On arbitrary (non-concave) curves the greedy
 * result is within a factor of two of the exhaustive optimum; the
 * property suite in tests/test_partitioner.cc checks both bounds
 * against brute force on every (apps <= 4, ways <= 8) configuration.
 */

#ifndef CAPART_CORE_UCP_HH
#define CAPART_CORE_UCP_HH

#include <vector>

#include "core/partitioner.hh"

namespace capart
{

/**
 * Allocate @p total_ways among apps by greedy marginal utility with
 * lookahead. @p curves[i][w] is app i's expected misses (any fixed
 * per-instruction normalization) when owning w ways; curves are
 * clamped at their last point when shorter than total_ways + 1.
 * Every app starts with 1 way, so the result has one entry per app,
 * each >= 1, summing to exactly @p total_ways. Requires
 * curves.size() >= 1 and curves.size() <= total_ways. Deterministic:
 * ties break toward the lowest app index, then the smallest block.
 */
std::vector<unsigned> ucpAllocate(
    const std::vector<std::vector<double>> &curves, unsigned total_ways);

/** Total misses of @p alloc under @p curves (the quantity UCP minimizes;
 *  used by the optimality property tests). */
double ucpCost(const std::vector<std::vector<double>> &curves,
               const std::vector<unsigned> &alloc);

/**
 * UCP as a @ref Partitioner: allocates contiguous way ranges in app
 * order from the observations' miss curves. Falls back to
 * @ref fairMasks when any app lacks a curve or there are more apps
 * than ways (UCP needs a way per app).
 */
class UcpPartitioner : public Partitioner
{
  public:
    const char *name() const override { return "ucp"; }
    std::vector<WayMask> decide(const std::vector<AppObservation> &apps,
                                unsigned total_ways) override;
};

} // namespace capart

#endif // CAPART_CORE_UCP_HH
