#include "core/ucp.hh"

#include <cassert>
#include <cstddef>

namespace capart
{
namespace
{

/** curves[i] evaluated at w ways, clamped to the last profiled point. */
double
curveAt(const std::vector<double> &curve, unsigned w)
{
    if (curve.empty())
        return 0.0;
    const std::size_t i =
        w < curve.size() ? w : curve.size() - 1;
    return curve[i];
}

} // namespace

std::vector<unsigned>
ucpAllocate(const std::vector<std::vector<double>> &curves,
            unsigned total_ways)
{
    const std::size_t n = curves.size();
    assert(n >= 1 && n <= total_ways);

    std::vector<unsigned> alloc(n, 1);
    unsigned remaining = total_ways - static_cast<unsigned>(n);
    while (remaining > 0) {
        // The lookahead step: the winning move is the (app, block)
        // pair with the highest misses-saved per way. Strict >
        // comparisons with ascending scan order make ties
        // deterministic: lowest app index first, then the smallest
        // block (which on concave curves reduces this to the exactly
        // optimal unit-greedy algorithm).
        std::size_t best_app = 0;
        unsigned best_block = 1;
        double best_rate = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double here = curveAt(curves[i], alloc[i]);
            for (unsigned k = 1; k <= remaining; ++k) {
                const double gain =
                    here - curveAt(curves[i], alloc[i] + k);
                const double rate = gain / k;
                if (rate > best_rate) {
                    best_rate = rate;
                    best_app = i;
                    best_block = k;
                }
            }
        }
        if (best_rate <= 0.0) {
            // No block saves any misses: park the leftover ways on the
            // least-allocated app (lowest index on ties) so the sum
            // invariant — and mask coverage downstream — still holds.
            std::size_t least = 0;
            for (std::size_t i = 1; i < n; ++i) {
                if (alloc[i] < alloc[least])
                    least = i;
            }
            alloc[least] += 1;
            remaining -= 1;
            continue;
        }
        alloc[best_app] += best_block;
        remaining -= best_block;
    }
    return alloc;
}

double
ucpCost(const std::vector<std::vector<double>> &curves,
        const std::vector<unsigned> &alloc)
{
    assert(curves.size() == alloc.size());
    double total = 0.0;
    for (std::size_t i = 0; i < curves.size(); ++i)
        total += curveAt(curves[i], alloc[i]);
    return total;
}

std::vector<WayMask>
UcpPartitioner::decide(const std::vector<AppObservation> &apps,
                       unsigned total_ways)
{
    if (apps.size() > total_ways)
        return fairMasks(apps.size(), total_ways);
    std::vector<std::vector<double>> curves;
    curves.reserve(apps.size());
    for (const AppObservation &a : apps) {
        if (a.missCurve.empty())
            return fairMasks(apps.size(), total_ways);
        curves.push_back(a.missCurve);
    }
    const std::vector<unsigned> alloc = ucpAllocate(curves, total_ways);
    std::vector<WayMask> masks;
    masks.reserve(apps.size());
    unsigned first = 0;
    for (const unsigned ways : alloc) {
        masks.push_back(WayMask::range(first, ways));
        first += ways;
    }
    return masks;
}

} // namespace capart
