/**
 * @file
 * High-level consolidation API: run a foreground/background pair under
 * any of the paper's policies and derive the §5–§6 evaluation metrics
 * (foreground slowdown, background throughput, energy vs sequential,
 * weighted speedup).
 *
 * This is the facade applications and all bench binaries use; see
 * examples/quickstart.cpp.
 */

#ifndef CAPART_CORE_CO_SCHEDULER_HH
#define CAPART_CORE_CO_SCHEDULER_HH

#include <map>
#include <memory>
#include <optional>

#include "core/dynamic_partitioner.hh"
#include "core/slo_monitor.hh"
#include "core/static_policies.hh"
#include "sim/experiment.hh"
#include "workload/app_params.hh"

namespace capart
{

/** Knobs of a consolidation study. */
struct CoScheduleOptions
{
    /** Hyperthreads per application (4 = two whole cores each, §5). */
    unsigned threadsEach = 4;
    /** Instruction-scale factor applied to both applications. */
    double scale = 1.0;
    SystemConfig system{};
    /** Tolerance of the biased search (§5.2). */
    double biasedTolerance = 0.01;
    DynamicPartitionerConfig dynamic{};
    /**
     * Attach a @ref SloMonitor to continuous (responsiveness) runs.
     * Pure observation: results are bit-identical with it on or off.
     */
    bool monitorSlo = false;
    SloMonitorConfig slo{};
};

/** Everything the paper reports about one (pair, policy) cell. */
struct ConsolidationSummary
{
    Policy policy = Policy::Shared;
    /** FG co-run time / FG solo time at the same core allocation. */
    double fgSlowdown = 1.0;
    /** Background instructions per second during the FG run. */
    double bgThroughput = 0.0;
    /** Socket energy / summed sequential whole-machine socket energy. */
    double energyVsSequential = 1.0;
    /** Wall energy / summed sequential whole-machine wall energy. */
    double wallEnergyVsSequential = 1.0;
    /** Sequential makespan / consolidated makespan (Fig. 11). */
    double weightedSpeedup = 1.0;
    /** Ways the policy gave the foreground (12 = unpartitioned). */
    unsigned fgWays = 0;
};

/**
 * Runs one foreground/background pair under the paper's policies,
 * caching solo runs and the biased search so repeated queries are cheap.
 */
class CoScheduler
{
  public:
    CoScheduler(const AppParams &fg, const AppParams &bg,
                const CoScheduleOptions &opts = CoScheduleOptions{});

    /** FG alone on its half of the machine (slowdown baseline, Fig. 9). */
    const SoloResult &fgSoloHalf();

    /** FG alone on the whole machine (sequential baseline, Fig. 10). */
    const SoloResult &fgSoloFull();

    /** BG alone on the whole machine (sequential baseline, Fig. 10). */
    const SoloResult &bgSoloFull();

    /** The oracle biased-partition search (§5.2). */
    const BiasedSearchResult &biased();

    /**
     * Run the pair under @p policy.
     * @param bg_continuous  background restarts until FG finishes
     *        (use true for slowdown/throughput studies, false for
     *        energy/weighted-speedup studies, matching the paper).
     */
    const PairResult &runPolicy(Policy policy, bool bg_continuous);

    /** All §5–§6 metrics for @p policy. */
    ConsolidationSummary summarize(Policy policy);

    /** The dynamic controller of the last Dynamic run, if any. */
    const DynamicPartitioner *lastDynamicController() const
    {
        return dynCtrl_.get();
    }

    /**
     * The SLO monitor of the last monitored (continuous) run, or
     * nullptr when `monitorSlo` is off / no continuous run happened.
     */
    const SloMonitor *lastSloMonitor() const { return sloMonitor_.get(); }

    const CoScheduleOptions &options() const { return opts_; }
    const AppParams &fg() const { return fg_; }
    const AppParams &bg() const { return bg_; }

  private:
    PairOptions basePairOptions(bool bg_continuous) const;

    AppParams fg_;
    AppParams bg_;
    CoScheduleOptions opts_;

    std::optional<SoloResult> fgSoloHalf_;
    std::optional<SoloResult> fgSoloFull_;
    std::optional<SoloResult> bgSoloFull_;
    std::optional<BiasedSearchResult> biased_;
    std::map<std::pair<Policy, bool>, PairResult> pairRuns_;
    std::unique_ptr<DynamicPartitioner> dynCtrl_;
    std::unique_ptr<SloMonitor> sloMonitor_;
    std::unique_ptr<SloController> sloCtrl_;
};

} // namespace capart

#endif // CAPART_CORE_CO_SCHEDULER_HH
