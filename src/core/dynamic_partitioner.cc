#include "core/dynamic_partitioner.hh"

#include <cmath>

#include "common/logging.hh"
#include "sim/experiment.hh"

namespace capart
{

DynamicPartitioner::DynamicPartitioner(AppId fg, std::vector<AppId> bgs,
                                       const DynamicPartitionerConfig &cfg)
    : fg_(fg), bgs_(std::move(bgs)), cfg_(cfg), detector_(cfg.detector)
{
    capart_assert(cfg_.minFgWays >= 1);
    capart_assert(cfg_.maxFgWays > cfg_.minFgWays);
    fgWays_ = cfg_.maxFgWays;
}

void
DynamicPartitioner::apply(System &sys, unsigned fg_ways)
{
    capart_assert(fg_ways >= cfg_.minFgWays &&
                  fg_ways <= cfg_.maxFgWays);
    const unsigned total = sys.llcWays();
    capart_assert(fg_ways < total);
    const SplitMasks masks = splitWays(fg_ways, total);
    sys.setWayMask(fg_, masks.fg);
    for (const AppId bg : bgs_)
        sys.setWayMask(bg, masks.bg);
    if (fg_ways != fgWays_ || !installed_)
        ++reallocations_;
    fgWays_ = fg_ways;
    installed_ = true;
}

void
DynamicPartitioner::onWindow(System &sys, AppId app, const PerfWindow &w)
{
    if (app != fg_)
        return;

    // "When the foreground application starts or changes phase, the
    // framework gives the application as much cache as possible" (§6.3)
    // — application start counts as a phase start, so the controller
    // immediately begins probing downward.
    if (!installed_) {
        apply(sys, cfg_.maxFgWays);
        phaseStarts_ = true;
    }

    // Smooth the windowed MPKI: scaled-down runs have real sampling
    // noise per window (see DynamicPartitionerConfig).
    if (!haveSmoothed_) {
        smoothed_ = w.mpki;
        haveSmoothed_ = true;
    } else {
        smoothed_ += cfg_.mpkiSmoothing * (w.mpki - smoothed_);
    }
    const double mpki = smoothed_;

    const PhaseEvent ev = detector_.step(mpki);

    if (ev == PhaseEvent::NewPhase) {
        // A new phase begins: give the foreground everything we can,
        // then probe downward from there (Algorithm 6.2).
        phaseStarts_ = true;
        apply(sys, cfg_.maxFgWays);
    } else if (ev == PhaseEvent::Stable && phaseStarts_) {
        // The shrink probe compares *raw* successive windows: the
        // reaction to a one-way shrink must not be averaged away.
        const double denom =
            std::max(std::abs(lastMpki_), cfg_.minDenominator);
        const double delta =
            haveLast_ ? std::abs(lastMpki_ - w.mpki) / denom : 0.0;
        if (delta < cfg_.thr3) {
            // Shrinking did not hurt: release another way to the
            // background, until the floor.
            if (fgWays_ > cfg_.minFgWays)
                apply(sys, fgWays_ - 1);
            else
                phaseStarts_ = false;
        } else {
            // The last shrink showed up in the MPKI: give the way
            // back and settle at the previous allocation.
            if (fgWays_ < cfg_.maxFgWays)
                apply(sys, fgWays_ + 1);
            phaseStarts_ = false;
        }
    }

    lastMpki_ = w.mpki;
    haveLast_ = true;
    history_.push_back(AllocationEvent{w.end, fgWays_, mpki, ev});
}

} // namespace capart
