#include "core/dynamic_partitioner.hh"

#include <cmath>

#include "common/logging.hh"
#include "core/decision_journal.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"

namespace capart
{

void
DynamicPartitionerConfig::validate() const
{
    if (minFgWays < 1) {
        capart_panic("DynamicPartitionerConfig: minFgWays must be >= 1"
                     " (got " << minFgWays << ")");
    }
    if (minFgWays > maxFgWays) {
        capart_panic("DynamicPartitionerConfig: minFgWays ("
                     << minFgWays << ") must not exceed maxFgWays ("
                     << maxFgWays << ")");
    }
    if (maxFgWays <= minFgWays) {
        capart_panic("DynamicPartitionerConfig: maxFgWays ("
                     << maxFgWays << ") must exceed minFgWays ("
                     << minFgWays << ") or the probe cannot move");
    }
    if (thr3 <= 0.0) {
        capart_panic("DynamicPartitionerConfig: thr3 must be positive"
                     " (got " << thr3 << ")");
    }
    if (detector.thr1 <= 0.0 || detector.thr2 <= 0.0) {
        capart_panic("DynamicPartitionerConfig: detector thresholds "
                     "thr1/thr2 must be positive (got "
                     << detector.thr1 << "/" << detector.thr2 << ")");
    }
    if (minDenominator <= 0.0) {
        capart_panic("DynamicPartitionerConfig: minDenominator must be "
                     "positive (got " << minDenominator << ")");
    }
    if (mpkiSmoothing <= 0.0 || mpkiSmoothing > 1.0) {
        capart_panic("DynamicPartitionerConfig: mpkiSmoothing must be "
                     "in (0, 1] (got " << mpkiSmoothing << ")");
    }
    if (spikeRejectFactor <= 1.0) {
        capart_panic("DynamicPartitionerConfig: spikeRejectFactor must "
                     "exceed 1 (got " << spikeRejectFactor << ")");
    }
    if (spikeFloor < 0.0) {
        capart_panic("DynamicPartitionerConfig: spikeFloor must be "
                     "non-negative (got " << spikeFloor << ")");
    }
    if (watchdogThreshold < 1 || telemetryTimeoutWindows < 1 ||
        recoveryWindows < 1) {
        capart_panic("DynamicPartitionerConfig: watchdogThreshold, "
                     "telemetryTimeoutWindows and recoveryWindows must "
                     "all be >= 1");
    }
}

DynamicPartitioner::DynamicPartitioner(AppId fg, std::vector<AppId> bgs,
                                       const DynamicPartitionerConfig &cfg,
                                       Remasker *remasker)
    : fg_(fg), bgs_(std::move(bgs)), cfg_(cfg), detector_(cfg.detector),
      remasker_(remasker ? remasker : &direct_)
{
    cfg_.validate();
    fgWays_ = cfg_.maxFgWays;
}

bool
DynamicPartitioner::apply(System &sys, unsigned fg_ways)
{
    capart_assert(fg_ways >= cfg_.minFgWays &&
                  fg_ways <= cfg_.maxFgWays);
    const unsigned total = sys.llcWays();
    capart_assert(fg_ways < total);
    const SplitMasks masks = splitWays(fg_ways, total);
    ++remaskAttempts_;
    if (obs::enabled())
        obs::metrics().counter("partitioner.remask_attempts").inc();
    if (!remasker_->apply(sys, fg_, bgs_, masks)) {
        ++remaskFailures_;
        if (obs::enabled()) {
            obs::metrics().counter("partitioner.remask_failures").inc();
            obs::tracer().instant(
                "remask.fail", "partition", sys.now() * 1e6,
                {{"fg_ways", static_cast<double>(fg_ways)}});
        }
        return false;
    }
    if (fg_ways != fgWays_ || !installed_)
        ++reallocations_;
    if (obs::enabled()) {
        obs::tracer().instant(
            "remask", "partition", sys.now() * 1e6,
            {{"fg_ways", static_cast<double>(fg_ways)},
             {"prev_fg_ways", static_cast<double>(fgWays_)}});
        obs::metrics().gauge("partitioner.fg_ways")
            .set(static_cast<double>(fg_ways));
    }
    fgWays_ = fg_ways;
    installed_ = true;
    return true;
}

void
DynamicPartitioner::pushHealth(System &sys, HealthEventKind kind,
                               unsigned count)
{
    health_.push_back(HealthEvent{sys.now(), kind, fgWays_, count});
    const bool degradation = kind == HealthEventKind::FallbackEntered ||
                             kind == HealthEventKind::RemaskFailed;
    logEvent(degradation ? LogLevel::Warn : LogLevel::Info,
             "partitioner.health",
             {{"t_s", sys.now()},
              {"kind", healthEventName(kind)},
              {"fg_ways", fgWays_},
              {"count", count}});
}

void
DynamicPartitioner::requestWays(System &sys, unsigned fg_ways)
{
    if (apply(sys, fg_ways)) {
        if (consecRemaskFails_ > 0) {
            pushHealth(sys, HealthEventKind::RemaskRecovered,
                       consecRemaskFails_);
        }
        consecRemaskFails_ = 0;
        remaskProbation_ = false;
        retryPending_ = false;
        retryCount_ = 0;
        return;
    }
    ++consecRemaskFails_;
    pushHealth(sys, HealthEventKind::RemaskFailed, consecRemaskFails_);
    if (remaskProbation_ || consecRemaskFails_ >= cfg_.watchdogThreshold) {
        enterFallback(sys, consecRemaskFails_, true);
        return;
    }
    retryPending_ = true;
    retryWays_ = fg_ways;
    retryCount_ = 1;
    retryWait_ = cfg_.retryBackoffWindows;
}

void
DynamicPartitioner::serviceRetry(System &sys)
{
    if (retryWait_ > 0) {
        --retryWait_;
        return;
    }
    if (apply(sys, retryWays_)) {
        pushHealth(sys, HealthEventKind::RemaskRecovered,
                   consecRemaskFails_);
        consecRemaskFails_ = 0;
        remaskProbation_ = false;
        retryPending_ = false;
        retryCount_ = 0;
        return;
    }
    ++consecRemaskFails_;
    pushHealth(sys, HealthEventKind::RemaskFailed, consecRemaskFails_);
    if (consecRemaskFails_ >= cfg_.watchdogThreshold) {
        enterFallback(sys, consecRemaskFails_, true);
        return;
    }
    ++retryCount_;
    if (retryCount_ > cfg_.maxRemaskRetries) {
        // Bounded retry exhausted: abandon this target and let the
        // algorithm continue from the allocation actually installed.
        retryPending_ = false;
        retryCount_ = 0;
        return;
    }
    // Exponential backoff: wait 1, 2, 4, ... windows between retries.
    retryWait_ = cfg_.retryBackoffWindows << (retryCount_ - 1);
}

void
DynamicPartitioner::enterFallback(System &sys, unsigned count,
                                  bool remask_cause)
{
    if (mode_ == ControlMode::Fallback)
        return;
    mode_ = ControlMode::Fallback;
    remaskCausedFallback_ = remask_cause;
    const unsigned total = sys.llcWays();
    const unsigned fair = total / 2;
    // Last-resort safe path: bypass the (possibly failing) remasker and
    // write the masks directly — the panic-MSR-write of this machine.
    direct_.apply(sys, fg_, bgs_, splitWays(fair, total));
    if (fair != fgWays_ || !installed_)
        ++reallocations_;
    fgWays_ = fair;
    installed_ = true;
    retryPending_ = false;
    retryCount_ = 0;
    consecRemaskFails_ = 0;
    healthyStreak_ = 0;
    phaseStarts_ = false;
    pushHealth(sys, HealthEventKind::FallbackEntered, count);
    if (obs::enabled()) {
        obs::metrics().counter("partitioner.watchdog_fallbacks").inc();
        obs::tracer().instant(
            "watchdog.fallback", "partition", sys.now() * 1e6,
            {{"consecutive_failures", static_cast<double>(count)},
             {"remask_cause", remask_cause ? 1.0 : 0.0}});
        Decision fell;
        fell.rule = DecisionRule::FallbackEnter;
        fell.targetFgWays = fair;
        journalDecision(
            sys, snapshotInputs(0.0, smoothed_, PhaseEvent::Stable), fell);
    }
    capart_warn("dynamic partitioner: watchdog tripped after "
                << count << " consecutive failures; falling back to "
                "fair " << fair << "/" << (total - fair) << " split");
}

void
DynamicPartitioner::resumeDynamic(System &sys)
{
    mode_ = ControlMode::Dynamic;
    badTelemetry_ = 0;
    healthyStreak_ = 0;
    consecRemaskFails_ = 0;
    haveSuspect_ = false;
    haveSmoothed_ = false;
    haveLast_ = false;
    detector_.reset();
    pushHealth(sys, HealthEventKind::DynamicResumed, 0);
    if (obs::enabled()) {
        obs::metrics().counter("partitioner.watchdog_recoveries").inc();
        obs::tracer().instant("watchdog.resume", "partition",
                              sys.now() * 1e6);
    }
    // Re-probe from the top, as on a phase start (§6.3). If the
    // fallback was remask-caused, this first write is a probe of the
    // control plane: its failure re-trips the watchdog immediately.
    remaskProbation_ = remaskCausedFallback_;
    phaseStarts_ = true;
    requestWays(sys, cfg_.maxFgWays);
    if (obs::enabled()) {
        Decision probe;
        probe.rule = DecisionRule::ResumeProbe;
        probe.targetFgWays = cfg_.maxFgWays;
        probe.probingAfter = true;
        journalDecision(
            sys, snapshotInputs(0.0, smoothed_, PhaseEvent::NewPhase),
            probe);
    }
}

DynamicPartitioner::Sample
DynamicPartitioner::classify(const PerfWindow &w)
{
    // A window with no instructions *and* no misses is a legitimately
    // idle interval (a quantum spanning the boundary): its MPKI of zero
    // is real data. Misses without instructions, NaN, or negative MPKI
    // can only come from a corrupted counter read.
    if (!std::isfinite(w.mpki) || w.mpki < 0.0 ||
        (w.insts == 0 && w.llcMisses != 0)) {
        haveSuspect_ = false;
        return Sample::Garbage;
    }
    if (haveSmoothed_) {
        const double level = std::max(smoothed_, cfg_.spikeFloor);
        if (w.mpki > cfg_.spikeRejectFactor * level) {
            if (haveSuspect_) {
                // Two outliers in a row: the application really moved.
                haveSuspect_ = false;
                return Sample::Valid;
            }
            // Quarantine a lone spike as a suspected counter glitch.
            haveSuspect_ = true;
            suspectMpki_ = w.mpki;
            return Sample::Outlier;
        }
    }
    haveSuspect_ = false;
    return Sample::Valid;
}

DecisionInputs
DynamicPartitioner::snapshotInputs(double raw_mpki, double smoothed_mpki,
                                   PhaseEvent ev) const
{
    DecisionInputs in;
    in.rawMpki = raw_mpki;
    in.smoothedMpki = smoothed_mpki;
    in.lastMpki = lastMpki_;
    in.haveLast = haveLast_;
    in.phase = ev;
    in.probing = phaseStarts_;
    in.retryPending = retryPending_;
    in.retryWays = retryWays_;
    in.fgWays = fgWays_;
    in.thr3 = cfg_.thr3;
    in.minDenominator = cfg_.minDenominator;
    in.minFgWays = cfg_.minFgWays;
    in.maxFgWays = cfg_.maxFgWays;
    return in;
}

void
DynamicPartitioner::journalDecision(System &sys, const DecisionInputs &in,
                                    const Decision &out)
{
    if (!obs::enabled())
        return;
    const bool applied = !retryPending_ && fgWays_ == out.targetFgWays;
    obs::timeseries().journal(makeDecisionEntry(sys.now() * 1e6, in, out,
                                                sys.llcWays(), applied,
                                                fgWays_));
    static obs::Counter &journaled =
        obs::metrics().counter("partitioner.decisions_journaled");
    journaled.inc();
}

void
DynamicPartitioner::onWindow(System &sys, AppId app, const PerfWindow &w)
{
    remasker_->tick(sys);

    if (app != fg_) {
        // The first background's windows are the silence clock: they
        // keep arriving at the sampling period even when the
        // foreground's telemetry is dead.
        if (!bgs_.empty() && app == bgs_.front()) {
            ++fgSilence_;
            if (mode_ == ControlMode::Dynamic &&
                fgSilence_ >= cfg_.telemetryTimeoutWindows)
                enterFallback(sys, fgSilence_, false);
        }
        return;
    }
    fgSilence_ = 0;

    // "When the foreground application starts or changes phase, the
    // framework gives the application as much cache as possible" (§6.3)
    // — application start counts as a phase start, so the controller
    // immediately begins probing downward.
    if (!installed_ && !retryPending_ && mode_ == ControlMode::Dynamic) {
        requestWays(sys, cfg_.maxFgWays);
        phaseStarts_ = true;
    }

    // Missing windows (dropped sampling deadlines) show up as holes in
    // the delivered timeline.
    const Seconds len = w.end - w.start;
    if (haveFgWindow_ && len > 0.0 && w.start > lastFgEnd_ + 0.5 * len) {
        const auto gap =
            static_cast<unsigned>((w.start - lastFgEnd_) / len + 0.5);
        badTelemetry_ += gap;
        pushHealth(sys, HealthEventKind::WindowGap, gap);
    }
    haveFgWindow_ = true;
    lastFgEnd_ = w.end;

    const Sample verdict = classify(w);
    if (verdict != Sample::Valid) {
        ++rejectedSamples_;
        ++badTelemetry_;
        healthyStreak_ = 0;
        pushHealth(sys, HealthEventKind::SampleRejected, badTelemetry_);
        if (obs::enabled()) {
            obs::metrics().counter("partitioner.samples_rejected").inc();
            obs::tracer().instant(
                "sample.rejected", "partition", sys.now() * 1e6,
                {{"mpki", w.mpki},
                 {"outlier", verdict == Sample::Outlier ? 1.0 : 0.0}});
            Decision held;
            held.rule = DecisionRule::RejectHold;
            held.targetFgWays = fgWays_;
            held.probingAfter = phaseStarts_;
            journalDecision(
                sys, snapshotInputs(w.mpki, smoothed_, PhaseEvent::Stable),
                held);
        }
        if (mode_ == ControlMode::Dynamic &&
            badTelemetry_ >= cfg_.watchdogThreshold)
            enterFallback(sys, badTelemetry_, false);
        history_.push_back(AllocationEvent{w.end, fgWays_, smoothed_,
                                           PhaseEvent::Stable});
        return;
    }
    if (mode_ == ControlMode::Dynamic &&
        badTelemetry_ >= cfg_.watchdogThreshold) {
        // A gap alone (without an invalid sample) can trip the watchdog.
        enterFallback(sys, badTelemetry_, false);
    }
    badTelemetry_ = 0;

    if (mode_ == ControlMode::Fallback) {
        // Hold the safe partition until the signal proves stable again.
        ++healthyStreak_;
        if (obs::enabled()) {
            Decision held;
            held.rule = DecisionRule::FallbackHold;
            held.targetFgWays = fgWays_;
            journalDecision(
                sys, snapshotInputs(w.mpki, smoothed_, PhaseEvent::Stable),
                held);
        }
        if (healthyStreak_ >= cfg_.recoveryWindows)
            resumeDynamic(sys);
        history_.push_back(AllocationEvent{w.end, fgWays_, w.mpki,
                                           PhaseEvent::Stable});
        return;
    }

    // Smooth the windowed MPKI: scaled-down runs have real sampling
    // noise per window (see DynamicPartitionerConfig).
    if (!haveSmoothed_) {
        smoothed_ = w.mpki;
        haveSmoothed_ = true;
    } else {
        smoothed_ += cfg_.mpkiSmoothing * (w.mpki - smoothed_);
    }
    const double mpki = smoothed_;

    const PhaseEvent ev = detector_.step(mpki);

    // The decision step is a pure function of the inputs snapshotted
    // here; the journal records exactly this (inputs, outputs) pair,
    // which is what makes a recorded decision replayable.
    const DecisionInputs inputs = snapshotInputs(w.mpki, mpki, ev);
    const Decision dec = decidePartition(inputs);

    switch (dec.rule) {
      case DecisionRule::Retry:
        // A mask application is in flight: retry it on schedule and do
        // not take new decisions on state that never landed.
        serviceRetry(sys);
        break;
      case DecisionRule::PhaseStartMax:
        // A new phase begins: give the foreground everything we can,
        // then probe downward from there (Algorithm 6.2).
        if (obs::enabled()) {
            obs::metrics().counter("partitioner.phase_changes").inc();
            obs::tracer().instant(
                "phase.change", "partition", sys.now() * 1e6,
                {{"mpki", mpki},
                 {"fg_ways", static_cast<double>(fgWays_)}});
        }
        phaseStarts_ = true;
        requestWays(sys, dec.targetFgWays);
        break;
      case DecisionRule::ProbeShrink:
        // Shrinking did not hurt: release another way to the
        // background, until the floor.
        requestWays(sys, dec.targetFgWays);
        break;
      case DecisionRule::SettleFloor:
        // The probe reached the floor without a reaction: settle there.
        phaseStarts_ = false;
        break;
      case DecisionRule::SettleBack:
        // The last shrink showed up in the MPKI: give the way back and
        // settle at the previous allocation.
        if (dec.targetFgWays != fgWays_)
            requestWays(sys, dec.targetFgWays);
        phaseStarts_ = false;
        if (obs::enabled()) {
            obs::tracer().instant(
                "phase.settled", "partition", sys.now() * 1e6,
                {{"fg_ways", static_cast<double>(fgWays_)}});
        }
        break;
      default:
        break; // Hold: in transition, or stable without an open probe.
    }
    journalDecision(sys, inputs, dec);

    lastMpki_ = w.mpki;
    haveLast_ = true;
    history_.push_back(AllocationEvent{w.end, fgWays_, mpki, ev});
}

} // namespace capart
