#include "core/static_policies.hh"

#include <limits>

#include "common/logging.hh"

namespace capart
{

const char *
policyName(Policy p)
{
    switch (p) {
      case Policy::Shared:
        return "shared";
      case Policy::Fair:
        return "fair";
      case Policy::Biased:
        return "biased";
      case Policy::Dynamic:
        return "dynamic";
    }
    capart_panic("unknown policy");
}

SplitMasks
policyMasks(Policy p, unsigned total_ways, unsigned biased_fg_ways)
{
    SplitMasks m;
    switch (p) {
      case Policy::Shared:
        m.fg = WayMask::all(total_ways);
        m.bg = WayMask::all(total_ways);
        return m;
      case Policy::Fair:
        return splitWays(total_ways / 2, total_ways);
      case Policy::Biased:
        capart_assert(biased_fg_ways >= 1 &&
                      biased_fg_ways < total_ways);
        return splitWays(biased_fg_ways, total_ways);
      case Policy::Dynamic:
        // The dynamic controller starts from a near-maximal foreground
        // allocation and adapts from there (§6.3).
        return splitWays(total_ways - 1, total_ways);
    }
    capart_panic("unknown policy");
}

BiasedSearchResult
findBiasedPartition(const AppParams &fg, const AppParams &bg,
                    const BiasedSearchOptions &opts)
{
    BiasedSearchResult result;
    const unsigned total = opts.pair.system.hierarchy.llc.ways;
    capart_assert(opts.minWays >= 1);
    capart_assert(total >= 2 * opts.minWays);

    Seconds best_time = std::numeric_limits<double>::infinity();
    for (unsigned fg_ways = opts.minWays; fg_ways <= total - opts.minWays;
         ++fg_ways) {
        PairOptions pair = opts.pair;
        const SplitMasks masks = splitWays(fg_ways, total);
        pair.fgMask = masks.fg;
        pair.bgMask = masks.bg;
        const PairResult r = runPair(fg, bg, pair);

        BiasedSweepPoint pt;
        pt.fgWays = fg_ways;
        pt.fgTime = r.fgTime;
        pt.bgThroughput = r.bgThroughput;
        result.sweep.push_back(pt);
        if (r.fgTime < best_time)
            best_time = r.fgTime;
    }

    // Among splits whose foreground time is within tolerance of the
    // best, pick the split with the highest background throughput.
    double best_bg = -1.0;
    for (const BiasedSweepPoint &pt : result.sweep) {
        if (pt.fgTime <= best_time * (1.0 + opts.tolerance) &&
            pt.bgThroughput > best_bg) {
            best_bg = pt.bgThroughput;
            result.fgWays = pt.fgWays;
            result.fgTime = pt.fgTime;
            result.bgThroughput = pt.bgThroughput;
        }
    }
    capart_assert(result.fgWays >= 1);
    result.masks = splitWays(result.fgWays, total);
    return result;
}

} // namespace capart
