#include "core/npartition_journal.hh"

#include <cstdio>
#include <string>

#include "core/ucp.hh"
#include "obs/metrics.hh"

namespace capart
{
namespace
{

std::string
appField(std::size_t i, const char *suffix)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "app%zu.%s", i, suffix);
    return buf;
}

} // namespace

NPartitionDecision
decideNPartition(const NPartitionInputs &in)
{
    NPartitionDecision out;
    switch (in.policy) {
      case NPolicy::Shared:
        out.masks = SharedPartitioner{}.decide(in.apps, in.totalWays);
        break;
      case NPolicy::Fair:
        out.masks = FairPartitioner{}.decide(in.apps, in.totalWays);
        break;
      case NPolicy::Biased:
        out.masks =
            BiasedPartitioner(in.biasedFgWays).decide(in.apps, in.totalWays);
        break;
      case NPolicy::Dynamic:
        // The controller's initial static split (core/napp.cc): the
        // foreground starts at the probe ceiling and every background
        // app shares the complement. Per-window dynamic control
        // replays through core/decision_journal instead.
        out.masks.push_back(WayMask::range(0, in.dynMaxFgWays));
        for (std::size_t i = 1; i < in.apps.size(); ++i)
            out.masks.push_back(WayMask::range(
                in.dynMaxFgWays, in.totalWays - in.dynMaxFgWays));
        break;
      case NPolicy::Ucp:
        out.masks = UcpPartitioner{}.decide(in.apps, in.totalWays);
        break;
      case NPolicy::Lfoc: {
        LfocPartitioner p(in.lfoc);
        p.restoreBounceError(in.lfocErrBefore);
        out.masks = p.decide(in.apps, in.totalWays);
        out.classes = p.lastClasses();
        out.targets = p.lastTargets();
        out.errAfter = p.bounceError();
        break;
      }
    }
    return out;
}

obs::JournalEntry
makeNPartitionEntry(double t_us, const NPartitionInputs &in,
                    const NPartitionDecision &out, std::uint64_t seq,
                    bool applied)
{
    obs::JournalEntry e;
    e.tUs = t_us;
    e.kind = "npartition_decision";
    e.rule = npolicyName(in.policy);
    auto f = [&](std::string name, double v) {
        e.fields.emplace_back(std::move(name), v);
    };
    f("policy", static_cast<double>(static_cast<int>(in.policy)));
    f("num_apps", static_cast<double>(in.apps.size()));
    f("total_ways", in.totalWays);
    f("seq", static_cast<double>(seq));
    f("applied", applied ? 1.0 : 0.0);
    // Policy configuration (only what the policy actually reads).
    if (in.policy == NPolicy::Lfoc) {
        f("lfoc.light_mpki", in.lfoc.lightMpki);
        f("lfoc.flat_curve_gain", in.lfoc.flatCurveGain);
        f("lfoc.light_ways", in.lfoc.lightWays);
        f("lfoc.stream_ways", in.lfoc.streamWays);
    }
    if (in.policy == NPolicy::Biased)
        f("biased_fg_ways", in.biasedFgWays);
    if (in.policy == NPolicy::Dynamic)
        f("dyn_max_fg_ways", in.dynMaxFgWays);
    // Inputs: the complete observation vector, curves included.
    for (std::size_t i = 0; i < in.apps.size(); ++i) {
        const AppObservation &a = in.apps[i];
        f(appField(i, "id"), a.id);
        f(appField(i, "lat_sensitive"), a.latencySensitive ? 1.0 : 0.0);
        f(appField(i, "mpki"), a.mpki);
        f(appField(i, "apki"), a.apki);
        f(appField(i, "ipc"), a.ipc);
        if (in.policy == NPolicy::Lfoc)
            f(appField(i, "err_before"),
              i < in.lfocErrBefore.size() ? in.lfocErrBefore[i] : 0.0);
        f(appField(i, "curve_len"),
          static_cast<double>(a.missCurve.size()));
        for (std::size_t w = 0; w < a.missCurve.size(); ++w) {
            char s[48];
            std::snprintf(s, sizeof(s), "curve%zu", w);
            f(appField(i, s), a.missCurve[w]);
        }
    }
    // UCP diagnostic: the first lookahead iteration's marginal-utility
    // table — the gain-per-way rate of growing app i by k ways from
    // the all-apps-at-one-way starting state. Derived from the curves
    // (replay recomputes every iteration); journaled so the dashboard
    // can show *why* the allocator favoured an app.
    if (in.policy == NPolicy::Ucp && in.totalWays >= in.apps.size()) {
        bool have_curves = !in.apps.empty();
        for (const AppObservation &a : in.apps) {
            if (a.missCurve.empty())
                have_curves = false;
        }
        if (have_curves) {
            const unsigned remaining =
                in.totalWays - static_cast<unsigned>(in.apps.size());
            for (std::size_t i = 0; i < in.apps.size(); ++i) {
                for (unsigned k = 1; k <= remaining; ++k) {
                    char s[48];
                    std::snprintf(s, sizeof(s), "mu%zu.%u", i, k);
                    f(s, (in.apps[i].curveAt(1) -
                          in.apps[i].curveAt(1 + k)) /
                             k);
                }
            }
        }
    }
    // Outputs: the chosen mask per app plus LFOC introspection.
    for (std::size_t i = 0; i < out.masks.size(); ++i) {
        f(appField(i, "mask"), out.masks[i].bits());
        f(appField(i, "ways"), out.masks[i].count());
        if (i < out.classes.size())
            f(appField(i, "class"),
              static_cast<double>(static_cast<int>(out.classes[i])));
        if (i < out.targets.size())
            f(appField(i, "target"), out.targets[i]);
        if (i < out.errAfter.size())
            f(appField(i, "err_after"), out.errAfter[i]);
    }
    return e;
}

NPartitionInputs
npartitionInputsFromEntry(const obs::JournalEntry &entry)
{
    NPartitionInputs in;
    in.policy = static_cast<NPolicy>(
        static_cast<int>(entry.field("policy")));
    in.totalWays = static_cast<unsigned>(entry.field("total_ways"));
    const std::size_t n =
        static_cast<std::size_t>(entry.field("num_apps"));
    in.apps.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        AppObservation &a = in.apps[i];
        a.id = static_cast<AppId>(entry.field(appField(i, "id")));
        a.latencySensitive =
            entry.field(appField(i, "lat_sensitive")) != 0.0;
        a.mpki = entry.field(appField(i, "mpki"));
        a.apki = entry.field(appField(i, "apki"));
        a.ipc = entry.field(appField(i, "ipc"));
        const std::size_t len = static_cast<std::size_t>(
            entry.field(appField(i, "curve_len")));
        a.missCurve.resize(len);
        for (std::size_t w = 0; w < len; ++w) {
            char s[48];
            std::snprintf(s, sizeof(s), "curve%zu", w);
            a.missCurve[w] = entry.field(appField(i, s));
        }
    }
    if (in.policy == NPolicy::Lfoc) {
        in.lfoc.lightMpki = entry.field("lfoc.light_mpki");
        in.lfoc.flatCurveGain = entry.field("lfoc.flat_curve_gain");
        in.lfoc.lightWays =
            static_cast<unsigned>(entry.field("lfoc.light_ways"));
        in.lfoc.streamWays =
            static_cast<unsigned>(entry.field("lfoc.stream_ways"));
        in.lfocErrBefore.resize(n);
        for (std::size_t i = 0; i < n; ++i)
            in.lfocErrBefore[i] =
                entry.field(appField(i, "err_before"));
    }
    if (in.policy == NPolicy::Biased)
        in.biasedFgWays =
            static_cast<unsigned>(entry.field("biased_fg_ways"));
    if (in.policy == NPolicy::Dynamic)
        in.dynMaxFgWays =
            static_cast<unsigned>(entry.field("dyn_max_fg_ways"));
    return in;
}

NPartitionDecision
npartitionDecisionFromEntry(const obs::JournalEntry &entry)
{
    NPartitionDecision out;
    const std::size_t n =
        static_cast<std::size_t>(entry.field("num_apps"));
    out.masks.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.masks.push_back(WayMask(static_cast<std::uint32_t>(
            entry.field(appField(i, "mask")))));
    if (entry.rule == "lfoc") {
        out.classes.resize(n);
        out.targets.resize(n);
        out.errAfter.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
            out.classes[i] = static_cast<AppClass>(static_cast<int>(
                entry.field(appField(i, "class"))));
            out.targets[i] = entry.field(appField(i, "target"));
            out.errAfter[i] = entry.field(appField(i, "err_after"));
        }
    }
    return out;
}

void
journalNPartitionDecision(double t_us, const NPartitionInputs &in,
                          const NPartitionDecision &out,
                          std::uint64_t seq, bool applied)
{
    if (!obs::enabled())
        return;
    obs::timeseries().journal(
        makeNPartitionEntry(t_us, in, out, seq, applied));
    static obs::Counter &journaled =
        obs::metrics().counter("partitioner.napp_decisions_journaled");
    journaled.inc();
}

} // namespace capart
