/**
 * @file
 * The common N-app LLC partitioning interface.
 *
 * The paper only ever splits the LLC between one foreground and one
 * background application. Production co-location mixes hold many more
 * co-runners, so every allocation policy — the paper's static
 * shared/fair/biased splits, Algorithm 6.2, utility-based UCP, and the
 * LFOC-style clustering policy — is expressed as a @ref Partitioner:
 * a (possibly stateful) decision function from per-app observations to
 * one way mask per app.
 *
 * Invariants every decide() result must satisfy (locked down by
 * tests/test_partitioner.cc):
 *
 *  - one mask per observed app, in input order;
 *  - no mask is empty (an app that cannot allocate anywhere livelocks);
 *  - the union of all masks covers every way of the LLC (no way is
 *    stranded unreachable);
 *  - masks only overlap within a deliberately shared partition (the
 *    shared policy, or an LFOC cluster) — dedicated allocations are
 *    disjoint.
 */

#ifndef CAPART_CORE_PARTITIONER_HH
#define CAPART_CORE_PARTITIONER_HH

#include <vector>

#include "common/types.hh"
#include "mem/way_mask.hh"

namespace capart
{

/**
 * One application's observed behaviour at a decision point — the
 * N-app analogue of the paper's per-window MPKI telemetry, extended
 * with the offline miss-rate curve UCP-style policies consume.
 */
struct AppObservation
{
    AppId id = 0;
    /** The app carries a responsiveness SLO (reporting only; policies
     *  classify from behaviour, never from this label). */
    bool latencySensitive = false;
    /** LLC misses per kilo-instruction (smoothed over recent windows). */
    double mpki = 0.0;
    /** LLC accesses per kilo-instruction. */
    double apki = 0.0;
    double ipc = 0.0;
    /**
     * missCurve[w] = expected LLC misses per kilo-instruction when the
     * app owns w ways, for w = 0..totalWays (index 0: no cache at all,
     * every access misses). Produced by @ref profileMissCurve from the
     * exact LRU stack-distance profile (analysis/mrc). Empty when no
     * profile is available; curve-driven policies then fall back to a
     * fair split.
     */
    std::vector<double> missCurve;

    /** missCurve[w] clamped to the last profiled point. */
    double
    curveAt(unsigned w) const
    {
        if (missCurve.empty())
            return 0.0;
        const std::size_t i = w < missCurve.size()
                                  ? w
                                  : missCurve.size() - 1;
        return missCurve[i];
    }
};

/** Allocation policies available on the N-app path. */
enum class NPolicy
{
    Shared,  //!< unpartitioned: everyone replaces anywhere
    Fair,    //!< even static split across all apps
    Biased,  //!< app 0 gets a precomputed allocation, rest split fairly
    Dynamic, //!< Algorithm 6.2: app 0 foreground, rest share complement
    Ucp,     //!< utility-based allocation with lookahead (UCP)
    Lfoc     //!< light/streaming/sensitive clustering (LFOC-style)
};

inline constexpr unsigned kNumNPolicies = 6;

const char *npolicyName(NPolicy p);

/** Bit for @p p in N-app policy bitmasks (experiment specs). */
constexpr unsigned
npolicyBit(NPolicy p)
{
    return 1u << static_cast<unsigned>(p);
}

/** Stateless-or-stateful allocation policy over N co-running apps. */
class Partitioner
{
  public:
    virtual ~Partitioner() = default;

    /** Stable policy name (table/ledger encoding). */
    virtual const char *name() const = 0;

    /**
     * Decide one way mask per app for the next decision window.
     * @p apps is never empty; @p total_ways is the LLC associativity.
     * Stateful policies (LFOC way bouncing) may return different masks
     * on successive calls with identical inputs.
     */
    virtual std::vector<WayMask> decide(
        const std::vector<AppObservation> &apps, unsigned total_ways) = 0;
};

/**
 * The fair N-way split every policy falls back to: contiguous chunks
 * of total_ways / n ways (the first total_ways % n apps get one way
 * more). With more apps than ways, apps share single-way partitions
 * (app i gets way i * total_ways / num_apps), keeping every mask
 * non-empty and every way covered.
 */
std::vector<WayMask> fairMasks(std::size_t num_apps, unsigned total_ways);

/** No partitioning: every app may replace into every way. */
class SharedPartitioner : public Partitioner
{
  public:
    const char *name() const override { return "shared"; }
    std::vector<WayMask> decide(const std::vector<AppObservation> &apps,
                                unsigned total_ways) override;
};

/** Even static split (the paper's fair policy generalized to N). */
class FairPartitioner : public Partitioner
{
  public:
    const char *name() const override { return "fair"; }
    std::vector<WayMask> decide(const std::vector<AppObservation> &apps,
                                unsigned total_ways) override;
};

/**
 * The paper's biased policy ported to N apps: app 0 (the foreground)
 * keeps a precomputed allocation — the oracle search result on the
 * pairwise path — and the remaining apps split the complement fairly.
 * At N = 2 this reproduces splitWays(fg_ways, total) bit-for-bit.
 */
class BiasedPartitioner : public Partitioner
{
  public:
    explicit BiasedPartitioner(unsigned fg_ways);

    const char *name() const override { return "biased"; }
    std::vector<WayMask> decide(const std::vector<AppObservation> &apps,
                                unsigned total_ways) override;

    unsigned fgWays() const { return fgWays_; }

  private:
    unsigned fgWays_;
};

} // namespace capart

#endif // CAPART_CORE_PARTITIONER_HH
