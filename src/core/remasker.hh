/**
 * @file
 * The mask-application seam between partitioning policy and mechanism.
 *
 * The paper's prototype writes way masks through a custom BIOS that
 * never fails; production mechanisms (Intel CAT via resctrl) can fail
 * transiently or apply late. @ref Remasker abstracts "install this
 * FG/BG split" so controllers can be written against a fallible,
 * retryable operation: @ref DirectRemasker preserves the prototype's
 * infallible semantics, while src/fault and src/rctl provide fallible
 * implementations (fault-injected and resctrl-backed).
 */

#ifndef CAPART_CORE_REMASKER_HH
#define CAPART_CORE_REMASKER_HH

#include <vector>

#include "sim/experiment.hh"
#include "sim/system.hh"

namespace capart
{

/** Applies a foreground/background way split to the machine. */
class Remasker
{
  public:
    virtual ~Remasker() = default;

    /**
     * Install @p masks for @p fg and every app in @p bgs.
     * @return false on a transient failure; the caller may retry.
     */
    virtual bool apply(System &sys, AppId fg,
                       const std::vector<AppId> &bgs,
                       const SplitMasks &masks) = 0;

    /**
     * Called once per delivered perf window; implementations with
     * delayed application use it as their clock.
     */
    virtual void
    tick(System &sys)
    {
        (void)sys;
    }
};

/** The prototype's infallible path: direct way-mask writes. */
class DirectRemasker final : public Remasker
{
  public:
    bool
    apply(System &sys, AppId fg, const std::vector<AppId> &bgs,
          const SplitMasks &masks) override
    {
        sys.setWayMask(fg, masks.fg);
        for (const AppId bg : bgs)
            sys.setWayMask(bg, masks.bg);
        return true;
    }
};

} // namespace capart

#endif // CAPART_CORE_REMASKER_HH
