/**
 * @file
 * Structured health events emitted by the hardened control plane.
 *
 * Production deployments of the paper's dynamic policy need the
 * controller's degradation decisions to be observable: every rejected
 * sample, failed remask, watchdog trip, and recovery is recorded as a
 * typed event that operators (and tests) can audit after the fact.
 */

#ifndef CAPART_CORE_HEALTH_HH
#define CAPART_CORE_HEALTH_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace capart
{

/** What the controller observed or decided. */
enum class HealthEventKind
{
    SampleRejected,  //!< telemetry window failed validity checks
    WindowGap,       //!< one or more monitoring windows never arrived
    RemaskFailed,    //!< a mask application failed (will be retried)
    RemaskRecovered, //!< a retried mask application finally succeeded
    FallbackEntered, //!< watchdog tripped; safe static partition installed
    DynamicResumed,  //!< signals stabilized; dynamic control re-engaged
    SloBreach,       //!< sustained FG slowdown burn past the SLO budget
    SloRecovered     //!< FG slowdown back under the SLO budget
};

/** Human-readable event name (for logs and tables). */
inline const char *
healthEventName(HealthEventKind k)
{
    switch (k) {
      case HealthEventKind::SampleRejected:
        return "sample-rejected";
      case HealthEventKind::WindowGap:
        return "window-gap";
      case HealthEventKind::RemaskFailed:
        return "remask-failed";
      case HealthEventKind::RemaskRecovered:
        return "remask-recovered";
      case HealthEventKind::FallbackEntered:
        return "fallback-entered";
      case HealthEventKind::DynamicResumed:
        return "dynamic-resumed";
      case HealthEventKind::SloBreach:
        return "slo-breach";
      case HealthEventKind::SloRecovered:
        return "slo-recovered";
    }
    capart_panic("unknown health event kind");
}

/** Operating mode of a hardened partition controller. */
enum class ControlMode
{
    Dynamic, //!< Algorithm 6.2 actively repartitioning
    Fallback //!< safe fair static partition (watchdog engaged)
};

/** One structured health event. */
struct HealthEvent
{
    Seconds time = 0.0;
    HealthEventKind kind = HealthEventKind::SampleRejected;
    /** Foreground allocation in effect after the event. */
    unsigned fgWays = 0;
    /** Consecutive-failure count (or gap length) behind the event. */
    unsigned count = 0;
};

/** Count events of one kind in a health log. */
inline std::uint64_t
countHealthEvents(const std::vector<HealthEvent> &log, HealthEventKind k)
{
    std::uint64_t n = 0;
    for (const HealthEvent &e : log)
        n += (e.kind == k);
    return n;
}

} // namespace capart

#endif // CAPART_CORE_HEALTH_HH
