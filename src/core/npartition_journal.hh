/**
 * @file
 * Structured, replayable records of N-app Partitioner decisions.
 *
 * The PR 5 decision journal (core/decision_journal) made Algorithm 6.2
 * replayable; this module extends the same contract to every N-app
 * @ref Partitioner. Each decide() call is reduced to a pure function:
 * @ref decideNPartition maps a complete snapshot of the inputs the
 * policy saw (@ref NPartitionInputs — the per-app observations with
 * their miss curves, plus the policy's own carried state, namely
 * LFOC's fractional-way bounce accumulators) to the masks it must
 * install (@ref NPartitionDecision). The replay invariant
 *
 *     decideNPartition(inputsFromRecord(rec)).masks == recordedMasks
 *
 * holds for every journaled decision of every policy — shared, fair,
 * biased, dynamic (the initial static split; per-window dynamic
 * control stays on the Algorithm 6.2 journal), UCP, and LFOC — after
 * a full JSON round trip through the run ledger
 * (tests/test_napp_obs.cc asserts it end to end).
 *
 * Records flatten to name->number @ref obs::JournalEntry fields with
 * kind "npartition_decision" and rule = npolicyName(policy):
 * per-app inputs as app<i>.mpki / app<i>.curve<w> / app<i>.err_before,
 * per-app outputs as app<i>.mask / app<i>.ways / app<i>.class /
 * app<i>.target / app<i>.err_after, and — for UCP — the first
 * lookahead iteration's marginal-utility table as mu<i>.<k>
 * (diagnostic: the gain-per-way rates the allocator weighed from its
 * all-apps-at-one-way starting state).
 */

#ifndef CAPART_CORE_NPARTITION_JOURNAL_HH
#define CAPART_CORE_NPARTITION_JOURNAL_HH

#include <cstdint>
#include <vector>

#include "core/lfoc.hh"
#include "core/partitioner.hh"
#include "obs/timeseries.hh"

namespace capart
{

/**
 * Everything an N-app decide() reads: the observation vector, the
 * machine width, the policy's configuration, and any state the policy
 * carries across windows. A journal record stores exactly these
 * fields, making the decision reproducible on a fresh policy object.
 */
struct NPartitionInputs
{
    NPolicy policy = NPolicy::Shared;
    unsigned totalWays = 0;
    /** Per-app observations, including miss curves when profiled. */
    std::vector<AppObservation> apps;
    /** LFOC tunables (read when policy == Lfoc). */
    LfocConfig lfoc{};
    /**
     * LFOC's fractional-way bounce accumulators *before* this decide
     * (empty on the first decision). Restoring these onto a fresh
     * partitioner is what makes the stateful policy replayable.
     */
    std::vector<double> lfocErrBefore;
    /** Foreground ways (resolved, non-zero) when policy == Biased. */
    unsigned biasedFgWays = 0;
    /** Initial foreground split when policy == Dynamic. */
    unsigned dynMaxFgWays = 0;
};

/** What the policy decided: one mask per app plus LFOC introspection. */
struct NPartitionDecision
{
    std::vector<WayMask> masks;
    /** LFOC only: class per app (empty for other policies). */
    std::vector<AppClass> classes;
    /** LFOC only: fractional way target per app. */
    std::vector<double> targets;
    /** LFOC only: bounce accumulators after the decision. */
    std::vector<double> errAfter;
};

/**
 * Replay @p in through a freshly constructed policy object (LFOC
 * state restored from lfocErrBefore); see the file comment for the
 * replay contract.
 */
NPartitionDecision decideNPartition(const NPartitionInputs &in);

/**
 * Encode one journaled N-app decision: @p in and @p out flattened to
 * fields, plus @p seq (decision ordinal within the run; 0 is the
 * up-front decision, >0 are online re-decisions) and whether the
 * masks were actually installed.
 */
obs::JournalEntry makeNPartitionEntry(double t_us,
                                      const NPartitionInputs &in,
                                      const NPartitionDecision &out,
                                      std::uint64_t seq, bool applied);

/** Rebuild the decision inputs from a journal record's fields. */
NPartitionInputs npartitionInputsFromEntry(const obs::JournalEntry &entry);

/** Rebuild the recorded decision outputs from a journal record. */
NPartitionDecision npartitionDecisionFromEntry(
    const obs::JournalEntry &entry);

/**
 * Journal one decision into the current thread's attribution scope
 * (and bump the partitioner.napp_decisions_journaled counter). A
 * no-op unless obs::enabled(); never touches simulation state, so
 * results stay bit-identical with journaling on.
 */
void journalNPartitionDecision(double t_us, const NPartitionInputs &in,
                               const NPartitionDecision &out,
                               std::uint64_t seq, bool applied);

} // namespace capart

#endif // CAPART_CORE_NPARTITION_JOURNAL_HH
