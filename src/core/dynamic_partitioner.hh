/**
 * @file
 * The paper's online dynamic cache-partitioning algorithm (§6,
 * Algorithm 6.2), implemented as a @ref PartitionController.
 *
 * On every foreground phase change the controller gives the foreground
 * as much cache as possible (11 of 12 ways on the paper's machine),
 * then gradually shrinks the allocation one way at a time until the
 * MPKI reacts, at which point it backs off one step and settles.
 * Background applications always receive the complementary ways, so
 * every way the foreground releases immediately becomes background
 * capacity. Remasking never flushes data (§2.1), which keeps
 * reallocation cheap — exactly the property the hardware provides.
 *
 * Beyond the paper, the controller is hardened for production
 * telemetry and control planes that are allowed to fail (see
 * DESIGN.md, "Fault model & graceful degradation"):
 *
 *  - windows are validity-checked (NaN/negative/inconsistent samples and
 *    one-window outlier spikes are rejected; two consecutive outliers
 *    confirm a genuine shift and pass through);
 *  - mask applications go through a @ref Remasker and are retried with
 *    bounded exponential backoff when they fail transiently;
 *  - a watchdog falls back to the safe fair static partition after K
 *    consecutive telemetry or remask failures (or prolonged telemetry
 *    silence), and resumes dynamic control once signals stabilize;
 *  - every degradation decision lands in a structured health log.
 */

#ifndef CAPART_CORE_DYNAMIC_PARTITIONER_HH
#define CAPART_CORE_DYNAMIC_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "core/decision_journal.hh"
#include "core/health.hh"
#include "core/phase_detector.hh"
#include "core/remasker.hh"
#include "sim/system.hh"

namespace capart
{

/**
 * Tunables of Algorithm 6.2.
 *
 * The paper's thresholds are 0.02/0.02/0.05 on 100 ms windows of a
 * ~100 s application (§6.3). Our scaled applications sample windows
 * covering ~10^4x fewer instructions, so per-window MPKI carries real
 * sampling noise; the defaults here widen the thresholds and smooth
 * the MPKI with an EWMA to keep the *algorithm's* behaviour (probe
 * down, react, settle) identical under scaling. See EXPERIMENTS.md.
 */
struct DynamicPartitionerConfig
{
    PhaseDetectorConfig detector{.thr1 = 0.08, .thr2 = 0.08};
    /** Relative MPKI change treated as "no reaction" (MPKI_THR3). */
    double thr3 = 0.10;
    /** EWMA weight of the newest window's MPKI (1 = no smoothing). */
    double mpkiSmoothing = 0.25;
    /** Floor for the relative-change denominator (MPKI units). */
    double minDenominator = 0.5;
    /** Smallest foreground allocation (2 ways = 1 MB on 12x0.5 MB). */
    unsigned minFgWays = 2;
    /** Largest foreground allocation (11 ways: background keeps one). */
    unsigned maxFgWays = 11;

    // ---- graceful degradation under faulty telemetry/control --------
    /**
     * A window whose MPKI exceeds this multiple of the smoothed level
     * is quarantined as a suspected counter glitch; a second
     * consecutive outlier confirms a genuine phase shift and passes.
     */
    double spikeRejectFactor = 8.0;
    /** Absolute MPKI floor under the spike test (ignore tiny levels). */
    double spikeFloor = 2.5;
    /** Retries per remask decision before it is abandoned. */
    unsigned maxRemaskRetries = 3;
    /** Windows before the first retry; doubles on each further retry. */
    unsigned retryBackoffWindows = 1;
    /**
     * Consecutive telemetry rejections — or consecutive failed remask
     * attempts — that trip the watchdog into the fair fallback.
     */
    unsigned watchdogThreshold = 4;
    /**
     * Background windows without any foreground telemetry before the
     * watchdog declares the foreground's monitoring dead.
     */
    unsigned telemetryTimeoutWindows = 8;
    /** Consecutive healthy windows needed to resume dynamic mode. */
    unsigned recoveryWindows = 3;

    /** Panics with a precise message on an impossible configuration. */
    void validate() const;
};

/** One reallocation decision, kept for Fig. 12-style traces. */
struct AllocationEvent
{
    Seconds time = 0.0;
    unsigned fgWays = 0;
    double windowMpki = 0.0;
    PhaseEvent phase = PhaseEvent::Stable;
};

/** Online utility-driven repartitioning of the LLC (Algorithm 6.2). */
class DynamicPartitioner : public PartitionController
{
  public:
    /**
     * @param fg       the latency-sensitive foreground application.
     * @param bgs      background peers sharing the complement partition.
     * @param cfg      algorithm tunables (validated at construction).
     * @param remasker mask-application path; nullptr = the infallible
     *                 direct path (the paper's prototype semantics).
     */
    DynamicPartitioner(
        AppId fg, std::vector<AppId> bgs,
        const DynamicPartitionerConfig &cfg = DynamicPartitionerConfig{},
        Remasker *remasker = nullptr);

    void onWindow(System &sys, AppId app, const PerfWindow &w) override;

    unsigned fgWays() const { return fgWays_; }
    const PhaseDetector &detector() const { return detector_; }
    std::uint64_t reallocations() const { return reallocations_; }
    const std::vector<AllocationEvent> &history() const { return history_; }

    // ---------------- health and degradation introspection -----------
    ControlMode mode() const { return mode_; }
    const std::vector<HealthEvent> &healthLog() const { return health_; }
    /** Telemetry windows rejected by validity checks. */
    std::uint64_t rejectedSamples() const { return rejectedSamples_; }
    /** Mask applications attempted / failed (including retries). */
    std::uint64_t remaskAttempts() const { return remaskAttempts_; }
    std::uint64_t remaskFailures() const { return remaskFailures_; }

  private:
    bool apply(System &sys, unsigned fg_ways);
    void requestWays(System &sys, unsigned fg_ways);
    void serviceRetry(System &sys);
    /** Snapshot the decision inputs as the control step sees them. */
    DecisionInputs snapshotInputs(double raw_mpki, double smoothed_mpki,
                                  PhaseEvent ev) const;
    /** Append one decision record to the obs journal (obs-gated). */
    void journalDecision(System &sys, const DecisionInputs &in,
                         const Decision &out);
    void enterFallback(System &sys, unsigned count, bool remask_cause);
    void resumeDynamic(System &sys);
    void pushHealth(System &sys, HealthEventKind kind, unsigned count);
    /** Validity verdicts for one foreground window. */
    enum class Sample
    {
        Valid,
        Garbage, //!< NaN / negative / counter-inconsistent window
        Outlier  //!< suspected one-window counter spike
    };
    Sample classify(const PerfWindow &w);

    AppId fg_;
    std::vector<AppId> bgs_;
    DynamicPartitionerConfig cfg_;
    PhaseDetector detector_;
    DirectRemasker direct_;
    Remasker *remasker_;

    bool installed_ = false;
    bool phaseStarts_ = false;
    bool haveLast_ = false;
    double lastMpki_ = 0.0;
    double smoothed_ = 0.0;
    bool haveSmoothed_ = false;
    unsigned fgWays_ = 0;
    std::uint64_t reallocations_ = 0;
    std::vector<AllocationEvent> history_;

    // ---------------- degradation state -------------------------------
    ControlMode mode_ = ControlMode::Dynamic;
    std::vector<HealthEvent> health_;
    unsigned badTelemetry_ = 0;   //!< consecutive rejected FG windows
    unsigned fgSilence_ = 0;      //!< BG windows since last FG window
    unsigned consecRemaskFails_ = 0;
    unsigned healthyStreak_ = 0;  //!< valid FG windows while in fallback
    /** The last fallback was caused by remask failures (not telemetry). */
    bool remaskCausedFallback_ = false;
    /**
     * Dynamic control just resumed from a remask-caused fallback: the
     * first write is a probe, and its failure re-trips the watchdog
     * immediately (healthy telemetry says nothing about a control plane
     * that was recently broken).
     */
    bool remaskProbation_ = false;
    bool haveSuspect_ = false;
    double suspectMpki_ = 0.0;
    bool haveFgWindow_ = false;
    Seconds lastFgEnd_ = 0.0;
    bool retryPending_ = false;
    unsigned retryWays_ = 0;
    unsigned retryCount_ = 0;
    unsigned retryWait_ = 0;
    std::uint64_t rejectedSamples_ = 0;
    std::uint64_t remaskAttempts_ = 0;
    std::uint64_t remaskFailures_ = 0;
};

} // namespace capart

#endif // CAPART_CORE_DYNAMIC_PARTITIONER_HH
