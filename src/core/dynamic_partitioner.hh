/**
 * @file
 * The paper's online dynamic cache-partitioning algorithm (§6,
 * Algorithm 6.2), implemented as a @ref PartitionController.
 *
 * On every foreground phase change the controller gives the foreground
 * as much cache as possible (11 of 12 ways on the paper's machine),
 * then gradually shrinks the allocation one way at a time until the
 * MPKI reacts, at which point it backs off one step and settles.
 * Background applications always receive the complementary ways, so
 * every way the foreground releases immediately becomes background
 * capacity. Remasking never flushes data (§2.1), which keeps
 * reallocation cheap — exactly the property the hardware provides.
 */

#ifndef CAPART_CORE_DYNAMIC_PARTITIONER_HH
#define CAPART_CORE_DYNAMIC_PARTITIONER_HH

#include <cstdint>
#include <vector>

#include "core/phase_detector.hh"
#include "sim/system.hh"

namespace capart
{

/**
 * Tunables of Algorithm 6.2.
 *
 * The paper's thresholds are 0.02/0.02/0.05 on 100 ms windows of a
 * ~100 s application (§6.3). Our scaled applications sample windows
 * covering ~10^4x fewer instructions, so per-window MPKI carries real
 * sampling noise; the defaults here widen the thresholds and smooth
 * the MPKI with an EWMA to keep the *algorithm's* behaviour (probe
 * down, react, settle) identical under scaling. See EXPERIMENTS.md.
 */
struct DynamicPartitionerConfig
{
    PhaseDetectorConfig detector{.thr1 = 0.08, .thr2 = 0.08};
    /** Relative MPKI change treated as "no reaction" (MPKI_THR3). */
    double thr3 = 0.10;
    /** EWMA weight of the newest window's MPKI (1 = no smoothing). */
    double mpkiSmoothing = 0.25;
    /** Floor for the relative-change denominator (MPKI units). */
    double minDenominator = 0.5;
    /** Smallest foreground allocation (2 ways = 1 MB on 12x0.5 MB). */
    unsigned minFgWays = 2;
    /** Largest foreground allocation (11 ways: background keeps one). */
    unsigned maxFgWays = 11;
};

/** One reallocation decision, kept for Fig. 12-style traces. */
struct AllocationEvent
{
    Seconds time = 0.0;
    unsigned fgWays = 0;
    double windowMpki = 0.0;
    PhaseEvent phase = PhaseEvent::Stable;
};

/** Online utility-driven repartitioning of the LLC (Algorithm 6.2). */
class DynamicPartitioner : public PartitionController
{
  public:
    /**
     * @param fg   the latency-sensitive foreground application.
     * @param bgs  background peers; they share the complement partition.
     */
    DynamicPartitioner(
        AppId fg, std::vector<AppId> bgs,
        const DynamicPartitionerConfig &cfg = DynamicPartitionerConfig{});

    void onWindow(System &sys, AppId app, const PerfWindow &w) override;

    unsigned fgWays() const { return fgWays_; }
    const PhaseDetector &detector() const { return detector_; }
    std::uint64_t reallocations() const { return reallocations_; }
    const std::vector<AllocationEvent> &history() const { return history_; }

  private:
    void apply(System &sys, unsigned fg_ways);

    AppId fg_;
    std::vector<AppId> bgs_;
    DynamicPartitionerConfig cfg_;
    PhaseDetector detector_;

    bool installed_ = false;
    bool phaseStarts_ = false;
    bool haveLast_ = false;
    double lastMpki_ = 0.0;
    double smoothed_ = 0.0;
    bool haveSmoothed_ = false;
    unsigned fgWays_ = 0;
    std::uint64_t reallocations_ = 0;
    std::vector<AllocationEvent> history_;
};

} // namespace capart

#endif // CAPART_CORE_DYNAMIC_PARTITIONER_HH
