/**
 * @file
 * Online foreground-responsiveness SLO monitor.
 *
 * The paper's headline claim is that partitioning preserves
 * responsiveness: the foreground's slowdown under consolidation stays
 * within 1–2% of running alone on its half of the machine. This
 * monitor turns that claim into an *online* service-level objective,
 * evaluated window by window while the co-schedule runs instead of
 * once at the end.
 *
 * Per foreground perf window it computes an instantaneous slowdown
 * estimate (baseline alone-at-half-machine IPS divided by the window's
 * IPS) and maintains mean slowdown over a short and a long sliding
 * window. Each mean is converted to a *burn rate* against the SLO
 * budget:
 *
 *     burn = (mean_slowdown - 1) / (slo - 1)
 *
 * so burn 1.0 means "consuming the error budget exactly as fast as the
 * SLO allows" and burn 2.0 means "twice as fast". A breach is declared
 * only when the current window itself violates the SLO *and* BOTH
 * sliding windows burn past the threshold, for a configurable number
 * of consecutive evaluations — the standard multi-window burn-rate
 * alerting shape: the short window makes detection fast, the long
 * window keeps one noisy sample from paging anyone, and the live
 * violation requirement plus the confirmation count remove
 * single-window flapping (one extreme spike echoes in the means for
 * shortWindows evaluations but is not a *sustained* violation).
 * Recovery is symmetric: `recoveryWindows` consecutive non-burning
 * evaluations end the breach.
 *
 * The monitor is an observer, never an actuator: it reads windows,
 * updates counters/gauges, emits trace instants and structured log
 * events, and appends to a health log — it never touches partition
 * state, so enabling it cannot change simulation results (tested
 * bit-identical on/off).
 */

#ifndef CAPART_CORE_SLO_MONITOR_HH
#define CAPART_CORE_SLO_MONITOR_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/health.hh"
#include "perf/perf_counters.hh"
#include "sim/system.hh"

namespace capart
{

/** Tunables of the multi-window burn-rate SLO alert. */
struct SloMonitorConfig
{
    /**
     * The responsiveness objective as a slowdown bound: 1.02 = the FG
     * may run at most 2% slower than alone on its half (the paper's
     * 1–2% band).
     */
    double slo = 1.02;
    /** Perf windows in the fast-detection sliding window. */
    unsigned shortWindows = 4;
    /** Perf windows in the noise-suppressing sliding window. */
    unsigned longWindows = 16;
    /** Burn rate both windows must exceed to count as burning. */
    double burnThreshold = 1.0;
    /** Consecutive burning evaluations before a breach is declared. */
    unsigned confirmWindows = 2;
    /** Consecutive clean evaluations before recovery is declared. */
    unsigned recoveryWindows = 4;

    /** Panics with a precise message on an impossible configuration. */
    void validate() const;
};

/** What one window's evaluation changed. */
enum class SloTransition
{
    None,     //!< state unchanged (healthy stayed healthy, or vice versa)
    Breach,   //!< sustained burn just crossed into breach
    Recovered //!< sustained calm just ended a breach
};

/** Windowed FG-slowdown SLO evaluation; see file comment. */
class SloMonitor
{
  public:
    explicit SloMonitor(const SloMonitorConfig &cfg = SloMonitorConfig{});

    /**
     * Set the alone-at-half-machine foreground throughput the slowdown
     * is measured against. Must be called (with a positive value)
     * before windows arrive; windows observed earlier are ignored.
     */
    void setBaseline(double baseline_ips);
    double baseline() const { return baselineIps_; }

    /**
     * Evaluate one closed foreground perf window at simulated time
     * @p now (used only to stamp emitted events).
     */
    SloTransition onWindow(Seconds now, const PerfWindow &w);

    /** The monitor currently considers the SLO breached. */
    bool inBreach() const { return inBreach_; }
    /** Breaches declared over the monitor's lifetime. */
    std::uint64_t breaches() const { return breaches_; }
    /** Windows evaluated (excludes unusable ones). */
    std::uint64_t windows() const { return windows_; }
    /** Windows evaluated while in breach. */
    std::uint64_t breachWindows() const { return breachWindows_; }
    /** Newest short/long-window burn rates (0 until enough data). */
    double shortBurn() const { return shortBurn_; }
    double longBurn() const { return longBurn_; }
    /** Newest single-window slowdown estimate. */
    double lastSlowdown() const { return lastSlowdown_; }
    /** Breach/recovery events, in order. */
    const std::vector<HealthEvent> &healthLog() const { return health_; }

    const SloMonitorConfig &config() const { return cfg_; }

  private:
    double windowMean(const std::deque<double> &win) const;

    SloMonitorConfig cfg_;
    double baselineIps_ = 0.0;
    std::deque<double> shortWin_;
    std::deque<double> longWin_;
    bool inBreach_ = false;
    unsigned burnStreak_ = 0;
    unsigned calmStreak_ = 0;
    std::uint64_t breaches_ = 0;
    std::uint64_t windows_ = 0;
    std::uint64_t breachWindows_ = 0;
    double shortBurn_ = 0.0;
    double longBurn_ = 0.0;
    double lastSlowdown_ = 0.0;
    std::vector<HealthEvent> health_;
};

/**
 * PartitionController adapter that feeds the foreground's windows to a
 * @ref SloMonitor and then delegates to an optional inner controller
 * unchanged. Monitoring composes with any policy this way: the shared
 * and static policies get a monitor where they had no controller at
 * all, and the dynamic policy keeps its controller untouched.
 */
class SloController : public PartitionController
{
  public:
    /**
     * @param fg      the monitored foreground application.
     * @param monitor evaluated on each of @p fg's windows (not owned).
     * @param inner   controller to delegate every window to, or nullptr.
     */
    SloController(AppId fg, SloMonitor *monitor,
                  PartitionController *inner = nullptr);

    void onWindow(System &sys, AppId app, const PerfWindow &w) override;

  private:
    AppId fg_;
    SloMonitor *monitor_;
    PartitionController *inner_;
};

} // namespace capart

#endif // CAPART_CORE_SLO_MONITOR_HH
