#include "core/napp.hh"

#include <algorithm>
#include <limits>
#include <memory>

#include "analysis/mrc.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "core/ucp.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "stats/fairness.hh"
#include "workload/generator.hh"

namespace capart
{
namespace
{

/** EWMA weight of the newest window's MPKI (matches the dynamic
 *  controller's smoothing so both react on the same timescale). */
constexpr double kMpkiSmoothing = 0.25;

/**
 * Drives a @ref Partitioner online: folds each app's perf windows into
 * its observation and re-decides every @p every foreground windows,
 * installing only the masks that actually changed.
 */
class NAppController final : public PartitionController
{
  public:
    NAppController(Partitioner *part, std::vector<AppObservation> obs,
                   unsigned every, std::vector<WayMask> current)
        : part_(part), obs_(std::move(obs)),
          every_(every > 0 ? every : 1), current_(std::move(current)),
          seen_(obs_.size(), false)
    {
    }

    void
    onWindow(System &sys, AppId app, const PerfWindow &w) override
    {
        if (app < obs_.size() && w.insts > 0) {
            AppObservation &o = obs_[app];
            if (seen_[app]) {
                o.mpki = kMpkiSmoothing * w.mpki +
                         (1.0 - kMpkiSmoothing) * o.mpki;
                o.apki = kMpkiSmoothing * w.apki +
                         (1.0 - kMpkiSmoothing) * o.apki;
            } else {
                o.mpki = w.mpki;
                o.apki = w.apki;
                seen_[app] = true;
            }
        }
        if (app != 0 || ++fgWindows_ % every_ != 0)
            return;
        const auto masks = part_->decide(obs_, sys.llcWays());
        for (std::size_t i = 0; i < masks.size(); ++i) {
            if (masks[i] == current_[i])
                continue;
            sys.setWayMask(obs_[i].id, masks[i]);
            current_[i] = masks[i];
            ++remasks_;
        }
    }

    std::uint64_t remasks() const { return remasks_; }

  private:
    Partitioner *part_;
    std::vector<AppObservation> obs_;
    unsigned every_;
    std::vector<WayMask> current_;
    std::vector<bool> seen_;
    std::uint64_t fgWindows_ = 0;
    std::uint64_t remasks_ = 0;
};

} // namespace

SystemConfig
nAppSystem(unsigned num_cores, unsigned llc_ways, std::uint64_t seed)
{
    capart_assert(num_cores >= 1 && llc_ways >= 2 && llc_ways <= 32);
    SystemConfig cfg;
    cfg.numCores = num_cores;
    cfg.seed = seed;
    // 128 KiB per way: 2048 sets at any associativity (power of two,
    // as the set-index mapping requires). Smaller than the paper's
    // 0.5 MB/way because N-app studies run the catalog at bench scales
    // (~0.04) — at 512 KiB/way every scaled working set fits in one
    // way and all miss curves go flat, erasing the very sensitivity
    // the UCP/LFOC policies exist to exploit.
    cfg.hierarchy.llc.sizeBytes = static_cast<std::uint64_t>(llc_ways) *
                                  kib(128);
    cfg.hierarchy.llc.ways = llc_ways;
    cfg.hierarchy.llc.partitionSlots = 64;
    return cfg;
}

MissCurve
profileMissCurve(const AppParams &params, const SystemConfig &system,
                 double scale, std::uint64_t max_accesses)
{
    // One representative thread of the (scaled) app replayed into the
    // exact LRU profiler. The seed is a fixed function of the system
    // seed only, so one app's curve does not depend on which slot of
    // which mix it appears in.
    const AppParams scaled = params.scaled(scale);
    ThreadWorkload thread(scaled, 0, 1, kAppAddressStride,
                          system.seed ^ 0x4e417070ULL /* "NApp" */);
    StackDistanceProfiler prof;
    std::vector<MemAccess> buf;
    Insts insts = 0;
    const Insts total_work = thread.totalWork();
    while (!thread.done() && prof.accesses() < max_accesses) {
        buf.clear();
        const double progress =
            total_work > 0
                ? static_cast<double>(thread.retired()) / total_work
                : 1.0;
        const Insts got =
            thread.runQuantum(system.quantumInsts, progress, buf);
        if (got == 0)
            break;
        insts += got;
        for (const MemAccess &a : buf) {
            if (!a.uncached)
                prof.access(a.addr / kLineBytes);
        }
    }

    MissCurve mc;
    mc.accesses = prof.accesses();
    mc.apki = insts > 0 ? 1000.0 * static_cast<double>(prof.accesses()) /
                              static_cast<double>(insts)
                        : 0.0;
    const std::uint64_t sets = system.hierarchy.llc.sets();
    const unsigned ways = system.hierarchy.llc.ways;
    std::vector<std::uint64_t> capacities;
    capacities.reserve(ways + 1);
    for (unsigned w = 0; w <= ways; ++w)
        capacities.push_back(static_cast<std::uint64_t>(w) * sets);
    const std::vector<double> ratios = prof.missRatios(capacities);
    mc.mpkiAtWays.reserve(ratios.size());
    for (const double r : ratios)
        mc.mpkiAtWays.push_back(r * mc.apki);
    return mc;
}

NAppRunResult
runNApp(const std::vector<NAppMember> &members, NPolicy policy,
        const NAppOptions &opts)
{
    capart_assert(!members.empty());
    const SystemConfig &cfg = opts.system;
    System sys(cfg);
    const unsigned total = sys.llcWays();

    // Pinning: disjoint whole cores in member order, both hyperthreads
    // of a core filled first — exactly runPair's discipline at N = 2.
    std::vector<AppId> ids;
    ids.reserve(members.size());
    unsigned core = 0;
    for (const NAppMember &m : members) {
        capart_assert(m.threads >= 1);
        ids.push_back(sys.addAppThreads(m.params.scaled(opts.scale), core,
                                        m.threads, m.continuous));
        core += (m.threads + cfg.htsPerCore - 1) / cfg.htsPerCore;
    }
    capart_assert(core <= cfg.numCores);

    std::vector<AppObservation> obs(members.size());
    const bool need_curves =
        policy == NPolicy::Ucp || policy == NPolicy::Lfoc;
    for (std::size_t i = 0; i < members.size(); ++i) {
        obs[i].id = ids[i];
        obs[i].latencySensitive = !members[i].continuous;
        if (!need_curves)
            continue;
        const MissCurve mc = profileMissCurve(
            members[i].params, cfg, opts.scale, opts.profileAccesses);
        obs[i].missCurve = mc.mpkiAtWays;
        obs[i].apki = mc.apki;
        // Pre-run MPKI estimate: the curve read at a fair share of the
        // ways (the controller replaces it with measured windows).
        const unsigned share = std::max<unsigned>(
            1, total / static_cast<unsigned>(members.size()));
        obs[i].mpki = obs[i].curveAt(std::min(share, total));
    }

    std::unique_ptr<Partitioner> part;
    std::unique_ptr<DynamicPartitioner> dyn;
    std::vector<WayMask> masks;
    switch (policy) {
      case NPolicy::Shared:
        part = std::make_unique<SharedPartitioner>();
        break;
      case NPolicy::Fair:
        part = std::make_unique<FairPartitioner>();
        break;
      case NPolicy::Biased:
        part = std::make_unique<BiasedPartitioner>(
            opts.biasedFgWays > 0 ? opts.biasedFgWays : total / 2);
        break;
      case NPolicy::Ucp:
        part = std::make_unique<UcpPartitioner>();
        break;
      case NPolicy::Lfoc:
        part = std::make_unique<LfocPartitioner>(opts.lfoc);
        break;
      case NPolicy::Dynamic: {
        DynamicPartitionerConfig dc = opts.dynamic;
        if (opts.autoScaleDynamic)
            dc.maxFgWays = total - 1;
        // The controller's starting allocation, installed statically so
        // a run with no windows still has the paper's initial split.
        masks.push_back(WayMask::range(0, dc.maxFgWays));
        for (std::size_t i = 1; i < members.size(); ++i)
            masks.push_back(
                WayMask::range(dc.maxFgWays, total - dc.maxFgWays));
        if (members.size() > 1) {
            dyn = std::make_unique<DynamicPartitioner>(
                ids[0], std::vector<AppId>(ids.begin() + 1, ids.end()),
                dc);
        }
        break;
      }
    }
    if (part)
        masks = part->decide(obs, total);
    capart_assert(masks.size() == members.size());

    // Installing an all-ways mask is a state no-op (the default), so
    // skip it — keeps the Shared path identical to the legacy runPair
    // call sequence, which never touches the mask registers.
    const WayMask everything = WayMask::all(total);
    for (std::size_t i = 0; i < masks.size(); ++i) {
        if (!(masks[i] == everything))
            sys.setWayMask(ids[i], masks[i]);
    }

    std::unique_ptr<NAppController> ctrl;
    if (dyn) {
        sys.setController(dyn.get());
    } else if (policy == NPolicy::Lfoc) {
        ctrl = std::make_unique<NAppController>(
            part.get(), obs, opts.decisionWindows, masks);
        sys.setController(ctrl.get());
    }

    const RunResult run = sys.run();
    NAppRunResult res;
    res.policy = policy;
    res.apps.reserve(ids.size());
    for (const AppId id : ids)
        res.apps.push_back(run.app(id));
    res.fgTime = res.apps.front().completionTime;
    res.socketEnergy = run.socketEnergy;
    res.wallEnergy = run.wallEnergy;
    res.timedOut = run.timedOut;
    if (dyn)
        res.remasks = dyn->reallocations();
    else if (ctrl)
        res.remasks = ctrl->remasks();
    if (policy == NPolicy::Lfoc)
        res.lfocClasses =
            static_cast<LfocPartitioner *>(part.get())->lastClasses();
    return res;
}

NAppStudy::NAppStudy(std::vector<NAppMember> members,
                     NAppStudyOptions opts)
    : members_(std::move(members)), opts_(std::move(opts)),
      soloIps_(members_.size())
{
    capart_assert(!members_.empty());
}

double
NAppStudy::soloIps(std::size_t i)
{
    capart_assert(i < members_.size());
    if (!soloIps_[i]) {
        SoloOptions solo;
        solo.threads = members_[i].threads;
        solo.ways = opts_.run.system.hierarchy.llc.ways;
        solo.scale = opts_.run.scale;
        solo.system = opts_.run.system;
        const SoloResult r = runSolo(members_[i].params, solo);
        capart_assert(r.app.throughputIps > 0.0);
        soloIps_[i] = r.app.throughputIps;
    }
    return *soloIps_[i];
}

const NAppRunResult &
NAppStudy::runPolicy(NPolicy policy)
{
    const auto it = runs_.find(policy);
    if (it != runs_.end())
        return it->second;
    return runs_.emplace(policy, runNApp(members_, policy, opts_.run))
        .first->second;
}

NAppPolicySummary
NAppStudy::summarize(NPolicy policy)
{
    const NAppRunResult &run = runPolicy(policy);
    NAppPolicySummary s;
    s.policy = policy;
    s.timedOut = run.timedOut;
    s.remasks = run.remasks;
    s.socketEnergyJ = run.socketEnergy;
    s.wallEnergyJ = run.wallEnergy;

    std::vector<double> slowdowns;
    slowdowns.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const double corun = run.apps[i].throughputIps;
        capart_assert(corun > 0.0);
        s.throughputIps += corun;
        slowdowns.push_back(soloIps(i) / corun);
    }
    s.stp = systemThroughput(slowdowns);
    s.unfairness = unfairness(slowdowns);
    s.worstSlowdown =
        *std::max_element(slowdowns.begin(), slowdowns.end());
    s.fgSlowdown = slowdowns.front();
    for (const double sd : slowdowns) {
        if (sd > opts_.sloSlowdown)
            ++s.sloBreaches;
    }
    return s;
}

} // namespace capart
