#include "core/napp.hh"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <string>

#include "analysis/mrc.hh"
#include "common/logging.hh"
#include "common/units.hh"
#include "core/npartition_journal.hh"
#include "core/ucp.hh"
#include "obs/metrics.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"
#include "sim/system.hh"
#include "stats/fairness.hh"
#include "workload/generator.hh"

namespace capart
{
namespace
{

/** EWMA weight of the newest window's MPKI (matches the dynamic
 *  controller's smoothing so both react on the same timescale). */
constexpr double kMpkiSmoothing = 0.25;

/** Record one decide() latency in the per-policy histogram (ns). */
void
recordDecideLatency(NPolicy policy,
                    std::chrono::steady_clock::time_point t0)
{
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    obs::metrics()
        .histogram(std::string("napp.decide_ns.") + npolicyName(policy))
        .record(static_cast<std::uint64_t>(ns));
}

/**
 * Mark the start of one System run inside an N-app point's scope. A
 * point's attribution scope spans many System runs (one per policy
 * plus one solo baseline per app), each restarting simulated time at
 * zero; these markers — one per run, in run order — let the dashboard
 * segment the sample stream and label each segment with its policy
 * ("solo" markers carry the app index).
 */
void
journalNAppRunMarker(const char *rule, std::size_t num_apps,
                     unsigned total_ways, double solo_app = -1.0)
{
    if (!obs::enabled())
        return;
    obs::JournalEntry e;
    e.tUs = 0.0;
    e.kind = "napp_run";
    e.rule = rule;
    e.fields.emplace_back("num_apps",
                          static_cast<double>(num_apps));
    e.fields.emplace_back("total_ways", total_ways);
    if (solo_app >= 0.0)
        e.fields.emplace_back("app", solo_app);
    obs::timeseries().journal(std::move(e));
}

/**
 * Drives a @ref Partitioner online: folds each app's perf windows into
 * its observation and re-decides every @p every foreground windows,
 * installing only the masks that actually changed.
 */
class NAppController final : public PartitionController
{
  public:
    /**
     * @p lfoc is @p part downcast when the policy carries bounce
     * state (null otherwise); @p first_seq continues the decision
     * ordinal sequence started by runNApp's up-front decision.
     */
    NAppController(Partitioner *part, LfocPartitioner *lfoc,
                   NPolicy policy, const LfocConfig &lfoc_cfg,
                   std::vector<AppObservation> obs, unsigned every,
                   std::vector<WayMask> current, std::uint64_t first_seq)
        : part_(part), lfoc_(lfoc), policy_(policy),
          lfocCfg_(lfoc_cfg), obs_(std::move(obs)),
          every_(every > 0 ? every : 1), current_(std::move(current)),
          seen_(obs_.size(), false), seq_(first_seq)
    {
        if (lfoc_)
            lastClasses_ = lfoc_->lastClasses();
    }

    void
    onWindow(System &sys, AppId app, const PerfWindow &w) override
    {
        if (app < obs_.size() && w.insts > 0) {
            AppObservation &o = obs_[app];
            if (seen_[app]) {
                o.mpki = kMpkiSmoothing * w.mpki +
                         (1.0 - kMpkiSmoothing) * o.mpki;
                o.apki = kMpkiSmoothing * w.apki +
                         (1.0 - kMpkiSmoothing) * o.apki;
            } else {
                o.mpki = w.mpki;
                o.apki = w.apki;
                seen_[app] = true;
            }
        }
        if (app != 0 || ++fgWindows_ % every_ != 0)
            return;
        // Snapshot the complete decision inputs *before* decide()
        // mutates the policy's carried state; recording never feeds
        // back into the decision, so results stay bit-identical with
        // observability on.
        const bool rec = obs::enabled();
        NPartitionInputs jin;
        if (rec) {
            jin.policy = policy_;
            jin.totalWays = sys.llcWays();
            jin.apps = obs_;
            jin.lfoc = lfocCfg_;
            if (lfoc_)
                jin.lfocErrBefore = lfoc_->bounceError();
        }
        std::chrono::steady_clock::time_point t0{};
        if (rec)
            t0 = std::chrono::steady_clock::now();
        std::vector<WayMask> masks;
        {
            obs::TraceSpan span("napp.decide", "partition");
            masks = part_->decide(obs_, sys.llcWays());
        }
        if (rec) {
            recordDecideLatency(policy_, t0);
            NPartitionDecision jout;
            jout.masks = masks;
            if (lfoc_) {
                jout.classes = lfoc_->lastClasses();
                jout.targets = lfoc_->lastTargets();
                jout.errAfter = lfoc_->bounceError();
                for (std::size_t i = 0;
                     i < jout.classes.size() && i < lastClasses_.size();
                     ++i) {
                    if (jout.classes[i] != lastClasses_[i])
                        obs::tracer().instant(
                            "lfoc.class_change", "partition",
                            sys.now() * 1e6,
                            {{"app", static_cast<double>(i)},
                             {"class", static_cast<double>(
                                           static_cast<int>(
                                               jout.classes[i]))}});
                }
                lastClasses_ = jout.classes;
            }
            journalNPartitionDecision(sys.now() * 1e6, jin, jout,
                                      seq_++, true);
        }
        for (std::size_t i = 0; i < masks.size(); ++i) {
            if (masks[i] == current_[i])
                continue;
            sys.setWayMask(obs_[i].id, masks[i]);
            current_[i] = masks[i];
            ++remasks_;
            if (rec)
                obs::tracer().instant(
                    "napp.remask", "partition", sys.now() * 1e6,
                    {{"app", static_cast<double>(i)},
                     {"ways",
                      static_cast<double>(masks[i].count())}});
        }
    }

    std::uint64_t remasks() const { return remasks_; }

  private:
    Partitioner *part_;
    LfocPartitioner *lfoc_;
    NPolicy policy_;
    LfocConfig lfocCfg_;
    std::vector<AppObservation> obs_;
    unsigned every_;
    std::vector<WayMask> current_;
    std::vector<bool> seen_;
    std::vector<AppClass> lastClasses_;
    std::uint64_t fgWindows_ = 0;
    std::uint64_t remasks_ = 0;
    std::uint64_t seq_ = 0;
};

} // namespace

SystemConfig
nAppSystem(unsigned num_cores, unsigned llc_ways, std::uint64_t seed)
{
    capart_assert(num_cores >= 1 && llc_ways >= 2 && llc_ways <= 32);
    SystemConfig cfg;
    cfg.numCores = num_cores;
    cfg.seed = seed;
    // 128 KiB per way: 2048 sets at any associativity (power of two,
    // as the set-index mapping requires). Smaller than the paper's
    // 0.5 MB/way because N-app studies run the catalog at bench scales
    // (~0.04) — at 512 KiB/way every scaled working set fits in one
    // way and all miss curves go flat, erasing the very sensitivity
    // the UCP/LFOC policies exist to exploit.
    cfg.hierarchy.llc.sizeBytes = static_cast<std::uint64_t>(llc_ways) *
                                  kib(128);
    cfg.hierarchy.llc.ways = llc_ways;
    cfg.hierarchy.llc.partitionSlots = 64;
    return cfg;
}

MissCurve
profileMissCurve(const AppParams &params, const SystemConfig &system,
                 double scale, std::uint64_t max_accesses)
{
    // One representative thread of the (scaled) app replayed into the
    // exact LRU profiler. The seed is a fixed function of the system
    // seed only, so one app's curve does not depend on which slot of
    // which mix it appears in.
    const AppParams scaled = params.scaled(scale);
    ThreadWorkload thread(scaled, 0, 1, kAppAddressStride,
                          system.seed ^ 0x4e417070ULL /* "NApp" */);
    StackDistanceProfiler prof;
    std::vector<MemAccess> buf;
    Insts insts = 0;
    const Insts total_work = thread.totalWork();
    while (!thread.done() && prof.accesses() < max_accesses) {
        buf.clear();
        const double progress =
            total_work > 0
                ? static_cast<double>(thread.retired()) / total_work
                : 1.0;
        const Insts got =
            thread.runQuantum(system.quantumInsts, progress, buf);
        if (got == 0)
            break;
        insts += got;
        for (const MemAccess &a : buf) {
            if (!a.uncached)
                prof.access(a.addr / kLineBytes);
        }
    }

    MissCurve mc;
    mc.accesses = prof.accesses();
    mc.apki = insts > 0 ? 1000.0 * static_cast<double>(prof.accesses()) /
                              static_cast<double>(insts)
                        : 0.0;
    const std::uint64_t sets = system.hierarchy.llc.sets();
    const unsigned ways = system.hierarchy.llc.ways;
    std::vector<std::uint64_t> capacities;
    capacities.reserve(ways + 1);
    for (unsigned w = 0; w <= ways; ++w)
        capacities.push_back(static_cast<std::uint64_t>(w) * sets);
    const std::vector<double> ratios = prof.missRatios(capacities);
    mc.mpkiAtWays.reserve(ratios.size());
    for (const double r : ratios)
        mc.mpkiAtWays.push_back(r * mc.apki);
    return mc;
}

NAppRunResult
runNApp(const std::vector<NAppMember> &members, NPolicy policy,
        const NAppOptions &opts)
{
    capart_assert(!members.empty());
    const SystemConfig &cfg = opts.system;
    System sys(cfg);
    const unsigned total = sys.llcWays();

    // Pinning: disjoint whole cores in member order, both hyperthreads
    // of a core filled first — exactly runPair's discipline at N = 2.
    std::vector<AppId> ids;
    ids.reserve(members.size());
    unsigned core = 0;
    for (const NAppMember &m : members) {
        capart_assert(m.threads >= 1);
        ids.push_back(sys.addAppThreads(m.params.scaled(opts.scale), core,
                                        m.threads, m.continuous));
        core += (m.threads + cfg.htsPerCore - 1) / cfg.htsPerCore;
    }
    capart_assert(core <= cfg.numCores);

    std::vector<AppObservation> obs(members.size());
    const bool need_curves =
        policy == NPolicy::Ucp || policy == NPolicy::Lfoc;
    for (std::size_t i = 0; i < members.size(); ++i) {
        obs[i].id = ids[i];
        obs[i].latencySensitive = !members[i].continuous;
        if (!need_curves)
            continue;
        const MissCurve mc = profileMissCurve(
            members[i].params, cfg, opts.scale, opts.profileAccesses);
        obs[i].missCurve = mc.mpkiAtWays;
        obs[i].apki = mc.apki;
        // Pre-run MPKI estimate: the curve read at a fair share of the
        // ways (the controller replaces it with measured windows).
        const unsigned share = std::max<unsigned>(
            1, total / static_cast<unsigned>(members.size()));
        obs[i].mpki = obs[i].curveAt(std::min(share, total));
    }

    std::unique_ptr<Partitioner> part;
    std::unique_ptr<DynamicPartitioner> dyn;
    std::vector<WayMask> masks;
    switch (policy) {
      case NPolicy::Shared:
        part = std::make_unique<SharedPartitioner>();
        break;
      case NPolicy::Fair:
        part = std::make_unique<FairPartitioner>();
        break;
      case NPolicy::Biased:
        part = std::make_unique<BiasedPartitioner>(
            opts.biasedFgWays > 0 ? opts.biasedFgWays : total / 2);
        break;
      case NPolicy::Ucp:
        part = std::make_unique<UcpPartitioner>();
        break;
      case NPolicy::Lfoc:
        part = std::make_unique<LfocPartitioner>(opts.lfoc);
        break;
      case NPolicy::Dynamic: {
        DynamicPartitionerConfig dc = opts.dynamic;
        if (opts.autoScaleDynamic)
            dc.maxFgWays = total - 1;
        // The controller's starting allocation, installed statically so
        // a run with no windows still has the paper's initial split.
        masks.push_back(WayMask::range(0, dc.maxFgWays));
        for (std::size_t i = 1; i < members.size(); ++i)
            masks.push_back(
                WayMask::range(dc.maxFgWays, total - dc.maxFgWays));
        if (members.size() > 1) {
            dyn = std::make_unique<DynamicPartitioner>(
                ids[0], std::vector<AppId>(ids.begin() + 1, ids.end()),
                dc);
        }
        break;
      }
    }
    const bool rec = obs::enabled();
    journalNAppRunMarker(npolicyName(policy), members.size(), total);
    std::uint64_t seq = 0;
    if (part) {
        NPartitionInputs jin;
        if (rec) {
            jin.policy = policy;
            jin.totalWays = total;
            jin.apps = obs;
            jin.lfoc = opts.lfoc;
            if (policy == NPolicy::Biased)
                jin.biasedFgWays =
                    opts.biasedFgWays > 0 ? opts.biasedFgWays
                                          : total / 2;
            // A fresh LFOC carries no bounce state yet, so
            // lfocErrBefore stays empty.
        }
        std::chrono::steady_clock::time_point t0{};
        if (rec)
            t0 = std::chrono::steady_clock::now();
        {
            obs::TraceSpan span("napp.decide", "partition");
            masks = part->decide(obs, total);
        }
        if (rec) {
            recordDecideLatency(policy, t0);
            NPartitionDecision jout;
            jout.masks = masks;
            if (policy == NPolicy::Lfoc) {
                auto *lp = static_cast<LfocPartitioner *>(part.get());
                jout.classes = lp->lastClasses();
                jout.targets = lp->lastTargets();
                jout.errAfter = lp->bounceError();
            }
            journalNPartitionDecision(0.0, jin, jout, seq++, true);
        }
    } else if (rec && !masks.empty()) {
        // Dynamic: journal the initial static split so every policy's
        // starting allocation is replayable; the per-window control
        // decisions go through the Algorithm 6.2 decision journal.
        NPartitionInputs jin;
        jin.policy = policy;
        jin.totalWays = total;
        jin.apps = obs;
        jin.dynMaxFgWays = masks.front().count();
        NPartitionDecision jout;
        jout.masks = masks;
        journalNPartitionDecision(0.0, jin, jout, seq++, true);
    }
    capart_assert(masks.size() == members.size());

    // Installing an all-ways mask is a state no-op (the default), so
    // skip it — keeps the Shared path identical to the legacy runPair
    // call sequence, which never touches the mask registers.
    const WayMask everything = WayMask::all(total);
    for (std::size_t i = 0; i < masks.size(); ++i) {
        if (!(masks[i] == everything))
            sys.setWayMask(ids[i], masks[i]);
    }

    std::unique_ptr<NAppController> ctrl;
    if (dyn) {
        sys.setController(dyn.get());
    } else if (policy == NPolicy::Lfoc) {
        ctrl = std::make_unique<NAppController>(
            part.get(), static_cast<LfocPartitioner *>(part.get()),
            policy, opts.lfoc, obs, opts.decisionWindows, masks, seq);
        sys.setController(ctrl.get());
    }

    const RunResult run = sys.run();
    NAppRunResult res;
    res.policy = policy;
    res.apps.reserve(ids.size());
    for (const AppId id : ids)
        res.apps.push_back(run.app(id));
    res.fgTime = res.apps.front().completionTime;
    res.socketEnergy = run.socketEnergy;
    res.wallEnergy = run.wallEnergy;
    res.timedOut = run.timedOut;
    if (dyn)
        res.remasks = dyn->reallocations();
    else if (ctrl)
        res.remasks = ctrl->remasks();
    if (policy == NPolicy::Lfoc)
        res.lfocClasses =
            static_cast<LfocPartitioner *>(part.get())->lastClasses();
    return res;
}

NAppStudy::NAppStudy(std::vector<NAppMember> members,
                     NAppStudyOptions opts)
    : members_(std::move(members)), opts_(std::move(opts)),
      soloIps_(members_.size())
{
    capart_assert(!members_.empty());
}

double
NAppStudy::soloIps(std::size_t i)
{
    capart_assert(i < members_.size());
    if (!soloIps_[i]) {
        journalNAppRunMarker("solo", members_.size(),
                             opts_.run.system.hierarchy.llc.ways,
                             static_cast<double>(i));
        SoloOptions solo;
        solo.threads = members_[i].threads;
        solo.ways = opts_.run.system.hierarchy.llc.ways;
        solo.scale = opts_.run.scale;
        solo.system = opts_.run.system;
        const SoloResult r = runSolo(members_[i].params, solo);
        capart_assert(r.app.throughputIps > 0.0);
        soloIps_[i] = r.app.throughputIps;
    }
    return *soloIps_[i];
}

const NAppRunResult &
NAppStudy::runPolicy(NPolicy policy)
{
    const auto it = runs_.find(policy);
    if (it != runs_.end())
        return it->second;
    return runs_.emplace(policy, runNApp(members_, policy, opts_.run))
        .first->second;
}

NAppPolicySummary
NAppStudy::summarize(NPolicy policy)
{
    const NAppRunResult &run = runPolicy(policy);
    NAppPolicySummary s;
    s.policy = policy;
    s.timedOut = run.timedOut;
    s.remasks = run.remasks;
    s.socketEnergyJ = run.socketEnergy;
    s.wallEnergyJ = run.wallEnergy;

    std::vector<double> slowdowns;
    slowdowns.reserve(members_.size());
    for (std::size_t i = 0; i < members_.size(); ++i) {
        const double corun = run.apps[i].throughputIps;
        capart_assert(corun > 0.0);
        s.throughputIps += corun;
        slowdowns.push_back(soloIps(i) / corun);
    }
    s.stp = systemThroughput(slowdowns);
    s.unfairness = unfairness(slowdowns);
    s.worstSlowdown =
        *std::max_element(slowdowns.begin(), slowdowns.end());
    s.fgSlowdown = slowdowns.front();
    for (const double sd : slowdowns) {
        if (sd > opts_.sloSlowdown)
            ++s.sloBreaches;
    }
    return s;
}

} // namespace capart
