/**
 * @file
 * The paper's phase-detection algorithm (Algorithm 6.1).
 *
 * The detector watches the foreground application's LLC MPKI, sampled
 * once per monitoring window, and reports when the application enters a
 * new execution phase. Deviation from the running-average MPKI beyond
 * MPKI_THR1 starts a phase change; the change is considered finished
 * once the deviation falls back below MPKI_THR2.
 */

#ifndef CAPART_CORE_PHASE_DETECTOR_HH
#define CAPART_CORE_PHASE_DETECTOR_HH

#include <cstdint>

namespace capart
{

/** Detector outcomes, matching the pseudocode's return values. */
enum class PhaseEvent : int
{
    Stable = 0,      //!< inside a phase (new_phase == 0)
    InTransition = 1, //!< a phase change is still settling
    NewPhase = 2     //!< a phase change just started
};

/** Tunables of Algorithm 6.1. The paper's values (§6.3). */
struct PhaseDetectorConfig
{
    /** Relative MPKI deviation that starts a phase change (THR1). */
    double thr1 = 0.02;
    /** Relative MPKI deviation that ends a phase change (THR2). */
    double thr2 = 0.02;
    /** Floor for the relative-deviation denominator (MPKI units). */
    double minDenominator = 0.5;
};

/** Stateful implementation of Algorithm 6.1. */
class PhaseDetector
{
  public:
    explicit PhaseDetector(
        const PhaseDetectorConfig &cfg = PhaseDetectorConfig{})
        : cfg_(cfg)
    {
    }

    /**
     * Feed the MPKI of one completed monitoring window.
     * @return the detector event for this window.
     */
    PhaseEvent step(double current_mpki);

    /** Running-average MPKI of the current phase. */
    double avgMpki() const { return avg_; }

    bool inTransition() const { return newPhase_; }

    /** Number of NewPhase events reported so far. */
    std::uint64_t phaseChanges() const { return changes_; }

    void reset();

  private:
    double relativeDelta(double current) const;

    PhaseDetectorConfig cfg_;
    bool newPhase_ = false;
    bool haveAvg_ = false;
    double avg_ = 0.0;
    std::uint64_t samplesInPhase_ = 0;
    std::uint64_t changes_ = 0;
};

} // namespace capart

#endif // CAPART_CORE_PHASE_DETECTOR_HH
