#include "core/partitioner.hh"

#include <cassert>

namespace capart
{

const char *
npolicyName(NPolicy p)
{
    switch (p) {
      case NPolicy::Shared:
        return "shared";
      case NPolicy::Fair:
        return "fair";
      case NPolicy::Biased:
        return "biased";
      case NPolicy::Dynamic:
        return "dynamic";
      case NPolicy::Ucp:
        return "ucp";
      case NPolicy::Lfoc:
        return "lfoc";
    }
    return "?";
}

std::vector<WayMask>
fairMasks(std::size_t num_apps, unsigned total_ways)
{
    assert(num_apps > 0 && total_ways > 0);
    std::vector<WayMask> masks;
    masks.reserve(num_apps);
    if (num_apps <= total_ways) {
        // Contiguous chunks, remainder ways to the first apps. At
        // N = 2 / even ways this is exactly splitWays(total / 2):
        // app 0 low ways, app 1 high ways.
        const unsigned base = total_ways / static_cast<unsigned>(num_apps);
        const unsigned extra = total_ways % static_cast<unsigned>(num_apps);
        unsigned first = 0;
        for (std::size_t i = 0; i < num_apps; ++i) {
            const unsigned count = base + (i < extra ? 1 : 0);
            masks.push_back(WayMask::range(first, count));
            first += count;
        }
    } else {
        // More apps than ways: single-way partitions shared by
        // neighbouring apps. floor(i * W / N) hits every way when
        // N >= W, so coverage holds and every mask is non-empty.
        for (std::size_t i = 0; i < num_apps; ++i) {
            const unsigned way = static_cast<unsigned>(
                i * total_ways / num_apps);
            masks.push_back(WayMask::range(way, 1));
        }
    }
    return masks;
}

std::vector<WayMask>
SharedPartitioner::decide(const std::vector<AppObservation> &apps,
                          unsigned total_ways)
{
    return std::vector<WayMask>(apps.size(), WayMask::all(total_ways));
}

std::vector<WayMask>
FairPartitioner::decide(const std::vector<AppObservation> &apps,
                        unsigned total_ways)
{
    return fairMasks(apps.size(), total_ways);
}

BiasedPartitioner::BiasedPartitioner(unsigned fg_ways) : fgWays_(fg_ways)
{
    assert(fg_ways > 0);
}

std::vector<WayMask>
BiasedPartitioner::decide(const std::vector<AppObservation> &apps,
                          unsigned total_ways)
{
    // Alone there is nothing to bias against: the app takes the whole
    // cache (anything less would strand the uncovered ways).
    if (apps.size() == 1)
        return {WayMask::all(total_ways)};
    // Clamp so the co-runners keep at least one way between them.
    const unsigned fg =
        fgWays_ >= total_ways ? total_ways - 1 : fgWays_;
    std::vector<WayMask> masks;
    masks.reserve(apps.size());
    masks.push_back(WayMask::range(0, fg));
    // Complement split fairly among the co-runners, shifted up past
    // the foreground allocation. At N = 2 the single co-runner gets
    // the whole complement — exactly splitWays(fg, total).bg.
    const auto rest = fairMasks(apps.size() - 1, total_ways - fg);
    for (const WayMask &m : rest)
        masks.push_back(WayMask(m.bits() << fg));
    return masks;
}

} // namespace capart
