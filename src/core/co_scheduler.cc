#include "core/co_scheduler.hh"

#include "common/logging.hh"

namespace capart
{

CoScheduler::CoScheduler(const AppParams &fg, const AppParams &bg,
                         const CoScheduleOptions &opts)
    : fg_(fg), bg_(bg), opts_(opts)
{
    capart_assert(opts_.threadsEach >= 1);
}

PairOptions
CoScheduler::basePairOptions(bool bg_continuous) const
{
    PairOptions pair;
    pair.fgThreads = opts_.threadsEach;
    pair.bgThreads = opts_.threadsEach;
    pair.bgContinuous = bg_continuous;
    pair.scale = opts_.scale;
    pair.system = opts_.system;
    return pair;
}

const SoloResult &
CoScheduler::fgSoloHalf()
{
    if (!fgSoloHalf_) {
        SoloOptions solo;
        solo.threads = opts_.threadsEach;
        solo.scale = opts_.scale;
        solo.system = opts_.system;
        fgSoloHalf_ = runSolo(fg_, solo);
    }
    return *fgSoloHalf_;
}

const SoloResult &
CoScheduler::fgSoloFull()
{
    if (!fgSoloFull_) {
        SoloOptions solo;
        solo.threads = opts_.system.numHts();
        solo.scale = opts_.scale;
        solo.system = opts_.system;
        fgSoloFull_ = runSolo(fg_, solo);
    }
    return *fgSoloFull_;
}

const SoloResult &
CoScheduler::bgSoloFull()
{
    if (!bgSoloFull_) {
        SoloOptions solo;
        solo.threads = opts_.system.numHts();
        solo.scale = opts_.scale;
        solo.system = opts_.system;
        bgSoloFull_ = runSolo(bg_, solo);
    }
    return *bgSoloFull_;
}

const BiasedSearchResult &
CoScheduler::biased()
{
    if (!biased_) {
        BiasedSearchOptions search;
        search.pair = basePairOptions(true);
        search.tolerance = opts_.biasedTolerance;
        biased_ = findBiasedPartition(fg_, bg_, search);
    }
    return *biased_;
}

const PairResult &
CoScheduler::runPolicy(Policy policy, bool bg_continuous)
{
    const auto key = std::make_pair(policy, bg_continuous);
    const auto it = pairRuns_.find(key);
    if (it != pairRuns_.end())
        return it->second;

    PairOptions pair = basePairOptions(bg_continuous);
    const unsigned total = opts_.system.hierarchy.llc.ways;

    switch (policy) {
      case Policy::Shared:
        // Leave both masks at "all ways".
        break;
      case Policy::Fair: {
        const SplitMasks m = policyMasks(Policy::Fair, total);
        pair.fgMask = m.fg;
        pair.bgMask = m.bg;
        break;
      }
      case Policy::Biased: {
        const BiasedSearchResult &b = biased();
        pair.fgMask = b.masks.fg;
        pair.bgMask = b.masks.bg;
        break;
      }
      case Policy::Dynamic: {
        const SplitMasks m = policyMasks(Policy::Dynamic, total);
        pair.fgMask = m.fg;
        pair.bgMask = m.bg;
        dynCtrl_ = std::make_unique<DynamicPartitioner>(
            AppId{0}, std::vector<AppId>{1}, opts_.dynamic);
        pair.controller = dynCtrl_.get();
        break;
      }
    }

    if (opts_.monitorSlo && bg_continuous) {
        // Wrap whatever controller the policy chose (possibly none) so
        // the monitor sees every foreground window. The wrapper only
        // observes and then delegates unchanged, so the run's results
        // do not depend on it.
        sloMonitor_ = std::make_unique<SloMonitor>(opts_.slo);
        sloMonitor_->setBaseline(fgSoloHalf().app.throughputIps);
        sloCtrl_ = std::make_unique<SloController>(AppId{0},
                                                   sloMonitor_.get(),
                                                   pair.controller);
        pair.controller = sloCtrl_.get();
    }

    return pairRuns_.emplace(key, runPair(fg_, bg_, pair)).first->second;
}

ConsolidationSummary
CoScheduler::summarize(Policy policy)
{
    ConsolidationSummary s;
    s.policy = policy;

    // Responsiveness and throughput: continuous background (§5.1, §6.4).
    const PairResult &cont = runPolicy(policy, true);
    const Seconds solo_half = fgSoloHalf().time;
    capart_assert(solo_half > 0.0);
    s.fgSlowdown = cont.fgTime / solo_half;
    s.bgThroughput = cont.bgThroughput;

    // Energy and weighted speedup: run each app once (Figs. 10, 11).
    const PairResult &once = runPolicy(policy, false);
    const Seconds seq_time = fgSoloFull().time + bgSoloFull().time;
    const Joules seq_socket =
        fgSoloFull().socketEnergy + bgSoloFull().socketEnergy;
    const Joules seq_wall =
        fgSoloFull().wallEnergy + bgSoloFull().wallEnergy;
    const Seconds makespan =
        std::max(once.fg.completionTime, once.bg.completionTime);
    capart_assert(makespan > 0.0);
    s.energyVsSequential = once.socketEnergy / seq_socket;
    s.wallEnergyVsSequential = once.wallEnergy / seq_wall;
    s.weightedSpeedup = seq_time / makespan;

    switch (policy) {
      case Policy::Shared:
        s.fgWays = opts_.system.hierarchy.llc.ways;
        break;
      case Policy::Fair:
        s.fgWays = opts_.system.hierarchy.llc.ways / 2;
        break;
      case Policy::Biased:
        s.fgWays = biased().fgWays;
        break;
      case Policy::Dynamic:
        s.fgWays = dynCtrl_ ? dynCtrl_->fgWays() : 0;
        break;
    }
    return s;
}

} // namespace capart
