#include "core/phase_detector.hh"

#include <cmath>

#include "obs/metrics.hh"

namespace capart
{

double
PhaseDetector::relativeDelta(double current) const
{
    const double denom =
        avg_ > cfg_.minDenominator ? avg_ : cfg_.minDenominator;
    return std::abs(avg_ - current) / denom;
}

PhaseEvent
PhaseDetector::step(double current_mpki)
{
    if (obs::enabled()) {
        // Cached references: the registry lookup runs once, increments
        // are single relaxed atomic adds (see obs/metrics.hh).
        static obs::Counter &samples =
            obs::metrics().counter("phase_detector.samples");
        samples.inc();
    }
    if (!haveAvg_) {
        // First sample bootstraps the phase average.
        haveAvg_ = true;
        avg_ = current_mpki;
        samplesInPhase_ = 1;
        return PhaseEvent::Stable;
    }

    if (!newPhase_) {
        if (relativeDelta(current_mpki) > cfg_.thr1) {
            newPhase_ = true;
            ++changes_;
            if (obs::enabled()) {
                static obs::Counter &phases =
                    obs::metrics().counter("phase_detector.changes");
                phases.inc();
            }
            // The new phase's average restarts from the new level.
            avg_ = current_mpki;
            samplesInPhase_ = 1;
            return PhaseEvent::NewPhase;
        }
        // Stable: fold the sample into the phase average.
        ++samplesInPhase_;
        avg_ += (current_mpki - avg_) /
                static_cast<double>(samplesInPhase_);
        return PhaseEvent::Stable;
    }

    // In transition: wait for the MPKI to settle around the new level.
    if (relativeDelta(current_mpki) < cfg_.thr2) {
        newPhase_ = false;
        ++samplesInPhase_;
        avg_ += (current_mpki - avg_) /
                static_cast<double>(samplesInPhase_);
        return PhaseEvent::Stable;
    }
    // Still moving: track the level so a drawn-out ramp converges.
    avg_ = current_mpki;
    samplesInPhase_ = 1;
    return PhaseEvent::InTransition;
}

void
PhaseDetector::reset()
{
    newPhase_ = false;
    haveAvg_ = false;
    avg_ = 0.0;
    samplesInPhase_ = 0;
    changes_ = 0;
}

} // namespace capart
