#include "core/lfoc.hh"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace capart
{

const char *
appClassName(AppClass c)
{
    switch (c) {
      case AppClass::Light:
        return "light";
      case AppClass::Streaming:
        return "streaming";
      case AppClass::Sensitive:
        return "sensitive";
    }
    return "?";
}

AppClass
lfocClassify(const AppObservation &app, unsigned total_ways,
             const LfocConfig &cfg)
{
    if (app.missCurve.empty())
        return app.mpki < cfg.lightMpki ? AppClass::Light
                                        : AppClass::Sensitive;
    const double floor = app.curveAt(total_ways);
    if (floor < cfg.lightMpki)
        return AppClass::Light;
    const double one_way = app.curveAt(1);
    if (one_way <= 0.0)
        return AppClass::Streaming; // heavy floor, no gain from capacity
    const double gain = (one_way - floor) / one_way;
    return gain < cfg.flatCurveGain ? AppClass::Streaming
                                    : AppClass::Sensitive;
}

LfocPartitioner::LfocPartitioner(LfocConfig cfg) : cfg_(cfg)
{
    assert(cfg_.lightWays >= 1 && cfg_.streamWays >= 1);
    assert(cfg_.lightMpki >= 0.0);
    assert(cfg_.flatCurveGain > 0.0 && cfg_.flatCurveGain < 1.0);
}

std::vector<WayMask>
LfocPartitioner::decide(const std::vector<AppObservation> &apps,
                        unsigned total_ways)
{
    const std::size_t n = apps.size();
    assert(n > 0 && total_ways > 0);
    if (err_.size() != n)
        err_.assign(n, 0.0);
    classes_.resize(n);
    targets_.assign(n, 0.0);

    std::vector<std::size_t> sens, light, stream;
    for (std::size_t i = 0; i < n; ++i) {
        classes_[i] = lfocClassify(apps[i], total_ways, cfg_);
        switch (classes_[i]) {
          case AppClass::Light:
            light.push_back(i);
            break;
          case AppClass::Streaming:
            stream.push_back(i);
            break;
          case AppClass::Sensitive:
            sens.push_back(i);
            break;
        }
        // Only sensitive apps bounce; a reclassified app restarts its
        // accumulator from zero rather than inheriting stale error.
        if (classes_[i] != AppClass::Sensitive)
            err_[i] = 0.0;
    }

    const auto fallback = [&] {
        auto masks = fairMasks(n, total_ways);
        for (std::size_t i = 0; i < n; ++i) {
            targets_[i] = masks[i].count();
            err_[i] = 0.0;
        }
        return masks;
    };
    if (n > total_ways)
        return fallback();

    // Cluster reservations: shrink both clusters to one way apiece if
    // the sensitive apps would otherwise starve, and hand the whole
    // sensitive budget to a cluster when no app is sensitive.
    unsigned light_w = light.empty() ? 0 : cfg_.lightWays;
    unsigned stream_w = stream.empty() ? 0 : cfg_.streamWays;
    const auto sens_budget = [&] {
        return static_cast<long>(total_ways) - light_w - stream_w;
    };
    if (!sens.empty() &&
        sens_budget() < static_cast<long>(sens.size())) {
        light_w = light.empty() ? 0 : 1;
        stream_w = stream.empty() ? 0 : 1;
        if (sens_budget() < static_cast<long>(sens.size()))
            return fallback();
    }
    if (sens.empty()) {
        if (!light.empty())
            light_w = total_ways - stream_w;
        else
            stream_w = total_ways;
    }
    const unsigned sens_w = static_cast<unsigned>(sens_budget());

    // Fractional targets: one guaranteed way each, plus the surplus in
    // proportion to achievable miss savings (MPKI stands in when no
    // curve was profiled; all-zero weights degrade to an even split).
    std::vector<double> weight(sens.size(), 0.0);
    double weight_sum = 0.0;
    for (std::size_t j = 0; j < sens.size(); ++j) {
        const AppObservation &a = apps[sens[j]];
        weight[j] = a.missCurve.empty()
                        ? a.mpki
                        : std::max(a.curveAt(1) - a.curveAt(total_ways),
                                   0.0);
        weight_sum += weight[j];
    }
    const double surplus = sens_w - static_cast<double>(sens.size());
    std::vector<double> target(sens.size(), 0.0);
    for (std::size_t j = 0; j < sens.size(); ++j) {
        const double share = weight_sum > 0.0
                                 ? weight[j] / weight_sum
                                 : 1.0 / sens.size();
        target[j] = 1.0 + surplus * share;
        targets_[sens[j]] = target[j];
    }

    // Bounce: largest-remainder rounding with a persistent per-app
    // error accumulator. Each window grants floor(target) ways plus
    // one extra to the apps whose carried error is largest, so the
    // time-averaged allocation converges on the fractional target
    // while every single window still sums to exactly sens_w.
    std::vector<unsigned> grant(sens.size(), 0);
    long granted = 0;
    std::vector<double> score(sens.size(), 0.0);
    for (std::size_t j = 0; j < sens.size(); ++j) {
        grant[j] = static_cast<unsigned>(target[j]);
        score[j] = err_[sens[j]] + (target[j] - grant[j]);
        granted += grant[j];
    }
    long extras = static_cast<long>(sens_w) - granted;
    std::vector<std::size_t> order(sens.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return score[a] > score[b];
                     });
    for (const std::size_t j : order) {
        const bool extra = extras > 0;
        if (extra) {
            grant[j] += 1;
            --extras;
        }
        err_[sens[j]] = score[j] - (extra ? 1.0 : 0.0);
    }

    // Layout: dedicated sensitive ranges first (input order), then the
    // shared light slice, then the streaming isolation slice.
    std::vector<WayMask> masks(n);
    unsigned cursor = 0;
    for (std::size_t j = 0; j < sens.size(); ++j) {
        masks[sens[j]] = WayMask::range(cursor, grant[j]);
        cursor += grant[j];
    }
    if (!light.empty()) {
        const WayMask slice = WayMask::range(cursor, light_w);
        cursor += light_w;
        for (const std::size_t i : light) {
            masks[i] = slice;
            targets_[i] = light_w;
        }
    }
    if (!stream.empty()) {
        const WayMask slice = WayMask::range(cursor, stream_w);
        cursor += stream_w;
        for (const std::size_t i : stream) {
            masks[i] = slice;
            targets_[i] = stream_w;
        }
    }
    assert(cursor == total_ways);
    return masks;
}

} // namespace capart
