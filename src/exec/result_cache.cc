#include "exec/result_cache.hh"

#include <cinttypes>
#include <cmath>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace capart::exec
{
namespace
{

// v2 appends a per-line FNV-1a checksum (`c=<16 hex>`): a torn,
// bit-flipped, or hand-mangled line fails verification and is
// recomputed instead of poisoning a sweep. v3 extends each record with
// the six NAppPolicyOutcome blocks. v1/v2 files lack fields and are
// ignored wholesale (recompute beats wrong reuse).
constexpr const char *kHeader = "# capart-sweep-cache v3";

std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** One corrupt line / file seen: log-free counting (the caller warns). */
void
countCorrupt()
{
    if (obs::enabled())
        obs::metrics().counter("cache.corrupt").inc();
}

/** Every stored double must be finite: a NaN/Inf entry is corruption
 *  (no simulation result is legitimately non-finite) and returning it
 *  would poison averages silently. */
bool
allFinite(const SweepResult &r)
{
    const double flat[] = {r.time,  r.socketEnergy, r.wallEnergy, r.mpki,
                           r.apki, r.ipc,          r.bgThroughput};
    for (const double v : flat) {
        if (!std::isfinite(v))
            return false;
    }
    for (const PolicyOutcome &p : r.policy) {
        const double pv[] = {p.fgSlowdown, p.bgThroughput,
                             p.energyVsSequential,
                             p.wallEnergyVsSequential, p.weightedSpeedup};
        for (const double v : pv) {
            if (!std::isfinite(v))
                return false;
        }
    }
    for (const NAppPolicyOutcome &p : r.napp) {
        const double pv[] = {p.stp,        p.throughputIps,
                             p.unfairness, p.fgSlowdown,
                             p.socketEnergyJ, p.wallEnergyJ};
        for (const double v : pv) {
            if (!std::isfinite(v))
                return false;
        }
    }
    return true;
}

} // namespace

std::string
ResultCache::encode(const SweepResult &res)
{
    std::string s;
    s += hexDouble(res.time);
    s += ' ';
    s += hexDouble(res.socketEnergy);
    s += ' ';
    s += hexDouble(res.wallEnergy);
    s += ' ';
    s += hexDouble(res.mpki);
    s += ' ';
    s += hexDouble(res.apki);
    s += ' ';
    s += hexDouble(res.ipc);
    s += ' ';
    s += hexDouble(res.bgThroughput);
    s += ' ';
    s += res.timedOut ? '1' : '0';
    for (const PolicyOutcome &p : res.policy) {
        s += ' ';
        s += p.present ? '1' : '0';
        s += ' ';
        s += hexDouble(p.fgSlowdown);
        s += ' ';
        s += hexDouble(p.bgThroughput);
        s += ' ';
        s += hexDouble(p.energyVsSequential);
        s += ' ';
        s += hexDouble(p.wallEnergyVsSequential);
        s += ' ';
        s += hexDouble(p.weightedSpeedup);
        s += ' ';
        s += std::to_string(p.fgWays);
    }
    for (const NAppPolicyOutcome &p : res.napp) {
        s += ' ';
        s += p.present ? '1' : '0';
        s += ' ';
        s += hexDouble(p.stp);
        s += ' ';
        s += hexDouble(p.throughputIps);
        s += ' ';
        s += hexDouble(p.unfairness);
        s += ' ';
        s += hexDouble(p.fgSlowdown);
        s += ' ';
        s += hexDouble(p.socketEnergyJ);
        s += ' ';
        s += hexDouble(p.wallEnergyJ);
        s += ' ';
        s += std::to_string(p.sloBreaches);
        s += ' ';
        s += std::to_string(p.remasks);
    }
    return s;
}

bool
ResultCache::decode(const std::string &body, SweepResult *out)
{
    // Tokenize, then parse doubles with strtod: stream extraction of
    // hexfloat is implementation-defined, strtod is guaranteed.
    std::istringstream in(body);
    std::string tok;
    const auto next_double = [&](double *v) {
        if (!(in >> tok))
            return false;
        char *end = nullptr;
        *v = std::strtod(tok.c_str(), &end);
        return end != tok.c_str() && *end == '\0';
    };
    const auto next_uint = [&](unsigned *v) {
        unsigned long parsed = 0;
        if (!(in >> tok))
            return false;
        char *end = nullptr;
        parsed = std::strtoul(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0')
            return false;
        *v = static_cast<unsigned>(parsed);
        return true;
    };

    SweepResult r;
    unsigned timed_out = 0;
    if (!next_double(&r.time) || !next_double(&r.socketEnergy) ||
        !next_double(&r.wallEnergy) || !next_double(&r.mpki) ||
        !next_double(&r.apki) || !next_double(&r.ipc) ||
        !next_double(&r.bgThroughput) || !next_uint(&timed_out))
        return false;
    r.timedOut = timed_out != 0;
    for (PolicyOutcome &p : r.policy) {
        unsigned present = 0;
        if (!next_uint(&present) || !next_double(&p.fgSlowdown) ||
            !next_double(&p.bgThroughput) ||
            !next_double(&p.energyVsSequential) ||
            !next_double(&p.wallEnergyVsSequential) ||
            !next_double(&p.weightedSpeedup) || !next_uint(&p.fgWays))
            return false;
        p.present = present != 0;
    }
    for (NAppPolicyOutcome &p : r.napp) {
        unsigned present = 0;
        if (!next_uint(&present) || !next_double(&p.stp) ||
            !next_double(&p.throughputIps) ||
            !next_double(&p.unfairness) || !next_double(&p.fgSlowdown) ||
            !next_double(&p.socketEnergyJ) ||
            !next_double(&p.wallEnergyJ) ||
            !next_uint(&p.sloBreaches) || !next_uint(&p.remasks))
            return false;
        p.present = present != 0;
    }
    if (in >> tok)
        return false; // trailing junk after a full record
    if (!allFinite(r))
        return false;
    r.fromCache = true;
    *out = r;
    return true;
}

std::string
ResultCache::checksumLine(const std::string &keyed_body)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "c=%016" PRIx64, fnv1a64(keyed_body));
    return keyed_body + ' ' + buf;
}

bool
ResultCache::verifyLine(const std::string &line, std::string *keyed_body)
{
    const std::size_t sep = line.rfind(" c=");
    if (sep == std::string::npos || line.size() - sep != 3 + 16)
        return false;
    const std::string body = line.substr(0, sep);
    std::uint64_t stored = 0;
    if (std::sscanf(line.c_str() + sep + 3, "%16" SCNx64, &stored) != 1)
        return false;
    if (stored != fnv1a64(body))
        return false;
    *keyed_body = body;
    return true;
}

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    if (!std::getline(in, line) || line != kHeader) {
        capart_warn("ignoring incompatible sweep cache " << path_);
        countCorrupt();
        return;
    }
    fileCompatible_ = true;
    std::uint64_t bad = 0;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        // Verify the whole line's checksum before believing one byte
        // of it; then split off the key and decode the body. Any
        // failure skips the line — the point simply recomputes.
        std::string keyed_body;
        if (!verifyLine(line, &keyed_body)) {
            ++bad;
            countCorrupt();
            continue;
        }
        const std::size_t sep = keyed_body.find(' ');
        if (sep == std::string::npos) {
            ++bad;
            countCorrupt();
            continue;
        }
        std::uint64_t key = 0;
        if (std::sscanf(keyed_body.c_str(), "%" SCNx64, &key) != 1) {
            ++bad;
            countCorrupt();
            continue;
        }
        SweepResult res;
        if (!decode(keyed_body.substr(sep + 1), &res)) {
            ++bad;
            countCorrupt();
            continue;
        }
        entries_[key] = res; // duplicate keys: last write wins
    }
    if (bad > 0) {
        capart_warn("sweep cache " << path_ << ": skipped " << bad
                                   << " corrupt line(s); those points "
                                      "will recompute");
    }
}

void
ResultCache::initializeFile(const std::string &path)
{
    {
        std::ifstream in(path);
        std::string line;
        if (in && std::getline(in, line) && line == kHeader)
            return;
    }
    std::ofstream out(path, std::ios::trunc);
    if (out)
        out << kHeader << '\n';
    else
        capart_warn("cannot initialize sweep cache " << path);
}

bool
ResultCache::lookup(std::uint64_t key, SweepResult *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    out->fromCache = true;
    return true;
}

void
ResultCache::store(std::uint64_t key, const SweepResult &res)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key] = res;

    const bool append = fileCompatible_;
    std::ofstream out(path_, append ? std::ios::app : std::ios::trunc);
    if (!out) {
        capart_warn("cannot write sweep cache " << path_);
        return;
    }
    char keybuf[20];
    if (!append) {
        out << kHeader << '\n';
        fileCompatible_ = true;
        // Rewrite everything we know (covers the foreign-file case).
        for (const auto &[k, v] : entries_) {
            std::snprintf(keybuf, sizeof(keybuf), "%016" PRIx64, k);
            out << checksumLine(std::string(keybuf) + ' ' + encode(v))
                << '\n';
        }
        out.flush();
        return;
    }
    std::snprintf(keybuf, sizeof(keybuf), "%016" PRIx64, key);
    out << checksumLine(std::string(keybuf) + ' ' + encode(res)) << '\n';
    out.flush();
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace capart::exec
