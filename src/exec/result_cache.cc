#include "exec/result_cache.hh"

#include <cinttypes>
#include <cstdlib>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace capart::exec
{
namespace
{

constexpr const char *kHeader = "# capart-sweep-cache v1";

std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

} // namespace

std::string
ResultCache::encode(const SweepResult &res)
{
    std::string s;
    s += hexDouble(res.time);
    s += ' ';
    s += hexDouble(res.socketEnergy);
    s += ' ';
    s += hexDouble(res.wallEnergy);
    s += ' ';
    s += hexDouble(res.mpki);
    s += ' ';
    s += hexDouble(res.apki);
    s += ' ';
    s += hexDouble(res.ipc);
    s += ' ';
    s += hexDouble(res.bgThroughput);
    s += ' ';
    s += res.timedOut ? '1' : '0';
    for (const PolicyOutcome &p : res.policy) {
        s += ' ';
        s += p.present ? '1' : '0';
        s += ' ';
        s += hexDouble(p.fgSlowdown);
        s += ' ';
        s += hexDouble(p.bgThroughput);
        s += ' ';
        s += hexDouble(p.energyVsSequential);
        s += ' ';
        s += hexDouble(p.wallEnergyVsSequential);
        s += ' ';
        s += hexDouble(p.weightedSpeedup);
        s += ' ';
        s += std::to_string(p.fgWays);
    }
    return s;
}

bool
ResultCache::decode(const std::string &body, SweepResult *out)
{
    // Tokenize, then parse doubles with strtod: stream extraction of
    // hexfloat is implementation-defined, strtod is guaranteed.
    std::istringstream in(body);
    std::string tok;
    const auto next_double = [&](double *v) {
        if (!(in >> tok))
            return false;
        char *end = nullptr;
        *v = std::strtod(tok.c_str(), &end);
        return end != tok.c_str() && *end == '\0';
    };
    const auto next_uint = [&](unsigned *v) {
        unsigned long parsed = 0;
        if (!(in >> tok))
            return false;
        char *end = nullptr;
        parsed = std::strtoul(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0')
            return false;
        *v = static_cast<unsigned>(parsed);
        return true;
    };

    SweepResult r;
    unsigned timed_out = 0;
    if (!next_double(&r.time) || !next_double(&r.socketEnergy) ||
        !next_double(&r.wallEnergy) || !next_double(&r.mpki) ||
        !next_double(&r.apki) || !next_double(&r.ipc) ||
        !next_double(&r.bgThroughput) || !next_uint(&timed_out))
        return false;
    r.timedOut = timed_out != 0;
    for (PolicyOutcome &p : r.policy) {
        unsigned present = 0;
        if (!next_uint(&present) || !next_double(&p.fgSlowdown) ||
            !next_double(&p.bgThroughput) ||
            !next_double(&p.energyVsSequential) ||
            !next_double(&p.wallEnergyVsSequential) ||
            !next_double(&p.weightedSpeedup) || !next_uint(&p.fgWays))
            return false;
        p.present = present != 0;
    }
    r.fromCache = true;
    *out = r;
    return true;
}

ResultCache::ResultCache(std::string path) : path_(std::move(path))
{
    std::ifstream in(path_);
    if (!in)
        return;
    std::string line;
    if (!std::getline(in, line) || line != kHeader) {
        capart_warn("ignoring incompatible sweep cache " << path_);
        return;
    }
    fileCompatible_ = true;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sep = line.find(' ');
        if (sep == std::string::npos)
            continue;
        std::uint64_t key = 0;
        if (std::sscanf(line.c_str(), "%" SCNx64, &key) != 1)
            continue;
        SweepResult res;
        // Tolerate truncated final lines from an interrupted run.
        if (decode(line.substr(sep + 1), &res))
            entries_.emplace(key, res);
    }
}

bool
ResultCache::lookup(std::uint64_t key, SweepResult *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = it->second;
    out->fromCache = true;
    return true;
}

void
ResultCache::store(std::uint64_t key, const SweepResult &res)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_[key] = res;

    const bool append = fileCompatible_;
    std::ofstream out(path_, append ? std::ios::app : std::ios::trunc);
    if (!out) {
        capart_warn("cannot write sweep cache " << path_);
        return;
    }
    if (!append) {
        out << kHeader << '\n';
        fileCompatible_ = true;
        // Rewrite everything we know (covers the foreign-file case).
        for (const auto &[k, v] : entries_) {
            char keybuf[20];
            std::snprintf(keybuf, sizeof(keybuf), "%016" PRIx64, k);
            out << keybuf << ' ' << encode(v) << '\n';
        }
        out.flush();
        return;
    }
    char keybuf[20];
    std::snprintf(keybuf, sizeof(keybuf), "%016" PRIx64, key);
    out << keybuf << ' ' << encode(res) << '\n';
    out.flush();
}

std::size_t
ResultCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

} // namespace capart::exec
