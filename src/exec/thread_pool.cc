#include "exec/thread_pool.hh"

#include "common/logging.hh"

namespace capart::exec
{

ThreadPool::ThreadPool(unsigned workers)
{
    if (workers == 0) {
        workers = std::thread::hardware_concurrency();
        if (workers == 0)
            workers = 1;
    }
    queues_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    try {
        wait();
    } catch (...) {
        // A task failed after the owner stopped listening; dropping the
        // exception here is the least-bad option during unwinding.
    }
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
        stop_ = true;
    }
    idleCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(Task task)
{
    capart_assert(task);
    {
        std::lock_guard<std::mutex> done(doneMutex_);
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> idle(idleMutex_);
        WorkerQueue &q = *queues_[nextQueue_];
        nextQueue_ = (nextQueue_ + 1) % queues_.size();
        std::lock_guard<std::mutex> qlock(q.mutex);
        q.tasks.push_back(std::move(task));
    }
    idleCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(doneMutex_);
    doneCv_.wait(lock, [this] { return pending_ == 0; });
    if (firstError_) {
        std::exception_ptr err = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(err);
    }
}

ThreadPool::Task
ThreadPool::takeTask(std::size_t self)
{
    // Own queue first, newest-first: the task most likely still warm.
    {
        WorkerQueue &mine = *queues_[self];
        std::lock_guard<std::mutex> lock(mine.mutex);
        if (!mine.tasks.empty()) {
            Task t = std::move(mine.tasks.back());
            mine.tasks.pop_back();
            return t;
        }
    }
    // Steal oldest-first from siblings, scanning from our right
    // neighbour so victims spread instead of all hitting queue 0.
    for (std::size_t off = 1; off < queues_.size(); ++off) {
        WorkerQueue &victim = *queues_[(self + off) % queues_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            Task t = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            return t;
        }
    }
    return Task{};
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        Task task = takeTask(self);
        if (!task) {
            std::unique_lock<std::mutex> idle(idleMutex_);
            if (stop_)
                return;
            // Re-check under the idle lock: a submit may have raced us.
            idleCv_.wait(idle, [this, self] {
                if (stop_)
                    return true;
                for (std::size_t off = 0; off < queues_.size(); ++off) {
                    WorkerQueue &q = *queues_[(self + off) %
                                              queues_.size()];
                    std::lock_guard<std::mutex> lock(q.mutex);
                    if (!q.tasks.empty())
                        return true;
                }
                return false;
            });
            continue;
        }

        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(doneMutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(doneMutex_);
            --pending_;
            if (pending_ == 0)
                doneCv_.notify_all();
        }
    }
}

} // namespace capart::exec
