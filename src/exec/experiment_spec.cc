#include "exec/experiment_spec.hh"

#include <cstdio>

namespace capart::exec
{
namespace
{

const char *
kindName(SpecKind k)
{
    switch (k) {
      case SpecKind::Solo:
        return "solo";
      case SpecKind::Pair:
        return "pair";
      case SpecKind::Consolidation:
        return "consol";
    }
    return "?";
}

/** Exact, locale-free double encoding (hexfloat). */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

} // namespace

std::string
ExperimentSpec::canonical() const
{
    std::string s = "capart-spec-v1";
    s += "|kind=";
    s += kindName(kind);
    s += "|fg=" + fg;
    s += "|bg=" + bg;
    s += "|threads=" + std::to_string(threads);
    s += "|ways=" + std::to_string(ways);
    s += "|prefetch=" + std::string(prefetchAll ? "1" : "0");
    s += "|bgcont=" + std::string(bgContinuous ? "1" : "0");
    s += "|fgmask=" + std::to_string(fgMaskWays);
    s += "|policies=" + std::to_string(policies);
    s += "|scale=" + hexDouble(scale);
    s += "|window=" + hexDouble(perfWindow);
    return s;
}

std::uint64_t
ExperimentSpec::hash() const
{
    // FNV-1a 64-bit over the canonical encoding.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : canonical()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ExperimentSpec
soloSpec(const std::string &app, unsigned threads, unsigned ways,
         double scale, bool prefetch_all)
{
    ExperimentSpec s;
    s.kind = SpecKind::Solo;
    s.fg = app;
    s.threads = threads;
    s.ways = ways;
    s.prefetchAll = prefetch_all;
    s.scale = scale;
    return s;
}

ExperimentSpec
pairSpec(const std::string &fg, const std::string &bg, double scale,
         unsigned fg_mask_ways, bool bg_continuous)
{
    ExperimentSpec s;
    s.kind = SpecKind::Pair;
    s.fg = fg;
    s.bg = bg;
    s.fgMaskWays = fg_mask_ways;
    s.bgContinuous = bg_continuous;
    s.scale = scale;
    return s;
}

ExperimentSpec
consolidationSpec(const std::string &fg, const std::string &bg,
                  unsigned policies, double scale, double perf_window)
{
    ExperimentSpec s;
    s.kind = SpecKind::Consolidation;
    s.fg = fg;
    s.bg = bg;
    s.policies = policies;
    s.scale = scale;
    s.perfWindow = perf_window;
    return s;
}

} // namespace capart::exec
