#include "exec/experiment_spec.hh"

#include <cstdio>

namespace capart::exec
{
namespace
{

const char *
kindName(SpecKind k)
{
    switch (k) {
      case SpecKind::Solo:
        return "solo";
      case SpecKind::Pair:
        return "pair";
      case SpecKind::Consolidation:
        return "consol";
      case SpecKind::NApp:
        return "napp";
    }
    return "?";
}

/** Exact, locale-free double encoding (hexfloat). */
std::string
hexDouble(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

} // namespace

std::string
ExperimentSpec::canonical() const
{
    std::string s = "capart-spec-v1";
    s += "|kind=";
    s += kindName(kind);
    s += "|fg=" + fg;
    s += "|bg=" + bg;
    s += "|threads=" + std::to_string(threads);
    s += "|ways=" + std::to_string(ways);
    s += "|prefetch=" + std::string(prefetchAll ? "1" : "0");
    s += "|bgcont=" + std::string(bgContinuous ? "1" : "0");
    s += "|fgmask=" + std::to_string(fgMaskWays);
    s += "|policies=" + std::to_string(policies);
    s += "|scale=" + hexDouble(scale);
    s += "|window=" + hexDouble(perfWindow);
    // NApp fields are appended only for NApp specs: the legacy kinds'
    // encodings — and therefore their hashes, derived seeds, and every
    // pinned golden number — must stay byte-identical.
    if (kind == SpecKind::NApp) {
        s += "|napps=" + napps;
        s += "|cores=" + std::to_string(cores);
        s += "|llcways=" + std::to_string(llcWays);
        s += "|npolicies=" + std::to_string(npolicies);
    }
    return s;
}

std::uint64_t
ExperimentSpec::hash() const
{
    // FNV-1a 64-bit over the canonical encoding.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : canonical()) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

ExperimentSpec
soloSpec(const std::string &app, unsigned threads, unsigned ways,
         double scale, bool prefetch_all)
{
    ExperimentSpec s;
    s.kind = SpecKind::Solo;
    s.fg = app;
    s.threads = threads;
    s.ways = ways;
    s.prefetchAll = prefetch_all;
    s.scale = scale;
    return s;
}

ExperimentSpec
pairSpec(const std::string &fg, const std::string &bg, double scale,
         unsigned fg_mask_ways, bool bg_continuous)
{
    ExperimentSpec s;
    s.kind = SpecKind::Pair;
    s.fg = fg;
    s.bg = bg;
    s.fgMaskWays = fg_mask_ways;
    s.bgContinuous = bg_continuous;
    s.scale = scale;
    return s;
}

ExperimentSpec
consolidationSpec(const std::string &fg, const std::string &bg,
                  unsigned policies, double scale, double perf_window)
{
    ExperimentSpec s;
    s.kind = SpecKind::Consolidation;
    s.fg = fg;
    s.bg = bg;
    s.policies = policies;
    s.scale = scale;
    s.perfWindow = perf_window;
    return s;
}

ExperimentSpec
nappSpec(const std::vector<std::string> &apps, unsigned cores,
         unsigned llc_ways, unsigned npolicies, unsigned threads_each,
         double scale, double perf_window)
{
    ExperimentSpec s;
    s.kind = SpecKind::NApp;
    std::string joined;
    for (const std::string &a : apps) {
        if (!joined.empty())
            joined += ',';
        joined += a;
    }
    s.napps = std::move(joined);
    s.cores = cores;
    s.llcWays = llc_ways;
    s.npolicies = npolicies;
    s.threads = threads_each;
    s.scale = scale;
    s.perfWindow = perf_window;
    return s;
}

std::vector<std::string>
splitAppList(const std::string &napps)
{
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start <= napps.size()) {
        const std::size_t comma = napps.find(',', start);
        if (comma == std::string::npos) {
            if (start < napps.size())
                names.push_back(napps.substr(start));
            break;
        }
        names.push_back(napps.substr(start, comma - start));
        start = comma + 1;
    }
    return names;
}

} // namespace capart::exec
