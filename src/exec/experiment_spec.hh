/**
 * @file
 * Declarative experiment specs for the parallel sweep infrastructure.
 *
 * A spec names one unit of sweep work — a solo characterization run, a
 * foreground/background pair run, or a consolidation study evaluating a
 * set of policies on one pair — purely by value. The spec's canonical
 * encoding feeds both the per-run RNG seed (`mixSeed(base_seed,
 * spec.hash())`, see common/rng.hh) and the on-disk memoization key, so
 * results are a function of the spec alone: independent of `--jobs`,
 * submission order, and any earlier runs in the process.
 */

#ifndef CAPART_EXEC_EXPERIMENT_SPEC_HH
#define CAPART_EXEC_EXPERIMENT_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/static_policies.hh"

namespace capart::exec
{

/** What kind of run a spec describes. */
enum class SpecKind
{
    Solo,          //!< one app alone (runSolo)
    Pair,          //!< fg + bg co-run (runPair)
    Consolidation, //!< fg + bg under one or more policies (CoScheduler)
    NApp           //!< N-app mix under one or more NPolicy values (NAppStudy)
};

/** Bit for @p p in ExperimentSpec::policies. */
constexpr unsigned
policyBit(Policy p)
{
    return 1u << static_cast<unsigned>(p);
}

/** One unit of sweep work; plain data, hashable, order-free. */
struct ExperimentSpec
{
    SpecKind kind = SpecKind::Solo;

    /** Catalog name of the app (Solo) or foreground (Pair/Consol). */
    std::string fg;
    /** Catalog name of the background; empty for Solo. */
    std::string bg;

    /** Solo: hyperthreads. Pair/Consolidation: threads per app. */
    unsigned threads = 4;
    /** Solo only: LLC ways the app may use (12 = whole cache). */
    unsigned ways = 12;
    /** Solo only: prefetchers all-on (true) or all-off (false). */
    bool prefetchAll = true;

    /** Pair only: background restarts until the foreground finishes. */
    bool bgContinuous = true;
    /**
     * Pair only: contiguous low ways given to the foreground, the rest
     * to the background; 0 = unpartitioned (shared LLC).
     */
    unsigned fgMaskWays = 0;

    /** Consolidation only: OR of policyBit() values to evaluate. */
    unsigned policies = 0;

    // ---- NApp only (encoded into canonical() only for NApp specs, so
    // ---- every pre-existing spec hash — and hence every derived seed
    // ---- and golden number — is unchanged) ---------------------------

    /** Comma-joined catalog names; entry 0 is the foreground. */
    std::string napps;
    /** Cores of the nAppSystem machine. */
    unsigned cores = 16;
    /** LLC ways of the nAppSystem machine. */
    unsigned llcWays = 20;
    /** OR of npolicyBit() values to evaluate. */
    unsigned npolicies = 0;

    /** Instruction-scale factor for both apps. */
    double scale = 1.0;
    /** Perf-window override in seconds; 0 = SystemConfig default. */
    double perfWindow = 0.0;

    /**
     * Unambiguous text encoding of every field (doubles in hexfloat, so
     * the encoding is exact). Stable across program runs; versioned so
     * future field additions invalidate old memoization entries instead
     * of silently aliasing them.
     */
    std::string canonical() const;

    /** FNV-1a 64-bit hash of canonical(). */
    std::uint64_t hash() const;

    bool operator==(const ExperimentSpec &o) const
    {
        return canonical() == o.canonical();
    }
};

/** Convenience builders used by the bench binaries. */
ExperimentSpec soloSpec(const std::string &app, unsigned threads,
                        unsigned ways, double scale,
                        bool prefetch_all = true);
ExperimentSpec pairSpec(const std::string &fg, const std::string &bg,
                        double scale, unsigned fg_mask_ways = 0,
                        bool bg_continuous = true);
ExperimentSpec consolidationSpec(const std::string &fg,
                                 const std::string &bg, unsigned policies,
                                 double scale, double perf_window = 0.0);
ExperimentSpec nappSpec(const std::vector<std::string> &apps,
                        unsigned cores, unsigned llc_ways,
                        unsigned npolicies, unsigned threads_each,
                        double scale, double perf_window = 0.0);

/** Split an NApp spec's comma-joined app list back into names. */
std::vector<std::string> splitAppList(const std::string &napps);

} // namespace capart::exec

#endif // CAPART_EXEC_EXPERIMENT_SPEC_HH
