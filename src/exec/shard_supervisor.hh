/**
 * @file
 * Process-isolated shard execution of sweeps: crash-safe, resumable,
 * supervised.
 *
 * In shard mode a sweep's points are partitioned by spec hash across N
 * child processes — re-executions of the same bench binary with
 * `--shard-worker=k` — so a point that crashes the process, runs out
 * of memory, or loops forever costs one shard attempt instead of the
 * whole (possibly hours-long) run. The split of responsibilities:
 *
 *  - @ref runShardWorker (child): computes the points with
 *    `spec.hash() % shards == k`, serially and in spec order. Before
 *    each point it appends a `point_start` record (with the attempt
 *    number) to its ledger segment `<dir>/<bench>-shard-k.seg.jsonl`;
 *    after, the full `point` record plus a bit-exact entry in
 *    `<dir>/<bench>-shard-k.results` (hexfloat @ref ResultCache).
 *    On (re)start it loads its own segment and skips points already
 *    complete or quarantined — that single rule makes every respawn
 *    and every `--resume` a cheap fast-forward. Chaos hooks
 *    (fault/process_chaos.hh) fire between those steps when armed.
 *
 *  - @ref runShardedSweep (parent): spawns the workers, then
 *    supervises. Liveness is the segment itself — a worker that
 *    appends is alive; one whose segment has not grown for
 *    `pointTimeoutS` is presumed hung and SIGKILLed. A nonzero exit or
 *    timeout identifies the culprit point (the dangling `point_start`),
 *    and the shard is respawned with exponential backoff until the
 *    culprit has burned `maxRetries` retries, at which point the
 *    supervisor quarantines it — a structured `point_failed` record
 *    with the reason and attempt count — and the respawned worker
 *    skips it. SIGTERM/SIGINT (via stopFlag) terminates shards
 *    gracefully, merges what completed, appends a `run_interrupted`
 *    record, and exits after the atexit exporters flush.
 *
 * When every shard settles, the segments are folded through
 * @ref capart::obs::mergeLedgerSegments — last-complete-wins by spec
 * hash, tolerant of torn tails, duplicates, and missing segments —
 * into the canonical ledger under the parent's run id, and results are
 * assembled from the shard results files. Because workers store
 * hexfloat-exact results and every point's seed is
 * `mixSeed(base_seed, spec.hash())`, a sharded, crashed, killed, and
 * resumed sweep prints stdout bit-identical to `--jobs=1`.
 */

#ifndef CAPART_EXEC_SHARD_SUPERVISOR_HH
#define CAPART_EXEC_SHARD_SUPERVISOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/sweep_runner.hh"

namespace capart::exec
{

/** Shard owning @p spec_hash when the sweep runs @p shards wide. */
unsigned shardOf(std::uint64_t spec_hash, unsigned shards);

/** `<dir>/<bench>-shard-<k>.seg.jsonl` — the shard's ledger segment. */
std::string shardSegmentPath(const std::string &dir,
                             const std::string &bench, unsigned shard);

/** `<dir>/<bench>-shard-<k>.results` — the shard's results file. */
std::string shardResultsPath(const std::string &dir,
                             const std::string &bench, unsigned shard);

/** `<dir>/<bench>-shard-<k>.log` — the shard's stdout+stderr capture. */
std::string shardLogPath(const std::string &dir, const std::string &bench,
                         unsigned shard);

/** Worker entry: compute this process's shard of @p specs, then exit
 *  (0 on success, 128+sig when stopped by a signal). Never returns. */
[[noreturn]] void runShardWorker(const SweepRunnerOptions &opts,
                                 const std::vector<ExperimentSpec> &specs);

/** Supervisor entry: run @p specs across opts.shards child processes
 *  and return results in spec order (quarantined points come back
 *  default-valued with `failed` set). */
std::vector<SweepResult>
runShardedSweep(const SweepRunnerOptions &opts,
                const std::vector<ExperimentSpec> &specs);

} // namespace capart::exec

#endif // CAPART_EXEC_SHARD_SUPERVISOR_HH
