/**
 * @file
 * SweepRunner: deterministic parallel execution of experiment specs.
 *
 * The runner fans a vector of @ref ExperimentSpec out across a
 * work-stealing @ref ThreadPool and returns results in submission
 * order. Every run's RNG seed is `mixSeed(base_seed, spec.hash())` —
 * a function of the spec, not of scheduling — so output is
 * bit-identical for any `--jobs` value. An optional on-disk
 * @ref ResultCache memoizes completed points (keyed by the same
 * derived seed), making interrupted sweeps resumable and repeat runs
 * nearly free.
 *
 * Beyond the in-process thread pool, the runner has a process-isolated
 * mode (`shards > 1`, see src/exec/shard_supervisor.hh): points are
 * partitioned by spec hash into shard child processes — re-executions
 * of the same binary with `--shard-worker=k` — each appending to its
 * own ledger segment and bit-exact results file, while the parent
 * supervises with per-point timeouts, bounded retries, quarantine, and
 * a deterministic merge. A crashing or hanging point then costs one
 * shard attempt, never the sweep.
 */

#ifndef CAPART_EXEC_SWEEP_RUNNER_HH
#define CAPART_EXEC_SWEEP_RUNNER_HH

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exec/experiment_spec.hh"

namespace capart::obs
{
class RunLedger;
struct RunRecord;
} // namespace capart::obs

namespace capart::exec
{

/** Per-policy metrics of a Consolidation spec (CoScheduler summary). */
struct PolicyOutcome
{
    /** False when the spec did not request this policy. */
    bool present = false;
    double fgSlowdown = 1.0;
    double bgThroughput = 0.0;
    double energyVsSequential = 1.0;
    double wallEnergyVsSequential = 1.0;
    double weightedSpeedup = 1.0;
    unsigned fgWays = 0;
};

/** Per-policy metrics of an NApp spec (NAppStudy summary). */
struct NAppPolicyOutcome
{
    /** False when the spec did not request this policy. */
    bool present = false;
    /** System throughput: sum of per-app speedups vs solo. */
    double stp = 0.0;
    /** Aggregate instructions per second across the mix. */
    double throughputIps = 0.0;
    /** max slowdown / min slowdown (1 = perfectly fair). */
    double unfairness = 1.0;
    /** App 0's slowdown vs running alone on the machine. */
    double fgSlowdown = 1.0;
    double socketEnergyJ = 0.0;
    double wallEnergyJ = 0.0;
    /** Apps whose slowdown exceeds the study's SLO threshold. */
    unsigned sloBreaches = 0;
    /** Mask installations after the initial decision. */
    unsigned remasks = 0;
};

/** Flat, serializable outcome of one spec. */
struct SweepResult
{
    /** Solo: makespan. Pair: foreground completion time. */
    double time = 0.0;
    double socketEnergy = 0.0;
    double wallEnergy = 0.0;
    double mpki = 0.0;
    double apki = 0.0;
    double ipc = 0.0;
    /** Pair only: background instructions/second during the fg run. */
    double bgThroughput = 0.0;
    bool timedOut = false;
    /** Consolidation only; indexed by static_cast<int>(Policy). */
    PolicyOutcome policy[4];
    /** NApp only; indexed by static_cast<int>(NPolicy). */
    NAppPolicyOutcome napp[6];

    /** True when this result came from the memoization cache (not
     *  serialized; diagnostic only). */
    bool fromCache = false;

    /** True when the point was quarantined after failing every retry
     *  in process-isolated mode: the value fields are defaults, and a
     *  `point_failed` record documents why (not serialized). */
    bool failed = false;
};

/**
 * Execute one spec with the seed derived from (@p base_seed, spec).
 * This is the single entry point every sweep point goes through; it is
 * a pure function of its arguments (no global state), which the
 * determinism tests in tests/test_exec.cc enforce.
 */
SweepResult runSpec(const ExperimentSpec &spec, std::uint64_t base_seed);

/** Memoization key of (@p base_seed, @p spec): the derived seed. */
std::uint64_t specCacheKey(const ExperimentSpec &spec,
                           std::uint64_t base_seed);

class ResultCache;

/** Configuration of a @ref SweepRunner. */
struct SweepRunnerOptions
{
    /** Worker threads; <= 1 runs inline on the calling thread. */
    unsigned jobs = 1;
    /** Base seed mixed into every spec's derived seed. */
    std::uint64_t baseSeed = 12345;
    /** Path of the memoization cache file; empty disables caching. */
    std::string cachePath;
    /**
     * Called after each completed spec with (done, total). Invoked
     * under a lock, possibly from worker threads; completion order is
     * nondeterministic under --jobs > 1 (results are not).
     */
    std::function<void(std::size_t done, std::size_t total)> progress;
    /**
     * Append one `point` record per finished spec (cache hits
     * included, flagged as cached) to this ledger; nullptr disables.
     * Records land in completion order, which is nondeterministic
     * under --jobs > 1 — readers group by run id and spec hash, never
     * by file position. Recording is output-only and cannot perturb
     * results.
     */
    obs::RunLedger *ledger = nullptr;
    /** Bench name stamped on ledger records (e.g. "fig13_dynamic"). */
    std::string benchName;
    /** Invocation id shared by all of this run's ledger records. */
    std::string runId;
    /**
     * Directory for per-point attribution side files; empty disables.
     * When set (and observability is armed), each computed point's
     * attribution scope — the time-series samples and control-plane
     * journal its worker thread accumulated — is drained after the
     * point finishes and written to
     * `<attrDir>/<bench>-<runId>-<spec hash>.json`. The point's
     * ledger record then carries the path in `attr_file`, the point's
     * partitioner decisions are appended to the ledger as `decision`
     * records, and the batch is deposited with obs::timeseries() so a
     * later dashboard export sees it. Cache hits skip all of this:
     * a replayed point executes nothing, so there is nothing to
     * attribute. The directory must already exist.
     */
    std::string attrDir;

    // ---- process-isolated shard mode --------------------------------

    /**
     * Shard child processes; <= 1 keeps the in-process thread pool.
     * When > 1 the runner ignores `jobs` (each shard owns a results
     * file under `ledgerDir` instead) and `run()` supervises `shards`
     * re-executions of `workerCmd`. A non-empty `cachePath` is still
     * honoured — each worker reads it through before computing and
     * stores fresh results back, so a warm user cache replays into
     * sharded sweeps and vice versa. Concurrent worker appends are
     * safe: ResultCache lines carry checksums, so a torn or
     * interleaved write is skipped on read, never misread.
     */
    unsigned shards = 0;
    /** >= 0 marks this process as shard worker k: run() computes only
     *  points with `spec.hash() % shards == k` serially, records them
     *  into this shard's segment + results file, and exits — it never
     *  returns. */
    int shardWorker = -1;
    /** Directory holding shard ledger segments and results files. */
    std::string ledgerDir;
    /** Keep existing segments/results (resume an interrupted sweep)
     *  instead of starting fresh. */
    bool resumeShards = false;
    /** Wall-clock seconds a shard may go without appending to its
     *  segment before it is presumed hung and SIGKILLed; 0 (the
     *  default) disables. Liveness is observed only at point
     *  boundaries, so enable this only with a bound on single-point
     *  duration in hand — a timeout below the slowest legitimate
     *  point kills and quarantines valid work as "timeout". */
    double pointTimeoutS = 0.0;
    /** Retries a failing point gets before quarantine (initial attempt
     *  not counted: maxRetries == 2 allows three tries). */
    unsigned maxRetries = 2;
    /**
     * Parent mode: the argv to re-execute for workers — the current
     * binary and flags. The supervisor appends `--shards=N`,
     * `--shard-worker=k`, and `--ledger-dir=D` (later flags override
     * earlier ones in parseArgs). Empty disables shard mode.
     */
    std::vector<std::string> workerCmd;
    /** Signal flag polled for graceful shutdown (SIGTERM/SIGINT); the
     *  supervisor terminates shards, merges what completed, marks the
     *  run interrupted, and exits. nullptr disables. */
    const volatile std::sig_atomic_t *stopFlag = nullptr;

    // ---- live status plane (observability output only) --------------

    /**
     * Path of the supervisor's live `status.json` (see
     * src/obs/status.hh): atomically replaced every ~statusPeriodS
     * while the sweep runs and once more (state "complete" or
     * "interrupted") after the merge. Empty — or observability
     * disabled — writes nothing. Output-only: nothing reads it back,
     * so it cannot perturb results.
     */
    std::string statusPath;
    /** Path of the Prometheus text exposition file, refreshed on the
     *  same cadence; empty disables. */
    std::string promPath;
    /** Minimum seconds between status/prom refreshes. */
    double statusPeriodS = 0.5;
    /**
     * The *base* `--metrics-out` path workers derive their
     * per-shard `<base>.shard-<k>` files from (see bench/bench_common);
     * the supervisor folds those files' counters into the prom
     * exposition as `capart_worker_*{shard="k"}` samples. Empty skips
     * worker-counter collection.
     */
    std::string workerMetricsBase;
    /** Worker mode only: write this process's Chrome trace here when
     *  the worker loop exits (workers without an atexit exporter —
     *  e.g. the test harness — still feed trace stitching). Empty
     *  disables; bench workers leave it empty and export through
     *  their normal atexit path instead. */
    std::string workerTraceOut;
};

/**
 * Compute one point end to end and record everything about it: trace
 * span, points-computed counter, optional cache store, attribution
 * side-file export, and the `point` ledger record (to @p ledger, which
 * overrides opts.ledger so shard workers can target their segment).
 * The single execution path shared by the in-process runner and the
 * shard worker loop — both therefore produce bit-identical records.
 */
SweepResult computePoint(const SweepRunnerOptions &opts,
                         const ExperimentSpec &spec, ResultCache *cache,
                         obs::RunLedger *ledger);

/**
 * Flatten one finished point into a `point` ledger record — the
 * canonical encoding shared by the thread-pool runner and the shard
 * worker, so a cache replay and a fresh computation of the same spec
 * yield byte-comparable records.
 */
obs::RunRecord pointRecord(const SweepRunnerOptions &opts,
                           const ExperimentSpec &spec,
                           const SweepResult &r, double wall_ms);

/** Fans specs across a thread pool; results in submission order. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepRunnerOptions opts);

    /**
     * Run every spec and return results[i] for specs[i]. Cached points
     * are returned without re-execution (marked fromCache); newly
     * computed points are appended to the cache as they complete, so
     * an interrupted sweep resumes where it stopped.
     *
     * With opts.shards > 1 the sweep instead runs process-isolated
     * (see shard_supervisor.hh); with opts.shardWorker >= 0 this
     * process IS a shard worker and run() never returns — it exits
     * after computing its subset.
     */
    std::vector<SweepResult> run(const std::vector<ExperimentSpec> &specs);

    const SweepRunnerOptions &options() const { return opts_; }

  private:
    SweepRunnerOptions opts_;
};

} // namespace capart::exec

#endif // CAPART_EXEC_SWEEP_RUNNER_HH
