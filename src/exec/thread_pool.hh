/**
 * @file
 * A work-stealing thread pool for fanning experiment sweeps out across
 * host cores.
 *
 * Each worker owns a deque: it pops its own work LIFO (cache-warm) and
 * steals FIFO from siblings when empty, so large batches balance even
 * when individual experiments differ by orders of magnitude in cost.
 * Tasks are heavyweight (whole simulator runs), so per-deque mutexes —
 * not lock-free deques — are the right complexity point.
 *
 * Determinism note: the pool makes no ordering promises. Reproducibility
 * of sweeps is the job of @ref capart::exec::SweepRunner, which keys
 * every run's RNG seed off the spec itself, never off execution order.
 */

#ifndef CAPART_EXEC_THREAD_POOL_HH
#define CAPART_EXEC_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace capart::exec
{

/** Work-stealing pool; see file comment for the design rationale. */
class ThreadPool
{
  public:
    /** Task type. Exceptions thrown by tasks surface in wait(). */
    using Task = std::function<void()>;

    /**
     * Start @p workers threads (0 = one per hardware thread). The pool
     * is usable immediately; destruction drains remaining work first.
     */
    explicit ThreadPool(unsigned workers = 0);

    /** Drains outstanding work, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task. Distribution is round-robin across worker
     * deques; idle workers steal, so placement never strands work.
     */
    void submit(Task task);

    /**
     * Block until every task submitted so far has finished. If any
     * task threw, rethrows the first captured exception (subsequent
     * exceptions are dropped) and leaves the pool usable.
     */
    void wait();

    unsigned workerCount() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    /** One worker's deque; stealing takes the front, the owner the back. */
    struct WorkerQueue
    {
        std::mutex mutex;
        std::deque<Task> tasks;
    };

    void workerLoop(std::size_t self);

    /** Pop from own queue (back) or steal (front); empty if none. */
    Task takeTask(std::size_t self);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    /** Wakes idle workers on submit/stop. */
    std::mutex idleMutex_;
    std::condition_variable idleCv_;

    /** Tracks in-flight + queued tasks; guards firstError_. */
    std::mutex doneMutex_;
    std::condition_variable doneCv_;
    std::size_t pending_ = 0;
    std::exception_ptr firstError_;

    std::size_t nextQueue_ = 0;
    bool stop_ = false;
};

} // namespace capart::exec

#endif // CAPART_EXEC_THREAD_POOL_HH
