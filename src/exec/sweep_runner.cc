#include "exec/sweep_runner.hh"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/co_scheduler.hh"
#include "core/napp.hh"
#include "core/static_policies.hh"
#include "exec/result_cache.hh"
#include "exec/shard_supervisor.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "obs/run_ledger.hh"
#include "obs/timeseries.hh"
#include "obs/trace.hh"
#include "sim/experiment.hh"
#include "workload/catalog.hh"

namespace capart::exec
{

std::uint64_t
specCacheKey(const ExperimentSpec &spec, std::uint64_t base_seed)
{
    return mixSeed(base_seed, spec.hash());
}

SweepResult
runSpec(const ExperimentSpec &spec, std::uint64_t base_seed)
{
    const std::uint64_t seed = mixSeed(base_seed, spec.hash());
    SweepResult out;

    switch (spec.kind) {
      case SpecKind::Solo: {
        SoloOptions o;
        o.threads = spec.threads;
        o.ways = spec.ways;
        o.scale = spec.scale;
        o.system.seed = seed;
        o.system.prefetch = PrefetchConfig::allEnabled(spec.prefetchAll);
        if (spec.perfWindow > 0.0)
            o.system.perfWindow = spec.perfWindow;
        const SoloResult r = runSolo(Catalog::byName(spec.fg), o);
        out.time = r.time;
        out.socketEnergy = r.socketEnergy;
        out.wallEnergy = r.wallEnergy;
        out.mpki = r.app.mpki();
        out.apki = r.app.apki();
        out.ipc = r.app.ipc();
        out.timedOut = r.timedOut;
        break;
      }
      case SpecKind::Pair: {
        PairOptions o;
        o.fgThreads = spec.threads;
        o.bgThreads = spec.threads;
        o.bgContinuous = spec.bgContinuous;
        o.scale = spec.scale;
        o.system.seed = seed;
        if (spec.perfWindow > 0.0)
            o.system.perfWindow = spec.perfWindow;
        if (spec.fgMaskWays > 0) {
            const SplitMasks m = splitWays(
                spec.fgMaskWays, SystemConfig{}.hierarchy.llc.ways);
            o.fgMask = m.fg;
            o.bgMask = m.bg;
        }
        const PairResult r =
            runPair(Catalog::byName(spec.fg), Catalog::byName(spec.bg), o);
        out.time = r.fgTime;
        out.bgThroughput = r.bgThroughput;
        out.socketEnergy = r.socketEnergy;
        out.wallEnergy = r.wallEnergy;
        out.mpki = r.fg.mpki();
        out.apki = r.fg.apki();
        out.ipc = r.fg.ipc();
        out.timedOut = r.timedOut;
        break;
      }
      case SpecKind::Consolidation: {
        capart_assert(spec.policies != 0);
        CoScheduleOptions co;
        co.threadsEach = spec.threads;
        co.scale = spec.scale;
        co.system.seed = seed;
        // Attach the SLO monitor whenever observability is armed, so
        // sweep points feed the dashboard's burn-rate strip. Pure
        // observation: the monitor never steers the run, and the
        // bit-identity tests (tests/test_core.cc, test_attribution.cc)
        // lock monitored and unmonitored results together — runSpec
        // stays a pure function of its arguments in every output bit.
        co.monitorSlo = obs::enabled();
        if (spec.perfWindow > 0.0)
            co.system.perfWindow = spec.perfWindow;
        CoScheduler cs(Catalog::byName(spec.fg),
                       Catalog::byName(spec.bg), co);
        for (const Policy p : {Policy::Shared, Policy::Fair,
                               Policy::Biased, Policy::Dynamic}) {
            if (!(spec.policies & policyBit(p)))
                continue;
            obs::TraceSpan policy_span(policyName(p), "sweep");
            const ConsolidationSummary s = cs.summarize(p);
            PolicyOutcome &po = out.policy[static_cast<int>(p)];
            po.present = true;
            po.fgSlowdown = s.fgSlowdown;
            po.bgThroughput = s.bgThroughput;
            po.energyVsSequential = s.energyVsSequential;
            po.wallEnergyVsSequential = s.wallEnergyVsSequential;
            po.weightedSpeedup = s.weightedSpeedup;
            po.fgWays = s.fgWays;
        }
        break;
      }
      case SpecKind::NApp: {
        capart_assert(spec.npolicies != 0);
        const std::vector<std::string> names = splitAppList(spec.napps);
        capart_assert(!names.empty());
        NAppStudyOptions so;
        so.run.system = nAppSystem(spec.cores, spec.llcWays, seed);
        so.run.scale = spec.scale;
        if (spec.perfWindow > 0.0)
            so.run.system.perfWindow = spec.perfWindow;
        std::vector<NAppMember> members;
        members.reserve(names.size());
        for (std::size_t i = 0; i < names.size(); ++i) {
            NAppMember m;
            m.params = Catalog::byName(names[i]);
            m.threads = spec.threads;
            m.continuous = i != 0; // app 0 is the foreground
            members.push_back(std::move(m));
        }
        NAppStudy study(std::move(members), so);
        for (unsigned p = 0; p < kNumNPolicies; ++p) {
            const NPolicy policy = static_cast<NPolicy>(p);
            if (!(spec.npolicies & npolicyBit(policy)))
                continue;
            obs::TraceSpan policy_span(npolicyName(policy), "sweep");
            const NAppPolicySummary s = study.summarize(policy);
            NAppPolicyOutcome &po = out.napp[p];
            po.present = true;
            po.stp = s.stp;
            po.throughputIps = s.throughputIps;
            po.unfairness = s.unfairness;
            po.fgSlowdown = s.fgSlowdown;
            po.socketEnergyJ = s.socketEnergyJ;
            po.wallEnergyJ = s.wallEnergyJ;
            po.sloBreaches = s.sloBreaches;
            po.remasks = static_cast<unsigned>(s.remasks);
            out.timedOut = out.timedOut || s.timedOut;
        }
        break;
      }
    }
    return out;
}

namespace
{

double
unixMillisNow()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

} // namespace

obs::RunRecord
pointRecord(const SweepRunnerOptions &opts, const ExperimentSpec &spec,
            const SweepResult &r, double wall_ms)
{
    obs::RunRecord rec;
    rec.kind = "point";
    rec.bench = opts.benchName;
    rec.run = opts.runId;
    rec.spec = spec.canonical();
    rec.specHash = spec.hash();
    rec.seed = opts.baseSeed;
    rec.tsMs = unixMillisNow();
    rec.wallMs = wall_ms;
    rec.simS = r.time;
    rec.fromCache = r.fromCache;
    auto &m = rec.metrics;
    m.emplace_back("time_s", r.time);
    m.emplace_back("socket_energy_j", r.socketEnergy);
    m.emplace_back("wall_energy_j", r.wallEnergy);
    m.emplace_back("mpki", r.mpki);
    m.emplace_back("apki", r.apki);
    m.emplace_back("ipc", r.ipc);
    if (r.bgThroughput > 0.0)
        m.emplace_back("bg_throughput_ips", r.bgThroughput);
    m.emplace_back("timed_out", r.timedOut ? 1.0 : 0.0);
    for (const Policy p : {Policy::Shared, Policy::Fair, Policy::Biased,
                           Policy::Dynamic}) {
        const PolicyOutcome &po = r.policy[static_cast<int>(p)];
        if (!po.present)
            continue;
        const std::string prefix = policyName(p);
        m.emplace_back(prefix + ".fg_slowdown", po.fgSlowdown);
        m.emplace_back(prefix + ".bg_throughput_ips", po.bgThroughput);
        m.emplace_back(prefix + ".energy_vs_seq", po.energyVsSequential);
        m.emplace_back(prefix + ".wall_energy_vs_seq",
                       po.wallEnergyVsSequential);
        m.emplace_back(prefix + ".weighted_speedup", po.weightedSpeedup);
        m.emplace_back(prefix + ".fg_ways",
                       static_cast<double>(po.fgWays));
    }
    for (unsigned p = 0; p < kNumNPolicies; ++p) {
        const NAppPolicyOutcome &po = r.napp[p];
        if (!po.present)
            continue;
        const std::string prefix = npolicyName(static_cast<NPolicy>(p));
        m.emplace_back(prefix + ".stp", po.stp);
        m.emplace_back(prefix + ".throughput_ips", po.throughputIps);
        m.emplace_back(prefix + ".unfairness", po.unfairness);
        m.emplace_back(prefix + ".fg_slowdown", po.fgSlowdown);
        m.emplace_back(prefix + ".socket_energy_j", po.socketEnergyJ);
        m.emplace_back(prefix + ".wall_energy_j", po.wallEnergyJ);
        m.emplace_back(prefix + ".slo_breaches",
                       static_cast<double>(po.sloBreaches));
        m.emplace_back(prefix + ".remasks",
                       static_cast<double>(po.remasks));
    }
    // Headline cross-policy ratios (Figs. 9/13): how close dynamic and
    // shared come to the biased oracle's background throughput, and
    // what the dynamic policy pays in foreground slowdown for it.
    const PolicyOutcome &biased =
        r.policy[static_cast<int>(Policy::Biased)];
    const PolicyOutcome &dynamic =
        r.policy[static_cast<int>(Policy::Dynamic)];
    const PolicyOutcome &shared =
        r.policy[static_cast<int>(Policy::Shared)];
    if (biased.present && biased.bgThroughput > 0.0) {
        if (dynamic.present) {
            m.emplace_back("dynamic.bg_vs_biased",
                           dynamic.bgThroughput / biased.bgThroughput);
            m.emplace_back("dynamic.fg_delta_vs_biased",
                           dynamic.fgSlowdown - biased.fgSlowdown);
        }
        if (shared.present) {
            m.emplace_back("shared.bg_vs_biased",
                           shared.bgThroughput / biased.bgThroughput);
        }
    }
    return rec;
}

namespace
{

/** Side-file path of one point's attribution batch. */
std::string
attrFilePath(const SweepRunnerOptions &opts, const ExperimentSpec &spec)
{
    char hash[24];
    std::snprintf(hash, sizeof(hash), "%016" PRIx64, spec.hash());
    std::string name = opts.attrDir;
    name += '/';
    name += opts.benchName.empty() ? "sweep" : opts.benchName;
    name += '-';
    name += opts.runId.empty() ? "run" : opts.runId;
    name += '-';
    name += hash;
    name += ".json";
    return name;
}

/** Short human label for one point ("fg", "fg+bg", or the N-app mix
 *  joined with '+' so per-owner charts can name every member). */
std::string
pointLabel(const ExperimentSpec &spec)
{
    if (!spec.napps.empty()) {
        std::string label;
        for (const std::string &name : splitAppList(spec.napps)) {
            if (!label.empty())
                label += '+';
            label += name;
        }
        return label;
    }
    std::string label = spec.fg;
    if (!spec.bg.empty()) {
        label += '+';
        label += spec.bg;
    }
    return label;
}

/** One control-plane journal entry as a ledger record, keeping the
 *  entry's own kind ("decision" or "npartition_decision"). */
obs::RunRecord
decisionRecord(const SweepRunnerOptions &opts, const ExperimentSpec &spec,
               const obs::JournalEntry &e)
{
    obs::RunRecord rec;
    rec.kind = e.kind;
    rec.bench = opts.benchName;
    rec.run = opts.runId;
    rec.spec = spec.canonical();
    rec.specHash = spec.hash();
    rec.seed = opts.baseSeed;
    rec.tsMs = unixMillisNow();
    rec.rule = e.rule;
    // Simulated time first, then the decision's own fields: together
    // they are the complete replay input (see core/decision_journal.hh).
    rec.metrics.emplace_back("t_us", e.tUs);
    for (const auto &field : e.fields)
        rec.metrics.push_back(field);
    return rec;
}

/**
 * Drain the calling worker's attribution scope for the point it just
 * computed: write the side file, ledger the partitioner decisions, and
 * deposit the batch for dashboard export. Returns the side-file path
 * ("" when nothing was recorded or the write failed).
 */
std::string
exportPointAttribution(const SweepRunnerOptions &opts,
                       const ExperimentSpec &spec, obs::RunLedger *ledger)
{
    obs::AttributionBatch batch = obs::timeseries().drainScope();
    if (batch.samples.empty() && batch.journal.empty())
        return {};
    batch.label = pointLabel(spec);
    batch.specHash = spec.hash();
    batch.attrFile = attrFilePath(opts, spec);
    {
        std::ofstream out(batch.attrFile);
        if (out) {
            obs::writeAttributionJson(out, batch);
            if (obs::enabled())
                obs::metrics().counter("exec.attr_files").inc();
        } else {
            std::fprintf(stderr,
                         "capart: cannot write attribution file %s\n",
                         batch.attrFile.c_str());
            batch.attrFile.clear();
        }
    }
    if (ledger) {
        for (const obs::JournalEntry &e : batch.journal) {
            if (e.kind == "decision" || e.kind == "npartition_decision")
                ledger->append(decisionRecord(opts, spec, e));
        }
    }
    std::string path = batch.attrFile;
    obs::timeseries().deposit(std::move(batch));
    return path;
}

} // namespace

SweepResult
computePoint(const SweepRunnerOptions &opts, const ExperimentSpec &spec,
             ResultCache *cache, obs::RunLedger *ledger)
{
    obs::TraceSpan point_span("sweep.point", "sweep",
                              {{"spec_hash",
                                static_cast<double>(spec.hash())}});
    if (obs::enabled())
        obs::metrics().counter("exec.points_computed").inc();
    const auto start = std::chrono::steady_clock::now();
    const SweepResult r = runSpec(spec, opts.baseSeed);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    if (cache)
        cache->store(specCacheKey(spec, opts.baseSeed), r);
    std::string attr_file;
    if (!opts.attrDir.empty() && obs::enabled())
        attr_file = exportPointAttribution(opts, spec, ledger);
    if (ledger) {
        obs::RunRecord rec = pointRecord(opts, spec, r, wall_ms);
        rec.attrFile = attr_file;
        ledger->append(rec);
    }
    return r;
}

SweepRunner::SweepRunner(SweepRunnerOptions opts) : opts_(std::move(opts))
{
}

std::vector<SweepResult>
SweepRunner::run(const std::vector<ExperimentSpec> &specs)
{
    // Process-isolated paths first: a worker never returns, a
    // supervisor owns the whole sweep (see shard_supervisor.cc).
    if (opts_.shardWorker >= 0 && opts_.shards > 0)
        runShardWorker(opts_, specs); // [[noreturn]]
    if (opts_.shards > 1 && !opts_.workerCmd.empty() && specs.size() > 1)
        return runShardedSweep(opts_, specs);

    std::vector<SweepResult> results(specs.size());

    std::unique_ptr<ResultCache> cache;
    if (!opts_.cachePath.empty())
        cache = std::make_unique<ResultCache>(opts_.cachePath);

    std::mutex progress_mutex;
    std::size_t done = 0;
    const auto report = [&] {
        // Caller holds progress_mutex.
        ++done;
        if (opts_.progress)
            opts_.progress(done, specs.size());
    };

    // Resolve cache hits up front; collect the points still to compute.
    std::vector<std::size_t> todo;
    todo.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const std::uint64_t key = specCacheKey(specs[i], opts_.baseSeed);
        if (cache && cache->lookup(key, &results[i])) {
            if (obs::enabled())
                obs::metrics().counter("exec.cache_hits").inc();
            if (opts_.ledger) {
                results[i].fromCache = true;
                opts_.ledger->append(
                    pointRecord(opts_, specs[i], results[i], 0.0));
            }
            std::lock_guard<std::mutex> lock(progress_mutex);
            report();
        } else {
            todo.push_back(i);
        }
    }

    const auto compute = [&](std::size_t i) {
        results[i] = computePoint(opts_, specs[i], cache.get(),
                                  opts_.ledger);
        std::lock_guard<std::mutex> lock(progress_mutex);
        report();
    };

    if (opts_.jobs <= 1) {
        for (const std::size_t i : todo)
            compute(i);
        return results;
    }

    ThreadPool pool(opts_.jobs);
    for (const std::size_t i : todo)
        pool.submit([&compute, i] { compute(i); });
    pool.wait();
    return results;
}

} // namespace capart::exec
