/**
 * @file
 * On-disk memoization of sweep results.
 *
 * A cache is one append-only text file: a version header followed by
 * one record per completed sweep point, keyed by the point's derived
 * seed (`mixSeed(base_seed, spec.hash())`). Doubles are stored as
 * hexfloat so a cache hit round-trips bit-exactly — cached and freshly
 * computed sweeps produce byte-identical bench output. Records are
 * flushed as they complete, so a sweep killed mid-flight resumes from
 * its last finished point. Unreadable or version-mismatched files are
 * ignored wholesale (recompute beats wrong reuse).
 */

#ifndef CAPART_EXEC_RESULT_CACHE_HH
#define CAPART_EXEC_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/sweep_runner.hh"

namespace capart::exec
{

/** Thread-safe, write-through result store; see file comment. */
class ResultCache
{
  public:
    /** Opens @p path, loading any compatible existing records. */
    explicit ResultCache(std::string path);

    /** True and fills @p out if @p key has a stored result. */
    bool lookup(std::uint64_t key, SweepResult *out) const;

    /** Record @p res under @p key and flush it to disk. */
    void store(std::uint64_t key, const SweepResult &res);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Serialize / parse one record body (exposed for tests). */
    static std::string encode(const SweepResult &res);
    static bool decode(const std::string &body, SweepResult *out);

  private:
    std::string path_;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, SweepResult> entries_;
    /** File had our header (append) vs. absent/foreign (rewrite). */
    bool fileCompatible_ = false;
};

} // namespace capart::exec

#endif // CAPART_EXEC_RESULT_CACHE_HH
