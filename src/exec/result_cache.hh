/**
 * @file
 * On-disk memoization of sweep results.
 *
 * A cache is one append-only text file: a version header followed by
 * one record per completed sweep point, keyed by the point's derived
 * seed (`mixSeed(base_seed, spec.hash())`). Doubles are stored as
 * hexfloat so a cache hit round-trips bit-exactly — cached and freshly
 * computed sweeps produce byte-identical bench output. Records are
 * flushed as they complete, so a sweep killed mid-flight resumes from
 * its last finished point. Unreadable or version-mismatched files are
 * ignored wholesale (recompute beats wrong reuse).
 *
 * Hardened against corruption: every line carries an FNV-1a checksum
 * (format v2), and loading verifies it — plus the finiteness of every
 * stored double — before an entry is believed. A truncated tail, a
 * flipped bit, or hand-edited garbage is logged, counted on the
 * `cache.corrupt` observability counter, and skipped, so the affected
 * point recomputes; a corrupt cache can never crash the runner or
 * feed poisoned data into a sweep.
 */

#ifndef CAPART_EXEC_RESULT_CACHE_HH
#define CAPART_EXEC_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "exec/sweep_runner.hh"

namespace capart::exec
{

/** Thread-safe, write-through result store; see file comment. */
class ResultCache
{
  public:
    /** Opens @p path, loading any compatible existing records. */
    explicit ResultCache(std::string path);

    /** True and fills @p out if @p key has a stored result. */
    bool lookup(std::uint64_t key, SweepResult *out) const;

    /** Record @p res under @p key and flush it to disk. */
    void store(std::uint64_t key, const SweepResult &res);

    std::size_t size() const;
    const std::string &path() const { return path_; }

    /** Serialize / parse one record body (exposed for tests). Decode
     *  rejects malformed tokens, trailing junk, and non-finite values. */
    static std::string encode(const SweepResult &res);
    static bool decode(const std::string &body, SweepResult *out);

    /**
     * Create @p path as an empty compatible cache (header only) if it
     * is missing or has a foreign/old header. Call before several
     * processes share one cache file: a process that opens an
     * incompatible file truncate-rewrites it on first store, which
     * races siblings' appends; with the header pre-written everyone
     * only ever appends checksummed lines, which is concurrency-safe.
     * No-op on a compatible file.
     */
    static void initializeFile(const std::string &path);

    /** Append the v2 checksum suffix to "<hex key> <body>" (tests). */
    static std::string checksumLine(const std::string &keyed_body);
    /** Verify a full on-disk line's checksum; on success strips the
     *  suffix into @p keyed_body (tests). */
    static bool verifyLine(const std::string &line, std::string *keyed_body);

  private:
    std::string path_;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, SweepResult> entries_;
    /** File had our header (append) vs. absent/foreign (rewrite). */
    bool fileCompatible_ = false;
};

} // namespace capart::exec

#endif // CAPART_EXEC_RESULT_CACHE_HH
