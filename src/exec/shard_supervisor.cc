/**
 * @file
 * Implementation of the process-isolated shard supervisor and worker
 * loop declared in shard_supervisor.hh. POSIX-only (posix_spawn,
 * waitpid, kill); the build gates this file to non-Windows targets.
 */

#include "exec/shard_supervisor.hh"

#include <fcntl.h>
#include <signal.h>
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/logging.hh"
#include "exec/result_cache.hh"
#include "fault/process_chaos.hh"
#include "obs/metrics.hh"
#include "obs/run_ledger.hh"
#include "obs/status.hh"
#include "obs/trace.hh"

extern char **environ;

namespace capart::exec
{
namespace
{

using Clock = std::chrono::steady_clock;

double
unixMillisNow()
{
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

std::uintmax_t
fileSizeOr0(const std::string &path)
{
    std::error_code ec;
    const std::uintmax_t n = std::filesystem::file_size(path, ec);
    return ec ? 0 : n;
}

/**
 * What one shard's segment says has happened so far, filtered to the
 * current base seed (a stale segment from a sweep with another seed
 * must not fast-forward this one). The same digest drives both sides:
 * the worker uses it to skip finished/quarantined points on respawn,
 * the supervisor to identify the culprit a dead worker was computing
 * (the dangling `point_start`) and how many attempts it has burned.
 */
struct SegmentState
{
    std::unordered_set<std::uint64_t> done;   ///< complete `point` records
    std::unordered_set<std::uint64_t> failed; ///< quarantined specs
    std::unordered_map<std::uint64_t, unsigned> starts; ///< attempts used
    /** `point` records replayed from the user-level cache. */
    std::uint64_t cachedPoints = 0;
    /** The dangling `point_start` (0 when every started point settled):
     *  what the worker is computing right now — or died inside. */
    std::uint64_t currentHash = 0;
    std::string currentSpec;
    double currentTsMs = 0.0;

    /** Attempts burned beyond each started point's first. */
    std::uint64_t
    retries() const
    {
        std::uint64_t n = 0;
        for (const auto &[h, c] : starts)
            n += c > 0 ? c - 1 : 0;
        return n;
    }
};

SegmentState
readSegmentState(const std::string &path, std::uint64_t seed)
{
    SegmentState st;
    const obs::RunLedger::LoadResult loaded = obs::RunLedger::load(path);
    for (const obs::RunRecord &rec : loaded.records) {
        if (rec.seed != seed)
            continue;
        if (rec.kind == "point") {
            st.done.insert(rec.specHash);
            if (rec.fromCache)
                ++st.cachedPoints;
            if (rec.specHash == st.currentHash)
                st.currentHash = 0;
        } else if (rec.kind == "point_failed") {
            st.failed.insert(rec.specHash);
            if (rec.specHash == st.currentHash)
                st.currentHash = 0;
        } else if (rec.kind == "point_start") {
            ++st.starts[rec.specHash];
            st.currentHash = rec.specHash;
            st.currentSpec = rec.spec;
            st.currentTsMs = rec.tsMs;
        }
    }
    if (st.currentHash != 0 && (st.done.count(st.currentHash) != 0 ||
                                st.failed.count(st.currentHash) != 0))
        st.currentHash = 0;
    return st;
}

/** Exponential backoff before respawn attempt number @p spawns + 1. */
Clock::duration
backoffDelay(double base_ms, unsigned spawns)
{
    const unsigned exp = spawns > 0 ? std::min(spawns - 1, 5u) : 0u;
    double d = base_ms * static_cast<double>(1u << exp);
    d = std::min(d, 5000.0);
    return std::chrono::milliseconds(static_cast<long>(d));
}

double
backoffBaseMs()
{
    if (const char *env = std::getenv("CAPART_SHARD_BACKOFF_MS")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && v >= 0.0)
            return v;
    }
    return 200.0;
}

void
countIf(const char *name, std::uint64_t n = 1)
{
    if (n > 0 && obs::enabled())
        obs::metrics().counter(name).inc(n);
}

/** One supervised worker process and its retry bookkeeping. */
struct ShardState
{
    unsigned id = 0;
    pid_t pid = -1;
    /** Every assigned point is complete or quarantined. */
    bool settled = false;
    /** Waiting out a backoff delay before the next spawn. */
    bool pendingRespawn = false;
    unsigned spawns = 0;
    /** Consecutive failures with neither a culprit point nor segment
     *  progress — the worker is dying before it reaches any point. */
    unsigned barren = 0;
    /** Workers SIGKILLed for exceeding the point timeout. */
    unsigned timeoutKills = 0;
    /** Worker deaths attributed to a crash (nonzero or early exit). */
    unsigned crashes = 0;
    std::uintmax_t sizeAtSpawn = 0;
    std::uintmax_t lastSize = 0;
    Clock::time_point lastBeat{};
    Clock::time_point respawnAt{};
    /** First spawn / settle times: the shard's wall-clock span. */
    Clock::time_point firstSpawnAt{};
    Clock::time_point settledAt{};
    bool everSpawned = false;
    bool settleStamped = false;
    std::vector<std::size_t> assigned; ///< indexes into the spec vector
};

} // namespace

unsigned
shardOf(std::uint64_t spec_hash, unsigned shards)
{
    return shards > 0 ? static_cast<unsigned>(spec_hash % shards) : 0;
}

static std::string
shardBase(const std::string &dir, const std::string &bench, unsigned shard)
{
    std::string base = dir;
    base += '/';
    base += bench.empty() ? "sweep" : bench;
    base += "-shard-";
    base += std::to_string(shard);
    return base;
}

std::string
shardSegmentPath(const std::string &dir, const std::string &bench,
                 unsigned shard)
{
    return shardBase(dir, bench, shard) + ".seg.jsonl";
}

std::string
shardResultsPath(const std::string &dir, const std::string &bench,
                 unsigned shard)
{
    return shardBase(dir, bench, shard) + ".results";
}

std::string
shardLogPath(const std::string &dir, const std::string &bench,
             unsigned shard)
{
    return shardBase(dir, bench, shard) + ".log";
}

// ---------------------------------------------------------- worker --

void
runShardWorker(const SweepRunnerOptions &opts,
               const std::vector<ExperimentSpec> &specs)
{
    const unsigned shards = opts.shards;
    const unsigned k = static_cast<unsigned>(opts.shardWorker);
    std::error_code ec;
    std::filesystem::create_directories(opts.ledgerDir, ec);
    const std::string seg_path =
        shardSegmentPath(opts.ledgerDir, opts.benchName, k);

    // Digest the segment an earlier attempt left *before* opening it
    // for append: complete and quarantined points fast-forward, a
    // dangling start means an attempt burned.
    const SegmentState prior = readSegmentState(seg_path, opts.baseSeed);
    obs::RunLedger segment(seg_path);
    ResultCache results(
        shardResultsPath(opts.ledgerDir, opts.benchName, k));
    // The user-level memoization cache (--cache-dir) is shared by all
    // shards: read-through before computing, write-back after. All
    // workers append to one file concurrently, which ResultCache's
    // per-line checksums make safe — a torn or interleaved line is
    // skipped on load, never misread.
    std::unique_ptr<ResultCache> user;
    if (!opts.cachePath.empty())
        user = std::make_unique<ResultCache>(opts.cachePath);
    const fault::ProcessChaos chaos = fault::ProcessChaos::fromEnv();

    SweepRunnerOptions wopts = opts;
    wopts.progress = nullptr; // the parent watches the segment grow
    wopts.ledger = nullptr;   // records target the segment explicitly

    for (const ExperimentSpec &spec : specs) {
        const std::uint64_t h = spec.hash();
        if (shardOf(h, shards) != k)
            continue;
        if (opts.stopFlag && *opts.stopFlag != 0)
            std::exit(128 + static_cast<int>(*opts.stopFlag));
        if (prior.failed.count(h) != 0)
            continue; // quarantined by the supervisor: never retried
        SweepResult replay;
        if (prior.done.count(h) != 0 &&
            results.lookup(specCacheKey(spec, opts.baseSeed), &replay))
            continue; // finished by an earlier attempt: fast-forward

        const std::uint64_t key = specCacheKey(spec, opts.baseSeed);
        SweepResult cached;
        if (user && user->lookup(key, &cached)) {
            // Replay the user-cache hit as if computed: copy it into
            // this shard's results file (the merge reads only shard
            // files) and append the point record the merge expects.
            // No point_start — a replay executes nothing, so it can
            // neither hang nor burn a retry attempt. A crash between
            // the store and the append just replays again next spawn.
            countIf("exec.cache_hits");
            results.store(key, cached);
            cached.fromCache = true;
            segment.append(pointRecord(wopts, spec, cached, 0.0));
            continue;
        }

        unsigned attempt = 0;
        const auto it = prior.starts.find(h);
        if (it != prior.starts.end())
            attempt = it->second;

        // Durable liveness marker first: if this process dies inside
        // the point, the dangling start is how the supervisor learns
        // which point killed it and how many tries it has had.
        obs::RunRecord start;
        start.kind = "point_start";
        start.bench = opts.benchName;
        start.run = opts.runId;
        start.spec = spec.canonical();
        start.specHash = h;
        start.seed = opts.baseSeed;
        start.tsMs = unixMillisNow();
        start.metrics.emplace_back("attempt",
                                   static_cast<double>(attempt));
        start.metrics.emplace_back("shard", static_cast<double>(k));
        segment.append(start);

        chaos.atPointStart(h, attempt);
        const SweepResult r = computePoint(wopts, spec, &results, &segment);
        if (user)
            user->store(key, r);
        if (chaos.tearAfterPoint(h, attempt))
            fault::ProcessChaos::tearAndDie(seg_path);
    }
    // Workers without an atexit exporter (the test harness) still feed
    // trace stitching: dump this process's trace before exiting.
    if (obs::enabled() && !opts.workerTraceOut.empty()) {
        std::ofstream os(opts.workerTraceOut, std::ios::trunc);
        if (os)
            obs::tracer().writeChromeTrace(os);
    }
    std::exit(0);
}

// ------------------------------------------------------ supervisor --

std::vector<SweepResult>
runShardedSweep(const SweepRunnerOptions &opts,
                const std::vector<ExperimentSpec> &specs)
{
    const unsigned shards = static_cast<unsigned>(std::min<std::size_t>(
        opts.shards, specs.size()));
    std::error_code ec;
    std::filesystem::create_directories(opts.ledgerDir, ec);
    // Initialize the shared user cache before any worker exists: a
    // worker that opens a missing/foreign file takes ResultCache's
    // truncate-and-rewrite path on first store, which would clobber
    // sibling workers' appends. With the header in place every worker
    // only ever appends, which is multi-process safe.
    if (!opts.cachePath.empty())
        ResultCache::initializeFile(opts.cachePath);

    const auto segPathOf = [&](unsigned k) {
        return shardSegmentPath(opts.ledgerDir, opts.benchName, k);
    };

    std::vector<ShardState> st(shards);
    std::vector<std::uint64_t> sweepHashes;
    sweepHashes.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        sweepHashes.push_back(specs[i].hash());
        st[shardOf(sweepHashes.back(), shards)].assigned.push_back(i);
    }
    for (unsigned k = 0; k < shards; ++k)
        st[k].id = k;

    // ---- live status plane ------------------------------------------
    // Everything below the `statusOn` gate is observability *output*:
    // derived from segment digests the supervisor reads anyway, written
    // to side files nothing reads back. With observability disabled (or
    // no --status-out/--prom-out) not a single extra syscall runs.
    const bool statusOn = obs::enabled() && (!opts.statusPath.empty() ||
                                             !opts.promPath.empty());
    const double sweepStartTsMs = unixMillisNow();
    const Clock::time_point sweepStart = Clock::now();
    std::vector<SegmentState> segCache(shards);
    std::vector<std::pair<std::string, unsigned>> workerMetrics;
    if (statusOn && !opts.workerMetricsBase.empty()) {
        for (unsigned k = 0; k < shards; ++k)
            workerMetrics.emplace_back(
                opts.workerMetricsBase + ".shard-" + std::to_string(k), k);
    }

    const auto shardStatusOf = [&](const ShardState &s) {
        obs::ShardStatus sh;
        sh.shard = s.id;
        sh.pid = s.pid > 0 ? static_cast<long>(s.pid) : -1;
        if (s.settled)
            sh.state = "settled";
        else if (s.pid > 0)
            sh.state = "running";
        else if (s.pendingRespawn)
            sh.state = "backoff";
        else
            sh.state = "idle";
        sh.pointsAssigned = s.assigned.size();
        const SegmentState &seg = segCache[s.id];
        for (const std::size_t idx : s.assigned) {
            const std::uint64_t h = sweepHashes[idx];
            if (seg.done.count(h) != 0)
                ++sh.pointsDone;
            else if (seg.failed.count(h) != 0)
                ++sh.pointsQuarantined;
        }
        sh.pointsFromCache = seg.cachedPoints;
        sh.retries = seg.retries();
        sh.spawns = s.spawns;
        sh.timeoutKills = s.timeoutKills;
        sh.crashes = s.crashes;
        if (s.pid > 0)
            sh.lastBeatAgeS = std::chrono::duration<double>(
                                  Clock::now() - s.lastBeat)
                                  .count();
        if (seg.currentHash != 0) {
            sh.currentSpec = seg.currentSpec;
            sh.currentSpecHash = seg.currentHash;
            sh.currentElapsedS =
                std::max(0.0, (unixMillisNow() - seg.currentTsMs) /
                                  1000.0);
        }
        return sh;
    };

    const auto writeStatus = [&](const std::string &state) {
        if (!statusOn)
            return;
        obs::SweepStatus ss;
        ss.bench = opts.benchName;
        ss.run = opts.runId;
        ss.state = state;
        ss.seed = opts.baseSeed;
        ss.shards = shards;
        ss.pointsTotal = specs.size();
        ss.startTsMs = sweepStartTsMs;
        ss.updatedTsMs = unixMillisNow();
        for (const ShardState &s : st) {
            obs::ShardStatus sh = shardStatusOf(s);
            ss.pointsDone += sh.pointsDone;
            ss.pointsFromCache += sh.pointsFromCache;
            ss.pointsQuarantined += sh.pointsQuarantined;
            ss.retries += sh.retries;
            ss.shardStates.push_back(std::move(sh));
        }
        const double elapsedMin =
            std::chrono::duration<double>(Clock::now() - sweepStart)
                .count() /
            60.0;
        if (ss.pointsDone > 0 && elapsedMin > 0.0)
            ss.throughputPointsPerMin =
                static_cast<double>(ss.pointsDone) / elapsedMin;
        const std::uint64_t settled = ss.pointsDone + ss.pointsQuarantined;
        if (ss.throughputPointsPerMin > 0.0 && settled < ss.pointsTotal)
            ss.etaS = static_cast<double>(ss.pointsTotal - settled) /
                      ss.throughputPointsPerMin * 60.0;
        else if (settled >= ss.pointsTotal)
            ss.etaS = 0.0;
        if (ss.pointsDone > 0)
            ss.cacheHitRate = static_cast<double>(ss.pointsFromCache) /
                              static_cast<double>(ss.pointsDone);
        if (!opts.statusPath.empty())
            obs::writeStatusFile(opts.statusPath, ss);
        if (!opts.promPath.empty())
            obs::writePromFile(opts.promPath, obs::metrics(), &ss,
                               workerMetrics);
    };

    if (!opts.resumeShards) {
        for (unsigned k = 0; k < shards; ++k) {
            std::filesystem::remove(segPathOf(k), ec);
            std::filesystem::remove(
                shardResultsPath(opts.ledgerDir, opts.benchName, k), ec);
            std::filesystem::remove(
                shardLogPath(opts.ledgerDir, opts.benchName, k), ec);
        }
    }

    const double backoff_base = backoffBaseMs();

    const auto allSettled = [&](const ShardState &s,
                                const SegmentState &seg) {
        for (const std::size_t idx : s.assigned) {
            const std::uint64_t h = sweepHashes[idx];
            if (seg.done.count(h) == 0 && seg.failed.count(h) == 0)
                return false;
        }
        return true;
    };

    const auto quarantine = [&](const ShardState &s, std::size_t idx,
                                const char *reason, unsigned attempts) {
        obs::RunLedger seg(segPathOf(s.id));
        obs::RunRecord rec;
        rec.kind = "point_failed";
        rec.bench = opts.benchName;
        rec.run = opts.runId;
        rec.spec = specs[idx].canonical();
        rec.specHash = sweepHashes[idx];
        rec.seed = opts.baseSeed;
        rec.tsMs = unixMillisNow();
        rec.rule = reason;
        rec.metrics.emplace_back("attempts",
                                 static_cast<double>(attempts));
        rec.metrics.emplace_back("shard", static_cast<double>(s.id));
        seg.append(rec);
        segCache[s.id].failed.insert(sweepHashes[idx]);
        capart_warn("shard " << s.id << ": quarantined point "
                             << specs[idx].canonical() << " after "
                             << attempts << " attempt(s) [" << reason
                             << "]");
        countIf("exec.points_quarantined");
        obs::tracer().instant(
            "shard.quarantine", "shard", obs::tracer().wallUs(),
            {{"shard", static_cast<double>(s.id)},
             {"attempts", static_cast<double>(attempts)}},
            obs::Track::Host);
    };

    const auto spawnShard = [&](ShardState &s) {
        std::vector<std::string> args = opts.workerCmd;
        // The clamped count, not opts.shards: workers partition by
        // hash % shards, and both sides must use the same modulus or
        // points with hash % opts.shards >= shards would never be
        // assigned to any worker.
        args.push_back("--shards=" + std::to_string(shards));
        args.push_back("--shard-worker=" + std::to_string(s.id));
        args.push_back("--ledger-dir=" + opts.ledgerDir);
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);

        const std::string log =
            shardLogPath(opts.ledgerDir, opts.benchName, s.id);
        posix_spawn_file_actions_t fa;
        posix_spawn_file_actions_init(&fa);
        posix_spawn_file_actions_addopen(
            &fa, 1, log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
        posix_spawn_file_actions_adddup2(&fa, 1, 2);
        pid_t pid = -1;
        const int rc = posix_spawn(&pid, argv[0], &fa, nullptr,
                                   argv.data(), environ);
        posix_spawn_file_actions_destroy(&fa);
        s.pendingRespawn = false;
        ++s.spawns;
        if (rc != 0) {
            capart_warn("shard " << s.id << ": posix_spawn failed: "
                                 << std::strerror(rc));
            s.pid = -1;
            return false;
        }
        s.pid = pid;
        s.sizeAtSpawn = fileSizeOr0(segPathOf(s.id));
        s.lastSize = s.sizeAtSpawn;
        s.lastBeat = Clock::now();
        if (!s.everSpawned) {
            s.everSpawned = true;
            s.firstSpawnAt = s.lastBeat;
        }
        countIf("exec.shard_spawns");
        // First spawn vs respawn get distinct instants so a stitched
        // trace shows recovery churn at a glance.
        if (s.spawns > 1)
            obs::tracer().instant(
                "shard.respawn", "shard", obs::tracer().wallUs(),
                {{"shard", static_cast<double>(s.id)},
                 {"spawn", static_cast<double>(s.spawns)}},
                obs::Track::Host);
        else
            obs::tracer().instant(
                "shard.spawn", "shard", obs::tracer().wallUs(),
                {{"shard", static_cast<double>(s.id)},
                 {"pid", static_cast<double>(pid)}},
                obs::Track::Host);
        return true;
    };

    /**
     * A worker died (nonzero exit, SIGKILLed for a hang, or exited
     * without finishing): decide quarantine vs. respawn. The culprit is
     * the unfinished point with a dangling `point_start`; its start
     * count is the attempts it has burned.
     */
    const auto onFailure = [&](ShardState &s, const char *reason) {
        SegmentState seg = readSegmentState(segPathOf(s.id),
                                            opts.baseSeed);
        segCache[s.id] = seg;
        if (std::strcmp(reason, "crash") == 0) {
            ++s.crashes;
            obs::tracer().instant(
                "shard.crash", "shard", obs::tracer().wallUs(),
                {{"shard", static_cast<double>(s.id)}},
                obs::Track::Host);
        }
        if (allSettled(s, seg)) {
            s.settled = true;
            return;
        }
        bool found = false;
        std::size_t culprit = 0;
        unsigned tries = 0;
        for (const std::size_t idx : s.assigned) {
            const std::uint64_t h = sweepHashes[idx];
            if (seg.done.count(h) != 0 || seg.failed.count(h) != 0)
                continue;
            const auto it = seg.starts.find(h);
            if (it != seg.starts.end() &&
                (!found || it->second > tries)) {
                found = true;
                culprit = idx;
                tries = it->second;
            }
        }
        const bool progressed =
            fileSizeOr0(segPathOf(s.id)) > s.sizeAtSpawn;
        if (found) {
            s.barren = 0;
            if (tries > opts.maxRetries) {
                quarantine(s, culprit, reason, tries);
                seg.failed.insert(sweepHashes[culprit]);
                if (allSettled(s, seg)) {
                    s.settled = true;
                    return;
                }
            }
        } else if (progressed) {
            s.barren = 0;
        } else {
            // Dying before reaching any point: the shard itself is
            // broken (bad binary, bad environment). Bounded like a
            // point, then everything left is quarantined — a sweep
            // must end, never spin.
            ++s.barren;
            if (s.barren > opts.maxRetries) {
                for (const std::size_t idx : s.assigned) {
                    const std::uint64_t h = sweepHashes[idx];
                    if (seg.done.count(h) == 0 &&
                        seg.failed.count(h) == 0)
                        quarantine(s, idx, "shard_failed", s.barren);
                }
                s.settled = true;
                return;
            }
        }
        countIf("exec.shard_retries");
        s.pendingRespawn = true;
        s.respawnAt =
            Clock::now() + backoffDelay(backoff_base, s.spawns);
    };

    // ---- initial spawn ----------------------------------------------
    for (ShardState &s : st) {
        if (s.assigned.empty()) {
            s.settled = true;
            continue;
        }
        if (opts.resumeShards) {
            const SegmentState seg =
                readSegmentState(segPathOf(s.id), opts.baseSeed);
            if (allSettled(s, seg)) {
                s.settled = true;
                continue;
            }
        }
        if (!spawnShard(s)) {
            s.pendingRespawn = true;
            s.respawnAt =
                Clock::now() + backoffDelay(backoff_base, s.spawns);
        }
    }

    // ---- supervision loop -------------------------------------------
    bool interrupted = false;
    int stop_sig = 0;
    std::vector<std::size_t> doneCounts(shards, 0);
    std::size_t reportedDone = 0;
    const auto statusPeriod = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(std::max(opts.statusPeriodS, 0.05)));
    Clock::time_point nextStatusAt = Clock::now();

    while (true) {
        if (opts.stopFlag && *opts.stopFlag != 0) {
            interrupted = true;
            stop_sig = static_cast<int>(*opts.stopFlag);
            // Graceful first: SIGTERM, a short grace period, SIGKILL.
            for (ShardState &s : st)
                if (s.pid > 0)
                    kill(s.pid, SIGTERM);
            const auto deadline =
                Clock::now() + std::chrono::seconds(2);
            bool alive = true;
            while (alive && Clock::now() < deadline) {
                alive = false;
                for (ShardState &s : st) {
                    if (s.pid <= 0)
                        continue;
                    int status = 0;
                    if (waitpid(s.pid, &status, WNOHANG) == s.pid)
                        s.pid = -1;
                    else
                        alive = true;
                }
                if (alive)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(20));
            }
            for (ShardState &s : st) {
                if (s.pid <= 0)
                    continue;
                kill(s.pid, SIGKILL);
                int status = 0;
                waitpid(s.pid, &status, 0);
                s.pid = -1;
            }
            break;
        }

        bool any_active = false;
        for (ShardState &s : st) {
            if (s.settled)
                continue;

            if (s.pid > 0) {
                int status = 0;
                const pid_t r = waitpid(s.pid, &status, WNOHANG);
                if (r == s.pid) {
                    s.pid = -1;
                    const bool clean = WIFEXITED(status) &&
                                       WEXITSTATUS(status) == 0;
                    if (clean) {
                        const SegmentState seg = readSegmentState(
                            segPathOf(s.id), opts.baseSeed);
                        segCache[s.id] = seg;
                        if (allSettled(s, seg))
                            s.settled = true;
                        else
                            onFailure(s, "crash");
                    } else {
                        onFailure(s, "crash");
                    }
                }
            }

            if (s.pid > 0) {
                // Liveness is the segment itself: each point append is
                // a heartbeat. No growth within the timeout means the
                // current point hung — SIGKILL and treat as a failure
                // of that (dangling-start) point.
                const std::uintmax_t size =
                    fileSizeOr0(segPathOf(s.id));
                if (size > s.lastSize) {
                    s.lastSize = size;
                    s.lastBeat = Clock::now();
                    const SegmentState seg = readSegmentState(
                        segPathOf(s.id), opts.baseSeed);
                    segCache[s.id] = seg;
                    std::size_t n = 0;
                    for (const std::size_t idx : s.assigned) {
                        const std::uint64_t h = sweepHashes[idx];
                        if (seg.done.count(h) != 0 ||
                            seg.failed.count(h) != 0)
                            ++n;
                    }
                    doneCounts[s.id] = n;
                } else if (opts.pointTimeoutS > 0.0 &&
                           std::chrono::duration<double>(
                               Clock::now() - s.lastBeat)
                                   .count() > opts.pointTimeoutS) {
                    capart_warn("shard "
                                << s.id << ": no progress for "
                                << opts.pointTimeoutS
                                << "s, killing hung worker (pid "
                                << s.pid << ")");
                    kill(s.pid, SIGKILL);
                    int status = 0;
                    waitpid(s.pid, &status, 0);
                    s.pid = -1;
                    ++s.timeoutKills;
                    countIf("exec.shard_timeouts");
                    obs::tracer().instant(
                        "shard.timeout_kill", "shard",
                        obs::tracer().wallUs(),
                        {{"shard", static_cast<double>(s.id)}},
                        obs::Track::Host);
                    onFailure(s, "timeout");
                }
            }

            if (!s.settled && s.pid <= 0) {
                if (!s.pendingRespawn) {
                    // Defensive: never strand an unsettled shard.
                    s.pendingRespawn = true;
                    s.respawnAt = Clock::now();
                }
                if (Clock::now() >= s.respawnAt && !spawnShard(s)) {
                    ++s.barren;
                    if (s.barren > opts.maxRetries) {
                        const SegmentState seg = readSegmentState(
                            segPathOf(s.id), opts.baseSeed);
                        for (const std::size_t idx : s.assigned) {
                            const std::uint64_t h = sweepHashes[idx];
                            if (seg.done.count(h) == 0 &&
                                seg.failed.count(h) == 0)
                                quarantine(s, idx, "shard_failed",
                                           s.barren);
                        }
                        s.settled = true;
                    } else {
                        s.pendingRespawn = true;
                        s.respawnAt = Clock::now() +
                                      backoffDelay(backoff_base,
                                                   s.spawns);
                    }
                }
            }

            if (!s.settled)
                any_active = true;
            else
                doneCounts[s.id] = s.assigned.size();

            if (s.settled && !s.settleStamped) {
                s.settleStamped = true;
                s.settledAt = Clock::now();
                obs::tracer().instant(
                    "shard.settled", "shard", obs::tracer().wallUs(),
                    {{"shard", static_cast<double>(s.id)}},
                    obs::Track::Host);
            }
        }

        if (statusOn && Clock::now() >= nextStatusAt) {
            writeStatus("running");
            nextStatusAt = Clock::now() + statusPeriod;
        }

        if (opts.progress) {
            std::size_t total_done = 0;
            for (const std::size_t n : doneCounts)
                total_done += n;
            total_done = std::min(total_done, specs.size());
            if (total_done > reportedDone) {
                reportedDone = total_done;
                opts.progress(total_done, specs.size());
            }
        }

        if (!any_active)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // ---- merge segments into the canonical ledger -------------------
    std::vector<std::string> seg_paths;
    seg_paths.reserve(shards);
    for (unsigned k = 0; k < shards; ++k)
        seg_paths.push_back(segPathOf(k));
    obs::MergeOptions mo;
    mo.filterSeed = true;
    mo.expectedSeed = opts.baseSeed;
    mo.specFilter = sweepHashes;
    const obs::MergeResult merged = obs::mergeLedgerSegments(seg_paths, mo);
    countIf("exec.merge_torn_lines", merged.tornLines);
    countIf("exec.merge_duplicates_dropped", merged.duplicatesDropped);

    std::unordered_set<std::uint64_t> quarantined;
    std::unordered_set<std::uint64_t> mergedPoints;
    for (const obs::RunRecord &rec : merged.records) {
        if (rec.kind == "point_failed")
            quarantined.insert(rec.specHash);
        else if (rec.kind == "point")
            mergedPoints.insert(rec.specHash);
    }

    if (opts.ledger) {
        // Segments carry worker run ids (and, across a resume, several
        // of them); the canonical ledger gets every record under the
        // supervisor's single run id so the report layer groups the
        // whole sweep as one run.
        for (obs::RunRecord rec : merged.records) {
            rec.run = opts.runId;
            rec.bench = opts.benchName;
            opts.ledger->append(rec);
        }
    }

    // Refresh every digest from disk so the final status (and the
    // per-shard summary records below) agree exactly with the merged
    // ledger — the supervision loop's cache can trail the last writes.
    if (statusOn) {
        for (unsigned k = 0; k < shards; ++k)
            segCache[k] = readSegmentState(segPathOf(k), opts.baseSeed);
    }

    if (opts.ledger) {
        // One `shard` summary record per shard: the fleet bookkeeping
        // (spawns, retries, kills, quarantines) the report layer turns
        // into its per-shard table. Deterministic given the same sweep
        // and chaos schedule, so the canonical ledger's record set does
        // not depend on whether the live status plane was armed.
        for (const ShardState &s : st) {
            const SegmentState seg =
                statusOn ? segCache[s.id]
                         : readSegmentState(segPathOf(s.id),
                                            opts.baseSeed);
            obs::RunRecord rec;
            rec.kind = "shard";
            rec.bench = opts.benchName;
            rec.run = opts.runId;
            rec.seed = opts.baseSeed;
            rec.tsMs = unixMillisNow();
            if (s.everSpawned) {
                const Clock::time_point end =
                    s.settleStamped ? s.settledAt : Clock::now();
                rec.wallMs = std::chrono::duration<double, std::milli>(
                                 end - s.firstSpawnAt)
                                 .count();
            }
            std::uint64_t done = 0;
            std::uint64_t failed = 0;
            for (const std::size_t idx : s.assigned) {
                const std::uint64_t h = sweepHashes[idx];
                if (seg.done.count(h) != 0)
                    ++done;
                else if (seg.failed.count(h) != 0)
                    ++failed;
            }
            auto &m = rec.metrics;
            m.emplace_back("shard", static_cast<double>(s.id));
            m.emplace_back("points_assigned",
                           static_cast<double>(s.assigned.size()));
            m.emplace_back("points_done", static_cast<double>(done));
            m.emplace_back("points_from_cache",
                           static_cast<double>(seg.cachedPoints));
            m.emplace_back("points_quarantined",
                           static_cast<double>(failed));
            m.emplace_back("retries",
                           static_cast<double>(seg.retries()));
            m.emplace_back("spawns", static_cast<double>(s.spawns));
            m.emplace_back("timeout_kills",
                           static_cast<double>(s.timeoutKills));
            m.emplace_back("crashes", static_cast<double>(s.crashes));
            opts.ledger->append(rec);
        }
    }

    if (interrupted) {
        if (opts.ledger) {
            obs::RunRecord rec;
            rec.kind = "run_interrupted";
            rec.bench = opts.benchName;
            rec.run = opts.runId;
            rec.seed = opts.baseSeed;
            rec.tsMs = unixMillisNow();
            rec.rule = stop_sig == SIGINT ? "SIGINT" : "SIGTERM";
            opts.ledger->append(rec);
        }
        obs::tracer().instant("sweep.interrupted", "shard",
                              obs::tracer().wallUs(), {},
                              obs::Track::Host);
        writeStatus("interrupted");
        capart_inform("sweep interrupted: merged "
                      << merged.records.size()
                      << " completed record(s); resume with --resume");
        // Exit through atexit so the bench exporters flush; the
        // standard 128+signal code tells callers what stopped us.
        std::exit(128 + stop_sig);
    }

    writeStatus("complete");

    // ---- assemble results in spec order -----------------------------
    std::vector<SweepResult> results(specs.size());
    std::vector<std::unique_ptr<ResultCache>> caches(shards);
    std::uint64_t recomputed = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const unsigned k = shardOf(sweepHashes[i], shards);
        if (!caches[k])
            caches[k] = std::make_unique<ResultCache>(
                shardResultsPath(opts.ledgerDir, opts.benchName, k));
        if (caches[k]->lookup(specCacheKey(specs[i], opts.baseSeed),
                              &results[i])) {
            // Computed by this sweep (in a worker), not replayed from a
            // user-level cache: report it as fresh.
            results[i].fromCache = false;
            continue;
        }
        if (quarantined.count(sweepHashes[i]) != 0) {
            results[i] = SweepResult{};
            results[i].failed = true;
            continue;
        }
        // Segment said done but the results file lost the entry
        // (corrupt line): recompute inline — never return garbage.
        // The merge already appended this spec's `point` record to the
        // canonical ledger in the usual case; only ledger the recompute
        // when the segment lost the record too, so no spec ever gets
        // duplicate `point` records under one run id.
        ++recomputed;
        results[i] = computePoint(
            opts, specs[i], caches[k].get(),
            mergedPoints.count(sweepHashes[i]) != 0 ? nullptr
                                                    : opts.ledger);
    }
    countIf("exec.shard_result_misses", recomputed);
    if (opts.progress)
        opts.progress(specs.size(), specs.size());
    return results;
}

} // namespace capart::exec
