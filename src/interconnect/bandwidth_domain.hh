/**
 * @file
 * A shared, unpartitionable bandwidth resource with queueing delay.
 *
 * Both the on-chip ring interconnect and the off-chip DRAM interface are
 * modeled this way: traffic from all hardware threads shares a peak
 * rate, and latency inflates as utilization approaches saturation
 * (M/M/1-flavoured 1/(1-u) growth, clamped). The paper identifies these
 * two domains as the resources partitioning *cannot* protect (§3.4, §8).
 */

#ifndef CAPART_INTERCONNECT_BANDWIDTH_DOMAIN_HH
#define CAPART_INTERCONNECT_BANDWIDTH_DOMAIN_HH

#include <cstdint>

#include "common/types.hh"
#include "stats/rate_window.hh"

namespace capart
{

/** Static parameters of one bandwidth domain. */
struct BandwidthDomainConfig
{
    /** Sustained peak in bytes/second. */
    double peakBytesPerSec = 21e9;
    /** Unloaded access latency in core cycles. */
    Cycles baseLatency = 180;
    /** Latency cap as a multiple of baseLatency when saturated. */
    double maxQueueFactor = 8.0;
    /** Queueing sensitivity: latency = base*(1 + k*u/(1-u)). */
    double queueGain = 0.35;
    /** Sliding-window bucket width for utilization estimation. */
    Seconds bucketWidth = 25e-6;
    /** Number of buckets in the utilization window. */
    unsigned buckets = 8;
};

/** Runtime state of a bandwidth domain. */
class BandwidthDomain
{
  public:
    explicit BandwidthDomain(const BandwidthDomainConfig &cfg)
        : cfg_(cfg), window_(cfg.bucketWidth, cfg.buckets)
    {
    }

    /** Account @p bytes of traffic at simulated time @p now. */
    void
    record(Seconds now, std::uint64_t bytes)
    {
        window_.record(now, bytes);
    }

    /** Fraction of peak currently consumed, clamped to [0, 1). */
    double
    utilization(Seconds now) const
    {
        const double u = window_.rate(now) / cfg_.peakBytesPerSec;
        // Clamp just below 1 so the queueing term stays finite; the
        // latency cap below bounds the result anyway.
        return u < 0.0 ? 0.0 : (u > 0.995 ? 0.995 : u);
    }

    /** Effective access latency under the current load. */
    Cycles
    effectiveLatency(Seconds now) const
    {
        const double u = utilization(now);
        const double factor = 1.0 + cfg_.queueGain * u / (1.0 - u);
        const double capped =
            factor > cfg_.maxQueueFactor ? cfg_.maxQueueFactor : factor;
        return static_cast<Cycles>(
            static_cast<double>(cfg_.baseLatency) * capped);
    }

    /** Total bytes ever moved through the domain. */
    std::uint64_t totalBytes() const { return window_.total(); }

    const BandwidthDomainConfig &config() const { return cfg_; }

  private:
    BandwidthDomainConfig cfg_;
    RateWindow window_;
};

} // namespace capart

#endif // CAPART_INTERCONNECT_BANDWIDTH_DOMAIN_HH
