/**
 * @file
 * The on-chip ring interconnect between cores and LLC slices.
 *
 * Every LLC access (demand, prefetch, or uncached stream) crosses the
 * ring; heavy aggregate traffic inflates LLC access latency for all
 * sharers. The ring cannot be partitioned on the paper's hardware.
 */

#ifndef CAPART_INTERCONNECT_RING_HH
#define CAPART_INTERCONNECT_RING_HH

#include "interconnect/bandwidth_domain.hh"

namespace capart
{

/** Ring interconnect: a high-peak, low-latency bandwidth domain. */
class RingInterconnect
{
  public:
    /** Sandy Bridge client ring: ~100 GB/s, a handful of hop cycles. */
    static BandwidthDomainConfig
    defaultConfig()
    {
        BandwidthDomainConfig cfg;
        cfg.peakBytesPerSec = 100e9;
        cfg.baseLatency = 8;
        cfg.maxQueueFactor = 4.0;
        cfg.queueGain = 0.25;
        return cfg;
    }

    explicit RingInterconnect(
        const BandwidthDomainConfig &cfg = defaultConfig())
        : domain_(cfg)
    {
    }

    BandwidthDomain &domain() { return domain_; }
    const BandwidthDomain &domain() const { return domain_; }

    /** Extra cycles an LLC access pays for ring occupancy right now. */
    Cycles
    extraLatency(Seconds now) const
    {
        return domain_.effectiveLatency(now) - domain_.config().baseLatency;
    }

  private:
    BandwidthDomain domain_;
};

} // namespace capart

#endif // CAPART_INTERCONNECT_RING_HH
