#include "prefetch/prefetchers.hh"

namespace capart
{

std::uint32_t
PrefetchConfig::toMsrBits() const
{
    std::uint32_t bits = 0;
    if (!mlcStreamer)
        bits |= 1u << 0;
    if (!mlcSpatial)
        bits |= 1u << 1;
    if (!dcuStreamer)
        bits |= 1u << 2;
    if (!dcuIp)
        bits |= 1u << 3;
    return bits;
}

PrefetchConfig
PrefetchConfig::fromMsrBits(std::uint32_t bits)
{
    PrefetchConfig cfg;
    cfg.mlcStreamer = !(bits & (1u << 0));
    cfg.mlcSpatial = !(bits & (1u << 1));
    cfg.dcuStreamer = !(bits & (1u << 2));
    cfg.dcuIp = !(bits & (1u << 3));
    return cfg;
}

PrefetcherBank::PrefetcherBank(const PrefetchConfig &cfg)
    : cfg_(cfg)
{
    recentLine_.fill(~0ULL);
    recentCount_.fill(0);
}

void
PrefetcherBank::observe(std::uint64_t pc, Addr line, bool missed_l1,
                        std::vector<PrefetchRequest> &out)
{
    if (cfg_.dcuIp)
        trainDcuIp(pc, line, out);
    if (cfg_.dcuStreamer)
        trainDcuStreamer(line, out);
    // The MLC units sit behind the L1 and only see the miss stream.
    if (missed_l1) {
        if (cfg_.mlcSpatial)
            trainMlcSpatial(line, out);
        if (cfg_.mlcStreamer)
            trainMlcStreamer(line, out);
    }
}

void
PrefetcherBank::trainDcuIp(std::uint64_t pc, Addr line,
                           std::vector<PrefetchRequest> &out)
{
    IpEntry &e = ipTable_[pc % kIpEntries];
    if (e.tag != pc) {
        e.tag = pc;
        e.lastLine = line;
        e.stride = 0;
        e.confidence = 0;
        return;
    }
    const std::int64_t stride =
        static_cast<std::int64_t>(line) -
        static_cast<std::int64_t>(e.lastLine);
    if (stride != 0 && stride == e.stride) {
        if (e.confidence < 3)
            ++e.confidence;
    } else {
        e.confidence = 0;
    }
    e.stride = stride;
    e.lastLine = line;
    if (e.confidence >= 2 && stride != 0) {
        out.push_back(PrefetchRequest{
            static_cast<Addr>(static_cast<std::int64_t>(line) + stride),
            true});
        ++stats_.dcuIpIssued;
    }
}

void
PrefetcherBank::trainDcuStreamer(Addr line, std::vector<PrefetchRequest> &out)
{
    // Look for the line in the recent-access buffer; a second touch
    // within the buffer's lifetime triggers a next-line prefetch.
    for (unsigned i = 0; i < kRecentLines; ++i) {
        if (recentLine_[i] == line) {
            if (++recentCount_[i] == 2) {
                out.push_back(PrefetchRequest{line + 1, true});
                ++stats_.dcuStreamIssued;
            }
            return;
        }
    }
    recentLine_[recentNext_] = line;
    recentCount_[recentNext_] = 1;
    recentNext_ = (recentNext_ + 1) % kRecentLines;
}

void
PrefetcherBank::trainMlcSpatial(Addr line, std::vector<PrefetchRequest> &out)
{
    // Two successive lines trigger a fetch of the next adjacent line.
    if (lastMlcLine_ != ~0ULL && line == lastMlcLine_ + 1) {
        out.push_back(PrefetchRequest{line + 1, false});
        ++stats_.mlcSpatialIssued;
    }
    lastMlcLine_ = line;
}

void
PrefetcherBank::trainMlcStreamer(Addr line, std::vector<PrefetchRequest> &out)
{
    const std::uint64_t page = line / kPageLines;
    StreamEntry &e = streamTable_[page % kStreamEntries];
    if (e.page != page) {
        e.page = page;
        e.lastLine = line;
        e.direction = 0;
        e.confidence = 0;
        return;
    }
    const int dir = (line > e.lastLine) ? 1 : (line < e.lastLine ? -1 : 0);
    if (dir != 0 && dir == e.direction) {
        if (e.confidence < 3)
            ++e.confidence;
    } else if (dir != 0) {
        e.direction = dir;
        e.confidence = 1;
    }
    e.lastLine = line;
    if (e.confidence >= 2) {
        for (unsigned d = 1; d <= kStreamDegree; ++d) {
            const std::int64_t target =
                static_cast<std::int64_t>(line) + e.direction *
                static_cast<std::int64_t>(d);
            if (target < 0)
                break;
            // Streams do not cross 4 KB page boundaries (physical
            // prefetchers cannot).
            if (static_cast<Addr>(target) / kPageLines != page)
                break;
            out.push_back(PrefetchRequest{static_cast<Addr>(target), false});
            ++stats_.mlcStreamIssued;
        }
    }
}

} // namespace capart
