/**
 * @file
 * Models of the four Sandy Bridge hardware prefetchers (§3.3):
 *
 *  1. DCU IP prefetcher       — per-PC stride detection into the L1D.
 *  2. DCU streamer            — repeated reads to one line trigger a
 *                               next-line prefetch into the L1D.
 *  3. MLC spatial prefetcher  — accesses to two successive lines trigger
 *                               an adjacent-line prefetch into the L2.
 *  4. MLC streamer            — per-page stream detection, prefetches
 *                               ahead into the L2.
 *
 * Enable/disable mirrors MSR 0x1A4 (a set bit *disables* the prefetcher,
 * as on real hardware).
 */

#ifndef CAPART_PREFETCH_PREFETCHERS_HH
#define CAPART_PREFETCH_PREFETCHERS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace capart
{

/** Which prefetchers are active on a core. */
struct PrefetchConfig
{
    bool mlcStreamer = true;
    bool mlcSpatial = true;
    bool dcuStreamer = true;
    bool dcuIp = true;

    /** All four on (hardware default) or all four off. */
    static PrefetchConfig
    allEnabled(bool on)
    {
        return PrefetchConfig{on, on, on, on};
    }

    /**
     * Encode as MSR 0x1A4 low bits. Bit semantics follow Intel's
     * documentation: bit0 MLC streamer, bit1 MLC spatial, bit2 DCU
     * streamer, bit3 DCU IP — a *set* bit disables the unit.
     */
    std::uint32_t toMsrBits() const;
    static PrefetchConfig fromMsrBits(std::uint32_t bits);

    bool operator==(const PrefetchConfig &) const = default;
};

/** One prefetch the bank wants issued. */
struct PrefetchRequest
{
    Addr line = 0;
    bool intoL1 = false; //!< true: DCU target (L1D); false: MLC (L2)
};

/** Per-prefetcher issue counters. */
struct PrefetchStats
{
    std::uint64_t dcuIpIssued = 0;
    std::uint64_t dcuStreamIssued = 0;
    std::uint64_t mlcSpatialIssued = 0;
    std::uint64_t mlcStreamIssued = 0;

    std::uint64_t
    totalIssued() const
    {
        return dcuIpIssued + dcuStreamIssued + mlcSpatialIssued +
               mlcStreamIssued;
    }
};

/**
 * The prefetch units attached to one core. The simulator reports every
 * demand access; the bank appends any prefetch requests to a caller-owned
 * vector (no allocation on the common path).
 */
class PrefetcherBank
{
  public:
    explicit PrefetcherBank(const PrefetchConfig &cfg = PrefetchConfig{});

    /**
     * Train on a demand access and emit prefetch requests.
     *
     * @param pc          synthetic instruction pointer of the access.
     * @param line        line address demanded.
     * @param missed_l1   the access missed the L1 (MLC units train on the
     *                    L2-visible stream only).
     * @param out         requests are appended here.
     */
    void observe(std::uint64_t pc, Addr line, bool missed_l1,
                 std::vector<PrefetchRequest> &out);

    void setConfig(const PrefetchConfig &cfg) { cfg_ = cfg; }
    const PrefetchConfig &config() const { return cfg_; }
    const PrefetchStats &stats() const { return stats_; }
    void resetStats() { stats_ = PrefetchStats{}; }

  private:
    /** DCU IP table entry: last line + stride + 2-bit confidence. */
    struct IpEntry
    {
        std::uint64_t tag = 0;
        Addr lastLine = 0;
        std::int64_t stride = 0;
        unsigned confidence = 0;
    };

    /** MLC streamer entry: one per detected 4 KB page stream. */
    struct StreamEntry
    {
        std::uint64_t page = ~0ULL;
        Addr lastLine = 0;
        int direction = 0;
        unsigned confidence = 0;
    };

    static constexpr unsigned kIpEntries = 64;
    static constexpr unsigned kStreamEntries = 16;
    static constexpr unsigned kRecentLines = 8;
    static constexpr unsigned kStreamDegree = 2;
    /** Lines per 4 KB page. */
    static constexpr Addr kPageLines = 4096 / kLineBytes;

    void trainDcuIp(std::uint64_t pc, Addr line,
                    std::vector<PrefetchRequest> &out);
    void trainDcuStreamer(Addr line, std::vector<PrefetchRequest> &out);
    void trainMlcSpatial(Addr line, std::vector<PrefetchRequest> &out);
    void trainMlcStreamer(Addr line, std::vector<PrefetchRequest> &out);

    PrefetchConfig cfg_;
    PrefetchStats stats_;

    std::array<IpEntry, kIpEntries> ipTable_{};
    std::array<StreamEntry, kStreamEntries> streamTable_{};
    /** Recently demanded lines + per-line repeat counts (DCU streamer). */
    std::array<Addr, kRecentLines> recentLine_{};
    std::array<unsigned, kRecentLines> recentCount_{};
    unsigned recentNext_ = 0;
    /** Last L2-visible line (MLC spatial successive-line detector). */
    Addr lastMlcLine_ = ~0ULL;
};

} // namespace capart

#endif // CAPART_PREFETCH_PREFETCHERS_HH
