/**
 * @file
 * Performance-monitoring framework modeled on libpfm/perf_events (§2.2).
 *
 * The simulator feeds raw event deltas; software (the dynamic
 * partitioning framework, the benches) reads counters and windowed
 * derived metrics such as MPKI over 100 ms intervals (§6.2).
 */

#ifndef CAPART_PERF_PERF_COUNTERS_HH
#define CAPART_PERF_PERF_COUNTERS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace capart
{

/** Hardware events the framework exposes. */
enum class PerfEvent : unsigned
{
    Instructions = 0,
    Cycles,
    LlcReferences,
    LlcMisses,
    DramReads,
    DramWrites,
    kCount
};

/** Human-readable event name (perf-style). */
const char *perfEventName(PerfEvent ev);

/** One application's (or thread-group's) free-running counters. */
class PerfCounterSet
{
  public:
    void
    add(PerfEvent ev, std::uint64_t delta)
    {
        counts_[static_cast<unsigned>(ev)] += delta;
    }

    std::uint64_t
    read(PerfEvent ev) const
    {
        return counts_[static_cast<unsigned>(ev)];
    }

    void reset() { counts_.fill(0); }

    /** Misses per kilo-instruction since counter reset. */
    double mpki() const;

    /** LLC accesses per kilo-instruction since counter reset. */
    double apki() const;

    /** Instructions per cycle since counter reset. */
    double ipc() const;

  private:
    std::array<std::uint64_t, static_cast<unsigned>(PerfEvent::kCount)>
        counts_{};
};

/** Derived metrics for one completed sampling window. */
struct PerfWindow
{
    Seconds start = 0.0;
    Seconds end = 0.0;
    Insts insts = 0;
    std::uint64_t llcAccesses = 0;
    std::uint64_t llcMisses = 0;
    double mpki = 0.0;
    double apki = 0.0;
};

/**
 * Interposition point on window delivery, used by the fault-injection
 * framework (src/fault) to model the telemetry failures commodity
 * monitoring suffers: dropped sampling deadlines, corrupted counter
 * reads, and stale values.
 */
class WindowFaultHook
{
  public:
    virtual ~WindowFaultHook() = default;

    /**
     * Called as window @p index of stream @p stream closes, before the
     * window is published. The hook may mutate @p w (corrupt or stale
     * counters) or return false to drop the window entirely.
     */
    virtual bool onWindowClose(std::uint64_t stream, std::uint64_t index,
                               PerfWindow &w) = 0;
};

/**
 * Samples one application's counters at a fixed simulated-time period
 * and produces completed @ref PerfWindow records, mirroring the 100 ms
 * monitoring loop of the paper's software framework. The period is
 * configurable because the simulator runs scaled-down applications.
 */
class PerfMonitor
{
  public:
    explicit PerfMonitor(Seconds window_length);

    /** Feed event deltas attributed to the monitored app at @p now. */
    void record(Seconds now, Insts insts, std::uint64_t llc_accesses,
                std::uint64_t llc_misses);

    /** Windows completed so far (close on the fly as time advances). */
    const std::vector<PerfWindow> &windows() const { return windows_; }

    /** Number of windows completed so far. */
    std::size_t windowCount() const { return windows_.size(); }

    Seconds windowLength() const { return windowLength_; }

    /**
     * Install a (non-owned) fault hook consulted as windows close.
     * @p stream tags this monitor in the hook's callbacks (callers use
     * the monitored application's id).
     */
    void
    setFaultHook(WindowFaultHook *hook, std::uint64_t stream)
    {
        hook_ = hook;
        stream_ = stream;
    }

    /** Windows suppressed by the fault hook (dropped deadlines). */
    std::uint64_t droppedWindows() const { return dropped_; }

  private:
    void closeWindow(Seconds boundary);

    Seconds windowLength_;
    Seconds windowStart_ = 0.0;
    Insts insts_ = 0;
    std::uint64_t acc_ = 0;
    std::uint64_t miss_ = 0;
    std::vector<PerfWindow> windows_;
    WindowFaultHook *hook_ = nullptr;
    std::uint64_t stream_ = 0;
    std::uint64_t closed_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace capart

#endif // CAPART_PERF_PERF_COUNTERS_HH
