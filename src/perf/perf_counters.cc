#include "perf/perf_counters.hh"

#include "common/logging.hh"

namespace capart
{

const char *
perfEventName(PerfEvent ev)
{
    switch (ev) {
      case PerfEvent::Instructions:
        return "instructions";
      case PerfEvent::Cycles:
        return "cycles";
      case PerfEvent::LlcReferences:
        return "LLC-references";
      case PerfEvent::LlcMisses:
        return "LLC-misses";
      case PerfEvent::DramReads:
        return "dram-reads";
      case PerfEvent::DramWrites:
        return "dram-writes";
      case PerfEvent::kCount:
        break;
    }
    capart_panic("unknown perf event");
}

double
PerfCounterSet::mpki() const
{
    const std::uint64_t insts = read(PerfEvent::Instructions);
    if (insts == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(read(PerfEvent::LlcMisses)) /
           static_cast<double>(insts);
}

double
PerfCounterSet::apki() const
{
    const std::uint64_t insts = read(PerfEvent::Instructions);
    if (insts == 0)
        return 0.0;
    return 1000.0 * static_cast<double>(read(PerfEvent::LlcReferences)) /
           static_cast<double>(insts);
}

double
PerfCounterSet::ipc() const
{
    const std::uint64_t cycles = read(PerfEvent::Cycles);
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(read(PerfEvent::Instructions)) /
           static_cast<double>(cycles);
}

PerfMonitor::PerfMonitor(Seconds window_length)
    : windowLength_(window_length)
{
    capart_assert(window_length > 0.0);
}

void
PerfMonitor::record(Seconds now, Insts insts, std::uint64_t llc_accesses,
                    std::uint64_t llc_misses)
{
    while (now >= windowStart_ + windowLength_)
        closeWindow(windowStart_ + windowLength_);
    insts_ += insts;
    acc_ += llc_accesses;
    miss_ += llc_misses;
}

void
PerfMonitor::closeWindow(Seconds boundary)
{
    PerfWindow w;
    w.start = windowStart_;
    w.end = boundary;
    w.insts = insts_;
    w.llcAccesses = acc_;
    w.llcMisses = miss_;
    if (insts_ > 0) {
        w.mpki = 1000.0 * static_cast<double>(miss_) /
                 static_cast<double>(insts_);
        w.apki = 1000.0 * static_cast<double>(acc_) /
                 static_cast<double>(insts_);
    }
    // The window index counts every closed window (delivered or not) so
    // fault decisions stay deterministic regardless of earlier drops.
    const std::uint64_t index = closed_++;
    windowStart_ = boundary;
    insts_ = 0;
    acc_ = 0;
    miss_ = 0;
    if (hook_ && !hook_->onWindowClose(stream_, index, w)) {
        ++dropped_;
        return;
    }
    windows_.push_back(w);
}

} // namespace capart
