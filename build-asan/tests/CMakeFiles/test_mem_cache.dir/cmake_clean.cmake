file(REMOVE_RECURSE
  "CMakeFiles/test_mem_cache.dir/test_mem_cache.cc.o"
  "CMakeFiles/test_mem_cache.dir/test_mem_cache.cc.o.d"
  "test_mem_cache"
  "test_mem_cache.pdb"
  "test_mem_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
