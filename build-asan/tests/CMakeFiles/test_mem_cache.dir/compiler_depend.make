# Empty compiler generated dependencies file for test_mem_cache.
# This may be replaced when dependencies are built.
