file(REMOVE_RECURSE
  "CMakeFiles/test_perf.dir/test_perf.cc.o"
  "CMakeFiles/test_perf.dir/test_perf.cc.o.d"
  "test_perf"
  "test_perf.pdb"
  "test_perf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
