file(REMOVE_RECURSE
  "CMakeFiles/test_prefetch.dir/test_prefetch.cc.o"
  "CMakeFiles/test_prefetch.dir/test_prefetch.cc.o.d"
  "test_prefetch"
  "test_prefetch.pdb"
  "test_prefetch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
