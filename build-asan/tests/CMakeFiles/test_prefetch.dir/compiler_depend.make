# Empty compiler generated dependencies file for test_prefetch.
# This may be replaced when dependencies are built.
