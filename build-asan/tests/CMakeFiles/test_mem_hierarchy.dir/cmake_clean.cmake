file(REMOVE_RECURSE
  "CMakeFiles/test_mem_hierarchy.dir/test_mem_hierarchy.cc.o"
  "CMakeFiles/test_mem_hierarchy.dir/test_mem_hierarchy.cc.o.d"
  "test_mem_hierarchy"
  "test_mem_hierarchy.pdb"
  "test_mem_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
