# Empty compiler generated dependencies file for test_mem_hierarchy.
# This may be replaced when dependencies are built.
