file(REMOVE_RECURSE
  "CMakeFiles/test_cpu.dir/test_cpu.cc.o"
  "CMakeFiles/test_cpu.dir/test_cpu.cc.o.d"
  "test_cpu"
  "test_cpu.pdb"
  "test_cpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
