# Empty compiler generated dependencies file for test_rctl.
# This may be replaced when dependencies are built.
