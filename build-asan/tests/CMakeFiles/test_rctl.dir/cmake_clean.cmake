file(REMOVE_RECURSE
  "CMakeFiles/test_rctl.dir/test_rctl.cc.o"
  "CMakeFiles/test_rctl.dir/test_rctl.cc.o.d"
  "test_rctl"
  "test_rctl.pdb"
  "test_rctl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
