file(REMOVE_RECURSE
  "CMakeFiles/test_catalog_apps.dir/test_catalog_apps.cc.o"
  "CMakeFiles/test_catalog_apps.dir/test_catalog_apps.cc.o.d"
  "test_catalog_apps"
  "test_catalog_apps.pdb"
  "test_catalog_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_catalog_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
