# Empty dependencies file for test_catalog_apps.
# This may be replaced when dependencies are built.
