file(REMOVE_RECURSE
  "CMakeFiles/test_mrc.dir/test_mrc.cc.o"
  "CMakeFiles/test_mrc.dir/test_mrc.cc.o.d"
  "test_mrc"
  "test_mrc.pdb"
  "test_mrc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
