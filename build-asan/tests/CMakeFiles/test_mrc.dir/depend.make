# Empty dependencies file for test_mrc.
# This may be replaced when dependencies are built.
