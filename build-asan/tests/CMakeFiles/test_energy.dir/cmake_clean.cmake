file(REMOVE_RECURSE
  "CMakeFiles/test_energy.dir/test_energy.cc.o"
  "CMakeFiles/test_energy.dir/test_energy.cc.o.d"
  "test_energy"
  "test_energy.pdb"
  "test_energy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
