# Empty dependencies file for test_energy.
# This may be replaced when dependencies are built.
