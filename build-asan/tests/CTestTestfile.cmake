# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_common[1]_include.cmake")
include("/root/repo/build-asan/tests/test_stats[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mem_cache[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mem_hierarchy[1]_include.cmake")
include("/root/repo/build-asan/tests/test_prefetch[1]_include.cmake")
include("/root/repo/build-asan/tests/test_dram[1]_include.cmake")
include("/root/repo/build-asan/tests/test_cpu[1]_include.cmake")
include("/root/repo/build-asan/tests/test_energy[1]_include.cmake")
include("/root/repo/build-asan/tests/test_perf[1]_include.cmake")
include("/root/repo/build-asan/tests/test_workload[1]_include.cmake")
include("/root/repo/build-asan/tests/test_catalog_apps[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sim[1]_include.cmake")
include("/root/repo/build-asan/tests/test_core[1]_include.cmake")
include("/root/repo/build-asan/tests/test_analysis[1]_include.cmake")
include("/root/repo/build-asan/tests/test_mrc[1]_include.cmake")
include("/root/repo/build-asan/tests/test_rctl[1]_include.cmake")
include("/root/repo/build-asan/tests/test_fault[1]_include.cmake")
include("/root/repo/build-asan/tests/test_integration[1]_include.cmake")
