# Empty dependencies file for capart_sim.
# This may be replaced when dependencies are built.
