file(REMOVE_RECURSE
  "libcapart_sim.a"
)
