file(REMOVE_RECURSE
  "CMakeFiles/capart_sim.dir/experiment.cc.o"
  "CMakeFiles/capart_sim.dir/experiment.cc.o.d"
  "CMakeFiles/capart_sim.dir/system.cc.o"
  "CMakeFiles/capart_sim.dir/system.cc.o.d"
  "libcapart_sim.a"
  "libcapart_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
