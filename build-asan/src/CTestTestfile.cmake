# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("stats")
subdirs("mem")
subdirs("prefetch")
subdirs("dram")
subdirs("interconnect")
subdirs("cpu")
subdirs("energy")
subdirs("perf")
subdirs("workload")
subdirs("sim")
subdirs("core")
subdirs("rctl")
subdirs("fault")
subdirs("analysis")
