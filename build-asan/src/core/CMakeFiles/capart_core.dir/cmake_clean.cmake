file(REMOVE_RECURSE
  "CMakeFiles/capart_core.dir/co_scheduler.cc.o"
  "CMakeFiles/capart_core.dir/co_scheduler.cc.o.d"
  "CMakeFiles/capart_core.dir/dynamic_partitioner.cc.o"
  "CMakeFiles/capart_core.dir/dynamic_partitioner.cc.o.d"
  "CMakeFiles/capart_core.dir/phase_detector.cc.o"
  "CMakeFiles/capart_core.dir/phase_detector.cc.o.d"
  "CMakeFiles/capart_core.dir/static_policies.cc.o"
  "CMakeFiles/capart_core.dir/static_policies.cc.o.d"
  "libcapart_core.a"
  "libcapart_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
