# Empty dependencies file for capart_core.
# This may be replaced when dependencies are built.
