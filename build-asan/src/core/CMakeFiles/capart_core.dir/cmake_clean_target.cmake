file(REMOVE_RECURSE
  "libcapart_core.a"
)
