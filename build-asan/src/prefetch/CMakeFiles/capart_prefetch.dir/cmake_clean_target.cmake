file(REMOVE_RECURSE
  "libcapart_prefetch.a"
)
