file(REMOVE_RECURSE
  "CMakeFiles/capart_prefetch.dir/prefetchers.cc.o"
  "CMakeFiles/capart_prefetch.dir/prefetchers.cc.o.d"
  "libcapart_prefetch.a"
  "libcapart_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
