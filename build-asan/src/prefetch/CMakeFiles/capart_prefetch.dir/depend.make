# Empty dependencies file for capart_prefetch.
# This may be replaced when dependencies are built.
