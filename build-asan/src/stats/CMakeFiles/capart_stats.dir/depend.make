# Empty dependencies file for capart_stats.
# This may be replaced when dependencies are built.
