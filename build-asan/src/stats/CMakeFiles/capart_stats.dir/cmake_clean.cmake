file(REMOVE_RECURSE
  "CMakeFiles/capart_stats.dir/summary.cc.o"
  "CMakeFiles/capart_stats.dir/summary.cc.o.d"
  "CMakeFiles/capart_stats.dir/table.cc.o"
  "CMakeFiles/capart_stats.dir/table.cc.o.d"
  "libcapart_stats.a"
  "libcapart_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
