file(REMOVE_RECURSE
  "libcapart_stats.a"
)
