file(REMOVE_RECURSE
  "CMakeFiles/capart_analysis.dir/clustering.cc.o"
  "CMakeFiles/capart_analysis.dir/clustering.cc.o.d"
  "CMakeFiles/capart_analysis.dir/mrc.cc.o"
  "CMakeFiles/capart_analysis.dir/mrc.cc.o.d"
  "libcapart_analysis.a"
  "libcapart_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
