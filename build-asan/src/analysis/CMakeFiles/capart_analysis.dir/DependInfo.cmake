
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/clustering.cc" "src/analysis/CMakeFiles/capart_analysis.dir/clustering.cc.o" "gcc" "src/analysis/CMakeFiles/capart_analysis.dir/clustering.cc.o.d"
  "/root/repo/src/analysis/mrc.cc" "src/analysis/CMakeFiles/capart_analysis.dir/mrc.cc.o" "gcc" "src/analysis/CMakeFiles/capart_analysis.dir/mrc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/capart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
