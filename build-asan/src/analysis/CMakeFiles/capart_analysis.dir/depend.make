# Empty dependencies file for capart_analysis.
# This may be replaced when dependencies are built.
