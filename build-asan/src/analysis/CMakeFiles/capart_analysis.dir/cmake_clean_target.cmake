file(REMOVE_RECURSE
  "libcapart_analysis.a"
)
