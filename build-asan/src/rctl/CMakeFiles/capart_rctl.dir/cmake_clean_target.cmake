file(REMOVE_RECURSE
  "libcapart_rctl.a"
)
