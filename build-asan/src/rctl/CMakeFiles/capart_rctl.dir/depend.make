# Empty dependencies file for capart_rctl.
# This may be replaced when dependencies are built.
