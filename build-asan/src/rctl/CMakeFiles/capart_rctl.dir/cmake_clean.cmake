file(REMOVE_RECURSE
  "CMakeFiles/capart_rctl.dir/resctrl.cc.o"
  "CMakeFiles/capart_rctl.dir/resctrl.cc.o.d"
  "libcapart_rctl.a"
  "libcapart_rctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_rctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
