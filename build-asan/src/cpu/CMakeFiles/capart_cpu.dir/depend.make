# Empty dependencies file for capart_cpu.
# This may be replaced when dependencies are built.
