file(REMOVE_RECURSE
  "CMakeFiles/capart_cpu.dir/core_model.cc.o"
  "CMakeFiles/capart_cpu.dir/core_model.cc.o.d"
  "libcapart_cpu.a"
  "libcapart_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
