file(REMOVE_RECURSE
  "libcapart_cpu.a"
)
