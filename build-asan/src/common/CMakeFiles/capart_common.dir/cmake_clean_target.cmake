file(REMOVE_RECURSE
  "libcapart_common.a"
)
