file(REMOVE_RECURSE
  "CMakeFiles/capart_common.dir/logging.cc.o"
  "CMakeFiles/capart_common.dir/logging.cc.o.d"
  "libcapart_common.a"
  "libcapart_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
