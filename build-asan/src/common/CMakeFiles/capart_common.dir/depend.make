# Empty dependencies file for capart_common.
# This may be replaced when dependencies are built.
