file(REMOVE_RECURSE
  "CMakeFiles/capart_perf.dir/perf_counters.cc.o"
  "CMakeFiles/capart_perf.dir/perf_counters.cc.o.d"
  "libcapart_perf.a"
  "libcapart_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
