# Empty dependencies file for capart_perf.
# This may be replaced when dependencies are built.
