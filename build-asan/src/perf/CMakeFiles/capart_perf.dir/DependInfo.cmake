
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perf/perf_counters.cc" "src/perf/CMakeFiles/capart_perf.dir/perf_counters.cc.o" "gcc" "src/perf/CMakeFiles/capart_perf.dir/perf_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/capart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
