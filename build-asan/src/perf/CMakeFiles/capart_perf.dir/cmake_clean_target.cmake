file(REMOVE_RECURSE
  "libcapart_perf.a"
)
