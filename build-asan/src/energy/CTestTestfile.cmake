# CMake generated Testfile for 
# Source directory: /root/repo/src/energy
# Build directory: /root/repo/build-asan/src/energy
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
