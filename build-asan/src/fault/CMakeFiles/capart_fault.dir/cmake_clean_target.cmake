file(REMOVE_RECURSE
  "libcapart_fault.a"
)
