file(REMOVE_RECURSE
  "CMakeFiles/capart_fault.dir/fault_injector.cc.o"
  "CMakeFiles/capart_fault.dir/fault_injector.cc.o.d"
  "CMakeFiles/capart_fault.dir/resctrl_remasker.cc.o"
  "CMakeFiles/capart_fault.dir/resctrl_remasker.cc.o.d"
  "libcapart_fault.a"
  "libcapart_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
