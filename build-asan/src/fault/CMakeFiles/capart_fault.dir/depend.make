# Empty dependencies file for capart_fault.
# This may be replaced when dependencies are built.
