file(REMOVE_RECURSE
  "libcapart_workload.a"
)
