# Empty dependencies file for capart_workload.
# This may be replaced when dependencies are built.
