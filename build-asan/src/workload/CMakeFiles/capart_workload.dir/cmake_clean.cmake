file(REMOVE_RECURSE
  "CMakeFiles/capart_workload.dir/app_params.cc.o"
  "CMakeFiles/capart_workload.dir/app_params.cc.o.d"
  "CMakeFiles/capart_workload.dir/catalog.cc.o"
  "CMakeFiles/capart_workload.dir/catalog.cc.o.d"
  "CMakeFiles/capart_workload.dir/generator.cc.o"
  "CMakeFiles/capart_workload.dir/generator.cc.o.d"
  "libcapart_workload.a"
  "libcapart_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
