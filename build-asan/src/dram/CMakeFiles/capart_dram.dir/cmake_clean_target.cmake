file(REMOVE_RECURSE
  "libcapart_dram.a"
)
