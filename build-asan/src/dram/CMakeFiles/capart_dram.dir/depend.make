# Empty dependencies file for capart_dram.
# This may be replaced when dependencies are built.
