file(REMOVE_RECURSE
  "CMakeFiles/capart_dram.dir/dram_model.cc.o"
  "CMakeFiles/capart_dram.dir/dram_model.cc.o.d"
  "libcapart_dram.a"
  "libcapart_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
