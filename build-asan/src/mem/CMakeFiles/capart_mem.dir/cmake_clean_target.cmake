file(REMOVE_RECURSE
  "libcapart_mem.a"
)
