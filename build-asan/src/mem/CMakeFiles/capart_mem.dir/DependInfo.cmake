
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cache_config.cc" "src/mem/CMakeFiles/capart_mem.dir/cache_config.cc.o" "gcc" "src/mem/CMakeFiles/capart_mem.dir/cache_config.cc.o.d"
  "/root/repo/src/mem/hierarchy.cc" "src/mem/CMakeFiles/capart_mem.dir/hierarchy.cc.o" "gcc" "src/mem/CMakeFiles/capart_mem.dir/hierarchy.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/mem/CMakeFiles/capart_mem.dir/replacement.cc.o" "gcc" "src/mem/CMakeFiles/capart_mem.dir/replacement.cc.o.d"
  "/root/repo/src/mem/set_assoc_cache.cc" "src/mem/CMakeFiles/capart_mem.dir/set_assoc_cache.cc.o" "gcc" "src/mem/CMakeFiles/capart_mem.dir/set_assoc_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/common/CMakeFiles/capart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
