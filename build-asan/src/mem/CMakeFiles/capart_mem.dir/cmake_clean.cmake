file(REMOVE_RECURSE
  "CMakeFiles/capart_mem.dir/cache_config.cc.o"
  "CMakeFiles/capart_mem.dir/cache_config.cc.o.d"
  "CMakeFiles/capart_mem.dir/hierarchy.cc.o"
  "CMakeFiles/capart_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/capart_mem.dir/replacement.cc.o"
  "CMakeFiles/capart_mem.dir/replacement.cc.o.d"
  "CMakeFiles/capart_mem.dir/set_assoc_cache.cc.o"
  "CMakeFiles/capart_mem.dir/set_assoc_cache.cc.o.d"
  "libcapart_mem.a"
  "libcapart_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
