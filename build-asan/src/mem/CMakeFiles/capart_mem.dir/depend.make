# Empty dependencies file for capart_mem.
# This may be replaced when dependencies are built.
