# Empty compiler generated dependencies file for bench_fig11_weighted_speedup.
# This may be replaced when dependencies are built.
