file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_weighted_speedup.dir/bench_fig11_weighted_speedup.cc.o"
  "CMakeFiles/bench_fig11_weighted_speedup.dir/bench_fig11_weighted_speedup.cc.o.d"
  "bench_fig11_weighted_speedup"
  "bench_fig11_weighted_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_weighted_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
