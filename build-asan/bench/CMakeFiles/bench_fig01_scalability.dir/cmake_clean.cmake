file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_scalability.dir/bench_fig01_scalability.cc.o"
  "CMakeFiles/bench_fig01_scalability.dir/bench_fig01_scalability.cc.o.d"
  "bench_fig01_scalability"
  "bench_fig01_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
