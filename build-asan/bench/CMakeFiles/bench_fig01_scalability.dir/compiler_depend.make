# Empty compiler generated dependencies file for bench_fig01_scalability.
# This may be replaced when dependencies are built.
