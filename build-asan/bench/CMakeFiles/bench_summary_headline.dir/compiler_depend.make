# Empty compiler generated dependencies file for bench_summary_headline.
# This may be replaced when dependencies are built.
