file(REMOVE_RECURSE
  "CMakeFiles/bench_summary_headline.dir/bench_summary_headline.cc.o"
  "CMakeFiles/bench_summary_headline.dir/bench_summary_headline.cc.o.d"
  "bench_summary_headline"
  "bench_summary_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_summary_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
