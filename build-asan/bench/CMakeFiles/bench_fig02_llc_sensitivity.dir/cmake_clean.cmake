file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_llc_sensitivity.dir/bench_fig02_llc_sensitivity.cc.o"
  "CMakeFiles/bench_fig02_llc_sensitivity.dir/bench_fig02_llc_sensitivity.cc.o.d"
  "bench_fig02_llc_sensitivity"
  "bench_fig02_llc_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_llc_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
