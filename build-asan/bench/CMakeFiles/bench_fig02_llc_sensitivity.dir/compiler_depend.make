# Empty compiler generated dependencies file for bench_fig02_llc_sensitivity.
# This may be replaced when dependencies are built.
