# Empty dependencies file for bench_fig05_clustering.
# This may be replaced when dependencies are built.
