file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_clustering.dir/bench_fig05_clustering.cc.o"
  "CMakeFiles/bench_fig05_clustering.dir/bench_fig05_clustering.cc.o.d"
  "bench_fig05_clustering"
  "bench_fig05_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
