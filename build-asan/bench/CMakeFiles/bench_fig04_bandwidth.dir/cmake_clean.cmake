file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_bandwidth.dir/bench_fig04_bandwidth.cc.o"
  "CMakeFiles/bench_fig04_bandwidth.dir/bench_fig04_bandwidth.cc.o.d"
  "bench_fig04_bandwidth"
  "bench_fig04_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
