# Empty dependencies file for bench_fig04_bandwidth.
# This may be replaced when dependencies are built.
