# Empty compiler generated dependencies file for bench_fig13_dynamic.
# This may be replaced when dependencies are built.
