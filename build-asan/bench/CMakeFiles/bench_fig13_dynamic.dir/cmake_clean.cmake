file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dynamic.dir/bench_fig13_dynamic.cc.o"
  "CMakeFiles/bench_fig13_dynamic.dir/bench_fig13_dynamic.cc.o.d"
  "bench_fig13_dynamic"
  "bench_fig13_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
