# Empty compiler generated dependencies file for bench_ablation_llc_size.
# This may be replaced when dependencies are built.
