file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_llc_size.dir/bench_ablation_llc_size.cc.o"
  "CMakeFiles/bench_ablation_llc_size.dir/bench_ablation_llc_size.cc.o.d"
  "bench_ablation_llc_size"
  "bench_ablation_llc_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_llc_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
