# Empty compiler generated dependencies file for bench_ablation_faults.
# This may be replaced when dependencies are built.
