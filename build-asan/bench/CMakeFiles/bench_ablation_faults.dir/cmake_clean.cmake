file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_faults.dir/bench_ablation_faults.cc.o"
  "CMakeFiles/bench_ablation_faults.dir/bench_ablation_faults.cc.o.d"
  "bench_ablation_faults"
  "bench_ablation_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
