# Empty dependencies file for bench_fig09_static_policies.
# This may be replaced when dependencies are built.
