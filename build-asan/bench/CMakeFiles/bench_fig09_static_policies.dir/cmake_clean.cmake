file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_static_policies.dir/bench_fig09_static_policies.cc.o"
  "CMakeFiles/bench_fig09_static_policies.dir/bench_fig09_static_policies.cc.o.d"
  "bench_fig09_static_policies"
  "bench_fig09_static_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_static_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
