file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_mcf_phases.dir/bench_fig12_mcf_phases.cc.o"
  "CMakeFiles/bench_fig12_mcf_phases.dir/bench_fig12_mcf_phases.cc.o.d"
  "bench_fig12_mcf_phases"
  "bench_fig12_mcf_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mcf_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
