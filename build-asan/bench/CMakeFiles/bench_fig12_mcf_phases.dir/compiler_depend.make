# Empty compiler generated dependencies file for bench_fig12_mcf_phases.
# This may be replaced when dependencies are built.
