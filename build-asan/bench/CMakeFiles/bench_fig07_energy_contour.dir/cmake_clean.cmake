file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_energy_contour.dir/bench_fig07_energy_contour.cc.o"
  "CMakeFiles/bench_fig07_energy_contour.dir/bench_fig07_energy_contour.cc.o.d"
  "bench_fig07_energy_contour"
  "bench_fig07_energy_contour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_energy_contour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
