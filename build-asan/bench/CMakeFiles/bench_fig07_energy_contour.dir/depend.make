# Empty dependencies file for bench_fig07_energy_contour.
# This may be replaced when dependencies are built.
