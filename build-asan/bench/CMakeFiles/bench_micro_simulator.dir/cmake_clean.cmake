file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_simulator.dir/bench_micro_simulator.cc.o"
  "CMakeFiles/bench_micro_simulator.dir/bench_micro_simulator.cc.o.d"
  "bench_micro_simulator"
  "bench_micro_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
