# Empty dependencies file for bench_micro_simulator.
# This may be replaced when dependencies are built.
