file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_corun_matrix.dir/bench_fig08_corun_matrix.cc.o"
  "CMakeFiles/bench_fig08_corun_matrix.dir/bench_fig08_corun_matrix.cc.o.d"
  "bench_fig08_corun_matrix"
  "bench_fig08_corun_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_corun_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
