# Empty compiler generated dependencies file for bench_fig08_corun_matrix.
# This may be replaced when dependencies are built.
