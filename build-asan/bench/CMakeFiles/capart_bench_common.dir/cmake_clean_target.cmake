file(REMOVE_RECURSE
  "../lib/libcapart_bench_common.a"
)
