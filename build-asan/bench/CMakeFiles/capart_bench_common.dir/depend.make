# Empty dependencies file for capart_bench_common.
# This may be replaced when dependencies are built.
