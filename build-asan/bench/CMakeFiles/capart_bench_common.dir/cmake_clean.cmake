file(REMOVE_RECURSE
  "../lib/libcapart_bench_common.a"
  "../lib/libcapart_bench_common.pdb"
  "CMakeFiles/capart_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/capart_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capart_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
