file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multibg.dir/bench_ablation_multibg.cc.o"
  "CMakeFiles/bench_ablation_multibg.dir/bench_ablation_multibg.cc.o.d"
  "bench_ablation_multibg"
  "bench_ablation_multibg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multibg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
