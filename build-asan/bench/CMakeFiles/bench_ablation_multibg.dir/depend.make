# Empty dependencies file for bench_ablation_multibg.
# This may be replaced when dependencies are built.
