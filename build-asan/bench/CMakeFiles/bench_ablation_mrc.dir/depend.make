# Empty dependencies file for bench_ablation_mrc.
# This may be replaced when dependencies are built.
