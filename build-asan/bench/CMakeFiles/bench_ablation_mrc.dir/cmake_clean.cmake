file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mrc.dir/bench_ablation_mrc.cc.o"
  "CMakeFiles/bench_ablation_mrc.dir/bench_ablation_mrc.cc.o.d"
  "bench_ablation_mrc"
  "bench_ablation_mrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
