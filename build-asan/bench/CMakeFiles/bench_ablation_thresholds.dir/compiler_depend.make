# Empty compiler generated dependencies file for bench_ablation_thresholds.
# This may be replaced when dependencies are built.
