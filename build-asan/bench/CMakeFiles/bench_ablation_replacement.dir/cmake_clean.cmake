file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_replacement.dir/bench_ablation_replacement.cc.o"
  "CMakeFiles/bench_ablation_replacement.dir/bench_ablation_replacement.cc.o.d"
  "bench_ablation_replacement"
  "bench_ablation_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
