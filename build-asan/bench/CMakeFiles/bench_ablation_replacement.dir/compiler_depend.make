# Empty compiler generated dependencies file for bench_ablation_replacement.
# This may be replaced when dependencies are built.
