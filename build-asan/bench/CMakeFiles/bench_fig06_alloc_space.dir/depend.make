# Empty dependencies file for bench_fig06_alloc_space.
# This may be replaced when dependencies are built.
