file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_alloc_space.dir/bench_fig06_alloc_space.cc.o"
  "CMakeFiles/bench_fig06_alloc_space.dir/bench_fig06_alloc_space.cc.o.d"
  "bench_fig06_alloc_space"
  "bench_fig06_alloc_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_alloc_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
