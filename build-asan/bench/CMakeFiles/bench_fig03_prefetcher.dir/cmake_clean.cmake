file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_prefetcher.dir/bench_fig03_prefetcher.cc.o"
  "CMakeFiles/bench_fig03_prefetcher.dir/bench_fig03_prefetcher.cc.o.d"
  "bench_fig03_prefetcher"
  "bench_fig03_prefetcher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_prefetcher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
