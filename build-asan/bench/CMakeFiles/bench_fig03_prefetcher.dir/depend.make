# Empty dependencies file for bench_fig03_prefetcher.
# This may be replaced when dependencies are built.
