file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_consolidation_energy.dir/bench_fig10_consolidation_energy.cc.o"
  "CMakeFiles/bench_fig10_consolidation_energy.dir/bench_fig10_consolidation_energy.cc.o.d"
  "bench_fig10_consolidation_energy"
  "bench_fig10_consolidation_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_consolidation_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
