# Empty dependencies file for bench_fig10_consolidation_energy.
# This may be replaced when dependencies are built.
