file(REMOVE_RECURSE
  "CMakeFiles/characterize_app.dir/characterize_app.cpp.o"
  "CMakeFiles/characterize_app.dir/characterize_app.cpp.o.d"
  "characterize_app"
  "characterize_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterize_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
