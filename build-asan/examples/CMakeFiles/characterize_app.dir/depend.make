# Empty dependencies file for characterize_app.
# This may be replaced when dependencies are built.
