# Empty dependencies file for resctrl_daemon.
# This may be replaced when dependencies are built.
