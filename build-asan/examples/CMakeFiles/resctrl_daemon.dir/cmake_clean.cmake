file(REMOVE_RECURSE
  "CMakeFiles/resctrl_daemon.dir/resctrl_daemon.cpp.o"
  "CMakeFiles/resctrl_daemon.dir/resctrl_daemon.cpp.o.d"
  "resctrl_daemon"
  "resctrl_daemon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resctrl_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
