
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/colocate_websearch.cpp" "examples/CMakeFiles/colocate_websearch.dir/colocate_websearch.cpp.o" "gcc" "examples/CMakeFiles/colocate_websearch.dir/colocate_websearch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/fault/CMakeFiles/capart_fault.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/capart_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/rctl/CMakeFiles/capart_rctl.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/sim/CMakeFiles/capart_sim.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/workload/CMakeFiles/capart_workload.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/cpu/CMakeFiles/capart_cpu.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dram/CMakeFiles/capart_dram.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/mem/CMakeFiles/capart_mem.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/perf/CMakeFiles/capart_perf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/prefetch/CMakeFiles/capart_prefetch.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/stats/CMakeFiles/capart_stats.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/common/CMakeFiles/capart_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
