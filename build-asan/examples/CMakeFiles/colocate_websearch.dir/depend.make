# Empty dependencies file for colocate_websearch.
# This may be replaced when dependencies are built.
