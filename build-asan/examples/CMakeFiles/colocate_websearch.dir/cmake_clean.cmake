file(REMOVE_RECURSE
  "CMakeFiles/colocate_websearch.dir/colocate_websearch.cpp.o"
  "CMakeFiles/colocate_websearch.dir/colocate_websearch.cpp.o.d"
  "colocate_websearch"
  "colocate_websearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocate_websearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
