# Empty dependencies file for dynamic_partition_demo.
# This may be replaced when dependencies are built.
