file(REMOVE_RECURSE
  "CMakeFiles/dynamic_partition_demo.dir/dynamic_partition_demo.cpp.o"
  "CMakeFiles/dynamic_partition_demo.dir/dynamic_partition_demo.cpp.o.d"
  "dynamic_partition_demo"
  "dynamic_partition_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_partition_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
