/**
 * @file
 * Tests for the fault-injection framework: deterministic seeded
 * decisions, telemetry corruption at the PerfMonitor seam, control-plane
 * failures, execution stalls, and the remaskers that drive the hardened
 * partitioner against them.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/dynamic_partitioner.hh"
#include "fault/fault_injector.hh"
#include "fault/resctrl_remasker.hh"
#include "sim/experiment.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

constexpr double kTestScale = 0.05;

PairOptions
faultyPairOptions()
{
    PairOptions opts;
    opts.scale = kTestScale;
    opts.system.perfWindow = 8e-6;
    const SplitMasks masks = splitWays(11, 12);
    opts.fgMask = masks.fg;
    opts.bgMask = masks.bg;
    return opts;
}

// ------------------------------------------------------- determinism --

TEST(FaultInjector, SameSeedSameDecisions)
{
    const FaultPlan plan = FaultPlan::noisyTelemetry(0.2);
    FaultInjector a(plan, 42);
    FaultInjector b(plan, 42);
    FaultInjector c(plan, 43);
    unsigned diverged = 0;
    for (std::uint64_t i = 0; i < 500; ++i) {
        PerfWindow wa, wb, wc;
        wa.insts = wb.insts = wc.insts = 1000;
        wa.mpki = wb.mpki = wc.mpki = 10.0;
        const bool ka = a.onWindowClose(0, i, wa);
        const bool kb = b.onWindowClose(0, i, wb);
        const bool kc = c.onWindowClose(0, i, wc);
        EXPECT_EQ(ka, kb) << "i=" << i;
        if (ka && kb) {
            EXPECT_EQ(std::isnan(wa.mpki), std::isnan(wb.mpki));
            if (!std::isnan(wa.mpki))
                EXPECT_EQ(wa.mpki, wb.mpki);
        }
        if (ka != kc || (ka && kc && wa.mpki != wc.mpki &&
                         !(std::isnan(wa.mpki) && std::isnan(wc.mpki))))
            ++diverged;
    }
    EXPECT_EQ(a.stats().windowsDropped, b.stats().windowsDropped);
    EXPECT_EQ(a.stats().windowsCorrupted, b.stats().windowsCorrupted);
    EXPECT_GT(diverged, 0u) << "a different seed must differ somewhere";
}

TEST(FaultInjector, DecisionsAreStateless)
{
    // The verdict for (stream, index) must not depend on which other
    // windows were seen first — drops cannot shift later decisions.
    const FaultPlan plan = FaultPlan::noisyTelemetry(0.3);
    FaultInjector forward(plan, 7);
    FaultInjector alone(plan, 7);
    bool forward_verdicts[100];
    for (std::uint64_t i = 0; i < 100; ++i) {
        PerfWindow w;
        w.insts = 1000;
        w.mpki = 10.0;
        forward_verdicts[i] = forward.onWindowClose(0, i, w);
    }
    PerfWindow w;
    w.insts = 1000;
    w.mpki = 10.0;
    EXPECT_EQ(alone.onWindowClose(0, 57, w), forward_verdicts[57]);
}

TEST(FaultInjector, RatesRoughlyHonored)
{
    FaultPlan plan;
    plan.windowDropRate = 0.1;
    FaultInjector inj(plan, 1);
    for (std::uint64_t i = 0; i < 2000; ++i) {
        PerfWindow w;
        w.insts = 1000;
        w.mpki = 10.0;
        inj.onWindowClose(0, i, w);
    }
    const double rate =
        static_cast<double>(inj.stats().windowsDropped) / 2000.0;
    EXPECT_NEAR(rate, 0.1, 0.03);
}

// --------------------------------------------------- telemetry faults --

TEST(FaultInjector, CorruptionSpikesOnlyTheTarget)
{
    FaultPlan plan;
    plan.counterCorruptRate = 1.0;
    plan.spikeMultiplier = 10.0;
    plan.telemetryTarget = 0;
    FaultInjector inj(plan, 9);

    PerfWindow w;
    w.insts = 1000;
    w.llcMisses = 50;
    w.mpki = 50.0;
    ASSERT_TRUE(inj.onWindowClose(0, 0, w));
    EXPECT_DOUBLE_EQ(w.mpki, 500.0);
    EXPECT_EQ(w.llcMisses, 500u);

    PerfWindow other;
    other.insts = 1000;
    other.mpki = 50.0;
    ASSERT_TRUE(inj.onWindowClose(1, 0, other));
    EXPECT_DOUBLE_EQ(other.mpki, 50.0) << "stream 1 is not the target";
    EXPECT_EQ(inj.stats().windowsCorrupted, 1u);
}

TEST(FaultInjector, StaleReadsServePreviousCounters)
{
    FaultPlan plan;
    plan.staleRate = 1.0;
    FaultInjector inj(plan, 3);

    // First window: nothing delivered yet, so nothing to be stale from.
    PerfWindow first;
    first.insts = 111;
    first.mpki = 1.0;
    ASSERT_TRUE(inj.onWindowClose(0, 0, first));
    EXPECT_EQ(inj.stats().windowsStale, 0u);

    PerfWindow second;
    second.start = 1.0;
    second.end = 2.0;
    second.insts = 999;
    second.mpki = 99.0;
    ASSERT_TRUE(inj.onWindowClose(0, 1, second));
    EXPECT_EQ(inj.stats().windowsStale, 1u);
    EXPECT_EQ(second.insts, 111u) << "yesterday's counters";
    EXPECT_DOUBLE_EQ(second.mpki, 1.0);
    EXPECT_DOUBLE_EQ(second.start, 1.0) << "under today's timestamps";
}

TEST(FaultInjector, BlackoutDropsTheConfiguredRange)
{
    const FaultPlan plan = FaultPlan::telemetryBlackout(5);
    FaultInjector inj(plan, 11);
    for (std::uint64_t i = 0; i < 50; ++i) {
        PerfWindow w;
        w.insts = 1000;
        w.mpki = 10.0;
        EXPECT_EQ(inj.onWindowClose(0, i, w), i < 5) << "i=" << i;
    }
    EXPECT_EQ(inj.stats().windowsDropped, 45u);
}

TEST(PerfMonitorIntegration, DroppedWindowsAreCountedNotPublished)
{
    FaultPlan plan;
    plan.windowDropRate = 0.5;
    FaultInjector inj(plan, 5);

    PerfMonitor mon(1.0);
    mon.setFaultHook(&inj, 0);
    for (unsigned i = 1; i <= 200; ++i)
        mon.record(static_cast<Seconds>(i), 1000, 100, 10);
    EXPECT_GT(mon.droppedWindows(), 50u);
    EXPECT_LT(mon.droppedWindows(), 150u);
    EXPECT_EQ(mon.windowCount() + mon.droppedWindows(), 200u);
    EXPECT_EQ(mon.droppedWindows(), inj.stats().windowsDropped);
}

// --------------------------------------------------- execution faults --

TEST(FaultInjector, StallsSlowTheRunDown)
{
    const auto run = [](double stall_rate) {
        PairOptions opts = faultyPairOptions();
        FaultPlan plan;
        plan.stallRate = stall_rate;
        plan.stallFactor = 6.0;
        FaultInjector inj(plan, 21);
        opts.prepare = [&inj](System &sys, AppId, AppId) {
            inj.attach(sys);
        };
        return runPair(Catalog::byName("ferret").scaled(1.0),
                       Catalog::byName("dedup").scaled(1.0), opts)
            .fgTime;
    };
    const Seconds clean = run(0.0);
    const Seconds stalled = run(0.10);
    EXPECT_GT(stalled, clean * 1.05)
        << "10% of quanta at 6x cost must be visible in the runtime";
}

// ------------------------------------------------------- remask faults --

TEST(FaultyRemasker, DelayedWritesLandAfterTick)
{
    FaultPlan plan;
    plan.remaskDelayRate = 1.0;
    plan.remaskDelayWindows = 2;
    FaultInjector inj(plan, 13);
    FaultyRemasker rm(inj);

    SystemConfig cfg;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);

    const SplitMasks masks = splitWays(8, 12);
    EXPECT_TRUE(rm.apply(sys, fg, {bg}, masks))
        << "a delayed write still reports success";
    EXPECT_TRUE(rm.pendingDelayed());
    EXPECT_EQ(sys.wayMask(fg), WayMask::all(12)) << "not yet applied";

    rm.tick(sys); // wait 2
    rm.tick(sys); // wait 1
    EXPECT_TRUE(rm.pendingDelayed());
    rm.tick(sys); // lands
    EXPECT_FALSE(rm.pendingDelayed());
    EXPECT_EQ(sys.wayMask(fg).count(), 8u);
    EXPECT_EQ(sys.wayMask(bg).count(), 4u);
    EXPECT_EQ(inj.stats().remaskDelays, 1u);
}

TEST(ResctrlRemaskerTest, DrivesGroupsAndSurfacesFailures)
{
    SystemConfig cfg;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);
    ResctrlFs fs(sys);
    ASSERT_EQ(fs.createGroup("fg"), RctlStatus::Ok);
    ASSERT_EQ(fs.createGroup("bg"), RctlStatus::Ok);
    ASSERT_EQ(fs.assignApp("fg", fg), RctlStatus::Ok);
    ASSERT_EQ(fs.assignApp("bg", bg), RctlStatus::Ok);

    ResctrlRemasker rm(fs, "fg", "bg");
    EXPECT_TRUE(rm.apply(sys, fg, {bg}, splitWays(8, 12)));
    EXPECT_EQ(sys.wayMask(fg).count(), 8u);
    EXPECT_EQ(sys.wayMask(bg).count(), 4u);

    // Break the control plane: the failure surfaces as apply() == false
    // and no mask is torn.
    FaultPlan plan;
    plan.remaskFailRate = 1.0;
    FaultInjector inj(plan, 17);
    fs.setFaultHook(&inj);
    EXPECT_FALSE(rm.apply(sys, fg, {bg}, splitWays(4, 12)));
    EXPECT_EQ(sys.wayMask(fg).count(), 8u);
    EXPECT_GT(rm.writeFailures(), 0u);

    // Heal it: the same request goes through (idempotent retry).
    fs.setFaultHook(nullptr);
    EXPECT_TRUE(rm.apply(sys, fg, {bg}, splitWays(4, 12)));
    EXPECT_EQ(sys.wayMask(fg).count(), 4u);
    EXPECT_EQ(sys.wayMask(bg).count(), 8u);
}

// ------------------------------------- end-to-end hardened behaviour --

TEST(HardenedPartitioner, FaultyRunIsDeterministic)
{
    const auto run = [](std::uint64_t seed) {
        PairOptions opts = faultyPairOptions();
        FaultPlan plan = FaultPlan::noisyTelemetry(0.05);
        plan.remaskFailRate = 0.05;
        FaultInjector inj(plan, seed);
        FaultyRemasker rm(inj);
        DynamicPartitioner ctrl(0, {1}, DynamicPartitionerConfig{}, &rm);
        opts.controller = &ctrl;
        opts.prepare = [&inj](System &sys, AppId, AppId) {
            inj.attach(sys);
        };
        const PairResult r = runPair(Catalog::byName("429.mcf").scaled(1.0),
                                     Catalog::byName("dedup").scaled(1.0),
                                     opts);
        return std::make_tuple(r.fgTime, r.bg.retired, ctrl.fgWays(),
                               ctrl.reallocations(),
                               ctrl.rejectedSamples(),
                               ctrl.remaskFailures());
    };
    EXPECT_EQ(run(1234), run(1234))
        << "same plan + seed must be bit-identical";
}

TEST(HardenedPartitioner, SurvivesModerateChaos)
{
    PairOptions opts = faultyPairOptions();
    FaultPlan plan = FaultPlan::noisyTelemetry(0.05);
    plan.remaskFailRate = 0.05;
    FaultInjector inj(plan, 99);
    FaultyRemasker rm(inj);
    DynamicPartitioner ctrl(0, {1}, DynamicPartitionerConfig{}, &rm);
    opts.controller = &ctrl;
    opts.prepare = [&inj](System &sys, AppId, AppId) { inj.attach(sys); };

    const PairResult r = runPair(Catalog::byName("429.mcf").scaled(1.0),
                                 Catalog::byName("dedup").scaled(1.0),
                                 opts);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(inj.stats().windowsDropped + inj.stats().windowsCorrupted +
                  inj.stats().windowsNaN,
              0u)
        << "the chaos must actually have happened";
    // 5% noise is routine weather: the controller must keep operating
    // dynamically rather than living in the fallback.
    EXPECT_EQ(ctrl.mode(), ControlMode::Dynamic);
    EXPECT_GT(ctrl.rejectedSamples(), 0u);
    EXPECT_GE(ctrl.fgWays(), 2u);
    EXPECT_LE(ctrl.fgWays(), 11u);
}

} // namespace
} // namespace capart
