/**
 * @file
 * Property, invariant, and behavioural tests of the N-app partitioning
 * stack: the common Partitioner interface contract, the UCP lookahead
 * allocator against brute force (exact on concave curves, within the
 * factor-two utility bound on arbitrary ones), LFOC classification and
 * fractional-way bouncing, and small end-to-end N-app runs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "core/lfoc.hh"
#include "core/napp.hh"
#include "core/partitioner.hh"
#include "core/ucp.hh"
#include "sim/experiment.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

WayMask
unionOf(const std::vector<WayMask> &masks)
{
    WayMask u;
    for (const WayMask &m : masks)
        u = u | m;
    return u;
}

/** The interface contract every decide() result must satisfy. */
void
expectMaskInvariants(const std::vector<WayMask> &masks, std::size_t n,
                     unsigned total_ways, const char *what)
{
    ASSERT_EQ(masks.size(), n) << what;
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_FALSE(masks[i].empty())
            << what << ": app " << i << " has no ways";
        EXPECT_TRUE((masks[i] & WayMask::all(total_ways)) == masks[i])
            << what << ": app " << i << " reaches past way "
            << total_ways;
    }
    EXPECT_TRUE(unionOf(masks) == WayMask::all(total_ways))
        << what << ": some way is stranded uncovered";
}

void
expectDisjoint(const std::vector<WayMask> &masks, const char *what)
{
    for (std::size_t i = 0; i < masks.size(); ++i) {
        for (std::size_t j = i + 1; j < masks.size(); ++j) {
            EXPECT_TRUE((masks[i] & masks[j]).empty())
                << what << ": apps " << i << " and " << j << " overlap";
        }
    }
}

std::vector<AppObservation>
plainObs(std::size_t n)
{
    std::vector<AppObservation> obs(n);
    for (std::size_t i = 0; i < n; ++i)
        obs[i].id = static_cast<AppId>(i);
    return obs;
}

/** Strictly concave-ish curve: non-increasing with non-increasing
 *  marginal gains, the regime where unit greedy is provably optimal. */
std::vector<double>
concaveCurve(std::mt19937 &rng, unsigned ways)
{
    std::uniform_real_distribution<double> head(10.0, 100.0);
    std::uniform_real_distribution<double> gain(0.0, 1.0);
    std::vector<double> g(ways);
    for (double &v : g)
        v = gain(rng);
    std::sort(g.begin(), g.end(), std::greater<>());
    const double start = head(rng);
    double sum = 0.0;
    for (const double v : g)
        sum += v;
    // Scale total savings below the starting level so the curve stays
    // non-negative (a negative miss rate is meaningless).
    const double scale = sum > 0.0 ? 0.9 * start / sum : 0.0;
    std::vector<double> curve{start};
    for (unsigned w = 0; w < ways; ++w)
        curve.push_back(curve.back() - g[w] * scale);
    return curve;
}

/** Arbitrary non-increasing curve: random levels sorted descending —
 *  convex stretches, knees, and plateaus included. */
std::vector<double>
lumpyCurve(std::mt19937 &rng, unsigned ways)
{
    std::uniform_real_distribution<double> level(0.0, 100.0);
    std::vector<double> curve(ways + 1);
    for (double &v : curve)
        v = level(rng);
    std::sort(curve.begin(), curve.end(), std::greater<>());
    return curve;
}

/** Exhaustive minimum of ucpCost over all allocations of @p ways with
 *  one way minimum per app (the oracle the property suite compares
 *  against; apps <= 4 and ways <= 8 keep this tiny). */
double
bruteForceCost(const std::vector<std::vector<double>> &curves,
               unsigned ways)
{
    const std::size_t n = curves.size();
    std::vector<unsigned> alloc(n, 1);
    double best = std::numeric_limits<double>::infinity();
    const auto recurse = [&](const auto &self, std::size_t i,
                             unsigned left) -> void {
        if (i + 1 == n) {
            alloc[i] = left;
            best = std::min(best, ucpCost(curves, alloc));
            return;
        }
        const unsigned max_here =
            left - static_cast<unsigned>(n - i - 1);
        for (unsigned w = 1; w <= max_here; ++w) {
            alloc[i] = w;
            self(self, i + 1, left - w);
        }
    };
    recurse(recurse, 0, ways);
    return best;
}

// ---------------------------------------------------------------------
// fairMasks
// ---------------------------------------------------------------------

TEST(FairMasks, EvenSplitWithRemainderToFirstApps)
{
    const auto masks = fairMasks(3, 8); // 3,3,2
    expectMaskInvariants(masks, 3, 8, "fairMasks(3,8)");
    expectDisjoint(masks, "fairMasks(3,8)");
    EXPECT_EQ(masks[0].count(), 3u);
    EXPECT_EQ(masks[1].count(), 3u);
    EXPECT_EQ(masks[2].count(), 2u);
    EXPECT_TRUE(masks[0] == WayMask::range(0, 3));
    EXPECT_TRUE(masks[1] == WayMask::range(3, 3));
    EXPECT_TRUE(masks[2] == WayMask::range(6, 2));
}

TEST(FairMasks, TwoAppsMatchLegacySplitWays)
{
    const SplitMasks legacy = splitWays(6, 12);
    const auto masks = fairMasks(2, 12);
    EXPECT_TRUE(masks[0] == legacy.fg);
    EXPECT_TRUE(masks[1] == legacy.bg);
}

TEST(FairMasks, MoreAppsThanWaysShareSingleWays)
{
    for (const std::size_t n : {5u, 8u, 24u, 64u}) {
        const unsigned ways = 4;
        const auto masks = fairMasks(n, ways);
        expectMaskInvariants(masks, n, ways,
                             "fairMasks(n > ways)");
        for (const WayMask &m : masks)
            EXPECT_EQ(m.count(), 1u);
    }
}

// ---------------------------------------------------------------------
// Interface invariants, randomized across every policy
// ---------------------------------------------------------------------

TEST(PartitionerInvariants, HoldForAllPoliciesOnRandomInputs)
{
    std::mt19937 rng(20260808);
    std::uniform_int_distribution<unsigned> ways_d(2, 20);
    std::uniform_int_distribution<std::size_t> n_d(1, 24);
    std::uniform_real_distribution<double> mpki_d(0.0, 120.0);
    std::uniform_int_distribution<int> coin(0, 1);

    for (int iter = 0; iter < 400; ++iter) {
        const unsigned ways = ways_d(rng);
        // Occasionally push to the 64-app ceiling to cover the
        // share-a-way fallbacks.
        const std::size_t n =
            iter % 17 == 0 ? 64 : n_d(rng);
        auto obs = plainObs(n);
        for (auto &o : obs) {
            o.mpki = mpki_d(rng);
            o.apki = o.mpki + mpki_d(rng);
            if (coin(rng))
                o.missCurve = lumpyCurve(rng, ways);
        }

        SharedPartitioner shared;
        FairPartitioner fair;
        BiasedPartitioner biased(1 + rng() % ways);
        UcpPartitioner ucp;
        LfocPartitioner lfoc;
        Partitioner *all[] = {&shared, &fair, &biased, &ucp, &lfoc};
        for (Partitioner *p : all) {
            const auto masks = p->decide(obs, ways);
            expectMaskInvariants(masks, n, ways, p->name());
        }
    }
}

TEST(PartitionerInvariants, FairIsDisjointWhenAppsFit)
{
    std::mt19937 rng(7);
    FairPartitioner fair;
    for (int iter = 0; iter < 100; ++iter) {
        const unsigned ways = 2 + rng() % 19;
        const std::size_t n = 1 + rng() % ways;
        const auto masks = fair.decide(plainObs(n), ways);
        expectDisjoint(masks, "fair");
    }
}

TEST(PartitionerInvariants, UcpIsDisjointWithFullCurves)
{
    std::mt19937 rng(11);
    UcpPartitioner ucp;
    for (int iter = 0; iter < 100; ++iter) {
        const unsigned ways = 2 + rng() % 19;
        const std::size_t n = 1 + rng() % ways;
        auto obs = plainObs(n);
        for (auto &o : obs)
            o.missCurve = lumpyCurve(rng, ways);
        const auto masks = ucp.decide(obs, ways);
        expectDisjoint(masks, "ucp");
    }
}

TEST(PartitionerInvariants, StatelessPoliciesAreDeterministic)
{
    std::mt19937 rng(23);
    auto obs = plainObs(6);
    for (auto &o : obs)
        o.missCurve = lumpyCurve(rng, 16);
    SharedPartitioner shared;
    FairPartitioner fair;
    BiasedPartitioner biased(5);
    UcpPartitioner ucp;
    Partitioner *all[] = {&shared, &fair, &biased, &ucp};
    for (Partitioner *p : all) {
        const auto a = p->decide(obs, 16);
        const auto b = p->decide(obs, 16);
        ASSERT_EQ(a.size(), b.size()) << p->name();
        for (std::size_t i = 0; i < a.size(); ++i)
            EXPECT_TRUE(a[i] == b[i]) << p->name() << " app " << i;
    }
}

// ---------------------------------------------------------------------
// Biased
// ---------------------------------------------------------------------

TEST(Biased, TwoAppsReproduceSplitWays)
{
    for (unsigned fg = 1; fg <= 11; ++fg) {
        BiasedPartitioner biased(fg);
        const auto masks = biased.decide(plainObs(2), 12);
        const SplitMasks legacy = splitWays(fg, 12);
        EXPECT_TRUE(masks[0] == legacy.fg) << "fg=" << fg;
        EXPECT_TRUE(masks[1] == legacy.bg) << "fg=" << fg;
    }
}

TEST(Biased, ClampsForegroundWhenCoRunnersExist)
{
    BiasedPartitioner biased(12); // asks for the whole cache
    const auto masks = biased.decide(plainObs(3), 12);
    expectMaskInvariants(masks, 3, 12, "biased clamp");
    EXPECT_EQ(masks[0].count(), 11u);
}

// ---------------------------------------------------------------------
// UCP property suite: >= 1k randomized cases vs brute force
// ---------------------------------------------------------------------

TEST(UcpProperty, SumAndDeterminismOnRandomCurves)
{
    for (std::uint32_t seed = 0; seed < 300; ++seed) {
        std::mt19937 rng(seed);
        const std::size_t n = 1 + rng() % 4;
        const unsigned ways =
            static_cast<unsigned>(n) + rng() % (9 - n);
        std::vector<std::vector<double>> curves;
        for (std::size_t i = 0; i < n; ++i)
            curves.push_back(seed % 2 ? lumpyCurve(rng, ways)
                                      : concaveCurve(rng, ways));
        const auto alloc = ucpAllocate(curves, ways);
        ASSERT_EQ(alloc.size(), n);
        unsigned sum = 0;
        for (const unsigned a : alloc) {
            EXPECT_GE(a, 1u) << "seed " << seed;
            sum += a;
        }
        EXPECT_EQ(sum, ways) << "seed " << seed;
        EXPECT_EQ(ucpAllocate(curves, ways), alloc)
            << "nondeterministic at seed " << seed;
    }
}

TEST(UcpProperty, ExactlyOptimalOnConcaveCurves)
{
    for (std::uint32_t seed = 0; seed < 600; ++seed) {
        std::mt19937 rng(seed ^ 0xc0ffee);
        const std::size_t n = 1 + rng() % 4;
        const unsigned ways =
            static_cast<unsigned>(n) + rng() % (9 - n);
        std::vector<std::vector<double>> curves;
        for (std::size_t i = 0; i < n; ++i)
            curves.push_back(concaveCurve(rng, ways));
        const double cost =
            ucpCost(curves, ucpAllocate(curves, ways));
        const double opt = bruteForceCost(curves, ways);
        // Unit greedy is optimal on concave utility; the lookahead's
        // smallest-block tie-break reduces to it exactly.
        EXPECT_LE(cost, opt + 1e-9 * (1.0 + opt)) << "seed " << seed;
    }
}

TEST(UcpProperty, WithinHalfOfOptimalSavingsOnArbitraryCurves)
{
    for (std::uint32_t seed = 0; seed < 600; ++seed) {
        std::mt19937 rng(seed ^ 0xbeef);
        const std::size_t n = 1 + rng() % 4;
        const unsigned ways =
            static_cast<unsigned>(n) + rng() % (9 - n);
        std::vector<std::vector<double>> curves;
        double start_cost = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            curves.push_back(lumpyCurve(rng, ways));
            start_cost += curves.back()[1];
        }
        const double cost =
            ucpCost(curves, ucpAllocate(curves, ways));
        const double opt = bruteForceCost(curves, ways);
        // Qureshi & Patt's bound: greedy-with-lookahead keeps at least
        // half the utility (misses saved vs the 1-way-each start) of
        // the exhaustive optimum.
        const double savings = start_cost - cost;
        const double opt_savings = start_cost - opt;
        ASSERT_GE(opt_savings, -1e-9) << "seed " << seed;
        EXPECT_GE(savings, 0.5 * opt_savings - 1e-9)
            << "seed " << seed << " saved " << savings << " of "
            << opt_savings;
    }
}

TEST(UcpProperty, FlatCurvesParkWaysEvenly)
{
    // All-flat curves make every block's rate zero: the parking path
    // must still hand out every way, most-starved app first.
    const std::vector<std::vector<double>> curves(
        3, std::vector<double>(9, 50.0));
    const auto alloc = ucpAllocate(curves, 8);
    EXPECT_EQ(alloc, (std::vector<unsigned>{3, 3, 2}));
}

TEST(UcpPartitioner, FallsBackToFairWithoutCurves)
{
    UcpPartitioner ucp;
    auto obs = plainObs(3);
    obs[1].missCurve = {10.0, 5.0, 2.0}; // others unprofiled
    const auto masks = ucp.decide(obs, 9);
    const auto fair = fairMasks(3, 9);
    for (std::size_t i = 0; i < masks.size(); ++i)
        EXPECT_TRUE(masks[i] == fair[i]);
}

TEST(UcpPartitioner, KneeAppClaimsItsKneeViaLookahead)
{
    // App 0: no gain until 4 ways, then a cliff. Unit greedy would
    // never start down the flat stretch; lookahead takes the 4-block.
    auto obs = plainObs(2);
    obs[0].missCurve = {90, 90, 90, 90, 90, 5, 5, 5, 5};
    obs[1].missCurve = {50, 45, 41, 38, 36, 35, 34.5, 34.2, 34};
    UcpPartitioner ucp;
    const auto masks = ucp.decide(obs, 8);
    EXPECT_GE(masks[0].count(), 5u);
    expectDisjoint(masks, "knee");
}

// ---------------------------------------------------------------------
// LFOC classification
// ---------------------------------------------------------------------

TEST(LfocClassify, CurveFloorDecidesLightness)
{
    LfocConfig cfg; // lightMpki = 10, flatCurveGain = 0.25
    AppObservation light;
    light.mpki = 80.0; // squeezed right now...
    light.missCurve = {100, 60, 20, 4, 4, 4}; // ...but tiny when fed
    EXPECT_EQ(lfocClassify(light, 5, cfg), AppClass::Light);

    AppObservation stream;
    stream.missCurve = {40, 31, 30.5, 30.2, 30, 30};
    EXPECT_EQ(lfocClassify(stream, 5, cfg), AppClass::Streaming);

    AppObservation sens;
    sens.missCurve = {100, 90, 70, 45, 25, 20};
    EXPECT_EQ(lfocClassify(sens, 5, cfg), AppClass::Sensitive);
}

TEST(LfocClassify, MissingCurveFallsBackToMpki)
{
    LfocConfig cfg;
    AppObservation o;
    o.mpki = 0.5;
    EXPECT_EQ(lfocClassify(o, 20, cfg), AppClass::Light);
    o.mpki = 50.0;
    // Sensitive is the safe guess: a misclassified streamer wastes
    // ways, a misclassified sensitive app breaches its SLO.
    EXPECT_EQ(lfocClassify(o, 20, cfg), AppClass::Sensitive);
}

TEST(LfocClassify, ThresholdsAreConfigurable)
{
    AppObservation o;
    o.missCurve = {40, 31, 30.5, 30.2, 30, 30};
    LfocConfig strict;
    strict.flatCurveGain = 0.01; // the ~3% gain now counts as sensitive
    EXPECT_EQ(lfocClassify(o, 5, strict), AppClass::Sensitive);
    LfocConfig generous;
    generous.lightMpki = 35.0;
    EXPECT_EQ(lfocClassify(o, 5, generous), AppClass::Light);
}

// ---------------------------------------------------------------------
// LFOC layout and bouncing
// ---------------------------------------------------------------------

std::vector<AppObservation>
lfocMixObs(unsigned ways)
{
    // 2 sensitive (unequal weights), 2 light, 1 streaming.
    std::vector<AppObservation> obs = plainObs(5);
    obs[0].missCurve = {100, 90, 70, 45, 25, 20, 20, 20, 20, 20, 20,
                        20, 20};
    obs[1].missCurve = {120, 100, 60, 50, 46, 44, 43, 42, 41, 40, 40,
                        40, 40};
    obs[2].missCurve = {60, 30, 8, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2};
    obs[3].missCurve = {50, 20, 5, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1};
    obs[4].missCurve = {45, 36, 35, 35, 35, 35, 35, 35, 35, 35, 35,
                        35, 35};
    for (auto &o : obs) {
        o.missCurve.resize(ways + 1, o.missCurve.back());
        o.mpki = o.missCurve[1];
    }
    return obs;
}

TEST(Lfoc, ClustersShareAndSensitiveStayDisjoint)
{
    LfocPartitioner lfoc;
    const unsigned ways = 12;
    const auto obs = lfocMixObs(ways);
    const auto masks = lfoc.decide(obs, ways);
    expectMaskInvariants(masks, obs.size(), ways, "lfoc");
    const auto &cls = lfoc.lastClasses();
    ASSERT_EQ(cls.size(), obs.size());
    EXPECT_EQ(cls[0], AppClass::Sensitive);
    EXPECT_EQ(cls[1], AppClass::Sensitive);
    EXPECT_EQ(cls[2], AppClass::Light);
    EXPECT_EQ(cls[3], AppClass::Light);
    EXPECT_EQ(cls[4], AppClass::Streaming);

    // Lights share one slice; the streamer is isolated from everyone;
    // sensitive allocations are private.
    EXPECT_TRUE(masks[2] == masks[3]);
    EXPECT_TRUE((masks[2] & masks[4]).empty());
    for (const std::size_t s : {0u, 1u}) {
        for (std::size_t o = 0; o < masks.size(); ++o) {
            if (o == s)
                continue;
            EXPECT_TRUE((masks[s] & masks[o]).empty())
                << s << " vs " << o;
        }
    }
}

TEST(Lfoc, BouncingTimeAveragesToFractionalTargets)
{
    LfocPartitioner lfoc;
    const unsigned ways = 12;
    const auto obs = lfocMixObs(ways);
    constexpr int kWindows = 2000;
    std::vector<double> avg(obs.size(), 0.0);
    unsigned sens_total = 0;
    for (int w = 0; w < kWindows; ++w) {
        const auto masks = lfoc.decide(obs, ways);
        expectMaskInvariants(masks, obs.size(), ways, "lfoc window");
        const unsigned this_total = masks[0].count() + masks[1].count();
        if (w == 0)
            sens_total = this_total;
        // Every single window still hands the sensitive cluster the
        // same whole number of ways; only the split inside it bounces.
        ASSERT_EQ(this_total, sens_total) << "window " << w;
        for (std::size_t i = 0; i < obs.size(); ++i)
            avg[i] += masks[i].count();
    }
    const auto &targets = lfoc.lastTargets();
    ASSERT_EQ(targets.size(), obs.size());
    for (const std::size_t i : {0u, 1u}) {
        EXPECT_NEAR(avg[i] / kWindows, targets[i], 0.01)
            << "sensitive app " << i
            << " time-average drifted off its fractional target";
    }
    // The fractional targets themselves partition the sensitive ways.
    EXPECT_NEAR(targets[0] + targets[1], sens_total, 1e-9);
}

TEST(Lfoc, NoSensitiveAppsExpandTheClusters)
{
    LfocPartitioner lfoc;
    auto obs = plainObs(3);
    for (auto &o : obs)
        o.missCurve = {50, 4, 4, 4, 4, 4, 4, 4, 4}; // all light
    const auto masks = lfoc.decide(obs, 8);
    expectMaskInvariants(masks, 3, 8, "all-light");
    EXPECT_TRUE(masks[0] == masks[1]);
    EXPECT_TRUE(masks[1] == masks[2]);
}

TEST(Lfoc, ShrinksClustersBeforeStarvingSensitiveApps)
{
    LfocPartitioner lfoc;
    // 4 sensitive + 1 light + 1 stream on a 6-way cache: the default
    // 2+1 cluster reservation would leave only 3 ways for 4 apps.
    auto obs = plainObs(6);
    for (const std::size_t i : {0u, 1u, 2u, 3u})
        obs[i].missCurve = {100, 80, 55, 30, 25, 22, 20};
    obs[4].missCurve = {60, 30, 5, 5, 5, 5, 5};
    obs[5].missCurve = {45, 36, 35, 35, 35, 35, 35};
    const auto masks = lfoc.decide(obs, 6);
    expectMaskInvariants(masks, 6, 6, "shrunk clusters");
    EXPECT_EQ(masks[4].count(), 1u);
    EXPECT_EQ(masks[5].count(), 1u);
    for (const std::size_t i : {0u, 1u, 2u, 3u})
        EXPECT_EQ(masks[i].count(), 1u);
}

TEST(Lfoc, MoreAppsThanWaysFallsBackFair)
{
    LfocPartitioner lfoc;
    const auto masks = lfoc.decide(plainObs(10), 4);
    const auto fair = fairMasks(10, 4);
    for (std::size_t i = 0; i < masks.size(); ++i)
        EXPECT_TRUE(masks[i] == fair[i]);
}

TEST(Lfoc, FreshInstancesReplayIdentically)
{
    const auto obs = lfocMixObs(12);
    LfocPartitioner a, b;
    for (int w = 0; w < 50; ++w) {
        const auto ma = a.decide(obs, 12);
        const auto mb = b.decide(obs, 12);
        for (std::size_t i = 0; i < ma.size(); ++i)
            EXPECT_TRUE(ma[i] == mb[i]) << "window " << w;
    }
}

// ---------------------------------------------------------------------
// N-app runs end to end (small machine, tiny scale)
// ---------------------------------------------------------------------

std::vector<NAppMember>
smallMix(std::size_t n, double)
{
    std::vector<NAppMember> members;
    const auto apps = Catalog::nAppMix(n, 0);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        NAppMember m;
        m.params = apps[i];
        m.threads = 2;
        m.continuous = i != 0;
        members.push_back(m);
    }
    return members;
}

NAppOptions
smallOpts()
{
    NAppOptions o;
    o.system = nAppSystem(4, 8);
    o.scale = 0.02;
    return o;
}

TEST(NAppRun, AllPoliciesCompleteAndAccount)
{
    const auto members = smallMix(3, 0.02);
    const NAppOptions opts = smallOpts();
    for (unsigned p = 0; p < kNumNPolicies; ++p) {
        const auto policy = static_cast<NPolicy>(p);
        const NAppRunResult r = runNApp(members, policy, opts);
        ASSERT_EQ(r.apps.size(), members.size()) << npolicyName(policy);
        EXPECT_FALSE(r.timedOut) << npolicyName(policy);
        EXPECT_TRUE(r.apps[0].completed) << npolicyName(policy);
        EXPECT_GT(r.fgTime, 0.0) << npolicyName(policy);
        EXPECT_GT(r.socketEnergy, 0.0) << npolicyName(policy);
        for (const AppRunStats &a : r.apps)
            EXPECT_GT(a.retired, 0u) << npolicyName(policy);
    }
}

TEST(NAppRun, DeterministicAcrossRepeats)
{
    const auto members = smallMix(3, 0.02);
    const NAppOptions opts = smallOpts();
    const NAppRunResult a = runNApp(members, NPolicy::Lfoc, opts);
    const NAppRunResult b = runNApp(members, NPolicy::Lfoc, opts);
    EXPECT_DOUBLE_EQ(a.fgTime, b.fgTime);
    EXPECT_DOUBLE_EQ(a.socketEnergy, b.socketEnergy);
    EXPECT_EQ(a.remasks, b.remasks);
    for (std::size_t i = 0; i < a.apps.size(); ++i) {
        EXPECT_EQ(a.apps[i].retired, b.apps[i].retired);
        EXPECT_EQ(a.apps[i].llcMisses, b.apps[i].llcMisses);
    }
}

TEST(NAppRun, LfocReportsClassesAndBounces)
{
    // Four apps so the mix holds two sensitive co-runners (429.mcf and
    // fop): with only one, the whole sensitive budget is a constant
    // single mask and there is nothing to bounce.
    const auto members = smallMix(4, 0.02);
    const NAppRunResult r =
        runNApp(members, NPolicy::Lfoc, smallOpts());
    EXPECT_EQ(r.lfocClasses.size(), members.size());
    // Decision windows fire throughout the run; the bouncing policy
    // must actually reinstall masks, not sit on its first decision.
    EXPECT_GT(r.remasks, 0u);
}

TEST(NAppRun, ProfiledCurvesAreSaneAndDeterministic)
{
    const SystemConfig sys = nAppSystem(4, 8);
    const AppParams &app = Catalog::byName("429.mcf");
    const MissCurve a = profileMissCurve(app, sys, 0.02);
    const MissCurve b = profileMissCurve(app, sys, 0.02);
    ASSERT_EQ(a.mpkiAtWays.size(), 9u);
    EXPECT_GT(a.accesses, 0u);
    EXPECT_GT(a.apki, 0.0);
    EXPECT_EQ(a.mpkiAtWays, b.mpkiAtWays);
    // Non-increasing in capacity, and w = 0 means every access misses.
    EXPECT_NEAR(a.mpkiAtWays[0], a.apki, 1e-9);
    for (std::size_t w = 1; w < a.mpkiAtWays.size(); ++w)
        EXPECT_LE(a.mpkiAtWays[w], a.mpkiAtWays[w - 1] + 1e-9);
}

TEST(NAppStudy, SummaryMetricsAreConsistent)
{
    NAppStudyOptions so;
    so.run = smallOpts();
    NAppStudy study(smallMix(3, 0.02), so);
    const NAppPolicySummary s = study.summarize(NPolicy::Fair);
    EXPECT_GT(s.stp, 0.0);
    EXPECT_LE(s.stp, 3.0 + 1e-9); // N apps cap STP at N
    EXPECT_GE(s.unfairness, 1.0);
    EXPECT_GE(s.worstSlowdown, s.fgSlowdown - 1e-12);
    EXPECT_GT(s.throughputIps, 0.0);
    EXPECT_LE(s.sloBreaches, 3u);
    // Same mix under a second policy reuses the cached solo baselines;
    // summaries must stay internally consistent, not equal.
    const NAppPolicySummary sh = study.summarize(NPolicy::Shared);
    EXPECT_GT(sh.stp, 0.0);
}

} // namespace
} // namespace capart
