/**
 * @file
 * Golden-value regression tests pinning the paper's headline shapes.
 *
 * Every test runs at base seed 12345 through the SweepRunner seeding
 * scheme (seed = mixSeed(base, spec hash)), at a documented scale, so
 * the measured numbers are exactly reproducible. The asserted bands
 * are intentionally wider than double-precision noise but narrower
 * than any semantically meaningful drift: a perf PR that refactors
 * the simulator may move a value within its band, but a change that
 * breaks a headline *shape* of the paper (§5.1 contention, §4
 * race-to-halt, §6.4 foreground protection) must fail here.
 *
 * Each test documents: the paper's value, the value this reproduction
 * measures at the test's (seed, scale), and the tolerance rationale.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "core/partitioner.hh"
#include "exec/experiment_spec.hh"
#include "exec/result_cache.hh"
#include "exec/sweep_runner.hh"
#include "mem/cache_config.hh"
#include "stats/summary.hh"
#include "workload/catalog.hh"

namespace capart::exec
{
namespace
{

constexpr std::uint64_t kGoldenSeed = 12345;

std::vector<SweepResult>
runGolden(const std::vector<ExperimentSpec> &specs)
{
    SweepRunnerOptions o;
    o.baseSeed = kGoldenSeed;
    // Hardware parallelism when available; results are --jobs
    // invariant (tests/test_exec.cc), so this cannot change values.
    o.jobs = 0;
    return SweepRunner(o).run(specs);
}

/**
 * Headline shape 1 (paper §5.1, Fig. 8): sharing the LLC costs real
 * foreground performance — the paper reports a 6 % average slowdown
 * over its full 45x45 co-run matrix.
 *
 * The full matrix is too slow for a unit test, so this pins the
 * co-run matrix of a 12-app subset — the main aggressors and the
 * sensitive set, diluted with mid-sensitivity apps — at scale 0.06,
 * chosen so its average lands in the paper's headline regime while
 * running in seconds.
 */
TEST(Golden, SharedLlcSlowdownAverage)
{
    const std::vector<std::string> apps = {
        "stream_uncached", "471.omnetpp", "429.mcf",
        "pmd",             "tradebeans",  "canneal",
        "473.astar",       "eclipse",     "fop",
        "x264",            "xalan",       "h2",
    };
    constexpr double kScale = 0.06;

    std::vector<ExperimentSpec> specs;
    for (const auto &a : apps)
        specs.push_back(soloSpec(a, 4, 12, kScale));
    for (const auto &fg : apps)
        for (const auto &bg : apps)
            specs.push_back(pairSpec(fg, bg, kScale));
    const std::vector<SweepResult> res = runGolden(specs);

    const std::size_t n = apps.size();
    RunningStat slow;
    for (std::size_t fg = 0; fg < n; ++fg)
        for (std::size_t bg = 0; bg < n; ++bg) {
            if (fg == bg)
                continue;
            slow.add(res[n + fg * n + bg].time / res[fg].time);
        }

    const double avg_pct = (slow.mean() - 1.0) * 100.0;
    const double worst_pct = (slow.max() - 1.0) * 100.0;
    std::cout << "[golden] shared-LLC avg slowdown " << avg_pct
              << "% worst " << worst_pct << "%\n";

    // Measured 6.7% at (seed 12345, scale 0.06); paper: 6 % over the
    // full matrix. Band: 6.0 +/- 1.5 points absolute — seed- and
    // refactor-robust, but a collapse of contention (≈0 %) or an
    // interference blow-up both land far outside it.
    EXPECT_NEAR(avg_pct, 6.0, 1.5);
    // The worst pair (429.mcf behind stream_uncached, measured 60%)
    // must stay a double-digit percentage (paper: ~34.5% worst case).
    EXPECT_GT(worst_pct, 10.0);
}

/**
 * Headline shape 2 (paper §4, Figs. 6-7): race-to-halt — for most
 * applications, running with all resources (8 threads, 12 ways) and
 * finishing early costs less *wall* energy than running slow and
 * steady on half the machine (2 threads, 6 ways). The paper finds the
 * minimum-energy allocation at or near the minimum-time allocation
 * for its representatives.
 */
TEST(Golden, RaceToHaltBeatsSlowAndSteady)
{
    const std::vector<std::string> reps = {
        "429.mcf", "459.GemsFDTD", "ferret", "fop", "dedup", "batik",
    };
    constexpr double kScale = 0.08;

    std::vector<ExperimentSpec> specs;
    for (const auto &r : reps) {
        specs.push_back(soloSpec(r, 8, 12, kScale)); // race-to-halt
        specs.push_back(soloSpec(r, 2, 6, kScale));  // slow-and-steady
    }
    const std::vector<SweepResult> res = runGolden(specs);

    unsigned race_wins = 0;
    for (std::size_t i = 0; i < reps.size(); ++i) {
        const double race = res[2 * i].wallEnergy;
        const double slow = res[2 * i + 1].wallEnergy;
        std::cout << "[golden] " << reps[i] << " race " << race
                  << " J vs slow " << slow << " J\n";
        // 2 % grace: single-threaded representatives (429.mcf) gain
        // nothing from extra threads, so race and slow nearly tie.
        if (race <= slow * 1.02)
            ++race_wins;
    }
    // Paper shape: race-to-halt wins for at least 5 of 6
    // representatives.
    EXPECT_GE(race_wins, 5u);
}

/**
 * Headline shape 3 (paper §6.4, Fig. 13): the dynamic partitioning
 * algorithm preserves responsiveness — foreground slowdown within
 * ~2 % of the best static (biased oracle) allocation, averaged over
 * the ordered representative pairs.
 */
TEST(Golden, DynamicForegroundWithinTwoPercentOfBestStatic)
{
    const std::vector<std::string> reps = {
        "429.mcf", "459.GemsFDTD", "ferret", "fop", "dedup", "batik",
    };
    constexpr double kScale = 0.03;

    const unsigned policies =
        policyBit(Policy::Biased) | policyBit(Policy::Dynamic);
    std::vector<ExperimentSpec> specs;
    for (const auto &fg : reps)
        for (const auto &bg : reps)
            specs.push_back(consolidationSpec(fg, bg, policies, kScale,
                                              /*perf_window=*/15e-6));
    const std::vector<SweepResult> res = runGolden(specs);

    RunningStat delta;
    for (const SweepResult &r : res) {
        const PolicyOutcome &bi =
            r.policy[static_cast<int>(Policy::Biased)];
        const PolicyOutcome &dy =
            r.policy[static_cast<int>(Policy::Dynamic)];
        ASSERT_TRUE(bi.present);
        ASSERT_TRUE(dy.present);
        delta.add(dy.fgSlowdown - bi.fgSlowdown);
    }

    const double avg_pts = delta.mean() * 100.0;
    const double worst_pts = delta.max() * 100.0;
    std::cout << "[golden] dynamic-vs-static fg cost avg " << avg_pts
              << " pts, worst " << worst_pts << " pts\n";

    // Paper: dynamic costs the foreground 1-2 % vs the best static
    // split. Average must stay within 2 points; the worst single pair
    // gets 5 points before we call the controller broken.
    EXPECT_LT(avg_pts, 2.0);
    EXPECT_LT(worst_pts, 5.0);
}

/**
 * Engine bit-identity at golden seed 12345: the flat-array fast cache
 * engine and the legacy virtual-dispatch engine must produce
 * *byte-identical* sweep points on the fig13 workload. The spec list
 * is the fig13 `--quick` matrix (consolidation pairs under
 * Shared/Biased/Dynamic, scale 0.06 * 0.3, perf window 15 us)
 * restricted to three cluster representatives so the double run stays
 * unit-test sized. Points are compared through ResultCache::encode —
 * the exact hexfloat line a point record/result cache stores — so any
 * engine divergence in any serialized metric fails byte-for-byte.
 *
 * This test is the contract that gates deleting the legacy engine:
 * only once it (plus the differential suite) has passed in CI may the
 * legacy path go.
 */
TEST(Golden, FastEngineBitIdenticalToLegacyOnFig13Quick)
{
    // C1 (LLC-sensitive), C3 (scalable, cache-indifferent), C4
    // (saturated, cache-sensitive) — the contention-relevant corners
    // of the six-cluster representative set.
    const std::vector<std::string> reps = {"429.mcf", "ferret", "fop"};
    constexpr double kQuickScale = 0.06 * 0.3;

    const unsigned policies = policyBit(Policy::Shared) |
                              policyBit(Policy::Biased) |
                              policyBit(Policy::Dynamic);
    std::vector<ExperimentSpec> specs;
    for (const auto &fg : reps)
        for (const auto &bg : reps)
            specs.push_back(consolidationSpec(fg, bg, policies,
                                              kQuickScale,
                                              /*perf_window=*/15e-6));

    setDefaultCacheEngine(CacheEngine::Legacy);
    const std::vector<SweepResult> legacy = runGolden(specs);
    setDefaultCacheEngine(CacheEngine::Fast);
    const std::vector<SweepResult> fast = runGolden(specs);
    setDefaultCacheEngine(CacheEngine::Auto);

    ASSERT_EQ(legacy.size(), fast.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(ResultCache::encode(legacy[i]),
                  ResultCache::encode(fast[i]))
            << "point " << i << " (" << specs[i].canonical()
            << ") diverged between engines";
    }
}

/**
 * Headline shape 4 (N-app generalization, Figure 9N / the
 * bench_fig09n_napp_policies `--quick` point): on the 8-app mix-0
 * cluster (4 sensitive + 2 streaming + 2 light, Catalog::nAppMix) on a
 * 16-core / 20-way machine at the quick scale (0.04 * 0.3, the same
 * reduction parseArgs applies for `--quick`), the partitioning
 * policies must keep their qualitative ordering:
 *
 *   - LFOC beats shared on system throughput (isolating the streamers
 *     and packing the light apps frees ways for the sensitive set);
 *   - UCP beats fair on throughput (curve-driven allocation beats
 *     equal slices when demands are lopsided);
 *   - LFOC actually bounces (fractional sensitive targets remask).
 *
 * Exact STP values are pinned in a band around the measured numbers at
 * (seed 12345, scale 0.012); the band is wide enough for
 * timing-neutral refactors, narrow enough that a policy regression to
 * shared-like or fair-like behaviour fails.
 */
TEST(Golden, NAppPolicyOrderingOnEightAppMix)
{
    // Same mix (and, crucially, same app order — the spec hash seeds
    // the run) as the bench's quick configuration.
    std::vector<std::string> apps;
    for (const AppParams &a : Catalog::nAppMix(8, 0))
        apps.push_back(a.name);
    constexpr double kScale = 0.04 * 0.3;
    const unsigned policies =
        npolicyBit(NPolicy::Shared) | npolicyBit(NPolicy::Fair) |
        npolicyBit(NPolicy::Ucp) | npolicyBit(NPolicy::Lfoc) |
        npolicyBit(NPolicy::Dynamic);

    const std::vector<SweepResult> res = runGolden(
        {nappSpec(apps, 16, 20, policies, /*threads_each=*/2, kScale)});
    ASSERT_EQ(res.size(), 1u);

    const auto &at = [&](NPolicy p) -> const NAppPolicyOutcome & {
        const NAppPolicyOutcome &o =
            res[0].napp[static_cast<int>(p)];
        EXPECT_TRUE(o.present) << npolicyName(p);
        return o;
    };
    const NAppPolicyOutcome &shared = at(NPolicy::Shared);
    const NAppPolicyOutcome &fair = at(NPolicy::Fair);
    const NAppPolicyOutcome &ucp = at(NPolicy::Ucp);
    const NAppPolicyOutcome &lfoc = at(NPolicy::Lfoc);
    const NAppPolicyOutcome &dyn = at(NPolicy::Dynamic);

    for (const NPolicy p : {NPolicy::Shared, NPolicy::Fair, NPolicy::Ucp,
                            NPolicy::Lfoc, NPolicy::Dynamic}) {
        const NAppPolicyOutcome &o = res[0].napp[static_cast<int>(p)];
        std::cout << "[golden] fig09n " << npolicyName(p) << " stp "
                  << o.stp << " unfairness " << o.unfairness
                  << " slo-breaches " << o.sloBreaches << " remasks "
                  << o.remasks << "\n";
    }

    // Measured at (seed 12345, scale 0.012): shared 2.43, fair 2.85,
    // ucp 2.69, lfoc 3.26, dynamic 1.59. Bands are +/- ~10 % relative.
    EXPECT_NEAR(shared.stp, 2.43, 0.25);
    EXPECT_NEAR(fair.stp, 2.85, 0.29);
    EXPECT_NEAR(ucp.stp, 2.69, 0.27);
    EXPECT_NEAR(lfoc.stp, 3.26, 0.33);
    EXPECT_NEAR(dyn.stp, 1.59, 0.16);

    // Qualitative ordering — the shape this figure exists to show.
    EXPECT_GT(lfoc.stp, shared.stp);
    EXPECT_GT(ucp.stp, fair.stp * 0.90)
        << "ucp regressed to well below fair";
    EXPECT_GT(lfoc.remasks, 0u) << "LFOC stopped bouncing";
    EXPECT_EQ(shared.remasks, 0u);
    EXPECT_EQ(fair.remasks, 0u);

    // Sanity on the remaining reported metrics.
    for (const NAppPolicyOutcome *o : {&shared, &fair, &ucp, &lfoc, &dyn}) {
        EXPECT_GE(o->unfairness, 1.0);
        EXPECT_GT(o->throughputIps, 0.0);
        EXPECT_GT(o->socketEnergyJ, 0.0);
        EXPECT_GT(o->wallEnergyJ, o->socketEnergyJ);
        EXPECT_LE(o->sloBreaches, 8u);
    }
}

} // namespace
} // namespace capart::exec
