/**
 * @file
 * Tests for the parallel sweep infrastructure (src/exec): thread-pool
 * lifecycle and failure behaviour, the spec-hash seeding scheme, the
 * on-disk memoization cache, bit-identical results for any --jobs
 * value, and the determinism audit — experiment results must be a
 * function of the spec alone, never of iteration order or of earlier
 * runs in the same process.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/partitioner.hh"
#include "exec/experiment_spec.hh"
#include "exec/result_cache.hh"
#include "exec/sweep_runner.hh"
#include "exec/thread_pool.hh"
#include "sim/experiment.hh"
#include "workload/catalog.hh"

namespace capart::exec
{
namespace
{

constexpr double kTestScale = 0.02;

// ---------------------------------------------------------------- pool

TEST(ThreadPool, StartsAndStopsIdle)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    // Destructor must not hang with zero submitted tasks.
}

TEST(ThreadPool, WaitOnEmptyPoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    pool.wait(); // idempotent
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPool, HugeBatchDoesNotDeadlock)
{
    // Far more tasks than workers, tiny bodies: exercises the
    // steal/sleep/wake paths under contention.
    ThreadPool pool(8);
    std::atomic<std::uint64_t> sum{0};
    constexpr int kTasks = 20000;
    for (int i = 0; i < kTasks; ++i)
        pool.submit([&sum, i] { sum += static_cast<std::uint64_t>(i); });
    pool.wait();
    EXPECT_EQ(sum.load(),
              static_cast<std::uint64_t>(kTasks) * (kTasks - 1) / 2);
}

TEST(ThreadPool, PropagatesFirstExceptionAndStaysUsable)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The failure must not poison the pool.
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ExceptionInOneTaskDoesNotCancelOthers)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i) {
        if (i == 50)
            pool.submit([] { throw std::runtime_error("mid-batch"); });
        else
            pool.submit([&count] { ++count; });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    EXPECT_EQ(count.load(), 99);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must drain before joining.
    }
    EXPECT_EQ(count.load(), 100);
}

// ------------------------------------------------------------- seeding

TEST(Seeding, MixSeedIsDeterministicAndSensitive)
{
    EXPECT_EQ(mixSeed(12345, 777), mixSeed(12345, 777));
    EXPECT_NE(mixSeed(12345, 777), mixSeed(12345, 778));
    EXPECT_NE(mixSeed(12345, 777), mixSeed(12346, 777));
    EXPECT_NE(mixSeed(0, 0), 0u);
}

TEST(Seeding, SpecHashCoversEveryField)
{
    const ExperimentSpec base = soloSpec("ferret", 4, 12, 0.05);
    EXPECT_EQ(base.hash(), soloSpec("ferret", 4, 12, 0.05).hash());

    ExperimentSpec m = base;
    m.fg = "dedup";
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.threads = 2;
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.ways = 6;
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.prefetchAll = false;
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.scale = 0.06;
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.kind = SpecKind::Pair;
    m.bg = "ferret";
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.perfWindow = 15e-6;
    EXPECT_NE(m.hash(), base.hash());
}

TEST(Seeding, NAppSpecHashCoversItsFields)
{
    const std::vector<std::string> apps{"429.mcf", "470.lbm", "ferret"};
    const ExperimentSpec base = nappSpec(apps, 16, 20, 0x3, 2, 0.04);
    EXPECT_EQ(base.hash(), nappSpec(apps, 16, 20, 0x3, 2, 0.04).hash());

    ExperimentSpec m = base;
    m.napps = "429.mcf,470.lbm";
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.cores = 8;
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.llcWays = 12;
    EXPECT_NE(m.hash(), base.hash());
    m = base;
    m.npolicies = 0x7;
    EXPECT_NE(m.hash(), base.hash());
}

TEST(Seeding, LegacySpecEncodingsUnchangedByNAppFields)
{
    // The NApp fields ride on the same struct but must be encoded only
    // for NApp specs: every pre-existing spec kind keeps its canonical
    // string — and therefore its hash, derived seed, cache keys, and
    // golden values — byte for byte.
    const ExperimentSpec solo = soloSpec("ferret", 4, 12, 0.05);
    EXPECT_EQ(solo.canonical().find("napps="), std::string::npos);
    EXPECT_EQ(solo.canonical().find("npolicies="), std::string::npos);
    ExperimentSpec mutated = solo;
    mutated.cores = 64; // not part of a solo spec's identity
    mutated.npolicies = 0x3f;
    EXPECT_EQ(mutated.canonical(), solo.canonical());

    const ExperimentSpec napp =
        nappSpec({"ferret", "429.mcf"}, 16, 20, 0x3, 2, 0.04);
    EXPECT_NE(napp.canonical().find("napps=ferret,429.mcf"),
              std::string::npos);
}

TEST(Seeding, SplitAppListRoundTrips)
{
    const std::vector<std::string> apps{"a", "bb", "ccc"};
    const ExperimentSpec spec = nappSpec(apps, 4, 8, 0x1, 2, 0.02);
    EXPECT_EQ(splitAppList(spec.napps), apps);
    EXPECT_EQ(splitAppList("solo"), std::vector<std::string>{"solo"});
}

// --------------------------------------------------------------- cache

bool
sameResult(const SweepResult &a, const SweepResult &b)
{
    if (a.time != b.time || a.socketEnergy != b.socketEnergy ||
        a.wallEnergy != b.wallEnergy || a.mpki != b.mpki ||
        a.apki != b.apki || a.ipc != b.ipc ||
        a.bgThroughput != b.bgThroughput || a.timedOut != b.timedOut)
        return false;
    for (int p = 0; p < 4; ++p) {
        const PolicyOutcome &x = a.policy[p];
        const PolicyOutcome &y = b.policy[p];
        if (x.present != y.present || x.fgSlowdown != y.fgSlowdown ||
            x.bgThroughput != y.bgThroughput ||
            x.energyVsSequential != y.energyVsSequential ||
            x.wallEnergyVsSequential != y.wallEnergyVsSequential ||
            x.weightedSpeedup != y.weightedSpeedup ||
            x.fgWays != y.fgWays)
            return false;
    }
    for (int p = 0; p < 6; ++p) {
        const NAppPolicyOutcome &x = a.napp[p];
        const NAppPolicyOutcome &y = b.napp[p];
        if (x.present != y.present || x.stp != y.stp ||
            x.throughputIps != y.throughputIps ||
            x.unfairness != y.unfairness ||
            x.fgSlowdown != y.fgSlowdown ||
            x.socketEnergyJ != y.socketEnergyJ ||
            x.wallEnergyJ != y.wallEnergyJ ||
            x.sloBreaches != y.sloBreaches || x.remasks != y.remasks)
            return false;
    }
    return true;
}

TEST(ResultCache, EncodeDecodeRoundTripsBitExactly)
{
    SweepResult r;
    r.time = 0.123456789012345678;
    r.socketEnergy = 1e-300;
    r.wallEnergy = 3.14159e10;
    r.mpki = 7.25;
    r.apki = 0.0;
    r.ipc = 1.0 / 3.0;
    r.bgThroughput = 2.5e9;
    r.timedOut = true;
    r.policy[2].present = true;
    r.policy[2].fgSlowdown = 1.0 + 1e-15;
    r.policy[2].weightedSpeedup = 1.9999999999999998;
    r.policy[2].fgWays = 9;
    r.napp[4].present = true;
    r.napp[4].stp = 5.4321098765432101;
    r.napp[4].throughputIps = 1.3e10;
    r.napp[4].unfairness = 1.0 + 1e-14;
    r.napp[4].fgSlowdown = 2.0 - 1e-15;
    r.napp[4].socketEnergyJ = 1e-200;
    r.napp[4].wallEnergyJ = 0.25;
    r.napp[4].sloBreaches = 7;
    r.napp[4].remasks = 123456;

    SweepResult back;
    ASSERT_TRUE(ResultCache::decode(ResultCache::encode(r), &back));
    EXPECT_TRUE(sameResult(r, back));
    EXPECT_TRUE(back.fromCache);
}

TEST(ResultCache, RejectsTruncatedRecords)
{
    SweepResult r;
    const std::string body = ResultCache::encode(r);
    SweepResult out;
    EXPECT_TRUE(ResultCache::decode(body, &out));
    EXPECT_FALSE(
        ResultCache::decode(body.substr(0, body.size() / 2), &out));
    EXPECT_FALSE(ResultCache::decode("", &out));
}

TEST(ResultCache, PersistsAcrossInstances)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "capart_cache_test")
            .string();
    std::remove(path.c_str());

    SweepResult r;
    r.time = 42.5;
    r.policy[0].present = true;
    r.policy[0].fgSlowdown = 1.0625;
    {
        ResultCache cache(path);
        EXPECT_EQ(cache.size(), 0u);
        cache.store(0xdeadbeefULL, r);
    }
    {
        ResultCache cache(path);
        EXPECT_EQ(cache.size(), 1u);
        SweepResult out;
        ASSERT_TRUE(cache.lookup(0xdeadbeefULL, &out));
        EXPECT_TRUE(sameResult(r, out));
        EXPECT_FALSE(cache.lookup(0x1234ULL, &out));
    }
    std::remove(path.c_str());
}

// Write a fresh cache file at path holding one entry: key -> time t.
void
cacheFileWith(const std::string &path, std::uint64_t key, double t)
{
    std::remove(path.c_str());
    SweepResult r;
    r.time = t;
    ResultCache cache(path);
    cache.store(key, r);
}

TEST(ResultCache, ChecksumLineRoundTrips)
{
    const std::string body = "00000000deadbeef " +
                             ResultCache::encode(SweepResult{});
    const std::string line = ResultCache::checksumLine(body);
    std::string back;
    ASSERT_TRUE(ResultCache::verifyLine(line, &back));
    EXPECT_EQ(back, body);
    // Any single-byte change must fail verification.
    std::string flipped = line;
    flipped[4] = flipped[4] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(ResultCache::verifyLine(flipped, &back));
    EXPECT_FALSE(
        ResultCache::verifyLine(line.substr(0, line.size() - 1), &back));
    EXPECT_FALSE(ResultCache::verifyLine(body, &back)); // no checksum
}

TEST(ResultCache, CorruptLinesAreSkippedIntactLinesSurvive)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "capart_cache_corrupt")
            .string();
    cacheFileWith(path, 0x1, 1.5);
    {
        // Second valid entry, then mangle the FIRST entry's payload (a
        // bit flip mid-file, not just a torn tail) and append a torn
        // half-line after it.
        SweepResult r2;
        r2.time = 2.5;
        ResultCache cache(path);
        cache.store(0x2, r2);
    }
    {
        std::ifstream in(path);
        std::string all((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
        const std::size_t pos = all.find("0000000000000001 ");
        ASSERT_NE(pos, std::string::npos);
        all[pos + 20] ^= 0x1; // flip one payload bit of entry 0x1
        std::ofstream out(path, std::ios::trunc);
        out << all << "0000000000000003 0x1p+0"; // torn tail, no '\n'
    }
    ResultCache cache(path);
    EXPECT_EQ(cache.size(), 1u);
    SweepResult out;
    EXPECT_FALSE(cache.lookup(0x1, &out)); // corrupt -> recompute
    ASSERT_TRUE(cache.lookup(0x2, &out));  // intact entry still hits
    EXPECT_EQ(out.time, 2.5);
    EXPECT_FALSE(cache.lookup(0x3, &out)); // torn tail never loads
    std::remove(path.c_str());
}

TEST(ResultCache, RejectsNonFiniteEntries)
{
    SweepResult r;
    r.mpki = std::numeric_limits<double>::quiet_NaN();
    SweepResult out;
    EXPECT_FALSE(ResultCache::decode(ResultCache::encode(r), &out));
    r.mpki = 0.0;
    r.policy[1].weightedSpeedup =
        std::numeric_limits<double>::infinity();
    EXPECT_FALSE(ResultCache::decode(ResultCache::encode(r), &out));
}

TEST(ResultCache, IncompatibleHeaderIgnoredWholesaleThenRewritten)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "capart_cache_v1")
            .string();
    {
        // A pre-checksum v1 file: must be ignored (recompute beats
        // trusting unverifiable lines), not partially parsed.
        std::ofstream out(path, std::ios::trunc);
        out << "# capart-sweep-cache v1\n"
            << "0000000000000001 0x1p+0 0x0p+0 0x0p+0 0x0p+0\n";
    }
    {
        ResultCache cache(path);
        EXPECT_EQ(cache.size(), 0u);
        SweepResult r;
        r.time = 9.0;
        cache.store(0x2, r); // first store rewrites as v2
    }
    ResultCache cache(path);
    EXPECT_EQ(cache.size(), 1u);
    SweepResult out;
    ASSERT_TRUE(cache.lookup(0x2, &out));
    EXPECT_EQ(out.time, 9.0);
    EXPECT_FALSE(cache.lookup(0x1, &out));
    std::remove(path.c_str());
}

// -------------------------------------------------- runner determinism

std::vector<ExperimentSpec>
representativePairSweep()
{
    // A small but representative sweep: solos, shared pairs, and a
    // partitioned pair over three of the Table 3 representatives.
    const std::vector<std::string> apps = {"429.mcf", "ferret", "dedup"};
    std::vector<ExperimentSpec> specs;
    for (const auto &a : apps)
        specs.push_back(soloSpec(a, 4, 12, kTestScale));
    for (const auto &fg : apps)
        for (const auto &bg : apps)
            specs.push_back(pairSpec(fg, bg, kTestScale));
    specs.push_back(pairSpec("429.mcf", "ferret", kTestScale,
                             /*fg_mask_ways=*/8));
    return specs;
}

TEST(SweepRunner, ResultsBitIdenticalForAnyJobCount)
{
    const std::vector<ExperimentSpec> specs = representativePairSweep();

    std::vector<std::vector<SweepResult>> outcomes;
    for (const unsigned jobs : {1u, 2u, 8u}) {
        SweepRunnerOptions o;
        o.jobs = jobs;
        o.baseSeed = 12345;
        outcomes.push_back(SweepRunner(o).run(specs));
    }
    ASSERT_EQ(outcomes[0].size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_TRUE(sameResult(outcomes[0][i], outcomes[1][i]))
            << "--jobs=2 diverged at spec " << i;
        EXPECT_TRUE(sameResult(outcomes[0][i], outcomes[2][i]))
            << "--jobs=8 diverged at spec " << i;
    }
}

TEST(SweepRunner, BaseSeedChangesResults)
{
    const ExperimentSpec spec = soloSpec("canneal", 4, 12, kTestScale);
    const SweepResult a = runSpec(spec, 12345);
    const SweepResult b = runSpec(spec, 54321);
    EXPECT_NE(a.time, b.time);
}

TEST(SweepRunner, ProgressReachesTotal)
{
    const std::vector<ExperimentSpec> specs = {
        soloSpec("ferret", 4, 12, kTestScale),
        soloSpec("dedup", 4, 12, kTestScale),
    };
    std::size_t last_done = 0, last_total = 0;
    SweepRunnerOptions o;
    o.jobs = 2;
    o.progress = [&](std::size_t done, std::size_t total) {
        last_done = done;
        last_total = total;
    };
    SweepRunner(o).run(specs);
    EXPECT_EQ(last_done, 2u);
    EXPECT_EQ(last_total, 2u);
}

TEST(SweepRunner, CacheSkipsCompletedPointsBitExactly)
{
    const std::string path =
        (std::filesystem::temp_directory_path() / "capart_sweep_cache")
            .string();
    std::remove(path.c_str());

    const std::vector<ExperimentSpec> specs = representativePairSweep();
    SweepRunnerOptions o;
    o.jobs = 2;
    o.cachePath = path;
    const std::vector<SweepResult> fresh = SweepRunner(o).run(specs);
    const std::vector<SweepResult> cached = SweepRunner(o).run(specs);

    ASSERT_EQ(fresh.size(), cached.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
        EXPECT_FALSE(fresh[i].fromCache) << i;
        EXPECT_TRUE(cached[i].fromCache) << i;
        EXPECT_TRUE(sameResult(fresh[i], cached[i])) << i;
    }

    // A different base seed must not hit the same cache entries.
    SweepRunnerOptions other = o;
    other.baseSeed = 99999;
    const std::vector<SweepResult> reseeded =
        SweepRunner(other).run(specs);
    EXPECT_FALSE(reseeded[0].fromCache);
    std::remove(path.c_str());
}

// ---------------------------------------------------- determinism audit
//
// The regression suite is only trustworthy if runSolo/runPair results
// depend on nothing but their arguments: not on catalog iteration
// order, not on what ran earlier in the process. These tests pin that.

SoloResult
soloOf(const std::string &name)
{
    SoloOptions o;
    o.threads = 4;
    o.scale = kTestScale;
    return runSolo(Catalog::byName(name), o);
}

PairResult
pairOf(const std::string &fg, const std::string &bg)
{
    PairOptions o;
    o.scale = kTestScale;
    return runPair(Catalog::byName(fg), Catalog::byName(bg), o);
}

TEST(DeterminismAudit, SoloInvariantToCatalogIterationOrder)
{
    // Forward pass over a slice of the catalog...
    const std::vector<std::string> names = {"429.mcf", "ferret",
                                            "dedup", "canneal"};
    std::vector<SoloResult> forward;
    for (const auto &n : names)
        forward.push_back(soloOf(n));
    // ...then the same apps visited in reverse.
    std::vector<SoloResult> reverse;
    for (auto it = names.rbegin(); it != names.rend(); ++it)
        reverse.push_back(soloOf(*it));

    for (std::size_t i = 0; i < names.size(); ++i) {
        const SoloResult &f = forward[i];
        const SoloResult &r = reverse[names.size() - 1 - i];
        EXPECT_EQ(f.time, r.time) << names[i];
        EXPECT_EQ(f.app.llcMisses, r.app.llcMisses) << names[i];
        EXPECT_EQ(f.socketEnergy, r.socketEnergy) << names[i];
        EXPECT_EQ(f.wallEnergy, r.wallEnergy) << names[i];
    }
}

TEST(DeterminismAudit, PairInvariantToPriorRunsInProcess)
{
    const PairResult before = pairOf("429.mcf", "ferret");

    // Pollute the process with unrelated work: different apps, masks,
    // policies, scales.
    soloOf("canneal");
    pairOf("dedup", "429.mcf");
    {
        PairOptions o;
        o.scale = kTestScale;
        const SplitMasks m = splitWays(3, 12);
        o.fgMask = m.fg;
        o.bgMask = m.bg;
        runPair(Catalog::byName("ferret"), Catalog::byName("dedup"), o);
    }

    const PairResult after = pairOf("429.mcf", "ferret");
    EXPECT_EQ(before.fgTime, after.fgTime);
    EXPECT_EQ(before.bgThroughput, after.bgThroughput);
    EXPECT_EQ(before.socketEnergy, after.socketEnergy);
    EXPECT_EQ(before.fg.llcMisses, after.fg.llcMisses);
    EXPECT_EQ(before.bg.iterations, after.bg.iterations);
}

TEST(DeterminismAudit, RunSpecInvariantToPriorSpecs)
{
    const ExperimentSpec probe =
        pairSpec("429.mcf", "ferret", kTestScale);
    const SweepResult fresh = runSpec(probe, 12345);

    // Interleave every spec kind, including a consolidation study that
    // exercises the dynamic controller's internal state.
    runSpec(soloSpec("canneal", 4, 6, kTestScale), 12345);
    runSpec(consolidationSpec("ferret", "dedup",
                              policyBit(Policy::Shared) |
                                  policyBit(Policy::Dynamic),
                              kTestScale, 15e-6),
            12345);

    const SweepResult again = runSpec(probe, 12345);
    EXPECT_TRUE(sameResult(fresh, again));
}

TEST(DeterminismAudit, NAppSpecRunsDeterministicallyAndRoundTrips)
{
    // A small 3-app point under two policies: determinism across
    // repeats and interleaved foreign specs, plus a bit-exact pass
    // through the on-disk cache encoding.
    const ExperimentSpec probe =
        nappSpec({"429.mcf", "470.lbm", "ferret"}, 4, 8,
                 npolicyBit(NPolicy::Fair) | npolicyBit(NPolicy::Lfoc),
                 2, 0.02);
    const SweepResult fresh = runSpec(probe, 12345);
    for (int p = 0; p < 6; ++p) {
        const bool expect_present =
            static_cast<NPolicy>(p) == NPolicy::Fair ||
            static_cast<NPolicy>(p) == NPolicy::Lfoc;
        EXPECT_EQ(fresh.napp[p].present, expect_present) << p;
    }
    EXPECT_GT(fresh.napp[static_cast<int>(NPolicy::Fair)].stp, 0.0);
    EXPECT_GE(fresh.napp[static_cast<int>(NPolicy::Lfoc)].unfairness,
              1.0);

    runSpec(soloSpec("canneal", 4, 6, kTestScale), 12345);
    const SweepResult again = runSpec(probe, 12345);
    EXPECT_TRUE(sameResult(fresh, again));

    SweepResult decoded;
    ASSERT_TRUE(
        ResultCache::decode(ResultCache::encode(fresh), &decoded));
    EXPECT_TRUE(sameResult(fresh, decoded));
}

} // namespace
} // namespace capart::exec
