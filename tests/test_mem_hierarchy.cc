/**
 * @file
 * Unit and property tests for the three-level hierarchy: service
 * levels, writeback cascades, the inclusive-LLC invariant, and the
 * prefetch fill paths.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/units.hh"
#include "mem/hierarchy.hh"

namespace capart
{
namespace
{

HierarchyConfig
tinyHierarchy()
{
    HierarchyConfig cfg = HierarchyConfig::sandyBridge();
    cfg.l1.sizeBytes = 2 * kib(1);  // 4 sets x 8 ways
    cfg.l2.sizeBytes = 8 * kib(1);  // 16 sets x 8 ways
    cfg.llc.sizeBytes = 48 * kib(1); // 64 sets x 12 ways
    cfg.llc.index = IndexFn::Modulo;
    return cfg;
}

TEST(Hierarchy, FirstAccessGoesToMemory)
{
    CacheHierarchy h(tinyHierarchy(), 2);
    const HierarchyOutcome out = h.access(0, 0, 0x1000, false);
    EXPECT_EQ(out.servedBy, ServiceLevel::Memory);
    EXPECT_EQ(out.dramReads, 1u);
    EXPECT_TRUE(out.llcAccess);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy h(tinyHierarchy(), 2);
    h.access(0, 0, 0x1000, false);
    const HierarchyOutcome out = h.access(0, 0, 0x1000, false);
    EXPECT_EQ(out.servedBy, ServiceLevel::L1);
    EXPECT_EQ(out.dramReads, 0u);
    EXPECT_FALSE(out.llcAccess);
}

TEST(Hierarchy, CrossCoreAccessHitsInLlc)
{
    CacheHierarchy h(tinyHierarchy(), 2);
    h.access(0, 0, 0x1000, false);
    // Another core's private caches are cold; the LLC serves it.
    const HierarchyOutcome out = h.access(1, 0, 0x1000, false);
    EXPECT_EQ(out.servedBy, ServiceLevel::LLC);
}

TEST(Hierarchy, L1EvictionSpillsToL2)
{
    CacheHierarchy h(tinyHierarchy(), 1);
    // The tiny L1 holds 32 lines; stream 64 distinct lines that map
    // across its 4 sets, then re-walk: the spilled half hits L2.
    for (unsigned k = 0; k < 64; ++k)
        h.access(0, 0, k * kLineBytes, false);
    unsigned l2_hits = 0;
    for (unsigned k = 0; k < 32; ++k) {
        if (h.access(0, 0, k * kLineBytes, false).servedBy ==
            ServiceLevel::L2) {
            ++l2_hits;
        }
    }
    EXPECT_GT(l2_hits, 16u);
}

/** Walk the hierarchy checking inclusion: every L1/L2 line is in LLC. */
void
checkInclusion(CacheHierarchy &h, const std::vector<Addr> &lines)
{
    for (const Addr line : lines) {
        for (unsigned c = 0; c < h.numCores(); ++c) {
            if (h.l1(c).probe(line) || h.l2(c).probe(line)) {
                EXPECT_TRUE(h.llc().probe(line))
                    << "inclusion violated for line " << line;
            }
        }
    }
}

TEST(Hierarchy, InclusionInvariantUnderRandomTraffic)
{
    CacheHierarchy h(tinyHierarchy(), 2);
    Rng rng(99);
    std::vector<Addr> lines;
    for (unsigned k = 0; k < 2048; ++k)
        lines.push_back(rng.below(4096));

    for (unsigned k = 0; k < lines.size(); ++k) {
        h.access(static_cast<CoreId>(k % 2), 0, lines[k] * kLineBytes,
                 rng.chance(0.3));
        if (k % 256 == 255)
            checkInclusion(h, lines);
    }
    checkInclusion(h, lines);
}

TEST(Hierarchy, InclusionHoldsWithPartitioningAndRemask)
{
    CacheHierarchy h(tinyHierarchy(), 2);
    Rng rng(7);
    h.setLlcPartition(0, WayMask::range(0, 4));
    h.setLlcPartition(1, WayMask::range(4, 8));

    std::vector<Addr> lines;
    for (unsigned k = 0; k < 1024; ++k)
        lines.push_back(rng.below(2048));

    for (unsigned k = 0; k < lines.size(); ++k) {
        const unsigned slot = k % 2;
        h.access(slot, slot, lines[k] * kLineBytes, rng.chance(0.3));
        if (k == 512) {
            // Remask mid-run: must not break inclusion (no flush).
            h.setLlcPartition(0, WayMask::range(0, 10));
            h.setLlcPartition(1, WayMask::range(10, 2));
        }
    }
    checkInclusion(h, lines);
}

TEST(Hierarchy, DirtyDataSurvivesWritebackChain)
{
    CacheHierarchy h(tinyHierarchy(), 1);
    // Dirty a line, push it out of L1 and L2 with a long stream, then
    // verify a re-read is served on-chip (the dirty line reached the
    // LLC, not thin air) or generated a DRAM writeback.
    h.access(0, 0, 0x0, true);
    unsigned writebacks = 0;
    for (unsigned k = 1; k < 512; ++k) {
        const HierarchyOutcome out =
            h.access(0, 0, k * kLineBytes, false);
        writebacks += out.dramWrites;
    }
    // The dirtied line either still sits somewhere on-chip or its
    // eviction produced exactly one DRAM write.
    const bool on_chip =
        h.l1(0).probe(0) || h.l2(0).probe(0) || h.llc().probe(0);
    EXPECT_TRUE(on_chip || writebacks >= 1);
}

TEST(Hierarchy, LlcEvictionBackInvalidatesInnerLevels)
{
    HierarchyConfig cfg = tinyHierarchy();
    // Make the LLC direct-mapped and tiny so evictions are easy to force.
    cfg.llc.sizeBytes = 4 * kib(1); // 64 sets x 1 way
    cfg.llc.ways = 1;
    cfg.llc.partitionSlots = 2;
    CacheHierarchy h(cfg, 1);

    h.access(0, 0, 0x0, false);
    EXPECT_TRUE(h.l1(0).probe(0));
    // Conflicting line (same LLC set, 64 sets apart) evicts line 0.
    h.access(0, 0, 64 * kLineBytes, false);
    EXPECT_FALSE(h.llc().probe(0));
    EXPECT_FALSE(h.l1(0).probe(0)) << "L1 copy must be back-invalidated";
    EXPECT_FALSE(h.l2(0).probe(0)) << "L2 copy must be back-invalidated";
}

TEST(Hierarchy, PrefetchIntoL1MakesNextAccessHit)
{
    CacheHierarchy h(tinyHierarchy(), 1);
    const HierarchyOutcome p = h.prefetchIntoL1(0, 0, 5);
    EXPECT_EQ(p.dramReads, 1u);
    const HierarchyOutcome out = h.access(0, 0, 5 * kLineBytes, false);
    EXPECT_EQ(out.servedBy, ServiceLevel::L1);
}

TEST(Hierarchy, PrefetchIntoL2MakesNextAccessHitL2)
{
    CacheHierarchy h(tinyHierarchy(), 1);
    h.prefetchIntoL2(0, 0, 9);
    const HierarchyOutcome out = h.access(0, 0, 9 * kLineBytes, false);
    EXPECT_EQ(out.servedBy, ServiceLevel::L2);
}

TEST(Hierarchy, RedundantPrefetchIsFree)
{
    CacheHierarchy h(tinyHierarchy(), 1);
    h.access(0, 0, 3 * kLineBytes, false);
    const HierarchyOutcome p = h.prefetchIntoL1(0, 0, 3);
    EXPECT_EQ(p.dramReads, 0u);
    EXPECT_FALSE(p.llcAccess);
}

TEST(Hierarchy, PrefetchFillsRespectPartitionMask)
{
    HierarchyConfig cfg = tinyHierarchy();
    CacheHierarchy h(cfg, 2);
    h.setLlcPartition(0, WayMask::range(0, 2));
    h.setLlcPartition(1, WayMask::range(2, 10));

    // Slot 1 fills LLC set 0 heavily through demand.
    for (unsigned k = 0; k < 10; ++k)
        h.access(1, 1, (64ull * k) * kLineBytes, false);
    const std::uint64_t before = h.llc().slotStats(1).accesses;

    // Slot 0 prefetch-streams through the same set; slot 1's lines in
    // ways 2..11 may lose at most what fits in ways 0..1.
    for (unsigned k = 100; k < 200; ++k)
        h.prefetchIntoL2(0, 0, 64ull * k);
    unsigned survivors = 0;
    for (unsigned k = 0; k < 10; ++k)
        survivors += h.llc().probe(64ull * k);
    EXPECT_GE(survivors, 8u);
    EXPECT_EQ(h.llc().slotStats(1).accesses, before)
        << "prefetch fills must not count as demand accesses";
}

TEST(Hierarchy, LatencyBySeviceLevel)
{
    HierarchyConfig cfg = tinyHierarchy();
    CacheHierarchy h(cfg, 1);
    EXPECT_EQ(h.latency(ServiceLevel::L1, 100), cfg.l1Latency);
    EXPECT_EQ(h.latency(ServiceLevel::L2, 100), cfg.l2Latency);
    EXPECT_EQ(h.latency(ServiceLevel::LLC, 100), cfg.llcLatency);
    EXPECT_EQ(h.latency(ServiceLevel::Memory, 100),
              cfg.llcLatency + 100);
}

TEST(Hierarchy, SandyBridgeGeometry)
{
    const HierarchyConfig cfg = HierarchyConfig::sandyBridge();
    EXPECT_EQ(cfg.l1.sizeBytes, kib(32));
    EXPECT_EQ(cfg.l2.sizeBytes, kib(256));
    EXPECT_EQ(cfg.llc.sizeBytes, mib(6));
    EXPECT_EQ(cfg.llc.ways, 12u);
    EXPECT_EQ(cfg.llc.sets(), 8192u);
    EXPECT_TRUE(cfg.llc.inclusive);
    EXPECT_FALSE(cfg.l2.inclusive);
}

} // namespace
} // namespace capart
