/**
 * @file
 * Unit tests for the DRAM bandwidth model: queueing latency, per-flow
 * demand-proportional sharing (the Fig. 4 mechanism), and counters.
 */

#include <gtest/gtest.h>

#include "dram/dram_model.hh"
#include "interconnect/ring.hh"

namespace capart
{
namespace
{

TEST(Dram, UnloadedLatencyIsBase)
{
    DramModel d;
    EXPECT_EQ(d.effectiveLatency(0.0), d.config().baseLatency);
    EXPECT_DOUBLE_EQ(d.utilization(0.0), 0.0);
}

TEST(Dram, LatencyGrowsWithLoad)
{
    DramModel d;
    // Saturate the window: post peak-rate traffic for a while.
    const double peak = d.config().peakBytesPerSec;
    const Seconds step = 10e-6;
    for (int i = 0; i < 40; ++i) {
        d.recordUncached(i * step,
                         static_cast<std::uint64_t>(peak * step), 0);
    }
    const Seconds now = 40 * step;
    EXPECT_GT(d.utilization(now), 0.8);
    EXPECT_GT(d.effectiveLatency(now), d.config().baseLatency);
    EXPECT_LE(d.effectiveLatency(now),
              static_cast<Cycles>(d.config().baseLatency *
                                  d.config().maxQueueFactor) + 1);
}

TEST(Dram, CountersTrackTraffic)
{
    DramModel d;
    d.recordRead(0.0, 3, 0);
    d.recordWrite(0.0, 2, 1);
    d.recordUncached(0.0, 640, 2);
    EXPECT_EQ(d.readLines(), 3u);
    EXPECT_EQ(d.writeLines(), 2u);
    EXPECT_EQ(d.uncachedBytes(), 640u);
    EXPECT_EQ(d.totalBytes(), 5 * kLineBytes + 640u);
}

TEST(Dram, SoloFlowGetsFullPeak)
{
    DramModel d;
    const double peak = d.config().peakBytesPerSec;
    // A lone flow demanding half the peak sees the whole interface.
    for (int i = 0; i < 20; ++i) {
        d.recordDemand(i * 10e-6,
                       static_cast<std::uint64_t>(peak * 0.5 * 10e-6), 0);
    }
    EXPECT_NEAR(d.availableFor(200e-6, 0), peak, peak * 0.05);
}

TEST(Dram, UndersubscribedFlowsUnthrottled)
{
    DramModel d;
    const double peak = d.config().peakBytesPerSec;
    // Two flows at 30% each: both should see >= their demand available.
    for (int i = 0; i < 20; ++i) {
        const Seconds t = i * 10e-6;
        d.recordDemand(t, static_cast<std::uint64_t>(peak * 0.3 * 10e-6),
                       0);
        d.recordDemand(t, static_cast<std::uint64_t>(peak * 0.3 * 10e-6),
                       1);
    }
    EXPECT_GE(d.availableFor(200e-6, 0), peak * 0.6);
    EXPECT_GE(d.availableFor(200e-6, 1), peak * 0.6);
}

TEST(Dram, OversubscriptionSplitsProportionally)
{
    DramModel d;
    const double peak = d.config().peakBytesPerSec;
    // Flow 0 demands 3x what flow 1 demands; together over peak.
    for (int i = 0; i < 20; ++i) {
        const Seconds t = i * 10e-6;
        d.recordDemand(t, static_cast<std::uint64_t>(peak * 0.9 * 10e-6),
                       0);
        d.recordDemand(t, static_cast<std::uint64_t>(peak * 0.3 * 10e-6),
                       1);
    }
    const double a0 = d.availableFor(200e-6, 0);
    const double a1 = d.availableFor(200e-6, 1);
    EXPECT_NEAR(a0 + a1, peak, peak * 0.05);
    EXPECT_NEAR(a0 / a1, 3.0, 0.5);
}

TEST(Dram, HogWeightIsCapped)
{
    DramModel d;
    const double peak = d.config().peakBytesPerSec;
    // A hog demanding 10x peak must not squeeze a 0.5-peak flow below
    // its proportional share under the 1x-peak weight cap.
    for (int i = 0; i < 20; ++i) {
        const Seconds t = i * 10e-6;
        d.recordDemand(t,
                       static_cast<std::uint64_t>(peak * 10.0 * 10e-6),
                       0);
        d.recordDemand(t, static_cast<std::uint64_t>(peak * 0.5 * 10e-6),
                       1);
    }
    // Weights: min(10p, p) = p vs 0.5p -> victim gets ~ peak/3.
    EXPECT_NEAR(d.availableFor(200e-6, 1), peak / 3.0, peak * 0.08);
}

TEST(Dram, MinShareFloor)
{
    DramModel d;
    const double peak = d.config().peakBytesPerSec;
    for (int i = 0; i < 20; ++i) {
        d.recordDemand(i * 10e-6,
                       static_cast<std::uint64_t>(peak * 5 * 10e-6), 0);
    }
    // A flow that never posted demand still gets the floor.
    EXPECT_GE(d.availableFor(200e-6, 7),
              d.config().minShare * peak * 0.99);
}

TEST(Ring, ExtraLatencyZeroWhenIdle)
{
    RingInterconnect ring;
    EXPECT_EQ(ring.extraLatency(0.0), 0u);
}

TEST(Ring, ExtraLatencyUnderLoad)
{
    RingInterconnect ring;
    const double peak = ring.domain().config().peakBytesPerSec;
    for (int i = 0; i < 40; ++i) {
        ring.domain().record(i * 10e-6,
                             static_cast<std::uint64_t>(peak * 10e-6));
    }
    EXPECT_GT(ring.extraLatency(400e-6), 0u);
}

TEST(BandwidthDomain, UtilizationClamped)
{
    BandwidthDomainConfig cfg;
    cfg.peakBytesPerSec = 1e9;
    BandwidthDomain dom(cfg);
    for (int i = 0; i < 40; ++i) {
        dom.record(i * cfg.bucketWidth,
                   static_cast<std::uint64_t>(10e9 * cfg.bucketWidth));
    }
    EXPECT_LE(dom.utilization(40 * cfg.bucketWidth), 0.995);
}

} // namespace
} // namespace capart
