/**
 * @file
 * Differential test of the way-partitionable set-associative cache.
 *
 * The production @ref capart::SetAssocCache is optimised (packed tag
 * arrays, per-set valid/dirty bitmasks, policy state machines); this
 * test replays long random access streams — with random way-mask
 * changes, fills, and back-invalidations mixed in — against a naive
 * reference model written for obviousness, and checks after every
 * operation that both agree on:
 *
 *  - hit/miss outcome, eviction outcome, victim line, victim dirtiness;
 *  - the exact way each line resides in (so a victim chosen for a slot
 *    provably lay inside that slot's mask at eviction time);
 *  - full tag-array contents (periodically);
 *
 * plus the partition invariant of the paper's mechanism (§2.1): under
 * fixed disjoint masks, a slot's lines never occupy more ways of a set
 * than its mask allows.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "common/units.hh"
#include "mem/set_assoc_cache.hh"
#include "mem/way_mask.hh"

namespace capart
{
namespace
{

/**
 * Naive mirror of SetAssocCache for LRU, BitPLRU, and TreePLRU. Every
 * structure is a plain per-way vector and every decision a loop over
 * ways; no bit tricks shared with the implementation under test. Set
 * indexing is delegated to the hardware model (the public setIndex())
 * so the hashed indexing function is exercised too — the model then
 * has to agree on everything that *happens* at that set.
 */
class RefCache
{
  public:
    RefCache(const SetAssocCache &hw, ReplPolicy repl, unsigned slots)
        : hw_(&hw),
          sets_(hw.sets()),
          ways_(hw.config().ways),
          repl_(repl),
          line_(sets_ * ways_, 0),
          valid_(sets_ * ways_, 0),
          dirty_(sets_ * ways_, 0),
          inserter_(sets_ * ways_, 0),
          age_(sets_ * ways_, 0),
          clock_(sets_, 0),
          mru_(sets_ * ways_, 0),
          masks_(slots, WayMask::all(ways_))
    {
        // Padded leaf count of the tree-PLRU tree: the smallest power
        // of two covering the ways (computed the obvious way).
        leaves_ = 1;
        while (leaves_ < ways_)
            leaves_ *= 2;
        treeDir_.assign(sets_ * 2 * leaves_, 0);
    }

    void setMask(unsigned slot, WayMask m) { masks_[slot] = m; }

    CacheAccessResult
    access(Addr line, bool write, unsigned slot)
    {
        const std::uint64_t set = hw_->setIndex(line);
        const int way = findWay(set, line);
        if (way >= 0) {
            touch(set, static_cast<unsigned>(way));
            if (write)
                dirty_[at(set, way)] = 1;
            return CacheAccessResult{.hit = true};
        }
        return insert(set, line, write, slot);
    }

    CacheAccessResult
    fill(Addr line, bool dirty, unsigned slot)
    {
        const std::uint64_t set = hw_->setIndex(line);
        const int way = findWay(set, line);
        if (way >= 0) {
            touch(set, static_cast<unsigned>(way));
            if (dirty)
                dirty_[at(set, way)] = 1;
            return CacheAccessResult{.hit = true};
        }
        return insert(set, line, dirty, slot);
    }

    InvalidateResult
    invalidate(Addr line)
    {
        const std::uint64_t set = hw_->setIndex(line);
        const int way = findWay(set, line);
        if (way < 0)
            return InvalidateResult{};
        InvalidateResult res;
        res.wasPresent = true;
        res.wasDirty = dirty_[at(set, way)] != 0;
        valid_[at(set, way)] = 0;
        dirty_[at(set, way)] = 0;
        if (repl_ == ReplPolicy::LRU)
            age_[at(set, way)] = 0;
        else if (repl_ == ReplPolicy::BitPLRU)
            mru_[at(set, way)] = 0;
        // TreePLRU: direction bits are left alone — victim selection
        // prefers invalid allowed ways before consulting the tree.
        return res;
    }

    int
    wayOf(Addr line) const
    {
        return findWay(hw_->setIndex(line), line);
    }

    std::uint64_t
    residentLines() const
    {
        std::uint64_t n = 0;
        for (const auto v : valid_)
            n += v;
        return n;
    }

    /** Resident line in (set, way), or no value. */
    bool
    slotContents(std::uint64_t set, unsigned way, Addr *line,
                 unsigned *inserter) const
    {
        if (!valid_[at(set, static_cast<int>(way))])
            return false;
        *line = line_[at(set, static_cast<int>(way))];
        *inserter = inserter_[at(set, static_cast<int>(way))];
        return true;
    }

    std::uint64_t sets() const { return sets_; }
    unsigned ways() const { return ways_; }

  private:
    std::size_t
    at(std::uint64_t set, int way) const
    {
        return set * ways_ + static_cast<unsigned>(way);
    }

    int
    findWay(std::uint64_t set, Addr line) const
    {
        for (unsigned w = 0; w < ways_; ++w) {
            if (valid_[at(set, static_cast<int>(w))] &&
                line_[at(set, static_cast<int>(w))] == line) {
                return static_cast<int>(w);
            }
        }
        return -1;
    }

    /** Index of tree-PLRU node @p node of @p set in treeDir_. */
    std::size_t
    tnode(std::uint64_t set, unsigned node) const
    {
        return set * 2 * leaves_ + node;
    }

    /** Does the subtree rooted at @p node hold any allowed way? */
    bool
    subtreeHasAllowed(unsigned node, WayMask allowed) const
    {
        if (node >= leaves_) {
            const unsigned w = node - leaves_;
            return w < ways_ && allowed.contains(w);
        }
        return subtreeHasAllowed(2 * node, allowed) ||
               subtreeHasAllowed(2 * node + 1, allowed);
    }

    void
    touch(std::uint64_t set, unsigned way)
    {
        if (repl_ == ReplPolicy::LRU) {
            age_[at(set, static_cast<int>(way))] = ++clock_[set];
            return;
        }
        if (repl_ == ReplPolicy::TreePLRU) {
            // Walk from the touched leaf to the root, pointing every
            // node on the path away from the child we came from.
            unsigned node = leaves_ + way;
            while (node > 1) {
                const unsigned parent = node / 2;
                const bool came_from_left = (node % 2) == 0;
                treeDir_[tnode(set, parent)] = came_from_left ? 1 : 0;
                node = parent;
            }
            return;
        }
        // Bit-PLRU: mark MRU; when every way of the set is marked, the
        // epoch restarts with only the just-touched way marked.
        mru_[at(set, static_cast<int>(way))] = 1;
        bool all = true;
        for (unsigned w = 0; w < ways_; ++w)
            all = all && mru_[at(set, static_cast<int>(w))];
        if (all) {
            for (unsigned w = 0; w < ways_; ++w)
                mru_[at(set, static_cast<int>(w))] = 0;
            mru_[at(set, static_cast<int>(way))] = 1;
        }
    }

    unsigned
    pickVictim(std::uint64_t set, WayMask allowed)
    {
        // Invalid allowed ways first, lowest index.
        for (unsigned w = 0; w < ways_; ++w) {
            if (allowed.contains(w) && !valid_[at(set, static_cast<int>(w))])
                return w;
        }
        if (repl_ == ReplPolicy::TreePLRU) {
            // Follow the direction bits from the root, detouring
            // whenever the pointed-to subtree has no allowed way.
            unsigned node = 1;
            while (node < leaves_) {
                unsigned want = treeDir_[tnode(set, node)];
                if (!subtreeHasAllowed(2 * node + want, allowed))
                    want ^= 1u;
                node = 2 * node + want;
            }
            const unsigned way = node - leaves_;
            EXPECT_TRUE(allowed.contains(way));
            return way;
        }
        if (repl_ == ReplPolicy::LRU) {
            // Least age among allowed; ties go to the lowest way.
            unsigned best = 0;
            bool found = false;
            for (unsigned w = 0; w < ways_; ++w) {
                if (!allowed.contains(w))
                    continue;
                if (!found ||
                    age_[at(set, static_cast<int>(w))] <
                        age_[at(set, static_cast<int>(best))]) {
                    best = w;
                    found = true;
                }
            }
            EXPECT_TRUE(found);
            return best;
        }
        // Bit-PLRU: first allowed way without its MRU bit; if all
        // allowed ways are marked, clear them and take the lowest.
        for (unsigned w = 0; w < ways_; ++w) {
            if (allowed.contains(w) && !mru_[at(set, static_cast<int>(w))])
                return w;
        }
        unsigned lowest = ways_;
        for (unsigned w = 0; w < ways_; ++w) {
            if (allowed.contains(w)) {
                mru_[at(set, static_cast<int>(w))] = 0;
                if (lowest == ways_)
                    lowest = w;
            }
        }
        return lowest;
    }

    CacheAccessResult
    insert(std::uint64_t set, Addr line, bool dirty, unsigned slot)
    {
        CacheAccessResult res;
        const WayMask mask = masks_[slot];
        const unsigned victim = pickVictim(set, mask);
        EXPECT_TRUE(mask.contains(victim)); // never evict outside the mask
        const std::size_t idx = at(set, static_cast<int>(victim));
        if (valid_[idx]) {
            res.evicted = true;
            res.victimLine = line_[idx];
            res.victimDirty = dirty_[idx] != 0;
        }
        line_[idx] = line;
        valid_[idx] = 1;
        dirty_[idx] = dirty ? 1 : 0;
        inserter_[idx] = slot;
        touch(set, victim);
        return res;
    }

    const SetAssocCache *hw_;
    std::uint64_t sets_;
    unsigned ways_;
    ReplPolicy repl_;

    std::vector<Addr> line_;
    std::vector<std::uint8_t> valid_;
    std::vector<std::uint8_t> dirty_;
    std::vector<unsigned> inserter_;
    std::vector<std::uint32_t> age_; //!< LRU
    std::vector<std::uint32_t> clock_;
    std::vector<std::uint8_t> mru_; //!< bit-PLRU
    unsigned leaves_ = 1;           //!< tree-PLRU padded leaf count
    /** tree-PLRU direction per (set, heap node): 0 left, 1 right. */
    std::vector<std::uint8_t> treeDir_;
    std::vector<WayMask> masks_;
};

CacheConfig
diffCache(ReplPolicy repl, IndexFn index, unsigned ways = 8,
          unsigned sets = 16, unsigned slots = 4)
{
    CacheConfig cfg;
    cfg.name = "diff";
    cfg.sizeBytes = static_cast<std::uint64_t>(sets) * ways * kLineBytes;
    cfg.ways = ways;
    cfg.repl = repl;
    cfg.index = index;
    cfg.partitionSlots = slots;
    return cfg;
}

/** Compare full tag-array contents (every set, every way). */
void
expectContentsEqual(const SetAssocCache &hw, const RefCache &ref)
{
    ASSERT_EQ(hw.residentLines(), ref.residentLines());
    for (std::uint64_t set = 0; set < ref.sets(); ++set) {
        for (unsigned w = 0; w < ref.ways(); ++w) {
            Addr line = 0;
            unsigned inserter = 0;
            if (!ref.slotContents(set, w, &line, &inserter))
                continue;
            EXPECT_TRUE(hw.probe(line))
                << "line " << line << " missing from set " << set;
            EXPECT_EQ(hw.wayOf(line), static_cast<int>(w))
                << "line " << line << " in the wrong way of set " << set;
            EXPECT_EQ(hw.ownerOf(line), static_cast<int>(inserter))
                << "line " << line << " owner plane disagrees, set "
                << set;
        }
    }
}

void
runDifferential(ReplPolicy repl, IndexFn index, std::uint64_t seed,
                unsigned ways = 8, unsigned sets = 16,
                unsigned slots = 4, unsigned ops = 40000)
{
    const unsigned kWays = ways;
    const unsigned kSets = sets;
    const unsigned kSlots = slots;
    const unsigned kOps = ops;
    const unsigned kContentCheckEvery = std::max(512u, ops / 64);
    // ~2x capacity worth of distinct lines: plenty of conflict misses.
    const Addr kLines = 2ull * kSets * kWays;

    const CacheConfig cfg = diffCache(repl, index, kWays, kSets, kSlots);
    SetAssocCache hw(cfg, seed);
    RefCache ref(hw, repl, kSlots);
    Rng rng(seed);

    for (unsigned op = 0; op < kOps; ++op) {
        // Random remasking: any non-empty mask, any slot, at any time.
        // Remasking must never flush data, so the models stay in sync
        // across the change by construction — if they don't, victim
        // selection diverged.
        if (rng.chance(0.005)) {
            const unsigned slot = static_cast<unsigned>(rng.below(kSlots));
            const auto bits = static_cast<std::uint32_t>(
                rng.below((1u << kWays) - 1) + 1);
            hw.setPartitionMask(slot, WayMask(bits));
            ref.setMask(slot, WayMask(bits));
        }

        const Addr line = rng.below(kLines);
        const unsigned slot = static_cast<unsigned>(rng.below(kSlots));
        const WayMask mask = hw.partitionMask(slot);

        if (rng.chance(0.02)) { // back-invalidation
            const InvalidateResult h = hw.invalidate(line);
            const InvalidateResult r = ref.invalidate(line);
            ASSERT_EQ(h.wasPresent, r.wasPresent) << "op " << op;
            ASSERT_EQ(h.wasDirty, r.wasDirty) << "op " << op;
            continue;
        }

        const bool write = rng.chance(0.3);
        CacheAccessResult h;
        CacheAccessResult r;
        if (rng.chance(0.1)) { // prefetch-style fill
            h = hw.fill(line, write, slot);
            r = ref.fill(line, write, slot);
        } else {
            h = hw.access(line, write, slot);
            r = ref.access(line, write, slot);
        }

        ASSERT_EQ(h.hit, r.hit) << "op " << op << " line " << line;
        ASSERT_EQ(h.evicted, r.evicted) << "op " << op << " line " << line;
        if (h.evicted) {
            ASSERT_EQ(h.victimLine, r.victimLine) << "op " << op;
            ASSERT_EQ(h.victimDirty, r.victimDirty) << "op " << op;
        }
        // Way-level parity; on a miss this also proves the victim way
        // lay inside the accessor's mask (the reference checks it).
        const int hw_way = hw.wayOf(line);
        ASSERT_EQ(hw_way, ref.wayOf(line)) << "op " << op;
        ASSERT_GE(hw_way, 0);
        if (!h.hit) {
            ASSERT_TRUE(mask.contains(static_cast<unsigned>(hw_way)))
                << "op " << op << ": inserted outside the slot's mask";
        }

        if (op % kContentCheckEvery == 0)
            expectContentsEqual(hw, ref);
    }
    expectContentsEqual(hw, ref);
}

TEST(MemDifferential, LruModuloAgreesWithReference)
{
    runDifferential(ReplPolicy::LRU, IndexFn::Modulo, 12345);
}

TEST(MemDifferential, LruHashedAgreesWithReference)
{
    runDifferential(ReplPolicy::LRU, IndexFn::Hashed, 777);
}

TEST(MemDifferential, BitPlruModuloAgreesWithReference)
{
    runDifferential(ReplPolicy::BitPLRU, IndexFn::Modulo, 9001);
}

TEST(MemDifferential, BitPlruHashedAgreesWithReference)
{
    runDifferential(ReplPolicy::BitPLRU, IndexFn::Hashed, 31337);
}

TEST(MemDifferential, TreePlruModuloAgreesWithReference)
{
    runDifferential(ReplPolicy::TreePLRU, IndexFn::Modulo, 555);
}

TEST(MemDifferential, TreePlruHashedAgreesWithReference)
{
    runDifferential(ReplPolicy::TreePLRU, IndexFn::Hashed, 556);
}

TEST(MemDifferential, TreePlruNonPowerOfTwoWays)
{
    // 20 ways pad the tree-PLRU leaf level to 32; the padding leaves
    // must never be chosen because no mask can allow them.
    runDifferential(ReplPolicy::TreePLRU, IndexFn::Hashed, 557,
                    /*ways=*/20, /*sets=*/16);
    runDifferential(ReplPolicy::TreePLRU, IndexFn::Modulo, 558,
                    /*ways=*/12, /*sets=*/64);
}

TEST(MemDifferential, SecondSeedSweep)
{
    // Cheap extra coverage across the policies at another seed.
    runDifferential(ReplPolicy::LRU, IndexFn::Hashed, 2024);
    runDifferential(ReplPolicy::BitPLRU, IndexFn::Modulo, 2025);
    runDifferential(ReplPolicy::TreePLRU, IndexFn::Hashed, 2026);
}

/**
 * Seeded property/fuzz sweep: every iteration derives a random
 * configuration — associativity in {4, 8, 16, 20}, a power-of-two set
 * count in [64, 4096], one of LRU/BitPLRU/TreePLRU, either indexing
 * function — and replays a 100k-operation random stream with live
 * way-mask remasks mid-stream. The invariants are those of
 * runDifferential: the hit/miss/eviction stream is identical to the
 * naive reference, every victim lies inside the accessor's mask at
 * eviction time, and the tag/owner planes match the reference exactly.
 */
TEST(MemProperty, FuzzRandomGeometriesAndPolicies)
{
    constexpr std::uint64_t kFuzzSeed = 0xf00dfaceULL;
    constexpr int kConfigs = 6;
    constexpr ReplPolicy kPolicies[] = {
        ReplPolicy::LRU, ReplPolicy::BitPLRU, ReplPolicy::TreePLRU};
    constexpr unsigned kAssocs[] = {4, 8, 16, 20};

    Rng meta(kFuzzSeed);
    for (int c = 0; c < kConfigs; ++c) {
        const unsigned ways =
            kAssocs[static_cast<unsigned>(meta.below(4))];
        // Sets: 2^6 .. 2^12 (the constructor requires a power of two).
        const unsigned sets = 1u << (6 + meta.below(7));
        const ReplPolicy repl =
            kPolicies[static_cast<unsigned>(meta.below(3))];
        const IndexFn index =
            meta.chance(0.5) ? IndexFn::Hashed : IndexFn::Modulo;
        const std::uint64_t seed = meta.next();
        SCOPED_TRACE(testing::Message()
                     << "config " << c << ": ways=" << ways
                     << " sets=" << sets << " repl="
                     << static_cast<int>(repl) << " hashed="
                     << (index == IndexFn::Hashed) << " seed=" << seed);
        runDifferential(repl, index, seed, ways, sets, /*slots=*/4,
                        /*ops=*/100000);
    }
}

/**
 * Fast-vs-legacy differential: replay one random stream — including
 * live remasks, fills, and back-invalidations — against the flat-array
 * fast engine and the original virtual-dispatch legacy engine, and
 * require identical outcomes on every operation. This is the bit-exact
 * equivalence proof that gates deleting the legacy path; it covers all
 * five policies (Random included: both engines must consume their RNG
 * in the same sequence).
 */
void
runEngineDifferential(ReplPolicy repl, IndexFn index, std::uint64_t seed,
                      unsigned ways, unsigned sets, unsigned ops)
{
    constexpr unsigned kSlots = 4;
    CacheConfig fast_cfg = diffCache(repl, index, ways, sets, kSlots);
    fast_cfg.engine = CacheEngine::Fast;
    CacheConfig legacy_cfg = fast_cfg;
    legacy_cfg.engine = CacheEngine::Legacy;

    SetAssocCache fast(fast_cfg, seed);
    SetAssocCache legacy(legacy_cfg, seed);
    ASSERT_EQ(fast.engine(), CacheEngine::Fast);
    ASSERT_EQ(legacy.engine(), CacheEngine::Legacy);

    const Addr kLines = 2ull * sets * ways;
    Rng rng(seed);
    for (unsigned op = 0; op < ops; ++op) {
        if (rng.chance(0.005)) {
            const unsigned slot = static_cast<unsigned>(rng.below(kSlots));
            const auto bits = static_cast<std::uint32_t>(
                rng.below((1u << ways) - 1) + 1);
            fast.setPartitionMask(slot, WayMask(bits));
            legacy.setPartitionMask(slot, WayMask(bits));
        }

        const Addr line = rng.below(kLines);
        const unsigned slot = static_cast<unsigned>(rng.below(kSlots));

        if (rng.chance(0.02)) {
            const InvalidateResult f = fast.invalidate(line);
            const InvalidateResult l = legacy.invalidate(line);
            ASSERT_EQ(f.wasPresent, l.wasPresent) << "op " << op;
            ASSERT_EQ(f.wasDirty, l.wasDirty) << "op " << op;
            continue;
        }

        const bool write = rng.chance(0.3);
        CacheAccessResult f;
        CacheAccessResult l;
        if (rng.chance(0.1)) {
            f = fast.fill(line, write, slot);
            l = legacy.fill(line, write, slot);
        } else {
            f = fast.access(line, write, slot);
            l = legacy.access(line, write, slot);
        }
        ASSERT_EQ(f.hit, l.hit) << "op " << op << " line " << line;
        ASSERT_EQ(f.evicted, l.evicted) << "op " << op;
        if (f.evicted) {
            ASSERT_EQ(f.victimLine, l.victimLine) << "op " << op;
            ASSERT_EQ(f.victimDirty, l.victimDirty) << "op " << op;
        }
        ASSERT_EQ(fast.wayOf(line), legacy.wayOf(line)) << "op " << op;
        ASSERT_EQ(fast.ownerOf(line), legacy.ownerOf(line)) << "op " << op;
    }

    // Full-state parity at the end: every resident line of the legacy
    // engine sits in the same way of the fast engine.
    ASSERT_EQ(fast.residentLines(), legacy.residentLines());
    legacy.forEachResident([&](Addr line, unsigned way) {
        EXPECT_EQ(fast.wayOf(line), static_cast<int>(way));
    });
}

TEST(MemEngineDifferential, AllPoliciesAgreeAcrossEngines)
{
    constexpr ReplPolicy kAll[] = {
        ReplPolicy::LRU, ReplPolicy::BitPLRU, ReplPolicy::NRU,
        ReplPolicy::Random, ReplPolicy::TreePLRU};
    std::uint64_t seed = 808;
    for (const ReplPolicy repl : kAll) {
        SCOPED_TRACE(static_cast<int>(repl));
        runEngineDifferential(repl, IndexFn::Hashed, seed++, 8, 16,
                              100000);
    }
}

TEST(MemEngineDifferential, WideAssociativityAndModuloIndexing)
{
    runEngineDifferential(ReplPolicy::TreePLRU, IndexFn::Modulo, 909,
                          /*ways=*/20, /*sets=*/64, 100000);
    runEngineDifferential(ReplPolicy::LRU, IndexFn::Modulo, 910,
                          /*ways=*/16, /*sets=*/128, 60000);
}

/**
 * Under fixed, disjoint masks every slot's insertions land only in its
 * own ways, so in any set the number of resident lines a slot inserted
 * can never exceed its mask's popcount.
 */
TEST(MemDifferential, OccupancyBoundedByMaskPopcount)
{
    constexpr unsigned kWays = 8;
    constexpr unsigned kSets = 16;
    const CacheConfig cfg =
        diffCache(ReplPolicy::BitPLRU, IndexFn::Hashed, kWays, kSets, 2);
    SetAssocCache hw(cfg, 4242);
    RefCache ref(hw, ReplPolicy::BitPLRU, 2);

    const WayMask fg = WayMask::range(0, 3); // ways 0..2
    const WayMask bg = WayMask::range(3, 5); // ways 3..7
    hw.setPartitionMask(0, fg);
    hw.setPartitionMask(1, bg);
    ref.setMask(0, fg);
    ref.setMask(1, bg);

    Rng rng(4242);
    for (unsigned op = 0; op < 20000; ++op) {
        const Addr line = rng.below(4 * kSets * kWays);
        const unsigned slot = rng.chance(0.5) ? 0 : 1;
        const CacheAccessResult h = hw.access(line, rng.chance(0.3), slot);
        const CacheAccessResult r =
            ref.access(line, false, slot); // dirtiness irrelevant here
        ASSERT_EQ(h.hit, r.hit) << "op " << op;

        if (op % 256 != 0)
            continue;
        for (std::uint64_t set = 0; set < ref.sets(); ++set) {
            unsigned per_slot[2] = {0, 0};
            for (unsigned w = 0; w < kWays; ++w) {
                Addr l = 0;
                unsigned inserter = 0;
                if (ref.slotContents(set, w, &l, &inserter))
                    ++per_slot[inserter];
            }
            ASSERT_LE(per_slot[0], fg.count()) << "set " << set;
            ASSERT_LE(per_slot[1], bg.count()) << "set " << set;
        }
        // The same bound audited through the hardware owner plane.
        std::vector<unsigned> hw_count(2 * ref.sets(), 0);
        hw.forEachResident([&](Addr l, unsigned) {
            const int owner = hw.ownerOf(l);
            ASSERT_GE(owner, 0);
            ++hw_count[hw.setIndex(l) * 2 +
                       static_cast<unsigned>(owner)];
        });
        for (std::uint64_t set = 0; set < ref.sets(); ++set) {
            ASSERT_LE(hw_count[set * 2 + 0], fg.count()) << "set " << set;
            ASSERT_LE(hw_count[set * 2 + 1], bg.count()) << "set " << set;
        }
    }
}

} // namespace
} // namespace capart
