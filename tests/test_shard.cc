/**
 * @file
 * Tests for process-isolated shard execution (exec/shard_supervisor.hh)
 * and the crash-safe ledger-segment merge (obs/run_ledger.hh).
 *
 * The merge tests exercise every edge the supervisor must survive —
 * duplicate spec-hash records from retried points, torn tails, empty
 * and missing segments, records interleaved from several run ids —
 * and pin that the merged output is deterministic and independent of
 * segment order.
 *
 * The end-to-end tests spawn real worker processes: this binary links
 * its own main(), so when the supervisor re-executes it with
 * `--shard-worker=k` it becomes a worker computing the fixed test
 * sweep instead of running gtest. Chaos (crash-on-point, quarantine,
 * resume fast-forward) is injected through the CAPART_CHAOS_*
 * environment exactly as the chaos CI job does with bench binaries.
 *
 * The ShardStatus tests additionally arm the live status plane
 * (obs/status.hh): the final status.json must agree exactly with the
 * ledger segments the merge reads, quarantines must reach the
 * snapshot, worker traces must stitch with the supervisor's lifecycle
 * instants into one well-formed timeline, and — the non-perturbation
 * contract — chaos-armed results with the plane on must stay
 * bit-identical to a plain in-process run.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "exec/experiment_spec.hh"
#include "exec/result_cache.hh"
#include "exec/shard_supervisor.hh"
#include "exec/sweep_runner.hh"
#include "obs/obs.hh"
#include "obs/run_ledger.hh"
#include "obs/status.hh"
#include "obs/trace.hh"
#include "obs/trace_stitch.hh"

namespace capart::exec
{
// Named (not anonymous) namespace members: main() below needs to reach
// testSpecs()/kShardSeed when this binary runs as a shard worker.

constexpr double kShardScale = 0.02;
constexpr std::uint64_t kShardSeed = 7777;
constexpr const char *kShardBench = "shardtest";

/** The fixed sweep both supervisor and re-executed workers rebuild. */
std::vector<ExperimentSpec>
testSpecs()
{
    std::vector<ExperimentSpec> specs;
    for (const char *app :
         {"ferret", "dedup", "canneal", "fop", "batik", "429.mcf"})
        specs.push_back(soloSpec(app, 4, 12, kShardScale));
    return specs;
}

namespace
{

std::string
selfExe()
{
    char buf[4096];
    const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    buf[n > 0 ? n : 0] = '\0';
    return buf;
}

std::string
freshDir(const char *name)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() / name).string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

/** Set CAPART_CHAOS_* / backoff variables for one test body. */
class EnvGuard
{
  public:
    EnvGuard(
        std::initializer_list<std::pair<const char *, const char *>> kv)
    {
        for (const auto &[k, v] : kv) {
            keys_.emplace_back(k);
            setenv(k, v, 1);
        }
    }
    ~EnvGuard()
    {
        for (const std::string &k : keys_)
            unsetenv(k.c_str());
    }

  private:
    std::vector<std::string> keys_;
};

SweepRunnerOptions
supervisorOptions(const std::string &dir)
{
    SweepRunnerOptions o;
    o.baseSeed = kShardSeed;
    o.benchName = kShardBench;
    o.runId = "shardtest-run";
    o.shards = 3;
    o.ledgerDir = dir;
    o.workerCmd = {selfExe()};
    o.pointTimeoutS = 120.0;
    o.maxRetries = 2;
    return o;
}

bool
sameResult(const SweepResult &a, const SweepResult &b)
{
    if (a.time != b.time || a.socketEnergy != b.socketEnergy ||
        a.wallEnergy != b.wallEnergy || a.mpki != b.mpki ||
        a.apki != b.apki || a.ipc != b.ipc ||
        a.bgThroughput != b.bgThroughput || a.timedOut != b.timedOut)
        return false;
    for (int p = 0; p < 4; ++p) {
        const PolicyOutcome &x = a.policy[p];
        const PolicyOutcome &y = b.policy[p];
        if (x.present != y.present || x.fgSlowdown != y.fgSlowdown ||
            x.bgThroughput != y.bgThroughput ||
            x.energyVsSequential != y.energyVsSequential ||
            x.wallEnergyVsSequential != y.wallEnergyVsSequential ||
            x.weightedSpeedup != y.weightedSpeedup ||
            x.fgWays != y.fgWays)
            return false;
    }
    return true;
}

const std::vector<SweepResult> &
expectedResults()
{
    static const std::vector<SweepResult> expected = [] {
        SweepRunnerOptions serial;
        serial.baseSeed = kShardSeed;
        return SweepRunner(serial).run(testSpecs());
    }();
    return expected;
}

// ------------------------------------------------- merge edge cases --

obs::RunRecord
pointRec(std::uint64_t hash, const std::string &run, double ts_ms,
         double time_s)
{
    obs::RunRecord r;
    r.kind = "point";
    r.bench = kShardBench;
    r.run = run;
    r.spec = "spec-" + std::to_string(hash);
    r.specHash = hash;
    r.seed = kShardSeed;
    r.tsMs = ts_ms;
    r.wallMs = 1.0;
    r.simS = time_s;
    r.metrics.emplace_back("time_s", time_s);
    return r;
}

obs::RunRecord
startRec(std::uint64_t hash, const std::string &run, double ts_ms,
         unsigned attempt)
{
    obs::RunRecord r = pointRec(hash, run, ts_ms, 0.0);
    r.kind = "point_start";
    r.metrics = {{"attempt", static_cast<double>(attempt)}};
    return r;
}

obs::RunRecord
failedRec(std::uint64_t hash, const std::string &run, double ts_ms,
          unsigned attempts)
{
    obs::RunRecord r = pointRec(hash, run, ts_ms, 0.0);
    r.kind = "point_failed";
    r.rule = "crash";
    r.metrics = {{"attempts", static_cast<double>(attempts)}};
    return r;
}

obs::RunRecord
decisionRec(std::uint64_t hash, const std::string &run, double ts_ms,
            double t_us)
{
    obs::RunRecord r = pointRec(hash, run, ts_ms, 0.0);
    r.kind = "decision";
    r.rule = "grow_fg";
    r.metrics = {{"t_us", t_us}, {"fg_ways", 8.0}};
    return r;
}

void
writeSegment(const std::string &path,
             const std::vector<obs::RunRecord> &records)
{
    obs::RunLedger seg(path);
    for (const obs::RunRecord &r : records)
        seg.append(r);
}

std::string
encodeAll(const std::vector<obs::RunRecord> &records)
{
    std::string s;
    for (const obs::RunRecord &r : records) {
        s += obs::RunLedger::encode(r);
        s += '\n';
    }
    return s;
}

TEST(MergeLedger, LastCompleteWinsAcrossDuplicateSpecHashes)
{
    const std::string dir = freshDir("capart_merge_dup");
    // The same point completed twice (a retry after a torn write):
    // the later record must win, in whichever segment it sits.
    writeSegment(dir + "/a.jsonl", {pointRec(0x10, "run-a", 100, 1.0)});
    writeSegment(dir + "/b.jsonl", {pointRec(0x10, "run-b", 200, 2.0)});

    const obs::MergeResult m = obs::mergeLedgerSegments(
        {dir + "/a.jsonl", dir + "/b.jsonl"});
    ASSERT_EQ(m.records.size(), 1u);
    EXPECT_EQ(m.records[0].metric("time_s"), 2.0);
    EXPECT_EQ(m.duplicatesDropped, 1u);
    std::filesystem::remove_all(dir);
}

TEST(MergeLedger, OutputIndependentOfSegmentOrder)
{
    const std::string dir = freshDir("capart_merge_order");
    // Duplicates, interleaved run ids, a quarantine, and decisions
    // spread across three segments.
    writeSegment(dir + "/a.jsonl",
                 {startRec(0x1, "run-a", 10, 0),
                  pointRec(0x1, "run-a", 11, 1.5),
                  decisionRec(0x1, "run-a", 12, 100.0)});
    writeSegment(dir + "/b.jsonl",
                 {pointRec(0x1, "run-b", 20, 1.5),
                  startRec(0x2, "run-b", 21, 0),
                  failedRec(0x2, "run-b", 22, 3)});
    writeSegment(dir + "/c.jsonl",
                 {pointRec(0x3, "run-a", 5, 9.0),
                  decisionRec(0x1, "run-b", 30, 100.0)});

    const std::vector<std::string> fwd = {
        dir + "/a.jsonl", dir + "/b.jsonl", dir + "/c.jsonl"};
    const std::vector<std::string> rev = {
        dir + "/c.jsonl", dir + "/b.jsonl", dir + "/a.jsonl"};
    const obs::MergeResult m1 = obs::mergeLedgerSegments(fwd);
    const obs::MergeResult m2 = obs::mergeLedgerSegments(rev);
    EXPECT_EQ(encodeAll(m1.records), encodeAll(m2.records));
    EXPECT_FALSE(m1.records.empty());
    std::filesystem::remove_all(dir);
}

TEST(MergeLedger, ToleratesTornEmptyAndMissingSegments)
{
    const std::string dir = freshDir("capart_merge_torn");
    writeSegment(dir + "/a.jsonl", {pointRec(0x7, "run-a", 50, 4.0)});
    {
        // The tail a worker killed mid-write leaves: half a record,
        // no newline.
        std::ofstream torn(dir + "/a.jsonl", std::ios::app);
        torn << "{\"v\":1,\"kind\":\"point\",\"bench\":\"torn";
    }
    { std::ofstream empty(dir + "/b.jsonl"); } // empty segment

    const obs::MergeResult m = obs::mergeLedgerSegments(
        {dir + "/a.jsonl", dir + "/b.jsonl", dir + "/missing.jsonl"});
    ASSERT_EQ(m.records.size(), 1u);
    EXPECT_EQ(m.records[0].specHash, 0x7u);
    EXPECT_EQ(m.tornLines, 1u);
    EXPECT_EQ(m.missingSegments, 1u);
    std::filesystem::remove_all(dir);
}

TEST(MergeLedger, QuarantineSurvivesOnlyWithoutCompletePoint)
{
    const std::string dir = freshDir("capart_merge_quar");
    // 0x1: failed then eventually completed (a resume succeeded) —
    // the completion supersedes the quarantine. 0x2: failed for good.
    writeSegment(dir + "/a.jsonl",
                 {startRec(0x1, "run-a", 1, 0),
                  failedRec(0x1, "run-a", 2, 3),
                  pointRec(0x1, "run-b", 90, 2.5),
                  startRec(0x2, "run-a", 3, 0),
                  failedRec(0x2, "run-a", 4, 3)});

    const obs::MergeResult m =
        obs::mergeLedgerSegments({dir + "/a.jsonl"});
    EXPECT_EQ(m.quarantined, 1u);
    bool saw_point1 = false, saw_failed2 = false;
    for (const obs::RunRecord &r : m.records) {
        if (r.specHash == 0x1)
            saw_point1 = r.kind == "point";
        if (r.specHash == 0x2)
            saw_failed2 = r.kind == "point_failed";
        EXPECT_NE(r.kind, "point_start"); // always worker-internal
    }
    EXPECT_TRUE(saw_point1);
    EXPECT_TRUE(saw_failed2);
    std::filesystem::remove_all(dir);
}

TEST(MergeLedger, IdenticalDecisionsFromRetriesCollapse)
{
    const std::string dir = freshDir("capart_merge_dec");
    // A retried deterministic point re-journals the same decisions,
    // differing only in wall timestamps — one copy must survive. A
    // decision whose point never completed must not leak through.
    writeSegment(dir + "/a.jsonl",
                 {pointRec(0x1, "run-a", 10, 1.0),
                  decisionRec(0x1, "run-a", 11, 250.0),
                  decisionRec(0x1, "run-b", 99, 250.0),
                  decisionRec(0x2, "run-a", 12, 300.0)});

    const obs::MergeResult m =
        obs::mergeLedgerSegments({dir + "/a.jsonl"});
    std::size_t decisions = 0;
    for (const obs::RunRecord &r : m.records)
        if (r.kind == "decision") {
            ++decisions;
            EXPECT_EQ(r.specHash, 0x1u);
        }
    EXPECT_EQ(decisions, 1u);
    std::filesystem::remove_all(dir);
}

TEST(MergeLedger, SeedAndSpecFiltersDropStaleRecords)
{
    const std::string dir = freshDir("capart_merge_filter");
    obs::RunRecord stale = pointRec(0x1, "run-old", 5, 8.0);
    stale.seed = kShardSeed + 1; // an earlier sweep, different seed
    writeSegment(dir + "/a.jsonl",
                 {stale, pointRec(0x1, "run-a", 10, 1.0),
                  pointRec(0x999, "run-a", 11, 2.0)});

    obs::MergeOptions opts;
    opts.filterSeed = true;
    opts.expectedSeed = kShardSeed;
    opts.specFilter = {0x1};
    const obs::MergeResult m =
        obs::mergeLedgerSegments({dir + "/a.jsonl"}, opts);
    ASSERT_EQ(m.records.size(), 1u);
    EXPECT_EQ(m.records[0].specHash, 0x1u);
    EXPECT_EQ(m.records[0].metric("time_s"), 1.0);
    std::filesystem::remove_all(dir);
}

// ------------------------------------------------------- end to end --

TEST(ShardSweep, MatchesInProcessRunBitExactly)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_clean");
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    obs::RunLedger canonical(dir + "/canonical.jsonl");
    o.ledger = &canonical;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }

    // The canonical ledger holds exactly one point per spec, all under
    // the supervisor's run id.
    const auto loaded = obs::RunLedger::load(dir + "/canonical.jsonl");
    std::size_t points = 0;
    for (const obs::RunRecord &r : loaded.records) {
        if (r.kind == "point") {
            ++points;
            EXPECT_EQ(r.run, "shardtest-run");
        }
    }
    EXPECT_EQ(points, specs.size());
    std::filesystem::remove_all(dir);
}

TEST(ShardSweep, MoreShardsThanPointsClampsBothSides)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_clamp");
    // More shards than points — the --shards=0 → hardware_concurrency
    // case on a small sweep. The supervisor clamps to specs.size() and
    // must hand workers the clamped count too: a worker partitioning
    // by the unclamped modulus would strand every point whose
    // hash % 64 lands outside the clamped range, and those points
    // would be quarantined as shard_failed instead of computed.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    o.shards = 64;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(ShardSweep, WorkerCrashesAreRetriedBitExactly)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_crash");
    // Every point with an even spec hash crashes its worker once; the
    // respawned worker fast-forwards and retries it successfully.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "2"}});
    const std::vector<SweepResult> got =
        SweepRunner(supervisorOptions(dir)).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(ShardSweep, ExhaustedRetriesQuarantineButNeverAbort)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_quar");
    // Even-hash points crash on EVERY attempt: after maxRetries they
    // must be quarantined — and the sweep must still complete, with
    // every other point bit-exact.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "2"},
                        {"CAPART_CHAOS_CRASH_ATTEMPTS", "99"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    obs::RunLedger canonical(dir + "/canonical.jsonl");
    o.ledger = &canonical;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    std::size_t quarantined = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].hash() % 2 == 0) {
            EXPECT_TRUE(got[i].failed) << i;
            ++quarantined;
        } else {
            EXPECT_FALSE(got[i].failed) << i;
            EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
        }
    }
    ASSERT_GT(quarantined, 0u) << "test sweep has no even hashes";

    // Each quarantined point leaves a structured point_failed record
    // with the reason and attempt count.
    const auto loaded = obs::RunLedger::load(dir + "/canonical.jsonl");
    std::size_t failures = 0;
    for (const obs::RunRecord &r : loaded.records) {
        if (r.kind != "point_failed")
            continue;
        ++failures;
        EXPECT_EQ(r.rule, "crash");
        EXPECT_GE(r.metric("attempts"), 3.0);
    }
    EXPECT_EQ(failures, quarantined);
    std::filesystem::remove_all(dir);
}

TEST(ShardSweep, UserCacheReplaysIntoShardedRunUncorrupted)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_usercache");
    const std::string cache_path = dir + "/user.cache";
    // Warm the user-level cache with a plain in-process sweep — the
    // --cache-dir file a user accumulated before going sharded.
    {
        SweepRunnerOptions warm;
        warm.baseSeed = kShardSeed;
        warm.cachePath = cache_path;
        SweepRunner(warm).run(specs);
    }

    // Sharded run over the warm cache, with chaos armed to crash
    // EVERY computed point on every attempt: completing bit-exactly
    // proves every worker resolved every point from the user cache —
    // the replay path skips the point_start where chaos fires, so a
    // single computed point would crash its worker to quarantine.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "1"},
                        {"CAPART_CHAOS_CRASH_ATTEMPTS", "99"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    o.cachePath = cache_path;
    o.workerCmd = {selfExe(), "--cache-path=" + cache_path};
    obs::RunLedger canonical(dir + "/canonical.jsonl");
    o.ledger = &canonical;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }

    // The per-shard segments must have stayed well-formed: no torn
    // lines, exactly one point per spec, every one flagged as a cache
    // replay.
    std::vector<std::string> segs;
    for (unsigned k = 0; k < 3; ++k)
        segs.push_back(dir + "/" + kShardBench + "-shard-" +
                       std::to_string(k) + ".seg.jsonl");
    const obs::MergeResult m = obs::mergeLedgerSegments(segs);
    EXPECT_EQ(m.tornLines, 0u);
    EXPECT_EQ(m.quarantined, 0u);
    std::size_t points = 0;
    for (const obs::RunRecord &r : m.records) {
        if (r.kind != "point")
            continue;
        ++points;
        EXPECT_TRUE(r.fromCache) << r.spec;
    }
    EXPECT_EQ(points, specs.size());

    // And the shared user-cache file itself survived the concurrent
    // worker traffic: every line still checksums, every spec decodes
    // to the expected result.
    ResultCache reread(cache_path);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SweepResult r;
        ASSERT_TRUE(reread.lookup(
            specCacheKey(specs[i], kShardSeed), &r))
            << i;
        EXPECT_TRUE(sameResult(expected[i], r)) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(ShardSweep, ShardedRunWarmsUserCacheThroughRetries)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_cachewarm");
    const std::string cache_path = dir + "/user.cache";
    // Cold user cache; even-hash points crash their worker once each,
    // so the write-back path must also survive respawn/fast-forward.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "2"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    o.cachePath = cache_path;
    o.workerCmd = {selfExe(), "--cache-path=" + cache_path};
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }

    // Workers stored every computed point back: a fresh ResultCache
    // over the file resolves the whole sweep bit-exactly.
    ResultCache warmed(cache_path);
    EXPECT_EQ(warmed.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        SweepResult r;
        ASSERT_TRUE(warmed.lookup(
            specCacheKey(specs[i], kShardSeed), &r))
            << i;
        EXPECT_TRUE(sameResult(expected[i], r)) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(ShardSweep, ResumeFastForwardsWithoutRecomputing)
{
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_resume");
    {
        const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"}});
        SweepRunner(supervisorOptions(dir)).run(specs);
    }
    // Second run resumes over the completed segments with chaos armed
    // to crash EVERY recomputed point on every attempt: bit-exact
    // results prove nothing recomputed — the resume fast-forwarded
    // through the segments and results files alone.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "1"},
                        {"CAPART_CHAOS_CRASH_ATTEMPTS", "99"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    o.resumeShards = true;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------- live status plane --

/** Arm the runtime obs switch for one test body. */
class ObsEnabledGuard
{
  public:
    ObsEnabledGuard() { obs::setEnabled(true); }
    ~ObsEnabledGuard() { obs::setEnabled(false); }
};

#define SKIP_WITHOUT_OBS()                                                 \
    do {                                                                   \
        if (!obs::kCompiledIn)                                             \
            GTEST_SKIP() << "observability compiled out (CAPART_OBS=OFF)"; \
    } while (0)

/** Segment-derived retry count: point_start records beyond each
 *  spec's first, summed across @p segment paths — the ground truth
 *  the status plane must agree with. */
std::uint64_t
segmentRetries(const std::vector<std::string> &segments)
{
    std::uint64_t retries = 0;
    for (const std::string &path : segments) {
        std::map<std::uint64_t, std::uint64_t> starts;
        for (const obs::RunRecord &r : obs::RunLedger::load(path).records)
            if (r.kind == "point_start")
                ++starts[r.specHash];
        for (const auto &[hash, n] : starts)
            retries += n > 0 ? n - 1 : 0;
    }
    return retries;
}

std::vector<std::string>
segmentPaths(const std::string &dir, unsigned shards)
{
    std::vector<std::string> segs;
    for (unsigned k = 0; k < shards; ++k)
        segs.push_back(dir + "/" + kShardBench + "-shard-" +
                       std::to_string(k) + ".seg.jsonl");
    return segs;
}

TEST(ShardStatus, ChaosArmedSweepMatchesLedgerAndStaysBitExact)
{
    SKIP_WITHOUT_OBS();
    const std::vector<ExperimentSpec> specs = testSpecs();
    const std::vector<SweepResult> &expected = expectedResults();

    const std::string dir = freshDir("capart_shard_status");
    // Even-hash points crash their worker once: the plane must report
    // the retries — and the results must stay bit-identical to the
    // plane-off (plain in-process) run, or observability perturbed the
    // simulation.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "2"}});
    const ObsEnabledGuard obs_on;
    obs::tracer().clear();
    SweepRunnerOptions o = supervisorOptions(dir);
    o.shards = 4;
    o.statusPath = dir + "/status.json";
    o.promPath = dir + "/metrics.prom";
    o.statusPeriodS = 0.05;
    o.workerCmd = {selfExe(), "--worker-trace=" + dir + "/trace"};
    obs::RunLedger canonical(dir + "/canonical.jsonl");
    o.ledger = &canonical;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);

    ASSERT_EQ(got.size(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_FALSE(got[i].failed) << i;
        EXPECT_TRUE(sameResult(expected[i], got[i])) << i;
    }

    // The final status snapshot agrees with the ledger segments — the
    // same files the merge derives the canonical record set from.
    obs::SweepStatus s;
    ASSERT_TRUE(obs::readStatusFile(dir + "/status.json", &s));
    EXPECT_EQ(s.state, "complete");
    EXPECT_EQ(s.bench, kShardBench);
    EXPECT_EQ(s.shards, 4u);
    EXPECT_EQ(s.pointsTotal, specs.size());
    EXPECT_EQ(s.pointsDone, specs.size());
    EXPECT_EQ(s.pointsQuarantined, 0u);
    EXPECT_EQ(s.retries, segmentRetries(segmentPaths(dir, 4)));
    EXPECT_GT(s.retries, 0u) << "chaos crashed no point";
    ASSERT_EQ(s.shardStates.size(), 4u);
    std::uint64_t per_shard_done = 0;
    for (const obs::ShardStatus &sh : s.shardStates) {
        per_shard_done += sh.pointsDone;
        EXPECT_TRUE(sh.state == "settled" || sh.state == "idle")
            << sh.shard << " " << sh.state;
        EXPECT_EQ(sh.pointsDone, sh.pointsAssigned) << sh.shard;
    }
    EXPECT_EQ(per_shard_done, specs.size());

    // The prom exposition was refreshed on the same cadence.
    {
        std::ifstream is(dir + "/metrics.prom");
        ASSERT_TRUE(is.good());
        std::ostringstream text;
        text << is.rdbuf();
        EXPECT_NE(text.str().find("capart_sweep_points_done 6"),
                  std::string::npos)
            << text.str();
        EXPECT_NE(text.str().find("capart_shard_points_done{shard=\"0\"}"),
                  std::string::npos);
    }

    // The canonical ledger carries one `shard` summary record per
    // shard, agreeing with the status plane.
    const auto loaded = obs::RunLedger::load(dir + "/canonical.jsonl");
    std::uint64_t shard_recs = 0;
    std::uint64_t rec_done = 0;
    std::uint64_t rec_retries = 0;
    for (const obs::RunRecord &r : loaded.records) {
        if (r.kind != "shard")
            continue;
        ++shard_recs;
        rec_done += static_cast<std::uint64_t>(r.metric("points_done"));
        rec_retries += static_cast<std::uint64_t>(r.metric("retries"));
        EXPECT_GT(r.metric("spawns"), 0.0);
    }
    EXPECT_EQ(shard_recs, 4u);
    EXPECT_EQ(rec_done, specs.size());
    EXPECT_EQ(rec_retries, s.retries);

    // Worker traces stitch with the supervisor's lifecycle instants
    // into one well-formed timeline: unique pids per source process,
    // globally sorted timestamps, spawn instants present.
    {
        std::ofstream sup(dir + "/trace.supervisor");
        obs::tracer().writeChromeTrace(sup);
    }
    std::vector<obs::StitchSource> sources = {
        {dir + "/trace.supervisor", "supervisor"}};
    for (unsigned k = 0; k < 4; ++k)
        sources.push_back({dir + "/trace.shard-" + std::to_string(k),
                           "shard " + std::to_string(k)});
    obs::StitchStats stats;
    ASSERT_TRUE(obs::stitchTraceFiles(sources, dir + "/trace", &stats));
    EXPECT_GE(stats.sourcesRead, 2u); // supervisor + >=1 worker
    EXPECT_EQ(stats.sourcesMalformed, 0u);

    std::ifstream is(dir + "/trace");
    std::ostringstream text;
    text << is.rdbuf();
    const auto doc = Json::parse(text.str());
    ASSERT_TRUE(doc && doc->isObj());
    const Json &events = doc->at("traceEvents");
    ASSERT_TRUE(events.isArr());
    bool saw_spawn = false;
    double last_ts = -1.0;
    std::map<double, unsigned> events_per_pid;
    for (const Json &e : events.arr) {
        if (e.at("ph").asStr() == "M")
            continue;
        const double ts = e.at("ts").asNum(-1);
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        ++events_per_pid[e.at("pid").asNum(-1)];
        if (e.at("name").asStr() == "shard.spawn") {
            saw_spawn = true;
            // Supervisor instants live on its host-clock track (pid 2).
            EXPECT_EQ(e.at("pid").asNum(), 2.0);
        }
    }
    EXPECT_TRUE(saw_spawn);
    EXPECT_EQ(doc->at("metadata").at("stitched_sources").asNum(),
              static_cast<double>(stats.sourcesRead));
    std::filesystem::remove_all(dir);
}

TEST(ShardStatus, QuarantinesAndCrashCountsReachTheFinalSnapshot)
{
    SKIP_WITHOUT_OBS();
    const std::vector<ExperimentSpec> specs = testSpecs();

    const std::string dir = freshDir("capart_shard_status_quar");
    // Even-hash points crash on EVERY attempt → quarantine. The final
    // snapshot must account for every point as done or quarantined and
    // agree with the canonical ledger's point_failed records.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"},
                        {"CAPART_CHAOS_CRASH_MOD", "2"},
                        {"CAPART_CHAOS_CRASH_ATTEMPTS", "99"}});
    const ObsEnabledGuard obs_on;
    SweepRunnerOptions o = supervisorOptions(dir);
    o.shards = 4;
    o.statusPath = dir + "/status.json";
    obs::RunLedger canonical(dir + "/canonical.jsonl");
    o.ledger = &canonical;
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);
    ASSERT_EQ(got.size(), specs.size());

    std::uint64_t failed_recs = 0;
    for (const obs::RunRecord &r :
         obs::RunLedger::load(dir + "/canonical.jsonl").records)
        if (r.kind == "point_failed")
            ++failed_recs;
    ASSERT_GT(failed_recs, 0u);

    obs::SweepStatus s;
    ASSERT_TRUE(obs::readStatusFile(dir + "/status.json", &s));
    EXPECT_EQ(s.state, "complete");
    EXPECT_EQ(s.pointsQuarantined, failed_recs);
    EXPECT_EQ(s.pointsDone + s.pointsQuarantined, specs.size());
    std::uint64_t crashes = 0;
    std::uint64_t per_shard_quar = 0;
    for (const obs::ShardStatus &sh : s.shardStates) {
        crashes += sh.crashes;
        per_shard_quar += sh.pointsQuarantined;
    }
    EXPECT_EQ(per_shard_quar, failed_recs);
    EXPECT_GT(crashes, 0u);
    std::filesystem::remove_all(dir);
}

TEST(ShardStatus, PlaneOffWritesNothing)
{
    const std::vector<ExperimentSpec> specs = testSpecs();

    const std::string dir = freshDir("capart_shard_status_off");
    // Paths set but the runtime obs switch off (or the whole layer
    // compiled out): the run must not create the files.
    const EnvGuard env({{"CAPART_SHARD_BACKOFF_MS", "20"}});
    SweepRunnerOptions o = supervisorOptions(dir);
    o.statusPath = dir + "/status.json";
    o.promPath = dir + "/metrics.prom";
    const std::vector<SweepResult> got = SweepRunner(o).run(specs);
    ASSERT_EQ(got.size(), specs.size());
    EXPECT_FALSE(std::filesystem::exists(dir + "/status.json"));
    EXPECT_FALSE(std::filesystem::exists(dir + "/metrics.prom"));
    std::filesystem::remove_all(dir);
}

} // namespace
} // namespace capart::exec

/**
 * Custom main: when the shard supervisor under test re-executes this
 * binary with `--shard-worker=k`, become that worker (compute the
 * fixed test sweep's k-th shard and exit); otherwise run gtest.
 */
int
main(int argc, char **argv)
{
    int worker = -1;
    unsigned shards = 0;
    std::string ledger_dir;
    std::string cache_path;
    std::string worker_trace;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a.rfind("--shard-worker=", 0) == 0)
            worker = std::atoi(a.c_str() + 15);
        else if (a.rfind("--shards=", 0) == 0)
            shards = static_cast<unsigned>(
                std::strtoul(a.c_str() + 9, nullptr, 10));
        else if (a.rfind("--ledger-dir=", 0) == 0)
            ledger_dir = a.substr(13);
        else if (a.rfind("--cache-path=", 0) == 0)
            cache_path = a.substr(13);
        else if (a.rfind("--worker-trace=", 0) == 0)
            worker_trace = a.substr(15);
    }
    if (worker >= 0 && shards > 0) {
        using namespace capart::exec;
        SweepRunnerOptions o;
        o.baseSeed = kShardSeed;
        o.benchName = kShardBench;
        o.runId = "shardtest-worker";
        o.shards = shards;
        o.shardWorker = worker;
        o.ledgerDir = ledger_dir;
        o.cachePath = cache_path;
        if (!worker_trace.empty()) {
            // Per-shard trace export, the bench_common `.shard-<k>`
            // convention: the status-plane tests stitch these.
            capart::obs::setEnabled(true);
            o.workerTraceOut =
                worker_trace + ".shard-" + std::to_string(worker);
        }
        SweepRunner(o).run(testSpecs()); // exits; never returns
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
