/**
 * @file
 * Tests for the paper's contribution: phase detection (Algorithm 6.1),
 * the dynamic partitioner (Algorithm 6.2), static policies, and the
 * co-scheduler facade.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/co_scheduler.hh"
#include "core/dynamic_partitioner.hh"
#include "core/phase_detector.hh"
#include "core/slo_monitor.hh"
#include "core/static_policies.hh"
#include "workload/catalog.hh"

namespace capart
{
namespace
{

constexpr double kTestScale = 0.03;

// ----------------------------------------------------- PhaseDetector --

TEST(PhaseDetector, StableStreamNoEvents)
{
    PhaseDetector det;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(det.step(50.0), PhaseEvent::Stable);
    EXPECT_EQ(det.phaseChanges(), 0u);
    EXPECT_NEAR(det.avgMpki(), 50.0, 1e-9);
}

TEST(PhaseDetector, SmallJitterTolerated)
{
    PhaseDetector det;
    // +-1% wobble around 100 stays under THR1 = 2%.
    double mpki = 100.0;
    for (int i = 0; i < 50; ++i) {
        mpki = (i % 2) ? 100.5 : 99.5;
        EXPECT_EQ(det.step(mpki), PhaseEvent::Stable) << "i=" << i;
    }
    EXPECT_EQ(det.phaseChanges(), 0u);
}

TEST(PhaseDetector, StepChangeDetected)
{
    PhaseDetector det;
    for (int i = 0; i < 20; ++i)
        det.step(40.0);
    EXPECT_EQ(det.step(150.0), PhaseEvent::NewPhase);
    EXPECT_TRUE(det.inTransition());
    // Settles once samples stabilize near the new level.
    EXPECT_EQ(det.step(150.0), PhaseEvent::Stable);
    EXPECT_FALSE(det.inTransition());
    EXPECT_EQ(det.phaseChanges(), 1u);
}

TEST(PhaseDetector, RampKeepsTransitionOpen)
{
    PhaseDetector det;
    for (int i = 0; i < 10; ++i)
        det.step(40.0);
    EXPECT_EQ(det.step(60.0), PhaseEvent::NewPhase);
    // Keep moving by >2% per window: still in transition.
    EXPECT_EQ(det.step(90.0), PhaseEvent::InTransition);
    EXPECT_EQ(det.step(130.0), PhaseEvent::InTransition);
    EXPECT_EQ(det.step(131.0), PhaseEvent::Stable);
    EXPECT_EQ(det.phaseChanges(), 1u);
}

TEST(PhaseDetector, CountsMultiplePhaseChanges)
{
    PhaseDetector det;
    auto run_level = [&](double mpki) {
        for (int i = 0; i < 10; ++i)
            det.step(mpki);
    };
    run_level(40);
    run_level(150);
    run_level(40);
    run_level(150);
    EXPECT_EQ(det.phaseChanges(), 3u);
}

TEST(PhaseDetector, ResetClearsState)
{
    PhaseDetector det;
    det.step(40.0);
    det.step(150.0);
    det.reset();
    EXPECT_EQ(det.phaseChanges(), 0u);
    EXPECT_EQ(det.step(70.0), PhaseEvent::Stable) << "fresh bootstrap";
}

TEST(PhaseDetector, NearZeroMpkiDoesNotOscillate)
{
    // Relative deltas on tiny MPKI would explode without the floor.
    PhaseDetector det;
    det.step(0.01);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(det.step((i % 2) ? 0.012 : 0.008), PhaseEvent::Stable);
}

TEST(PhaseDetector, SingleSampleHistorySuffices)
{
    // After just one sample the average exists and deviations from it
    // are detectable — no warm-up period hides an early phase change.
    PhaseDetector det;
    EXPECT_EQ(det.step(100.0), PhaseEvent::Stable) << "bootstrap";
    EXPECT_EQ(det.step(200.0), PhaseEvent::NewPhase);
    EXPECT_EQ(det.phaseChanges(), 1u);
    EXPECT_NEAR(det.avgMpki(), 200.0, 1e-12)
        << "the new phase's average restarts at the new level";
}

TEST(PhaseDetector, Thr1BoundaryIsExclusive)
{
    // A deviation of exactly THR1 does NOT start a phase change (the
    // comparison is strict); the next representable step above does.
    {
        PhaseDetector det;
        det.step(100.0);
        EXPECT_EQ(det.step(102.0), PhaseEvent::Stable)
            << "delta == THR1 exactly must stay stable";
    }
    {
        PhaseDetector det;
        det.step(100.0);
        EXPECT_EQ(det.step(102.1), PhaseEvent::NewPhase)
            << "delta just above THR1 must trigger";
    }
}

TEST(PhaseDetector, Thr2SettleBoundaryIsExclusive)
{
    // Settling requires the deviation to fall strictly below THR2:
    // sitting exactly on the boundary keeps the transition open.
    PhaseDetector det;
    det.step(100.0);
    EXPECT_EQ(det.step(150.0), PhaseEvent::NewPhase);
    // avg restarted at 150; 153 is exactly 2% away.
    EXPECT_EQ(det.step(153.0), PhaseEvent::InTransition);
    // Still moving tracks the level (avg := 153); zero delta settles.
    EXPECT_EQ(det.step(153.0), PhaseEvent::Stable);
    EXPECT_FALSE(det.inTransition());
    EXPECT_EQ(det.phaseChanges(), 1u);
}

// ----------------------------------------------- static policy masks --

TEST(StaticPolicies, PolicyNames)
{
    EXPECT_STREQ(policyName(Policy::Shared), "shared");
    EXPECT_STREQ(policyName(Policy::Fair), "fair");
    EXPECT_STREQ(policyName(Policy::Biased), "biased");
    EXPECT_STREQ(policyName(Policy::Dynamic), "dynamic");
}

TEST(StaticPolicies, MaskShapes)
{
    const SplitMasks shared = policyMasks(Policy::Shared, 12);
    EXPECT_EQ(shared.fg, WayMask::all(12));
    EXPECT_EQ(shared.bg, WayMask::all(12));

    const SplitMasks fair = policyMasks(Policy::Fair, 12);
    EXPECT_EQ(fair.fg.count(), 6u);
    EXPECT_EQ(fair.bg.count(), 6u);

    const SplitMasks biased = policyMasks(Policy::Biased, 12, 9);
    EXPECT_EQ(biased.fg.count(), 9u);
    EXPECT_EQ(biased.bg.count(), 3u);

    const SplitMasks dyn = policyMasks(Policy::Dynamic, 12);
    EXPECT_EQ(dyn.fg.count(), 11u);
    EXPECT_EQ(dyn.bg.count(), 1u);
}

TEST(StaticPolicies, BiasedSearchImplementsThePaperCriterion)
{
    BiasedSearchOptions opts;
    opts.pair.scale = kTestScale;
    const BiasedSearchResult r = findBiasedPartition(
        Catalog::byName("471.omnetpp"), Catalog::byName("streamcluster"),
        opts);
    ASSERT_EQ(r.sweep.size(), 11u);
    EXPECT_EQ(r.masks.fg.count(), r.fgWays);
    EXPECT_GT(r.bgThroughput, 0.0);

    // §5.2: among allocations with minimum foreground degradation,
    // the one that maximizes background performance.
    double best_time = 1e30;
    for (const auto &pt : r.sweep)
        best_time = std::min(best_time, pt.fgTime);
    EXPECT_LE(r.fgTime, best_time * (1.0 + opts.tolerance) + 1e-12);
    for (const auto &pt : r.sweep) {
        if (pt.fgTime <= best_time * (1.0 + opts.tolerance))
            EXPECT_GE(r.bgThroughput, pt.bgThroughput);
    }
}

TEST(StaticPolicies, BiasedSearchGivesCacheAwayWhenFgInsensitive)
{
    BiasedSearchOptions opts;
    opts.pair.scale = kTestScale;
    const BiasedSearchResult r =
        findBiasedPartition(Catalog::byName("swaptions"),
                            Catalog::byName("471.omnetpp"), opts);
    // swaptions does not need LLC: the search should hand most ways to
    // the cache-hungry background.
    EXPECT_LE(r.fgWays, 4u);
}

// -------------------------------------------------- DynamicPartitioner --

TEST(DynamicPartitioner, ShrinksWhenMpkiInsensitive)
{
    SystemConfig cfg;
    cfg.perfWindow = 8e-6;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("swaptions").scaled(0.3), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("471.omnetpp").scaled(0.3), 2, 2, true);

    DynamicPartitioner ctrl(fg, {bg});
    sys.setController(&ctrl);
    sys.run();

    // swaptions' MPKI never reacts: the controller must walk the
    // allocation down to the floor.
    EXPECT_EQ(ctrl.fgWays(), 2u);
    EXPECT_GT(ctrl.reallocations(), 5u);
    EXPECT_FALSE(ctrl.history().empty());
}

TEST(DynamicPartitioner, HoldsCapacityForCacheHungryFg)
{
    SystemConfig cfg;
    cfg.perfWindow = 8e-6;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("471.omnetpp").scaled(0.08), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("streamcluster").scaled(0.08), 2, 2, true);

    DynamicPartitioner ctrl(fg, {bg});
    sys.setController(&ctrl);
    sys.run();

    // omnetpp's MPKI reacts to shrinkage: the controller must keep a
    // healthy allocation rather than walking to the floor.
    EXPECT_GE(ctrl.fgWays(), 4u);
}

TEST(DynamicPartitioner, InstallsComplementaryMasks)
{
    SystemConfig cfg;
    cfg.perfWindow = 8e-6;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.05), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.05), 2, 2, true);
    DynamicPartitioner ctrl(fg, {bg});
    sys.setController(&ctrl);
    sys.run();

    const WayMask fg_mask = sys.wayMask(fg);
    const WayMask bg_mask = sys.wayMask(bg);
    EXPECT_EQ((fg_mask & bg_mask).count(), 0u);
    EXPECT_EQ((fg_mask | bg_mask), WayMask::all(12));
    EXPECT_EQ(fg_mask.count(), ctrl.fgWays());
}

TEST(DynamicPartitioner, HistoryRecordsMpkiTrace)
{
    SystemConfig cfg;
    cfg.perfWindow = 8e-6;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("429.mcf").scaled(0.1), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.1), 2, 2, true);
    DynamicPartitioner ctrl(fg, {bg});
    sys.setController(&ctrl);
    sys.run();

    ASSERT_GT(ctrl.history().size(), 20u);
    // Time stamps increase; ways stay within configured bounds.
    Seconds prev = -1.0;
    for (const auto &ev : ctrl.history()) {
        EXPECT_GT(ev.time, prev);
        prev = ev.time;
        EXPECT_GE(ev.fgWays, 2u);
        EXPECT_LE(ev.fgWays, 11u);
    }
    // mcf has phases: the detector must fire at least once.
    EXPECT_GE(ctrl.detector().phaseChanges(), 1u);
}

// -------------------------------- hardening: validation and watchdog --

TEST(DynamicPartitionerConfig, RejectsImpossibleConfigurations)
{
    const auto make = [](const DynamicPartitionerConfig &cfg) {
        DynamicPartitioner ctrl(0, {1}, cfg);
        (void)ctrl;
    };
    DynamicPartitionerConfig cfg;
    cfg.minFgWays = 0;
    EXPECT_DEATH(make(cfg), "minFgWays must be >= 1");
    cfg = {};
    cfg.minFgWays = 8;
    cfg.maxFgWays = 4;
    EXPECT_DEATH(make(cfg), "must not exceed maxFgWays");
    cfg = {};
    cfg.thr3 = 0.0;
    EXPECT_DEATH(make(cfg), "thr3 must be positive");
    cfg = {};
    cfg.mpkiSmoothing = 1.5;
    EXPECT_DEATH(make(cfg), "mpkiSmoothing");
    cfg = {};
    cfg.spikeRejectFactor = 1.0;
    EXPECT_DEATH(make(cfg), "spikeRejectFactor");
    cfg = {};
    cfg.watchdogThreshold = 0;
    EXPECT_DEATH(make(cfg), "watchdogThreshold");
}

namespace
{

/** Drops every window of the hooked stream (dead telemetry). */
struct DropAllWindows : WindowFaultHook
{
    bool onWindowClose(std::uint64_t, std::uint64_t, PerfWindow &) override
    {
        return false;
    }
};

/** A control plane whose writes never land. */
struct BrokenRemasker : Remasker
{
    unsigned attempts = 0;
    bool
    apply(System &, AppId, const std::vector<AppId> &,
          const SplitMasks &) override
    {
        ++attempts;
        return false;
    }
};

/** A synthetic FG window with well-formed timestamps. */
PerfWindow
fgWindow(unsigned index, double mpki)
{
    PerfWindow w;
    w.start = static_cast<Seconds>(index);
    w.end = w.start + 1.0;
    w.insts = 1000000;
    w.llcAccesses = 2000;
    w.llcMisses = static_cast<std::uint64_t>(mpki * 1000);
    w.mpki = mpki;
    w.apki = 2.0;
    return w;
}

} // namespace

TEST(DynamicPartitioner, WatchdogFallsBackOnDeadFgTelemetry)
{
    SystemConfig cfg;
    cfg.perfWindow = 8e-6;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("429.mcf").scaled(0.1), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.1), 2, 2, true);

    DropAllWindows dead;
    sys.setWindowFaultHook(fg, &dead);
    DynamicPartitioner ctrl(fg, {bg});
    sys.setController(&ctrl);
    sys.run();

    // ISSUE acceptance: with persistent telemetry failure the watchdog
    // must settle on the fair partition within 10 windows.
    EXPECT_EQ(ctrl.mode(), ControlMode::Fallback);
    EXPECT_EQ(ctrl.fgWays(), 6u);
    EXPECT_EQ(sys.wayMask(fg).count(), 6u);
    EXPECT_EQ(sys.wayMask(bg).count(), 6u);
    EXPECT_EQ((sys.wayMask(fg) & sys.wayMask(bg)).count(), 0u);
    ASSERT_EQ(countHealthEvents(ctrl.healthLog(),
                                HealthEventKind::FallbackEntered),
              1u);
    for (const HealthEvent &ev : ctrl.healthLog()) {
        if (ev.kind == HealthEventKind::FallbackEntered)
            EXPECT_LE(ev.count, 10u) << "settled too slowly";
    }
}

TEST(DynamicPartitioner, RecoversWhenTelemetryReturns)
{
    SystemConfig scfg;
    System sys(scfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);

    DynamicPartitionerConfig cfg;
    cfg.telemetryTimeoutWindows = 4;
    cfg.recoveryWindows = 3;
    DynamicPartitioner ctrl(fg, {bg}, cfg);

    // Healthy start: a couple of valid foreground windows.
    unsigned t = 0;
    ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    EXPECT_EQ(ctrl.mode(), ControlMode::Dynamic);

    // Foreground telemetry goes silent; the background's windows keep
    // the silence clock ticking until the watchdog trips.
    for (unsigned i = 0; i < cfg.telemetryTimeoutWindows; ++i)
        ctrl.onWindow(sys, bg, fgWindow(t + i, 5.0));
    EXPECT_EQ(ctrl.mode(), ControlMode::Fallback);
    EXPECT_EQ(ctrl.fgWays(), 6u);
    EXPECT_EQ(sys.wayMask(fg).count(), 6u);

    // The signal returns and stays stable: dynamic control resumes and
    // re-probes from the top, as on a phase start.
    t += cfg.telemetryTimeoutWindows;
    for (unsigned i = 0; i < cfg.recoveryWindows; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    EXPECT_EQ(ctrl.mode(), ControlMode::Dynamic);
    EXPECT_EQ(ctrl.fgWays(), 11u) << "recovery re-probes from the top";
    EXPECT_EQ(countHealthEvents(ctrl.healthLog(),
                                HealthEventKind::DynamicResumed),
              1u);
}

TEST(DynamicPartitioner, WatchdogFallsBackOnBrokenControlPlane)
{
    SystemConfig cfg;
    cfg.perfWindow = 8e-6;
    System sys(cfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("429.mcf").scaled(0.1), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.1), 2, 2, true);

    BrokenRemasker broken;
    DynamicPartitioner ctrl(fg, {bg}, DynamicPartitionerConfig{},
                            &broken);
    sys.setController(&ctrl);
    sys.run();

    // Every dynamic write failed; the watchdog must bypass the broken
    // remasker and land the fair split through the direct path.
    EXPECT_EQ(ctrl.mode(), ControlMode::Fallback);
    EXPECT_EQ(ctrl.fgWays(), 6u);
    EXPECT_EQ(sys.wayMask(fg).count(), 6u);
    EXPECT_GE(ctrl.remaskFailures(), 4u);
    EXPECT_EQ(ctrl.remaskFailures(), ctrl.remaskAttempts());
    EXPECT_GE(countHealthEvents(ctrl.healthLog(),
                                HealthEventKind::RemaskFailed),
              4u);
}

TEST(DynamicPartitioner, RejectsGarbageAndLoneSpikes)
{
    SystemConfig scfg;
    System sys(scfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);
    DynamicPartitioner ctrl(fg, {bg});

    unsigned t = 0;
    for (int i = 0; i < 4; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    EXPECT_EQ(ctrl.rejectedSamples(), 0u);

    // NaN and empty windows are garbage regardless of level.
    PerfWindow nan_w = fgWindow(t++, 10.0);
    nan_w.mpki = std::numeric_limits<double>::quiet_NaN();
    ctrl.onWindow(sys, fg, nan_w);
    EXPECT_EQ(ctrl.rejectedSamples(), 1u);
    PerfWindow torn = fgWindow(t++, 10.0);
    torn.insts = 0; // misses without instructions: a torn counter read
    ctrl.onWindow(sys, fg, torn);
    EXPECT_EQ(ctrl.rejectedSamples(), 2u);

    // A lone 100x spike is quarantined as a counter glitch...
    ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    ctrl.onWindow(sys, fg, fgWindow(t++, 1000.0));
    EXPECT_EQ(ctrl.rejectedSamples(), 3u);
    ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));
    EXPECT_EQ(ctrl.mode(), ControlMode::Dynamic)
        << "isolated glitches must not trip the watchdog";

    // ...but two consecutive outliers confirm a genuine phase shift.
    const std::uint64_t rejected = ctrl.rejectedSamples();
    ctrl.onWindow(sys, fg, fgWindow(t++, 1000.0));
    ctrl.onWindow(sys, fg, fgWindow(t++, 1000.0));
    EXPECT_EQ(ctrl.rejectedSamples(), rejected + 1)
        << "the second outlier is real data and must pass";
    EXPECT_EQ(countHealthEvents(ctrl.healthLog(),
                                HealthEventKind::SampleRejected),
              ctrl.rejectedSamples());
}

TEST(DynamicPartitioner, ZeroInstructionWindowGuard)
{
    // A window with zero instructions *and* zero misses is a real idle
    // interval: MPKI 0 is data, not garbage. Zero instructions with
    // nonzero misses is arithmetically impossible on healthy counters
    // and must be rejected before it poisons the running average.
    SystemConfig scfg;
    System sys(scfg);
    const AppId fg = sys.addAppOnCores(
        Catalog::byName("ferret").scaled(0.02), 0, 2);
    const AppId bg = sys.addAppOnCores(
        Catalog::byName("dedup").scaled(0.02), 2, 2);
    DynamicPartitioner ctrl(fg, {bg});

    unsigned t = 0;
    for (int i = 0; i < 3; ++i)
        ctrl.onWindow(sys, fg, fgWindow(t++, 10.0));

    PerfWindow idle = fgWindow(t++, 0.0);
    idle.insts = 0;
    idle.llcAccesses = 0;
    idle.llcMisses = 0;
    ctrl.onWindow(sys, fg, idle);
    EXPECT_EQ(ctrl.rejectedSamples(), 0u)
        << "an idle window is valid zero-MPKI data";

    PerfWindow torn = fgWindow(t++, 10.0);
    torn.insts = 0; // misses survived, instructions did not: torn read
    ctrl.onWindow(sys, fg, torn);
    EXPECT_EQ(ctrl.rejectedSamples(), 1u);

    PerfWindow negative = fgWindow(t++, 10.0);
    negative.mpki = -4.0;
    ctrl.onWindow(sys, fg, negative);
    EXPECT_EQ(ctrl.rejectedSamples(), 2u);
    EXPECT_EQ(ctrl.mode(), ControlMode::Dynamic);
}

// --------------------------------------------------------- CoScheduler --

TEST(CoScheduler, SummaryMetricsAreCoherent)
{
    CoScheduleOptions opts;
    opts.scale = kTestScale;
    CoScheduler cs(Catalog::byName("ferret"), Catalog::byName("dedup"),
                   opts);

    const ConsolidationSummary sh = cs.summarize(Policy::Shared);
    EXPECT_GT(sh.fgSlowdown, 0.9);
    EXPECT_LT(sh.fgSlowdown, 2.0);
    EXPECT_GT(sh.weightedSpeedup, 1.0)
        << "consolidating two saturating apps must beat sequential";
    EXPECT_LT(sh.energyVsSequential, 1.0)
        << "consolidation saves energy for these apps";
    EXPECT_GT(sh.bgThroughput, 0.0);
}

TEST(CoScheduler, BiasedProtectsAtLeastAsWellAsShared)
{
    CoScheduleOptions opts;
    opts.scale = kTestScale;
    CoScheduler cs(Catalog::byName("canneal"),
                   Catalog::byName("streamcluster"), opts);
    const ConsolidationSummary sh = cs.summarize(Policy::Shared);
    const ConsolidationSummary bi = cs.summarize(Policy::Biased);
    EXPECT_LE(bi.fgSlowdown, sh.fgSlowdown * 1.02);
}

TEST(CoScheduler, DynamicTracksBiasedProtection)
{
    CoScheduleOptions opts;
    opts.scale = 0.05;
    opts.system.perfWindow = 8e-6;
    CoScheduler cs(Catalog::byName("429.mcf"),
                   Catalog::byName("dedup"), opts);
    const ConsolidationSummary bi = cs.summarize(Policy::Biased);
    const ConsolidationSummary dy = cs.summarize(Policy::Dynamic);
    // §6.4: dynamic holds foreground within a few percent of the best
    // static partition.
    EXPECT_LT(dy.fgSlowdown, bi.fgSlowdown + 0.06);
    EXPECT_NE(cs.lastDynamicController(), nullptr);
}

TEST(CoScheduler, CachesRepeatedQueries)
{
    CoScheduleOptions opts;
    opts.scale = kTestScale;
    CoScheduler cs(Catalog::byName("ferret"), Catalog::byName("batik"),
                   opts);
    const PairResult &a = cs.runPolicy(Policy::Shared, true);
    const PairResult &b = cs.runPolicy(Policy::Shared, true);
    EXPECT_EQ(&a, &b) << "same object: cached, not re-run";
}

// ---------------------------------------------------------- SloMonitor --

/**
 * A window whose IPS is baseline / slowdown: the monitor should
 * estimate exactly @p slowdown from it.
 */
PerfWindow
sloWindow(double slowdown, double baseline_ips = 1e9)
{
    PerfWindow w;
    w.start = 0.0;
    w.end = 1e-3;
    w.insts = static_cast<Insts>(baseline_ips / slowdown * 1e-3);
    return w;
}

SloMonitorConfig
tightSloConfig()
{
    SloMonitorConfig cfg;
    cfg.slo = 1.02;
    cfg.shortWindows = 2;
    cfg.longWindows = 4;
    cfg.confirmWindows = 2;
    cfg.recoveryWindows = 3;
    return cfg;
}

TEST(SloMonitorConfig, RejectsImpossibleConfigurations)
{
    const auto dies = [](auto mutate) {
        SloMonitorConfig cfg;
        mutate(cfg);
        EXPECT_DEATH(cfg.validate(), "SloMonitorConfig");
    };
    dies([](SloMonitorConfig &c) { c.slo = 1.0; });
    dies([](SloMonitorConfig &c) { c.shortWindows = 0; });
    dies([](SloMonitorConfig &c) {
        c.shortWindows = 8;
        c.longWindows = 4;
    });
    dies([](SloMonitorConfig &c) { c.burnThreshold = 0.0; });
    dies([](SloMonitorConfig &c) { c.confirmWindows = 0; });
    SloMonitorConfig ok;
    ok.validate(); // defaults must be valid
}

TEST(SloMonitor, IgnoresWindowsBeforeBaselineAndUnusableWindows)
{
    SloMonitor mon(tightSloConfig());
    EXPECT_EQ(mon.onWindow(0.0, sloWindow(2.0)), SloTransition::None);
    EXPECT_EQ(mon.windows(), 0u) << "no baseline yet";

    mon.setBaseline(1e9);
    PerfWindow empty;
    EXPECT_EQ(mon.onWindow(0.0, empty), SloTransition::None);
    EXPECT_EQ(mon.windows(), 0u) << "zero-span window must not count";
}

TEST(SloMonitor, EstimatesSlowdownPerWindow)
{
    SloMonitor mon(tightSloConfig());
    mon.setBaseline(1e9);
    mon.onWindow(0.0, sloWindow(1.10));
    EXPECT_NEAR(mon.lastSlowdown(), 1.10, 1e-3);
    // burn = (slowdown - 1) / (slo - 1) = 0.10 / 0.02 = 5.
    EXPECT_NEAR(mon.shortBurn(), 5.0, 0.1);
}

TEST(SloMonitor, SingleBadWindowDoesNotBreach)
{
    SloMonitor mon(tightSloConfig());
    mon.setBaseline(1e9);
    EXPECT_EQ(mon.onWindow(0.0, sloWindow(1.50)), SloTransition::None)
        << "one burning window is below confirmWindows";
    EXPECT_EQ(mon.onWindow(1e-3, sloWindow(1.00)), SloTransition::None);
    EXPECT_EQ(mon.onWindow(2e-3, sloWindow(1.50)), SloTransition::None)
        << "a second lone spike must not flap into breach";
    EXPECT_FALSE(mon.inBreach());
    EXPECT_EQ(mon.breaches(), 0u);
}

TEST(SloMonitor, SustainedBurnBreachesThenRecovers)
{
    SloMonitor mon(tightSloConfig());
    mon.setBaseline(1e9);

    // Sustained 10% slowdown against a 2% SLO: breach confirmed on the
    // second consecutive burning evaluation (longWindows mean needs a
    // couple of windows to climb past the threshold too).
    SloTransition tr = SloTransition::None;
    unsigned breach_at = 0;
    for (unsigned i = 0; i < 8; ++i) {
        tr = mon.onWindow(i * 1e-3, sloWindow(1.10));
        if (tr == SloTransition::Breach) {
            breach_at = i;
            break;
        }
    }
    ASSERT_EQ(tr, SloTransition::Breach);
    EXPECT_GE(breach_at, 1u) << "confirmWindows=2 forbids instant breach";
    EXPECT_TRUE(mon.inBreach());
    EXPECT_EQ(mon.breaches(), 1u);

    // Healthy again: recovery only after recoveryWindows clean windows.
    unsigned clean = 0;
    tr = SloTransition::None;
    for (unsigned i = 0; i < 16 && tr != SloTransition::Recovered; ++i) {
        tr = mon.onWindow((8 + i) * 1e-3, sloWindow(1.00));
        ++clean;
    }
    ASSERT_EQ(tr, SloTransition::Recovered);
    EXPECT_GE(clean, 3u) << "recoveryWindows=3 forbids instant recovery";
    EXPECT_FALSE(mon.inBreach());

    ASSERT_EQ(mon.healthLog().size(), 2u);
    EXPECT_EQ(mon.healthLog()[0].kind, HealthEventKind::SloBreach);
    EXPECT_EQ(mon.healthLog()[1].kind, HealthEventKind::SloRecovered);
    EXPECT_GT(mon.breachWindows(), 0u);
    EXPECT_LT(mon.breachWindows(), mon.windows());
}

TEST(SloController, FiltersForegroundAndDelegates)
{
    struct Recorder : PartitionController
    {
        unsigned calls = 0;
        void
        onWindow(System &, AppId, const PerfWindow &) override
        {
            ++calls;
        }
    };

    SloMonitor mon(tightSloConfig());
    mon.setBaseline(1e9);
    Recorder inner;
    SloController ctrl(AppId{0}, &mon, &inner);

    SystemConfig sys_cfg;
    System sys(sys_cfg);
    ctrl.onWindow(sys, AppId{0}, sloWindow(1.0));
    ctrl.onWindow(sys, AppId{1}, sloWindow(1.0));
    EXPECT_EQ(mon.windows(), 1u) << "only FG windows feed the monitor";
    EXPECT_EQ(inner.calls, 2u) << "every window reaches the inner ctrl";
}

TEST(CoScheduler, SloMonitoringIsPureObservation)
{
    CoScheduleOptions plain;
    plain.scale = kTestScale;
    CoScheduler cs_plain(Catalog::byName("ferret"),
                         Catalog::byName("dedup"), plain);
    const ConsolidationSummary a = cs_plain.summarize(Policy::Shared);
    EXPECT_EQ(cs_plain.lastSloMonitor(), nullptr);

    CoScheduleOptions monitored = plain;
    monitored.monitorSlo = true;
    CoScheduler cs_mon(Catalog::byName("ferret"),
                       Catalog::byName("dedup"), monitored);
    const ConsolidationSummary b = cs_mon.summarize(Policy::Shared);

    // Bit-identical results: the monitor observes, never actuates.
    EXPECT_EQ(a.fgSlowdown, b.fgSlowdown);
    EXPECT_EQ(a.bgThroughput, b.bgThroughput);
    EXPECT_EQ(a.energyVsSequential, b.energyVsSequential);
    EXPECT_EQ(a.weightedSpeedup, b.weightedSpeedup);

    const SloMonitor *mon = cs_mon.lastSloMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_GT(mon->windows(), 0u);
    EXPECT_GT(mon->baseline(), 0.0);
}

TEST(CoScheduler, SloMonitorComposesWithDynamicController)
{
    CoScheduleOptions opts;
    opts.scale = 0.05;
    opts.system.perfWindow = 8e-6;
    opts.monitorSlo = true;
    CoScheduler cs(Catalog::byName("429.mcf"), Catalog::byName("dedup"),
                   opts);
    const ConsolidationSummary dy = cs.summarize(Policy::Dynamic);
    EXPECT_NE(cs.lastDynamicController(), nullptr);
    const SloMonitor *mon = cs.lastSloMonitor();
    ASSERT_NE(mon, nullptr);
    EXPECT_GT(mon->windows(), 0u)
        << "monitor must see FG windows even with an inner controller";
    (void)dy;
}

} // namespace
} // namespace capart
