/**
 * @file
 * Parameterized per-application property tests: every one of the 45
 * catalog entries must satisfy the generator invariants — deterministic
 * replay, address-layout containment, access-rate consistency with its
 * memRatio, and a finishable single run.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "sim/experiment.hh"
#include "workload/catalog.hh"
#include "workload/generator.hh"

namespace capart
{
namespace
{

class CatalogAppTest : public ::testing::TestWithParam<std::string>
{
  protected:
    const AppParams &app() const { return Catalog::byName(GetParam()); }
};

TEST_P(CatalogAppTest, GeneratorIsDeterministic)
{
    ThreadWorkload w1(app(), 0, 4, 1ull << 40, 77);
    ThreadWorkload w2(app(), 0, 4, 1ull << 40, 77);
    std::vector<MemAccess> a1, a2;
    for (int q = 0; q < 5; ++q) {
        const double progress = q * 0.2;
        w1.runQuantum(4000, progress, a1);
        w2.runQuantum(4000, progress, a2);
    }
    ASSERT_EQ(a1.size(), a2.size());
    for (std::size_t i = 0; i < a1.size(); ++i)
        ASSERT_EQ(a1[i].addr, a2[i].addr) << "i=" << i;
}

TEST_P(CatalogAppTest, AddressesWithinDeclaredFootprint)
{
    const Addr base = 1ull << 41;
    ThreadWorkload w(app(), 1, 4, base, 5);
    std::uint64_t footprint = 0;
    for (const auto &ph : app().phases)
        for (const auto &p : ph.patterns)
            footprint += p.regionBytes + kLineBytes;

    std::vector<MemAccess> acc;
    for (int q = 0; q < 20 && !w.done(); ++q)
        w.runQuantum(4000, q * 0.05, acc);
    for (const auto &m : acc) {
        ASSERT_GE(m.addr, base);
        ASSERT_LT(m.addr, base + footprint);
    }
}

TEST_P(CatalogAppTest, AccessRateMatchesMemRatioPerPhase)
{
    ThreadWorkload w(app(), 0, 1, 1ull << 40, 9);
    for (std::size_t ph = 0; ph < app().phases.size(); ++ph) {
        // Probe mid-phase to avoid boundary rounding.
        double progress = 0.0;
        for (std::size_t k = 0; k < ph; ++k)
            progress += app().phases[k].instFraction;
        progress += app().phases[ph].instFraction * 0.5;
        if (w.done())
            break;
        std::vector<MemAccess> acc;
        const Insts ran = w.runQuantum(20000, progress, acc);
        if (ran < 20000)
            break; // end of this thread's share
        const double ratio = static_cast<double>(acc.size()) / 20000.0;
        EXPECT_NEAR(ratio, app().phases[ph].memRatio, 0.02)
            << "phase " << ph;
    }
}

TEST_P(CatalogAppTest, WorkSharesSumToAtLeastTotal)
{
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        Insts sum = 0;
        for (unsigned t = 0; t < threads; ++t)
            sum += threadWorkShare(app(), t, threads);
        // Sync overhead only ever adds work; nothing may be lost.
        EXPECT_GE(sum + 2, app().lengthInsts)
            << "threads=" << threads;
    }
}

TEST_P(CatalogAppTest, ShortSoloRunCompletes)
{
    SoloOptions o;
    o.threads = 4;
    o.scale = 0.01;
    const SoloResult r = runSolo(app(), o);
    EXPECT_TRUE(r.app.completed);
    EXPECT_FALSE(r.timedOut);
    EXPECT_GT(r.app.retired, 0u);
    EXPECT_GT(r.time, 0.0);
}

std::string
sanitize(const std::string &name)
{
    std::string out;
    for (const char c : name)
        out += (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    All45, CatalogAppTest,
    ::testing::ValuesIn([] {
        std::vector<std::string> names;
        for (const auto &a : Catalog::all())
            names.push_back(a.name);
        return names;
    }()),
    [](const auto &info) { return sanitize(info.param); });

} // namespace
} // namespace capart
