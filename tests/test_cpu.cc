/**
 * @file
 * Unit tests for the analytic core timing model: IPC ceiling, SMT
 * throughput sharing, exposed hit penalties, and MLP overlap of misses.
 */

#include <gtest/gtest.h>

#include "cpu/core_model.hh"

namespace capart
{
namespace
{

QuantumCounts
computeOnly(Insts insts)
{
    QuantumCounts q;
    q.insts = insts;
    q.l1Hits = insts / 4;
    return q;
}

TEST(CoreTiming, ComputeBoundMatchesBaseIpc)
{
    CoreTimingModel m;
    const Cycles c = m.quantumCycles(computeOnly(4000), 2.0, 4.0, false,
                                     HierarchyLatencies{});
    EXPECT_EQ(c, 2000u);
}

TEST(CoreTiming, SmtPeerReducesThroughput)
{
    CoreTimingModel m;
    const Cycles alone = m.quantumCycles(computeOnly(4000), 2.0, 4.0,
                                         false, HierarchyLatencies{});
    const Cycles shared = m.quantumCycles(computeOnly(4000), 2.0, 4.0,
                                          true, HierarchyLatencies{});
    // smtFactor 0.62: the thread runs ~1.61x slower with a busy peer,
    // but the pair together gets ~1.24x one thread's throughput.
    EXPECT_NEAR(static_cast<double>(shared) / alone, 1.0 / 0.62, 0.01);
}

TEST(CoreTiming, L2AndLlcHitsArePartiallyExposed)
{
    CoreTimingModel m;
    const HierarchyLatencies lat;
    QuantumCounts q = computeOnly(4000);
    const Cycles base = m.quantumCycles(q, 2.0, 4.0, false, lat);
    q.l2Hits = 100;
    const Cycles with_l2 = m.quantumCycles(q, 2.0, 4.0, false, lat);
    q.l2Hits = 0;
    q.llcHits = 100;
    const Cycles with_llc = m.quantumCycles(q, 2.0, 4.0, false, lat);

    EXPECT_GT(with_l2, base);
    EXPECT_GT(with_llc, with_l2) << "LLC hits cost more than L2 hits";
}

TEST(CoreTiming, MissesScaleWithMemLatencyAndMlp)
{
    CoreTimingModel m;
    const HierarchyLatencies lat;
    QuantumCounts q = computeOnly(4000);
    q.llcMisses = 50;
    q.memLatency = 180;
    const Cycles mlp1 = m.quantumCycles(q, 2.0, 1.0, false, lat);
    const Cycles mlp4 = m.quantumCycles(q, 2.0, 4.0, false, lat);
    EXPECT_GT(mlp1, mlp4) << "overlap shortens aggregate stall";

    q.memLatency = 360;
    const Cycles slow_mem = m.quantumCycles(q, 2.0, 4.0, false, lat);
    EXPECT_GT(slow_mem, mlp4);
}

TEST(CoreTiming, MlpClampedByMshrs)
{
    CpuConfig cfg;
    cfg.maxMlp = 10.0;
    CoreTimingModel m(cfg);
    const HierarchyLatencies lat;
    QuantumCounts q = computeOnly(4000);
    q.llcMisses = 100;
    q.memLatency = 200;
    const Cycles at10 = m.quantumCycles(q, 2.0, 10.0, false, lat);
    const Cycles at100 = m.quantumCycles(q, 2.0, 100.0, false, lat);
    EXPECT_EQ(at10, at100) << "MLP beyond the MSHRs gives nothing";
}

TEST(CoreTiming, RingExtraInflatesLlcLatency)
{
    CoreTimingModel m;
    const HierarchyLatencies lat;
    QuantumCounts q = computeOnly(4000);
    q.llcHits = 200;
    const Cycles quiet = m.quantumCycles(q, 2.0, 4.0, false, lat);
    q.ringExtra = 20;
    const Cycles busy = m.quantumCycles(q, 2.0, 4.0, false, lat);
    EXPECT_GT(busy, quiet);
}

TEST(CoreTiming, CyclesToSeconds)
{
    CpuConfig cfg;
    cfg.freqHz = 2e9;
    CoreTimingModel m(cfg);
    EXPECT_DOUBLE_EQ(m.cyclesToSeconds(2'000'000'000ull), 1.0);
}

TEST(CoreTiming, MonotoneInInstructions)
{
    CoreTimingModel m;
    const HierarchyLatencies lat;
    Cycles prev = 0;
    for (Insts n = 1000; n <= 16000; n += 1000) {
        const Cycles c =
            m.quantumCycles(computeOnly(n), 1.5, 2.0, false, lat);
        EXPECT_GT(c, prev);
        prev = c;
    }
}

} // namespace
} // namespace capart
